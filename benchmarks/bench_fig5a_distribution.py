"""Figure 5a — Redis throughput vs memory cost per key distribution.

For each read-only Table III workload: measure real executions at 11
incremental FastMem:SlowMem ratios along the touch order, overlay
Mnemo's estimate, and print the (cost, throughput) series the paper
plots.
"""

import numpy as np

from repro.core import estimate_errors, measure_curve, prefix_counts
from repro.kvstore import RedisLike

from common import emit, pct, table

WORKLOADS = ["trending", "news_feed", "timeline"]
N_POINTS = 11


def sweep(trace, report, client):
    counts = prefix_counts(trace.n_keys, N_POINTS)
    points = measure_curve(trace, report.pattern.order, RedisLike, counts,
                           client=client)
    errors = estimate_errors(report.curve, points)
    return points, errors


def test_fig5a_key_distribution(benchmark, paper_traces, redis_reports,
                                bench_client):
    results = {}

    def run_all():
        for name in WORKLOADS:
            results[name] = sweep(paper_traces[name], redis_reports[name],
                                  bench_client)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = []
    for name in WORKLOADS:
        points, errors = results[name]
        curve = redis_reports[name].curve
        lines.append(f"[{name}]")
        rows = [
            (f"{p.cost_factor:.2f}",
             f"{p.result.throughput_ops_s:,.0f}",
             f"{curve.throughput_ops_s[p.n_fast_keys]:,.0f}",
             f"{e:+.3f}%")
            for p, e in zip(points, errors)
        ]
        lines += table(
            ["cost factor", "measured ops/s", "estimate ops/s", "error"],
            rows,
        )
        gap = redis_reports[name].baselines.throughput_gap
        lines.append(f"FastMem-only / SlowMem-only throughput: {gap:.2f}x")
        lines.append("")
    emit("fig5a_distribution", lines)

    # paper shape: ~40 % gap, estimate within a fraction of a percent
    for name in WORKLOADS:
        _, errors = results[name]
        assert np.median(np.abs(errors)) < 0.3
        gap = redis_reports[name].baselines.throughput_gap
        assert 1.25 < gap < 1.55
