"""Extension — drift diagnosis behind the Figure 9 News Feed result.

The paper observes that News Feed "really depend[s] on the latest
accessed data to reside in FastMem, thus ... barely present[s] any cost
reduction opportunities" under Mnemo's static placement.  This bench
quantifies the mechanism with the drift extension: hot-set drift per
workload, and the FastMem hit fraction a static placement loses to an
ideal migrating tier at a 20 % capacity budget.
"""

from repro.core.drift import analyze_drift

from common import emit, pct, table

WORKLOAD_ORDER = ["trending", "news_feed", "timeline", "edit_thumbnail",
                  "trending_preview"]


def run(paper_traces):
    return {
        name: analyze_drift(paper_traces[name], capacity_fraction=0.2)
        for name in WORKLOAD_ORDER
    }


def test_ext_drift(benchmark, paper_traces):
    reports = benchmark.pedantic(run, args=(paper_traces,), rounds=1,
                                 iterations=1)

    rows = [
        (name,
         f"{r.drift:.2f}",
         pct(r.regret.static_hit_fraction),
         pct(r.regret.oracle_hit_fraction),
         pct(r.regret.regret),
         "static ok" if r.stationary else "needs migration")
        for name, r in reports.items()
    ]
    emit("ext_drift", table(
        ["workload", "drift", "static fast-hit", "oracle fast-hit",
         "regret", "verdict"], rows, fmt="{:>17}",
    ) + ["explains Fig 9: News Feed's hot set slides through the key "
         "space, so static placement (Mnemo's scope) cannot capture it"])

    assert not reports["news_feed"].stationary
    for name in WORKLOAD_ORDER:
        if name != "news_feed":
            assert reports[name].stationary
    assert reports["news_feed"].regret.regret > 0.4
