"""Extension — sizing robustness to NVM price and speed uncertainty.

The paper fixes p = 0.2 and one emulated device; real NVDIMM prices
(projected 3-7x below DRAM) and speeds were unknown at publication.
This bench sweeps both axes on the Trending/Redis profile:

- price: the SLO-binding placement is price-independent, so the whole
  price band is evaluated from one profile (re-costing is free);
- device: slower/faster SlowMem parts are re-profiled, moving both the
  throughput gap and the DRAM share the SLO demands.
"""

from repro.core import Mnemo
from repro.core.whatif import (
    DEFAULT_SCENARIOS,
    PRICE_BAND,
    device_sensitivity,
    price_sensitivity,
)
from repro.kvstore import RedisLike

from common import emit, pct, table


def run(paper_traces, bench_client, redis_reports):
    trace = paper_traces["trending"]
    report = redis_reports["trending"]
    price_choices = price_sensitivity(report.curve, PRICE_BAND)
    device_outcomes = device_sensitivity(
        trace, RedisLike, DEFAULT_SCENARIOS, client=bench_client,
    )
    return price_choices, device_outcomes


def test_ext_whatif(benchmark, paper_traces, bench_client, redis_reports):
    price_choices, device_outcomes = benchmark.pedantic(
        run, args=(paper_traces, bench_client, redis_reports),
        rounds=1, iterations=1,
    )

    lines = ["[price sensitivity: same profile, re-costed]"]
    lines += table(
        ["p (NVM/DRAM $)", "cost @10% SLO", "memory saving", "FastMem keys"],
        [(f"{p:.3f}", pct(c.cost_factor), pct(1 - c.cost_factor),
          f"{c.n_fast_keys:,}")
         for p, c in sorted(price_choices.items())],
    )
    lines += ["", "[device sensitivity: re-profiled per part]"]
    lines += table(
        ["scenario", "B/L factors", "gap", "FastMem share", "cost @SLO"],
        [(o.scenario.name,
          f"B:{o.scenario.factors.bandwidth:.2f} "
          f"L:{o.scenario.factors.latency:.2f}",
          f"{o.throughput_gap:.2f}x",
          pct(o.choice.capacity_ratio),
          pct(o.choice.cost_factor))
         for o in device_outcomes],
        fmt="{:>20}",
    )
    emit("ext_whatif", lines)

    # price: placement invariant, cost monotone in p
    key_counts = {c.n_fast_keys for c in price_choices.values()}
    assert len(key_counts) == 1
    costs = [price_choices[p].cost_factor for p in sorted(price_choices)]
    assert costs == sorted(costs)

    # device: slower part -> bigger gap and >= DRAM share
    by_name = {o.scenario.name: o for o in device_outcomes}
    assert (by_name["slower part"].throughput_gap
            > by_name["table-i (emulated)"].throughput_gap
            > by_name["faster part"].throughput_gap)
    assert (by_name["slower part"].choice.capacity_ratio
            >= by_name["faster part"].choice.capacity_ratio)
