"""Runner speedup — caching and parallel grids vs the serial path.

Times the Fig-9-style grid (5 Table III workloads x 3 stores, FastMem
and SlowMem baselines each) four ways:

- serial, uncached (the pre-runner baseline path);
- cold cache, serial (adds fingerprinting + cache writes);
- cold cache, parallel (``default_workers()`` processes);
- warm cache (a rerun recalling every result).

All four must produce bit-identical results — the runner's core
guarantee — and the wall-clocks are written as JSON to
``benchmarks/out/runner_speedup.json`` so future PRs can track the
perf trajectory.  The >= 3x parallel acceptance bound is only asserted
on machines with >= 4 CPUs; single-core CI still checks determinism
and the warm-cache bound.
"""

import json
import os
import shutil
import tempfile
import time

from common import OUT_DIR, emit, table

from repro.runner import ClientConfig, ExperimentRunner, default_workers
from repro.ycsb import TABLE_III_WORKLOADS

GRID_WORKERS = 4


def _grid():
    return ExperimentRunner.grid(
        TABLE_III_WORKLOADS,
        engines=("redis", "memcached", "dynamodb"),
        placements=("fast", "slow"),
    )


def _timed(runner, specs, workers):
    start = time.perf_counter()
    results = runner.run_grid(specs, workers=workers)
    return results, time.perf_counter() - start


def run():
    specs = _grid()
    config = ClientConfig(repeats=3, noise_sigma=0.01, seed=2019)
    cache_dir = tempfile.mkdtemp(prefix="mnemo-bench-cache-")
    try:
        serial, t_serial = _timed(
            ExperimentRunner(cache=None, client=config), specs, 1
        )
        workers = min(GRID_WORKERS, default_workers())
        cold, t_cold = _timed(
            ExperimentRunner(cache=cache_dir, client=config), specs, workers
        )
        warm, t_warm = _timed(
            ExperimentRunner(cache=cache_dir, client=config), specs, 1
        )
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    return {
        "specs": specs,
        "serial": serial, "cold": cold, "warm": warm,
        "t_serial": t_serial, "t_cold": t_cold, "t_warm": t_warm,
        "workers": workers,
    }


def test_runner_speedup(benchmark):
    r = benchmark.pedantic(run, rounds=1, iterations=1)

    # the core guarantee: schedule and caching never touch the numbers
    assert r["serial"] == r["cold"], "parallel grid diverged from serial"
    assert r["serial"] == r["warm"], "cached results diverged from fresh"

    # a warm rerun must be almost free
    assert r["t_warm"] < 0.10 * r["t_cold"], (
        f"warm rerun took {r['t_warm']:.2f}s vs cold {r['t_cold']:.2f}s"
    )

    parallel_speedup = r["t_serial"] / r["t_cold"]
    if (os.cpu_count() or 1) >= GRID_WORKERS:
        assert parallel_speedup >= 3.0, (
            f"parallel cold run only {parallel_speedup:.2f}x over serial"
        )

    payload = {
        "grid_cells": len(r["specs"]),
        "workers": r["workers"],
        "serial_uncached_s": round(r["t_serial"], 3),
        "cold_parallel_s": round(r["t_cold"], 3),
        "warm_serial_s": round(r["t_warm"], 3),
        "parallel_speedup": round(parallel_speedup, 2),
        "warm_over_cold": round(r["t_warm"] / r["t_cold"], 4),
        "cpu_count": os.cpu_count(),
    }
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "runner_speedup.json").write_text(
        json.dumps(payload, indent=2)
    )

    emit("runner_speedup", table(
        ["path", "wall-clock", "notes"],
        [
            ("serial uncached", f"{r['t_serial']:.2f}s",
             f"{len(r['specs'])} cells"),
            ("cold + parallel", f"{r['t_cold']:.2f}s",
             f"{r['workers']} workers"),
            ("warm cache", f"{r['t_warm']:.2f}s",
             f"{payload['warm_over_cold']:.1%} of cold"),
        ],
        fmt="{:>16}",
    ) + [f"results bit-identical across all paths; JSON at "
         f"benchmarks/out/runner_speedup.json"])
