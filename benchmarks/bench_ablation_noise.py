"""Ablation — estimate robustness to measurement noise.

Mnemo's model consumes *measured* baselines, so run-to-run variability
propagates into the estimate.  This bench sweeps the simulator's noise
sigma and repeat count to show (a) error grows with noise, and (b)
averaging multiple runs — what the paper does — recovers accuracy.
"""

import numpy as np

from repro.core import Mnemo, estimate_errors, measure_curve, prefix_counts
from repro.kvstore import RedisLike
from repro.ycsb import YCSBClient

from common import emit, table

# 100k requests average per-request noise down by ~316x, so visible
# baseline-level noise needs large per-request sigmas
SIGMAS = [0.0, 0.3, 1.0]
REPEATS = [1, 3, 10]


def run(paper_traces):
    trace = paper_traces["trending"]
    grid = {}
    for sigma in SIGMAS:
        for repeats in REPEATS:
            client = YCSBClient(repeats=repeats, noise_sigma=sigma, seed=11)
            report = Mnemo(engine_factory=RedisLike, client=client).profile(
                trace
            )
            points = measure_curve(
                trace, report.pattern.order, RedisLike,
                prefix_counts(trace.n_keys, 7), client=client,
            )
            errors = estimate_errors(report.curve, points)
            grid[(sigma, repeats)] = float(np.median(np.abs(errors)))
    return grid


def test_ablation_noise(benchmark, paper_traces):
    grid = benchmark.pedantic(run, args=(paper_traces,), rounds=1,
                              iterations=1)

    rows = [
        (f"{sigma:.2f}",
         *(f"{grid[(sigma, reps)]:.4f}%" for reps in REPEATS))
        for sigma in SIGMAS
    ]
    emit("ablation_noise", table(
        ["noise sigma", *(f"median |err| @{r} runs" for r in REPEATS)],
        rows, fmt="{:>22}",
    ) + ["averaging repeated runs (the paper reports means of multiple "
         "runs) recovers sub-0.1% accuracy under realistic noise"])

    # noiseless: only the size-mixing approximation remains
    assert grid[(0.0, 1)] < 0.05
    # higher noise -> higher error at fixed repeats
    assert grid[(1.0, 1)] > grid[(0.0, 1)]
    # more repeats -> lower error at fixed (high) noise
    assert grid[(1.0, 10)] < grid[(1.0, 1)]
    # even at 100% per-request noise the averaged estimate stays sub-1%
    assert grid[(1.0, 3)] < 1.0
