"""Ablation — tiering-order design (Section IV's weight formula).

Compares FastMem-allocation orderings on the scrambled-zipfian
Trending-Preview workload (mixed record sizes make the size term in the
weight matter):

- first-touch (stand-alone Mnemo),
- accesses only (ignore sizes),
- accesses/size (MnemoT's weight — the literature's formula),
- 0/1 knapsack selection at a fixed capacity (greedy density).

Metric: estimated throughput at matched cost points, and requests
served from FastMem at a fixed 25 % capacity.
"""

import numpy as np

from repro.baselines import knapsack_tiering
from repro.core import EstimateEngine, PatternEngine, WorkloadDescriptor
from repro.core.sensitivity import SensitivityEngine
from repro.kvstore import RedisLike

from common import emit, pct, table


def run(paper_traces, client):
    trace = paper_traces["trending_preview"]
    descriptor = WorkloadDescriptor.from_trace(trace)
    baselines = SensitivityEngine(RedisLike, client=client).measure(descriptor)

    touch = PatternEngine(mode="touch").analyze(descriptor)
    weight = PatternEngine(mode="weight").analyze(descriptor)

    accesses = weight.accesses_per_key
    acc_order = np.argsort(-accesses, kind="stable").astype(np.int64)
    acc_only = PatternEngine(mode="external").analyze(
        descriptor, external_order=acc_order
    )

    engine = EstimateEngine()
    curves = {
        "first-touch": engine.estimate(baselines, touch),
        "accesses-only": engine.estimate(baselines, acc_only),
        "accesses/size": engine.estimate(baselines, weight),
    }

    # fixed 25 % FastMem capacity: fraction of requests served fast
    cap = int(trace.record_sizes.sum() * 0.25)
    fast_requests = {}
    for name, curve in curves.items():
        k = int(np.searchsorted(curve.fast_bytes, cap, side="right")) - 1
        prefix = curve.order[:k]
        fast_requests[name] = accesses[prefix].sum() / accesses.sum()
    chosen = knapsack_tiering(accesses.astype(float), trace.record_sizes, cap)
    fast_requests["knapsack@25%"] = accesses[chosen].sum() / accesses.sum()

    return curves, fast_requests


def test_ablation_tiering_order(benchmark, paper_traces, bench_client):
    curves, fast_requests = benchmark.pedantic(
        run, args=(paper_traces, bench_client), rounds=1, iterations=1,
    )

    grid = [0.3, 0.5, 0.7, 0.9]
    rows = [
        (name, *(f"{curve.throughput_at_cost(r):,.0f}" for r in grid))
        for name, curve in curves.items()
    ]
    lines = table(["ordering", *(f"thr @cost {r}" for r in grid)], rows,
                  fmt="{:>16}")
    lines.append("")
    lines += table(
        ["ordering", "requests served fast @25% capacity"],
        [(n, pct(v)) for n, v in fast_requests.items()], fmt="{:>34}",
    )
    emit("ablation_tiering", lines)

    # the weight formula dominates first-touch at every matched cost
    for r in grid:
        assert (curves["accesses/size"].throughput_at_cost(r)
                >= curves["first-touch"].throughput_at_cost(r) - 1e-6)
    # with mixed sizes, dividing by size beats accesses-only at the
    # capacity-constrained point (small hot keys pack better)
    assert fast_requests["accesses/size"] >= fast_requests["accesses-only"]
    # greedy knapsack ~ the density order plus slack filling
    assert fast_requests["knapsack@25%"] >= fast_requests["accesses/size"] - 0.01
