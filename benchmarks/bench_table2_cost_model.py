"""Table II — performance baselines and cost-reduction factors.

Sweeps the cost model over the three anchor sizings (best case, the
paper's in-between example, worst case) at p = 0.2.
"""

import numpy as np
import pytest

from repro.cost import CostModel

from common import emit, table


def sweep_cost_model(total_bytes: int = 1_000_000_000):
    model = CostModel(total_bytes=total_bytes, p=0.2)
    fast = np.linspace(0, total_bytes, 101)
    return model, model.factor(fast)


def test_table2_cost_model(benchmark):
    model, curve = benchmark(sweep_cost_model)

    total = model.total_bytes
    rows = [
        ("Best Case", "C bytes", "0 bytes", f"{model.factor(total):.2f}"),
        ("In between (hot 20%)", "0.2C", "0.8C",
         f"{model.factor(0.2 * total):.2f}"),
        ("Worst Case", "0 bytes", "C bytes", f"{model.factor(0):.2f}"),
    ]
    emit("table2_cost_model", table(
        ["runtime", "FastMem", "SlowMem", "cost factor"], rows, fmt="{:>20}",
    ) + [f"p = {model.p} (SlowMem {model.p:.0%} of FastMem per-byte cost)"])

    assert model.factor(total) == 1.0
    assert model.factor(0) == pytest.approx(0.2)
    assert model.factor(0.2 * total) == pytest.approx(0.36)
    assert (np.diff(curve) > 0).all()
