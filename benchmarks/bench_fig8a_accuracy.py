"""Figure 8a — estimate percentage-error boxplots per key-value store.

Runs every Table III workload on every engine, measures real executions
at 11 intermediate ratios, and summarises the percentage error
``(r - e)/r * 100`` as Tukey boxplot statistics per store.
Paper: 0.07 % median error overall.
"""

import numpy as np

from repro.analysis import boxplot_stats
from repro.core import estimate_errors, measure_curve, prefix_counts

from common import emit, table
from conftest import ENGINES

N_POINTS = 11


def collect_errors(paper_traces, all_reports, client):
    errors = {name: [] for name in ENGINES}
    for (engine_name, wname), report in all_reports.items():
        trace = paper_traces[wname]
        points = measure_curve(
            trace, report.pattern.order, ENGINES[engine_name],
            prefix_counts(trace.n_keys, N_POINTS), client=client,
        )
        errors[engine_name].extend(
            estimate_errors(report.curve, points).tolist()
        )
    return {name: np.array(v) for name, v in errors.items()}


def test_fig8a_estimate_accuracy(benchmark, paper_traces, all_reports,
                                 bench_client):
    errors = benchmark.pedantic(
        collect_errors, args=(paper_traces, all_reports, bench_client),
        rounds=1, iterations=1,
    )

    rows = []
    for name, errs in errors.items():
        stats = boxplot_stats(errs)
        rows.append((
            name, f"{stats.median:+.4f}%", f"{stats.q1:+.4f}%",
            f"{stats.q3:+.4f}%", f"{stats.whisker_low:+.3f}%",
            f"{stats.whisker_high:+.3f}%", stats.n,
        ))
    all_errs = np.concatenate(list(errors.values()))
    from repro.analysis.bootstrap import bootstrap_ci

    ci = bootstrap_ci(np.abs(all_errs), seed=8)
    emit("fig8a_accuracy", table(
        ["store", "median", "q1", "q3", "whisk lo", "whisk hi", "n"], rows,
    ) + [f"overall median |error|: {ci.statistic:.4f}% "
         f"(95% bootstrap CI {ci.low:.4f}%..{ci.high:.4f}%; paper: 0.07%)"])

    assert np.median(np.abs(all_errs)) < 0.15
    for errs in errors.values():
        assert np.median(np.abs(errs)) < 0.3
