"""Figure 8c — average-latency estimate accuracy.

Mnemo also estimates the average request latency; this bench measures
real average latencies at intermediate ratios on Trending across all
three stores and reports the estimate error.
"""

import numpy as np

from repro.core import estimate_errors, measure_curve, prefix_counts

from common import emit, table
from conftest import ENGINES

N_POINTS = 9


def collect(paper_traces, all_reports, client):
    out = {}
    trace = paper_traces["trending"]
    for name, factory in ENGINES.items():
        report = all_reports[(name, "trending")]
        points = measure_curve(
            trace, report.pattern.order, factory,
            prefix_counts(trace.n_keys, N_POINTS), client=client,
        )
        errors = estimate_errors(report.curve, points, metric="avg_latency")
        out[name] = (report, points, errors)
    return out


def test_fig8c_average_latency(benchmark, paper_traces, all_reports,
                               bench_client):
    results = benchmark.pedantic(
        collect, args=(paper_traces, all_reports, bench_client),
        rounds=1, iterations=1,
    )

    lines = []
    for name, (report, points, errors) in results.items():
        lines.append(f"[{name}]")
        rows = [
            (f"{p.cost_factor:.2f}",
             f"{p.result.avg_latency_ns / 1000:.1f}",
             f"{report.curve.avg_latency_ns[p.n_fast_keys] / 1000:.1f}",
             f"{e:+.3f}%")
            for p, e in zip(points, errors)
        ]
        lines += table(
            ["cost factor", "measured us", "estimate us", "error"], rows,
        )
        lines.append("")
    emit("fig8c_latency", lines)

    for name, (_, _, errors) in results.items():
        assert np.median(np.abs(errors)) < 0.3
