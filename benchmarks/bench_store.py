"""SQLite store vs file-tree cache: warm-read overhead gate.

``--store`` replaces per-entry files with one WAL database; durability
must not tax the hot path.  Both backends persist the *same* encoded
envelopes (the :mod:`repro.runner.cache` codecs), so this bench
populates each with an identical corpus of results, asserts every entry
reads back equal from both, then times the warm-read sweep — the
operation a resumed or cached sweep performs once per experiment — and
gates the ratio against ``READ_RATIO_CEILING`` (sqlite may cost at most
1.2x the file tree).  Write throughput and a cold-open read are
recorded for the record but not gated: writes are once-per-experiment
and dominated by measurement time.

Wall-clocks are best-of-N with read rounds interleaved between the
backends (same machine-drift exposure), and the summary JSON lands in
``benchmarks/out/`` and at ``BENCH_store.json`` in the repo root.
``MNEMO_BENCH_SMOKE=1`` shrinks the corpus for the smoke target.
"""

import json
import os
import tempfile
import time
from pathlib import Path

from common import OUT_DIR, emit, table

from repro.runner.cache import ResultCache
from repro.store import SQLiteStore
from repro.ycsb.client import RunResult

SMOKE = os.environ.get("MNEMO_BENCH_SMOKE", "") not in ("", "0")

N_ENTRIES = 200 if SMOKE else 1_000
ROUNDS = 5
#: Warm reads from the SQLite store may cost at most this multiple of
#: the v2 file-tree cache.
READ_RATIO_CEILING = 1.2

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_store.json"


def _corpus(n):
    """*n* distinct, deterministic (fingerprint, RunResult) pairs."""
    out = []
    for i in range(n):
        out.append((
            f"fp-{i:06d}",
            RunResult(
                workload=f"w{i % 7}", engine="redis",
                n_requests=1_000 + i, n_reads=600 + i, n_writes=400,
                runtime_ns=1.5e8 + i * 1e3,
                avg_read_ns=1200.5 + i, avg_write_ns=1500.25 + i,
                latency_percentiles_ns={
                    50.0: 900.0 + i, 95.0: 2500.5 + i, 99.0: 4000.125 + i,
                },
                repeats=3, runtime_std_ns=12.5, concurrency=2,
            ),
        ))
    return out


def _timed_writes(put, corpus):
    t0 = time.perf_counter()
    for fingerprint, result in corpus:
        put(fingerprint, result)
    return time.perf_counter() - t0


def _paired_reads(cache, store, corpus, rounds):
    """Best-of-N warm-read sweeps, file/sqlite rounds interleaved."""
    fingerprints = [fp for fp, _ in corpus]
    t_file = t_sql = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        for fp in fingerprints:
            cache.get_result(fp)
        t_file = min(t_file, time.perf_counter() - t0)
        t0 = time.perf_counter()
        for fp in fingerprints:
            store.get_result(fp)
        t_sql = min(t_sql, time.perf_counter() - t0)
    return t_file, t_sql


def run():
    corpus = _corpus(N_ENTRIES)
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(Path(tmp) / "cache")
        store = SQLiteStore(Path(tmp) / "store.db")
        write_file_s = _timed_writes(cache.put_result, corpus)
        write_sql_s = _timed_writes(store.put_result, corpus)

        # both backends must hold the identical corpus before timing
        for fingerprint, result in corpus:
            a = cache.get_result(fingerprint)
            b = store.get_result(fingerprint)
            assert a == b == result, f"backends disagree on {fingerprint}"

        read_file_s, read_sql_s = _paired_reads(cache, store, corpus, ROUNDS)

        # cold open: close, reopen, one full read sweep (WAL recovery path)
        store.close()
        store = SQLiteStore(Path(tmp) / "store.db")
        t0 = time.perf_counter()
        for fingerprint, _ in corpus:
            store.get_result(fingerprint)
        cold_sql_s = time.perf_counter() - t0
        store.close()

    ratio = read_sql_s / read_file_s
    return {
        "mode": "smoke" if SMOKE else "full",
        "n_entries": N_ENTRIES,
        "write_s": {
            "file": round(write_file_s, 4), "sqlite": round(write_sql_s, 4),
        },
        "warm_read_s": {
            "file": round(read_file_s, 4), "sqlite": round(read_sql_s, 4),
        },
        "cold_read_sqlite_s": round(cold_sql_s, 4),
        "warm_read_ratio": round(ratio, 4),
        "floors": {"read_ratio_ceiling": READ_RATIO_CEILING},
    }


def test_store_read_overhead(benchmark):
    r = benchmark.pedantic(run, rounds=1, iterations=1)

    payload = json.dumps(r, indent=2)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "store.json").write_text(payload)
    RESULT_PATH.write_text(payload + "\n")

    w, rd = r["write_s"], r["warm_read_s"]
    emit("store", table(
        ["op", "file cache", "sqlite store"],
        [
            (f"write x{r['n_entries']}", f"{w['file']:.3f}s",
             f"{w['sqlite']:.3f}s"),
            (f"warm read x{r['n_entries']}", f"{rd['file']:.3f}s",
             f"{rd['sqlite']:.3f}s"),
        ],
        fmt="{:>14}",
    ) + [
        f"warm-read ratio: {r['warm_read_ratio']:.2f}x "
        f"(ceiling {READ_RATIO_CEILING:.1f}x)",
        f"cold sqlite read sweep: {r['cold_read_sqlite_s']:.3f}s",
        f"summary JSON at BENCH_store.json (mode={r['mode']})",
    ])

    assert r["warm_read_ratio"] <= READ_RATIO_CEILING, (
        f"sqlite warm reads cost {r['warm_read_ratio']:.2f}x the file "
        f"cache, over the {READ_RATIO_CEILING:.1f}x ceiling"
    )
