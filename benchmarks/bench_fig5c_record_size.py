"""Figure 5c — throughput vs cost per record size.

Same access pattern at 1 KB / 10 KB / 100 KB records: bigger records
make the curve's knee bigger (more performance to recover by placing
them in FastMem).
"""

from dataclasses import replace

import numpy as np

from repro.core import Mnemo
from repro.kvstore import RedisLike
from repro.ycsb import generate_trace
from repro.ycsb.presets import TIMELINE
from repro.ycsb.sizes import SizeModel

from common import emit, pct, table

MEDIANS = [1_000, 10_000, 100_000]


def sweep_record_sizes(client):
    out = {}
    for m in MEDIANS:
        spec = replace(
            TIMELINE, name=f"timeline_{m}b",
            size_model=SizeModel(name=f"s{m}", median_bytes=m, sigma=0.2),
        )
        out[m] = Mnemo(engine_factory=RedisLike, client=client).profile(
            generate_trace(spec)
        )
    return out


def test_fig5c_record_size(benchmark, bench_client):
    reports = benchmark.pedantic(
        sweep_record_sizes, args=(bench_client,), rounds=1, iterations=1
    )

    rows = []
    for m in MEDIANS:
        b = reports[m].baselines
        curve = reports[m].curve
        # knee magnitude: total throughput recoverable, relative to ideal
        knee = 1 - float(curve.throughput_ops_s[0] / curve.throughput_ops_s[-1])
        rows.append((
            f"{m:,} B",
            f"{b.fast.throughput_ops_s:,.0f}",
            f"{b.slow.throughput_ops_s:,.0f}",
            f"{b.throughput_gap:.3f}x",
            pct(knee),
        ))
    emit("fig5c_record_size", table(
        ["record size", "Fast ops/s", "Slow ops/s", "gap", "knee size"],
        rows,
    ) + ["paper: big records influence performance much more than small "
         "ones (the knee of the line is bigger)"])

    gaps = [reports[m].baselines.throughput_gap for m in MEDIANS]
    assert gaps[0] < gaps[1] < gaps[2]
    assert gaps[0] < 1.02 and gaps[2] > 1.30
