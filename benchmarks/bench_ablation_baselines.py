"""Ablation — how the baselines are obtained (design choice, Section V-B).

Mnemo measures *both* extreme configurations.  The alternatives:

- X-Mem-like device-only baselines (microbenchmarks) miss the engine's
  CPU component entirely and produce wildly wrong absolute estimates;
- Tahoe-like ML inference of the FastMem baseline is close but adds
  error on top of the measured-slow run, and its training data costs
  many workload executions.

This bench quantifies the estimate error of each choice on Trending.
"""

import numpy as np

from repro.baselines import (
    InstrumentedProfiler,
    MLBaselineProfiler,
    train_fast_baseline_model,
)
from repro.core import Mnemo, WorkloadDescriptor
from repro.kvstore import RedisLike
from repro.ycsb.distributions import DistributionSpec
from repro.ycsb.sizes import SizeModel
from repro.ycsb.workload import WorkloadSpec

from common import emit, pct, table


def training_specs():
    dists = ["zipfian", "hotspot", "uniform", "scrambled_zipfian", "latest"]
    return [
        WorkloadSpec(
            name=f"abl_train_{i}",
            distribution=DistributionSpec(name=dists[i % len(dists)]),
            read_fraction=[1.0, 0.8, 0.6][i % 3],
            size_model=SizeModel(
                name=f"s{i}", median_bytes=[100_000, 20_000, 60_000][i % 3],
                sigma=0.2,
            ),
            n_keys=2_000,
            n_requests=20_000,
            seed=500 + i,
        )
        for i in range(6)
    ]


def run(paper_traces, redis_reports, client):
    descriptor = WorkloadDescriptor.from_trace(paper_traces["trending"])
    real = redis_reports["trending"].baselines

    # device-only prediction of the fast baseline
    xmem = InstrumentedProfiler(RedisLike, client=client)
    micro = xmem.run_microbenchmarks()
    device_fast = xmem.predict_runtime_ns(descriptor, micro, "fast")

    # ML-inferred fast baseline
    model = train_fast_baseline_model(training_specs(), RedisLike,
                                      client=client)
    tahoe = MLBaselineProfiler(model, RedisLike, client=client)
    ml_fast = tahoe.profile(descriptor).baselines.fast.runtime_ns

    truth = real.fast_runtime_ns
    return {
        "mnemo (measured)": (truth, 0.0),
        "tahoe-like (ML inferred)": (ml_fast, abs(ml_fast - truth) / truth),
        "x-mem-like (device only)": (device_fast,
                                     abs(device_fast - truth) / truth),
    }


def test_ablation_baseline_acquisition(benchmark, paper_traces,
                                       redis_reports, bench_client):
    results = benchmark.pedantic(
        run, args=(paper_traces, redis_reports, bench_client),
        rounds=1, iterations=1,
    )

    rows = [
        (name, f"{runtime / 1e9:.2f}", pct(err))
        for name, (runtime, err) in results.items()
    ]
    emit("ablation_baselines", table(
        ["baseline source", "FastMem runtime (s)", "error vs measured"],
        rows, fmt="{:>26}",
    ) + ["design takeaway: measuring both baselines is what makes the "
         "simple model near-exact"])

    _, ml_err = results["tahoe-like (ML inferred)"]
    _, dev_err = results["x-mem-like (device only)"]
    assert ml_err < 0.10        # usable but not exact
    assert dev_err > 0.5        # device-only misses the CPU component
