"""Figure 5b — throughput vs cost per read:write ratio.

Compares the read-only Timeline against the 50:50 Edit Thumbnail (same
scrambled-zipfian pattern, same record sizes) and adds denser ratio
steps to expose the trend: the more writes, the smaller the SlowMem
penalty.
"""

from dataclasses import replace

import numpy as np

from repro.core import Mnemo
from repro.kvstore import RedisLike
from repro.ycsb import generate_trace
from repro.ycsb.presets import TIMELINE

from common import emit, pct, table

READ_FRACTIONS = [1.0, 0.75, 0.5, 0.25]


def sweep_rw_ratios(client):
    out = {}
    for rf in READ_FRACTIONS:
        spec = replace(TIMELINE, name=f"timeline_rw{int(rf * 100)}",
                       read_fraction=rf)
        report = Mnemo(engine_factory=RedisLike, client=client).profile(
            generate_trace(spec)
        )
        out[rf] = report
    return out


def test_fig5b_read_write_ratio(benchmark, bench_client):
    reports = benchmark.pedantic(
        sweep_rw_ratios, args=(bench_client,), rounds=1, iterations=1
    )

    rows = []
    for rf in READ_FRACTIONS:
        b = reports[rf].baselines
        rows.append((
            f"{int(rf * 100)}:{int((1 - rf) * 100)}",
            f"{b.fast.throughput_ops_s:,.0f}",
            f"{b.slow.throughput_ops_s:,.0f}",
            f"{b.throughput_gap:.3f}x",
            pct(reports[rf].choose(0.10).cost_factor),
        ))
    emit("fig5b_rw_ratio", table(
        ["read:write", "Fast ops/s", "Slow ops/s", "gap",
         "cost @10% SLO"], rows,
    ) + ["paper: write-heavy workloads are less impacted by SlowMem "
         "than read-heavy ones"])

    gaps = [reports[rf].baselines.throughput_gap for rf in READ_FRACTIONS]
    assert gaps == sorted(gaps, reverse=True)  # more writes -> smaller gap
    # and smaller gap -> cheaper SLO-compliant sizing
    costs = [reports[rf].choose(0.10).cost_factor for rf in READ_FRACTIONS]
    assert costs[-1] < costs[0]
