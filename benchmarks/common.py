"""Reporting helpers shared by the benchmark files.

Every bench regenerates one of the paper's tables or figures and prints
it in a paper-comparable layout (run pytest with ``-s`` to see the
tables inline); the same text is also written to ``benchmarks/out/``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.runner import ResultCache

OUT_DIR = Path(__file__).parent / "out"

#: Shared content-addressed result cache for the whole benchmark suite —
#: Fig 5/8/9 benches profile the same (workload, engine) baselines, so
#: the first bench to measure one pays for it and the rest recall it
#: bit-identically.  ``make clean`` removes the directory.
CACHE_DIR = Path(__file__).resolve().parent.parent / ".mnemo-cache"


def shared_cache() -> ResultCache:
    """The benchmark suite's shared result cache."""
    return ResultCache(CACHE_DIR)


def emit(experiment_id: str, lines: Iterable[str]) -> str:
    """Print a result block and persist it to ``benchmarks/out/``."""
    text = "\n".join([f"== {experiment_id} ==", *lines, ""])
    print("\n" + text)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{experiment_id}.txt").write_text(text)
    return text


def table(headers: Sequence[str], rows: Iterable[Sequence[object]],
          fmt: str = "{:>14}") -> list[str]:
    """Fixed-width text table."""
    def render(cells):
        return " ".join(fmt.format(str(c)) for c in cells)

    out = [render(headers)]
    out.append("-" * len(out[0]))
    out.extend(render(r) for r in rows)
    return out


def pct(x: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string."""
    return f"{100 * x:.{digits}f}%"
