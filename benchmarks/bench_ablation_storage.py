"""Ablation — the model's scoping boundary (Section V-A, "Target
applications").

The paper explicitly does NOT claim the estimation model works for
"data stores ... engaging storage components".  This bench makes that
boundary quantitative: it applies the exact Mnemo methodology (two
baselines + uniform average savings) to the storage-backed store and
contrasts the resulting estimate error against the in-memory RedisLike
under identical workloads and placements.
"""

import numpy as np

from repro.core import Mnemo, estimate_errors, measure_curve, prefix_counts
from repro.cost.model import cost_reduction_factor
from repro.kvstore import RedisLike
from repro.kvstore.storage import StorageBackedStore
from repro.memsim import HybridMemorySystem

from common import emit, table

N_POINTS = 9


def mnemo_style_estimate(store, trace, order):
    """Apply the paper's model verbatim to the storage-backed store."""
    n = trace.n_keys
    fast = store.execute(trace, np.ones(n, dtype=bool), repeats=3, seed=41)
    slow = store.execute(trace, np.zeros(n, dtype=bool), repeats=3, seed=42)
    read_delta = slow.avg_read_ns - fast.avg_read_ns
    write_delta = slow.avg_write_ns - fast.avg_write_ns
    reads, writes = trace.per_key_counts()
    cum_r = np.concatenate(([0], np.cumsum(reads[order])))
    cum_w = np.concatenate(([0], np.cumsum(writes[order])))
    runtime = slow.runtime_ns - cum_r * read_delta - cum_w * write_delta
    return runtime


def run(paper_traces, bench_client):
    trace = paper_traces["trending"]
    counts = prefix_counts(trace.n_keys, N_POINTS)

    # in-memory reference: the paper's pipeline
    redis_report = Mnemo(engine_factory=RedisLike,
                         client=bench_client).profile(trace)
    redis_points = measure_curve(
        trace, redis_report.pattern.order, RedisLike, counts,
        client=bench_client,
    )
    redis_errors = estimate_errors(redis_report.curve, redis_points)

    # storage-backed store: same methodology, hot-first ordering
    store = StorageBackedStore(HybridMemorySystem.testbed())
    req_counts = np.bincount(trace.keys, minlength=trace.n_keys)
    order = np.argsort(-(req_counts / trace.record_sizes), kind="stable")
    est_runtime = mnemo_style_estimate(store, trace, order)

    rows, storage_errors = [], []
    total = int(trace.record_sizes.sum())
    for n_fast in counts:
        mask = np.zeros(trace.n_keys, dtype=bool)
        mask[order[:n_fast]] = True
        measured = store.execute(trace, mask, repeats=3, seed=43 + n_fast)
        est = est_runtime[n_fast]
        err = (measured.runtime_ns - est) / measured.runtime_ns * 100
        storage_errors.append(err)
        cost = cost_reduction_factor(
            int(trace.record_sizes[order[:n_fast]].sum()), total
        )
        rows.append((f"{cost:.2f}",
                     f"{measured.runtime_ns / 1e9:.3f}",
                     f"{est / 1e9:.3f}", f"{err:+.2f}%"))
    return store, rows, np.array(storage_errors), redis_errors


def test_ablation_storage_scoping(benchmark, paper_traces, bench_client):
    store, rows, storage_errors, redis_errors = benchmark.pedantic(
        run, args=(paper_traces, bench_client), rounds=1, iterations=1,
    )

    hit_rate = store.cache_hit_rate(paper_traces["trending"])
    lines = table(
        ["cost factor", "measured s", "Mnemo-model s", "error"], rows,
    )
    lines += [
        "",
        f"block cache hit rate: {hit_rate:.0%}",
        f"storage-backed median |error|: "
        f"{np.median(np.abs(storage_errors)):.3f}%",
        f"in-memory (redis) median |error|: "
        f"{np.median(np.abs(redis_errors)):.4f}%",
        "paper scoping confirmed: the model is only claimed (and only "
        "accurate) for in-memory stores",
    ]
    emit("ablation_storage", lines)

    med_storage = np.median(np.abs(storage_errors))
    med_redis = np.median(np.abs(redis_errors))
    assert med_storage > 20 * med_redis   # orders-of-magnitude contrast
    assert np.abs(storage_errors).max() > 1.0  # percent-scale breakage
    assert med_redis < 0.1
