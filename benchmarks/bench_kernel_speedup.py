"""Batch-kernel and analytic fast-path speedups over the legacy sweep.

Times a multi-split placement sweep — the shape every sensitivity
sweep, validation replay and drift drill has — three ways:

- legacy per-deployment path: one :class:`HybridDeployment` built (and
  one fresh memory system allocated) per split, then ``execute``;
- batch kernel: one ``execute_placements`` call over all splits;
- analytic: closed-form :func:`predict_placement` per split (approximate
  by design; its runtime error against the simulator is recorded).

The sweep runs on a downsampled trace over the full key space — the
regime the recommendation validator actually replays in — so the
per-placement Python overhead the kernel amortises (deployment
construction, re-gathering, re-hashing) dominates honestly rather than
being hidden under raw timing work shared by both paths.

Batch results must be *bit-identical* to the legacy path; the analytic
path must stay inside the 5% runtime envelope on every Table III
preset.  Wall-clocks are best-of-N and the summary JSON is written both
to ``benchmarks/out/`` and to ``BENCH_kernel.json`` at the repo root,
where the committed copy records the speedup floor ``make bench-kernel``
enforces.  ``MNEMO_BENCH_SMOKE=1`` shrinks the sweep for the smoke
target; the floor scales down with it (the relative overhead shrinks
with the trace, and single-core CI boxes are noisy).

The mixed-size vectorized LRU is timed in the regime its capacity-fit
gate engages in (working set fits the cache, no evictions) and gated at
a >= 1.0x floor: the gate's whole point is that the vector path only
runs where it wins, so parity-or-better is an invariant, not a hope.
An eviction-regime parity point (both sides on the dict replay) is
recorded alongside to document the gate's cost when it says no.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from common import OUT_DIR, emit, table

import repro.memsim.cache as cache_mod
from repro.kvstore.redislike import RedisLike
from repro.kvstore.server import HybridDeployment
from repro.memsim.analytic import predict_placement
from repro.memsim.cache import LLCModel
from repro.memsim.system import HybridMemorySystem
from repro.ycsb.client import YCSBClient
from repro.ycsb.generator import generate_trace
from repro.ycsb.presets import TABLE_III_WORKLOADS, workload_by_name

SMOKE = os.environ.get("MNEMO_BENCH_SMOKE", "") not in ("", "0")

#: Sweep shape: full-scale key space, downsampled requests (validator regime).
N_PLACEMENTS = 8 if SMOKE else 24
N_REQUESTS = 5_000 if SMOKE else 20_000
#: Accepted minimum batch-kernel speedup over the legacy path.
SPEEDUP_FLOOR = 4.0 if SMOKE else 10.0
#: Accepted maximum analytic runtime error vs the simulator.
ANALYTIC_ERR_CEILING = 0.05
#: Accepted minimum mixed-size LRU speedup where the fit gate engages.
MIXED_LRU_FLOOR = 1.0

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_kernel.json"


def _best_of(fn, rounds):
    best, out = float("inf"), None
    for _ in range(rounds):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return out, best


def _sweep_masks(n_keys, n_placements, seed=0):
    rng = np.random.default_rng(seed)
    masks = np.zeros((n_placements, n_keys), dtype=bool)
    for i in range(n_placements):
        n_fast = (i * n_keys) // n_placements
        masks[i, rng.choice(n_keys, n_fast, replace=False)] = True
    return masks


def _bench_batch():
    spec = workload_by_name("trending").scaled(n_requests=N_REQUESTS)
    trace = generate_trace(spec.with_seed(1))
    system = HybridMemorySystem.testbed()
    profile = RedisLike(system.fast, system.slow).profile
    masks = _sweep_masks(trace.n_keys, N_PLACEMENTS)
    client = YCSBClient(repeats=3, seed=7)

    def legacy():
        # fresh system per deployment: loading allocates real node
        # capacity, so a sweep cannot reuse one system across splits
        return [
            client.execute(trace, HybridDeployment(
                RedisLike, HybridMemorySystem.testbed(),
                trace.record_sizes, fast_keys=np.nonzero(m)[0],
            ))
            for m in masks
        ]

    legacy_results, t_legacy = _best_of(legacy, 2)
    batch_results, t_batch = _best_of(
        lambda: client.execute_placements(trace, masks, profile, system), 3
    )
    assert batch_results == legacy_results, (
        "batch kernel diverged from the per-deployment path"
    )
    return {
        "n_keys": trace.n_keys,
        "n_requests": trace.n_requests,
        "n_placements": N_PLACEMENTS,
        "legacy_s": round(t_legacy, 3),
        "batch_s": round(t_batch, 3),
        "speedup": round(t_legacy / t_batch, 1),
    }


def _bench_analytic():
    """Sweep every preset across splits: batch simulate vs closed form.

    Both sides produce the same work product — one ``RunResult`` per
    (preset, split) — so the wall-clocks compare like for like.  The
    reuse-time LLC solve is memoized per trace, exactly as the
    simulator memoizes its LLC hit mask.
    """
    system = HybridMemorySystem.testbed()
    profile = RedisLike(system.fast, system.slow).profile
    n_splits = 4 if SMOKE else 12
    worst_err = 0.0
    t_sim = t_ana = 0.0
    for w in TABLE_III_WORKLOADS:
        if SMOKE:
            w = w.scaled(n_keys=2_000, n_requests=5_000)
        tr = generate_trace(w.with_seed(2))
        masks = _sweep_masks(tr.n_keys, n_splits, seed=2)
        c = YCSBClient(repeats=3, seed=9, use_llc=True)
        sims, t = _best_of(
            lambda: c.execute_placements(tr, masks, profile, system), 2
        )
        t_sim += t
        anas, t = _best_of(
            lambda: [
                predict_placement(tr, profile, system, m, c) for m in masks
            ],
            2,
        )
        t_ana += t
        for ana, sim in zip(anas, sims):
            worst_err = max(
                worst_err,
                abs(ana.runtime_ns - sim.runtime_ns) / sim.runtime_ns,
            )
    return {
        "presets": len(TABLE_III_WORKLOADS),
        "splits_per_preset": n_splits,
        "simulate_s": round(t_sim, 3),
        "analytic_s": round(t_ana, 3),
        "speedup_vs_batch_simulate": round(t_sim / t_ana, 1),
        "worst_runtime_error": round(worst_err, 5),
    }


def _mixed_lru_pair(tr, cap):
    """(default-path mask & time, forced-sequential mask & time) at *cap*."""
    def default_path():
        return LLCModel(capacity_bytes=cap).process(
            tr.keys, tr.request_sizes
        )

    def sequential():
        original = cache_mod.lru_hit_mask_mixed_size
        cache_mod.lru_hit_mask_mixed_size = lambda *a, **kw: None
        try:
            return LLCModel(capacity_bytes=cap).process(
                tr.keys, tr.request_sizes
            )
        finally:
            cache_mod.lru_hit_mask_mixed_size = original

    fast_mask, t_fast = _best_of(default_path, 3)
    slow_mask, t_slow = _best_of(sequential, 3)
    assert np.array_equal(fast_mask, slow_mask), (
        "mixed-size LRU fast path diverged from the sequential model"
    )
    return t_fast, t_slow


def _bench_mixed_lru():
    """Mixed-size LRU in the regime the vector path engages in — gated.

    The capacity-fit gate (`cold_working_set_bytes`) only routes a trace
    to the vectorized path when its touched working set fits the cache,
    so the gated measurement uses a capacity that holds the whole
    dataset (every sweep with a generously sized LLC, and the analytic
    estimator's reuse solve, live here).  An eviction-regime point is
    recorded too: there both sides take the dict replay, so the ratio
    documents that the gate costs ~nothing when it says no.
    """
    spec = workload_by_name("trending")
    if SMOKE:
        spec = spec.scaled(n_keys=2_000, n_requests=10_000)
    tr = generate_trace(spec.with_seed(3))
    cap_fit = int(tr.record_sizes.sum())  # working set fits: gate engages
    cap_evict = int(tr.record_sizes.sum() * 0.2)  # real evictions: dict path

    t_fast, t_slow = _mixed_lru_pair(tr, cap_fit)
    t_gate, t_dict = _mixed_lru_pair(tr, cap_evict)
    return {
        "n_requests": int(tr.n_requests),
        "vectorized_s": round(t_fast, 4),
        "sequential_s": round(t_slow, 4),
        "speedup": round(t_slow / t_fast, 2),
        "eviction_regime": {
            "gated_s": round(t_gate, 4),
            "sequential_s": round(t_dict, 4),
            "ratio": round(t_dict / t_gate, 2),
        },
    }


def run():
    return {
        "mode": "smoke" if SMOKE else "full",
        "batch_kernel": _bench_batch(),
        "analytic": _bench_analytic(),
        "mixed_size_lru": _bench_mixed_lru(),
        "floors": {
            "batch_speedup": SPEEDUP_FLOOR,
            "analytic_runtime_error": ANALYTIC_ERR_CEILING,
            "mixed_lru_speedup": MIXED_LRU_FLOOR,
        },
    }


def test_kernel_speedup(benchmark):
    r = benchmark.pedantic(run, rounds=1, iterations=1)
    b, a, m = r["batch_kernel"], r["analytic"], r["mixed_size_lru"]

    payload = json.dumps(r, indent=2)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "kernel_speedup.json").write_text(payload)
    RESULT_PATH.write_text(payload + "\n")

    emit("kernel_speedup", table(
        ["path", "wall-clock", "notes"],
        [
            ("legacy sweep", f"{b['legacy_s']:.2f}s",
             f"{b['n_placements']} deployments"),
            ("batch kernel", f"{b['batch_s']:.2f}s",
             f"{b['speedup']:.1f}x, bit-identical"),
            ("simulate presets", f"{a['simulate_s']:.2f}s",
             f"{a['presets']}x{a['splits_per_preset']} sweeps, LLC on"),
            ("analytic presets", f"{a['analytic_s']:.2f}s",
             f"{a['speedup_vs_batch_simulate']:.1f}x, "
             f"err {a['worst_runtime_error']:.2%}"),
            ("mixed LRU", f"{m['vectorized_s']:.3f}s",
             f"{m['speedup']:.1f}x vs sequential"),
        ],
        fmt="{:>18}",
    ) + [f"summary JSON at BENCH_kernel.json (mode={r['mode']})"])

    assert b["speedup"] >= SPEEDUP_FLOOR, (
        f"batch kernel speedup {b['speedup']}x fell below the "
        f"{SPEEDUP_FLOOR}x floor"
    )
    assert a["worst_runtime_error"] <= ANALYTIC_ERR_CEILING, (
        f"analytic runtime error {a['worst_runtime_error']:.2%} exceeds "
        f"the {ANALYTIC_ERR_CEILING:.0%} envelope"
    )
    assert m["speedup"] >= MIXED_LRU_FLOOR, (
        f"mixed-size LRU speedup {m['speedup']}x fell below the "
        f"{MIXED_LRU_FLOOR}x floor in the regime the fit gate engages in"
    )
