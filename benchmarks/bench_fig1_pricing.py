"""Figure 1 — memory's share of Memory-Optimized VM cost.

Regenerates the per-SKU memory-cost fractions for the AWS ElastiCache,
GCE and Azure families via the least-squares unit-cost regression.
Paper: the share is approximately 60-85 % across providers.
"""

import numpy as np

from repro.pricing import (
    MEMORY_OPTIMIZED_FAMILIES,
    catalog_for,
    fit_unit_costs,
    memory_fraction_summary,
    provider_catalog,
    providers,
)

from common import emit, pct, table


def compute_figure_1():
    fits = {p: fit_unit_costs(provider_catalog(p)) for p in providers()}
    return fits, memory_fraction_summary()


def test_fig1_memory_cost_fractions(benchmark):
    fits, summary = benchmark(compute_figure_1)

    rows = []
    for family in MEMORY_OPTIMIZED_FAMILIES:
        for inst in catalog_for(family):
            rows.append((
                family, inst.name, inst.vcpus, f"{inst.memory_gb:g}",
                f"${inst.hourly_usd:.3f}", pct(summary[family][inst.name]),
            ))
    lines = table(
        ["family", "instance", "vCPU", "GB", "$/hr", "mem share"], rows,
        fmt="{:>22}",
    )
    lines.append("")
    for p, fit in sorted(fits.items()):
        lines.append(
            f"{p}: C = ${fit.vcpu_cost:.4f}/vCPU-hr, "
            f"M = ${fit.memory_cost:.5f}/GB-hr (rms residual {pct(fit.residual)})"
        )
    fracs = np.array([f for d in summary.values() for f in d.values()])
    lines.append(
        f"memory share across Memory-Optimized SKUs: "
        f"min {pct(fracs.min())}, median {pct(np.median(fracs))}, "
        f"max {pct(fracs.max())}  (paper: ~60-85%)"
    )
    emit("fig1_pricing", lines)

    assert np.median(fracs) > 0.6
    assert fracs.min() > 0.5
