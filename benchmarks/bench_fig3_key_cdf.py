"""Figure 3 — CDF of the key space across request distributions.

Regenerates the per-distribution request-probability CDF over the key
space at the paper's scale and prints the quartile crossings that
characterise each shape.
"""

import numpy as np

from repro.analysis.cdf import key_space_cdf
from repro.ycsb import generate_trace
from repro.ycsb.distributions import DistributionSpec
from repro.ycsb.presets import TRENDING
from repro.ycsb.workload import WorkloadSpec

from common import emit, pct, table

DISTRIBUTIONS = ["zipfian", "scrambled_zipfian", "hotspot", "latest"]


def build_cdfs():
    cdfs = {}
    for name in DISTRIBUTIONS:
        dist = (TRENDING.distribution if name == "hotspot"
                else DistributionSpec(name=name))
        spec = WorkloadSpec(
            name=f"fig3_{name}", distribution=dist, read_fraction=1.0,
            size_model=TRENDING.size_model, seed=3,
        )
        _, cdf = key_space_cdf(generate_trace(spec))
        cdfs[name] = cdf
    return cdfs


def test_fig3_key_space_cdf(benchmark):
    cdfs = benchmark(build_cdfs)

    n = len(next(iter(cdfs.values())))
    marks = [int(n * f) - 1 for f in (0.1, 0.2, 0.5, 0.8)]
    rows = [
        (name, *(pct(cdfs[name][m]) for m in marks))
        for name in DISTRIBUTIONS
    ]
    emit("fig3_key_cdf", table(
        ["distribution", "P(k<=10%)", "P(k<=20%)", "P(k<=50%)", "P(k<=80%)"],
        rows, fmt="{:>18}",
    ) + ["paper: zipfian front-loads mass; scrambled spreads hot keys; "
         "hotspot steps at the hot set; latest ~ diagonal"])

    # shape assertions
    assert cdfs["zipfian"][n // 10] > 0.55          # strong head
    assert cdfs["hotspot"][n // 5] > 0.70           # hot-set step
    assert abs(cdfs["latest"][n // 2] - 0.5) < 0.1  # near-diagonal
    # scrambled zipfian is much flatter than zipfian over the key space
    assert cdfs["scrambled_zipfian"][n // 10] < cdfs["zipfian"][n // 10] - 0.3
