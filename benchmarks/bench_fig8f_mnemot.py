"""Figure 8f — Mnemo vs MnemoT estimates on a scrambled workload.

MnemoT's Pattern Engine re-orders the scrambled zipfian key space into
a zipfian-like hot-first allocation order.  The bench reproduces the
paper's 70:30 / 50:50 walkthrough: tiering buys ~6 % throughput at a
76 % cost point, and a 10 % SLO is already met at ~52 % cost.
"""

import numpy as np

from repro.core import MnemoT, estimate_errors, measure_curve, prefix_counts
from repro.kvstore import RedisLike

from common import emit, pct, table


def run(paper_traces, client):
    from repro.core import EstimateEngine, PatternEngine, WorkloadDescriptor

    trace = paper_traces["timeline"]
    descriptor = WorkloadDescriptor.from_trace(trace)
    tiered = MnemoT(engine_factory=RedisLike, client=client).profile(trace)
    # the untiered comparator: split the scrambled key space in key-ID
    # order (what a fixed Fast:Slow ratio gives you without tiering)
    untier_pattern = PatternEngine(mode="external").analyze(
        descriptor, external_order=np.arange(trace.n_keys, dtype=np.int64)
    )
    untiered_curve = EstimateEngine().estimate(tiered.baselines,
                                               untier_pattern)
    # validate the estimate on the re-ordered key space too
    points = measure_curve(
        trace, tiered.pattern.order, RedisLike,
        prefix_counts(trace.n_keys, 9), client=client,
    )
    errors = estimate_errors(tiered.curve, points)
    return untiered_curve, tiered, errors


def test_fig8f_mnemot_estimate(benchmark, paper_traces, bench_client):
    untiered, tiered, errors = benchmark.pedantic(
        run, args=(paper_traces, bench_client),
        rounds=1, iterations=1,
    )

    ideal = float(tiered.curve.throughput_ops_s[-1])
    rows = []
    for ratio_label, ratio in (("70:30", 0.7), ("50:50", 0.5)):
        k_untier = untiered.keys_for_ratio(ratio)
        k_tiered = tiered.curve.keys_for_ratio(ratio)
        thr_untier = float(untiered.throughput_ops_s[k_untier])
        thr_tiered = float(tiered.curve.throughput_ops_s[k_tiered])
        cost = float(tiered.curve.cost_factor[k_tiered])
        rows.append((
            ratio_label, pct(cost),
            f"{thr_untier:,.0f}", f"{thr_tiered:,.0f}",
            pct(thr_tiered / thr_untier - 1),
            pct(1 - thr_tiered / ideal),
        ))
    emit("fig8f_mnemot", table(
        ["Fast:Slow", "cost", "untier ops/s", "tiered ops/s",
         "tiering gain", "below ideal"], rows,
    ) + [
        f"MnemoT estimate median |error|: "
        f"{np.median(np.abs(errors)):.4f}%",
        "paper: at 70:30 (76% cost) tiering buys ~6%, ~7% below ideal; "
        "50:50 (52% cost) meets a 10% SLO",
    ])

    assert np.median(np.abs(errors)) < 0.3  # the model holds post-reorder
    k70 = tiered.curve.keys_for_ratio(0.7)
    thr70 = float(tiered.curve.throughput_ops_s[k70])
    untier70 = float(untiered.throughput_ops_s[untiered.keys_for_ratio(0.7)])
    gain70 = thr70 / untier70 - 1
    assert 0.01 < gain70 < 0.20                    # tiering gain (paper ~6 %)
    assert 1 - thr70 / ideal < 0.10                # within ~7 % of ideal
    k50 = tiered.curve.keys_for_ratio(0.5)
    assert (float(tiered.curve.throughput_ops_s[k50]) >= 0.9 * ideal)
