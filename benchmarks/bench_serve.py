"""Served-advisor request plane: warm latency and flood-shedding gates.

Two measurements against live daemons on real unix sockets:

- **warm size latency** — once the watched profile is loaded, a
  ``size`` request is a memoized curve lookup plus socket round-trip;
  p50/p99 over a warm request train are recorded and the p99 is gated
  against ``P99_CEILING_S`` (an interactive advisor must answer fast).
- **shed rate under flood** — a deliberately under-provisioned daemon
  (one slowed worker, queue depth one) takes a concurrent burst; the
  request plane must answer or shed *every* request with structured
  errors (zero transport failures) while still serving some.

The summary JSON lands in ``benchmarks/out/`` and at
``BENCH_serve.json`` in the repo root.  ``MNEMO_BENCH_SMOKE=1`` shrinks
the request train for the ``make bench-serve`` smoke target.
"""

import json
import os
import threading
import time
from pathlib import Path

from common import OUT_DIR, emit, table

from repro.faults import request_flood
from repro.service import GuardService, ServeConfig, control_call

SMOKE = os.environ.get("MNEMO_BENCH_SMOKE", "") not in ("", "0")

N_WARM = 40 if SMOKE else 200
FLOOD_REQUESTS = 24 if SMOKE else 64
FLOOD_CONCURRENCY = 12 if SMOKE else 16
#: A warm ``size`` answer (memoized report + socket round-trip) must
#: land within this envelope at p99.
P99_CEILING_S = 0.5

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_serve.json"

#: Daemon settings: downsampled profile so warm-up is seconds, ticks
#: effectively parked so they never contend with the request train.
BASE = dict(
    workload="trending", downsample=50.0, repeats=1,
    interval_s=60.0, validate_every=0,
)


class _Daemon:
    """One in-thread daemon bound to a throwaway rundir."""

    def __init__(self, rundir, **overrides):
        self.config = ServeConfig(rundir=str(rundir), **BASE, **overrides)
        self.service = GuardService(self.config, tick_fn=lambda: 0)
        self._thread = threading.Thread(
            target=self.service.run, daemon=True,
        )

    def __enter__(self):
        self._thread.start()
        deadline = time.monotonic() + 60.0
        while not self.config.socket_path.exists():
            if time.monotonic() > deadline:
                raise RuntimeError("daemon socket never appeared")
            time.sleep(0.02)
        return self

    def __exit__(self, *exc):
        self.service.request_stop()
        self._thread.join(timeout=30)


def _quantile(sorted_values, q):
    return sorted_values[min(
        int(q * (len(sorted_values) - 1) + 0.5), len(sorted_values) - 1,
    )]


def _warm_latency(tmp):
    """p50/p99 of a warm ``size`` train against a healthy daemon."""
    with _Daemon(tmp / "warm") as daemon:
        path = daemon.config.socket_path
        # first request pays for the profile; not part of the train
        t0 = time.perf_counter()
        assert control_call(path, {"op": "size"}, timeout=300.0)["ok"]
        load_s = time.perf_counter() - t0
        laps = []
        for _ in range(N_WARM):
            t0 = time.perf_counter()
            reply = control_call(path, {"op": "size"}, timeout=30.0)
            laps.append(time.perf_counter() - t0)
            assert reply["ok"]
        laps.sort()
        return {
            "n_requests": N_WARM,
            "load_s": round(load_s, 4),
            "p50_s": round(_quantile(laps, 0.50), 6),
            "p99_s": round(_quantile(laps, 0.99), 6),
            "max_s": round(laps[-1], 6),
        }


def _flood(tmp):
    """Shed behaviour of an under-provisioned daemon under a burst."""
    with _Daemon(tmp / "flood", workers=1, queue_depth=1) as daemon:
        path = daemon.config.socket_path
        assert control_call(path, {"op": "size"}, timeout=300.0)["ok"]
        advisor = daemon.service.advisor
        real_size = advisor.size

        def slow_size(**kwargs):
            time.sleep(0.05)
            return real_size(**kwargs)

        advisor.size = slow_size
        tally = request_flood(
            path, {"op": "size"},
            n_requests=FLOOD_REQUESTS, concurrency=FLOOD_CONCURRENCY,
        )
        total = FLOOD_REQUESTS
        return {
            "n_requests": total,
            "concurrency": FLOOD_CONCURRENCY,
            "ok": tally["ok"],
            "overloaded": tally["overloaded"],
            "deadline_exceeded": tally["deadline_exceeded"],
            "other_error": tally["other_error"],
            "connection_error": tally["connection_error"],
            "shed_rate": round(tally["overloaded"] / total, 4),
        }


def run():
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        warm = _warm_latency(tmp)
        flood = _flood(tmp)
    return {
        "mode": "smoke" if SMOKE else "full",
        "warm_size": warm,
        "flood": flood,
        "floors": {"p99_ceiling_s": P99_CEILING_S},
    }


def test_serve_latency_and_shedding(benchmark):
    r = benchmark.pedantic(run, rounds=1, iterations=1)

    payload = json.dumps(r, indent=2)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "serve.json").write_text(payload)
    RESULT_PATH.write_text(payload + "\n")

    warm, flood = r["warm_size"], r["flood"]
    emit("serve", table(
        ["metric", "value"],
        [
            ("profile load", f"{warm['load_s']:.2f}s"),
            (f"warm size p50 (n={warm['n_requests']})",
             f"{warm['p50_s'] * 1e3:.2f}ms"),
            ("warm size p99", f"{warm['p99_s'] * 1e3:.2f}ms"),
            ("flood answered", f"{flood['ok']}/{flood['n_requests']}"),
            ("flood shed rate", f"{flood['shed_rate']:.0%}"),
        ],
        fmt="{:>12}",
    ) + [
        f"p99 ceiling: {P99_CEILING_S * 1e3:.0f}ms",
        f"summary JSON at BENCH_serve.json (mode={r['mode']})",
    ])

    assert warm["p99_s"] <= P99_CEILING_S, (
        f"warm size p99 {warm['p99_s'] * 1e3:.1f}ms over the "
        f"{P99_CEILING_S * 1e3:.0f}ms ceiling"
    )
    assert flood["connection_error"] == 0, (
        f"flood caused {flood['connection_error']} transport failures; "
        "every request must be answered or cleanly shed"
    )
    assert flood["other_error"] == 0, flood
    assert flood["ok"] >= 1, "flood starved the daemon completely"
    assert flood["overloaded"] >= 1, (
        "under-provisioned daemon never shed; admission control is dead"
    )
