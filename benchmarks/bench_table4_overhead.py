"""Table IV — profiling-overhead comparison.

Runs the three profiling methodologies on the Trending workload and
compares their end-to-end profiling time in simulated seconds:

- MnemoT: two real workload executions + instantaneous weights;
- X-Mem-like: device microbenchmarks + a ~40x instrumented execution
  (plus the one-off source-instrumentation effort);
- Tahoe-like: training-data collection (both baselines on every
  training workload) + one measured SlowMem run + inference.
"""

import numpy as np

from repro.baselines import (
    InstrumentedProfiler,
    MLBaselineProfiler,
    train_fast_baseline_model,
)
from repro.core import MnemoT, WorkloadDescriptor
from repro.kvstore import RedisLike
from repro.units import ns_to_s
from repro.ycsb.distributions import DistributionSpec
from repro.ycsb.sizes import SizeModel
from repro.ycsb.workload import WorkloadSpec

from common import emit, table


def training_specs():
    dists = ["zipfian", "hotspot", "uniform", "scrambled_zipfian", "latest"]
    return [
        WorkloadSpec(
            name=f"table4_train_{i}",
            distribution=DistributionSpec(name=dists[i % len(dists)]),
            read_fraction=[1.0, 0.8, 0.5][i % 3],
            size_model=SizeModel(
                name=f"s{i}", median_bytes=[100_000, 10_000, 50_000][i % 3],
                sigma=0.2,
            ),
            n_keys=2_000,
            n_requests=20_000,
            seed=400 + i,
        )
        for i in range(6)
    ]


def run_comparison(paper_traces, bench_client):
    descriptor = WorkloadDescriptor.from_trace(paper_traces["trending"])

    # MnemoT: both baselines are real runs; weights are free
    mnemot = MnemoT(engine_factory=RedisLike, client=bench_client)
    report = mnemot.profile(descriptor)
    mnemot_cost = (report.baselines.fast.runtime_ns
                   + report.baselines.slow.runtime_ns)

    # X-Mem-like
    xmem = InstrumentedProfiler(RedisLike, client=bench_client)
    xmem_cost = xmem.profile(descriptor).cost

    # Tahoe-like
    model = train_fast_baseline_model(
        training_specs(), RedisLike, client=bench_client,
    )
    tahoe = MLBaselineProfiler(model, RedisLike, client=bench_client)
    tahoe_cost = tahoe.profile(descriptor).cost

    return mnemot_cost, xmem_cost, tahoe_cost


def test_table4_profiling_overhead(benchmark, paper_traces, bench_client):
    mnemot_ns, xmem, tahoe = benchmark.pedantic(
        run_comparison, args=(paper_traces, bench_client),
        rounds=1, iterations=1,
    )

    rows = [
        ("MnemoT", "workload descriptor only",
         f"{ns_to_s(mnemot_ns):.1f}", "0.0", f"{ns_to_s(mnemot_ns):.1f}"),
        ("X-Mem-like", "custom alloc API (source mod)",
         f"{ns_to_s(xmem.baselines_ns):.1f}",
         f"{ns_to_s(xmem.tiering_ns):.1f}",
         f"{ns_to_s(xmem.total_ns - xmem.input_prep_ns):.1f}"),
        ("Tahoe-like", "training data collection",
         f"{ns_to_s(tahoe.baselines_ns):.1f}",
         f"{ns_to_s(tahoe.tiering_ns):.1f}",
         f"{ns_to_s(tahoe.total_ns):.1f}"),
    ]
    emit("table4_overhead", table(
        ["methodology", "input preparation", "baselines (s)",
         "tiering (s)", "total (s)"], rows, fmt="{:>28}",
    ) + ["X-Mem-like excludes the ~30 min one-off source-instrumentation "
         "effort from the total shown",
         "paper: MnemoT has the lowest overhead in every profiling step"])

    # MnemoT is the cheapest methodology end to end
    assert mnemot_ns < xmem.baselines_ns + xmem.tiering_ns
    assert mnemot_ns < tahoe.total_ns
    # instrumented tiering alone dwarfs MnemoT's whole pipeline (~40x/2)
    assert xmem.tiering_ns > 10 * mnemot_ns
