"""Section V-A "Workload downsampling" — estimate accuracy under sampling.

Downsamples Trending by 2x-20x via interval-random request eviction and
verifies (a) the key distribution is preserved, (b) the estimate stays
accurate on the downsampled workload, and (c) the cost/performance
conclusions transfer back to the full-size workload.
"""

import numpy as np

from repro.core import MnemoT, estimate_errors, measure_curve, prefix_counts
from repro.kvstore import RedisLike
from repro.ycsb import downsample
from repro.ycsb.sampling import distribution_distance

from common import emit, pct, table

FACTORS = [2, 5, 10, 20]


def run(paper_traces, redis_reports, client):
    # MnemoT's weight ordering is density-independent, so sizing
    # conclusions transfer cleanly between the full and sampled traces
    # (the touch order would shift: fewer requests touch fewer cold keys)
    full = paper_traces["trending"]
    mnemo = MnemoT(engine_factory=RedisLike, client=client)
    full_choice = mnemo.profile(full).choose(0.10)
    rows = []
    for factor in FACTORS:
        down = downsample(full, factor=factor, seed=7)
        report = mnemo.profile(down)
        points = measure_curve(
            down, report.pattern.order, RedisLike,
            prefix_counts(down.n_keys, 7), client=client,
        )
        err = float(np.median(np.abs(estimate_errors(report.curve, points))))
        choice = report.choose(0.10)
        rows.append((factor, down.n_requests,
                     distribution_distance(full, down), err,
                     choice.cost_factor, full_choice.cost_factor))
    return rows


def test_downsampling(benchmark, paper_traces, redis_reports, bench_client):
    rows = benchmark.pedantic(
        run, args=(paper_traces, redis_reports, bench_client),
        rounds=1, iterations=1,
    )

    emit("downsampling", table(
        ["factor", "requests", "KS dist", "med |err|", "cost @SLO",
         "full cost @SLO"],
        [(f"{f}x", n, f"{ks:.4f}", f"{e:.4f}%", pct(c), pct(fc))
         for f, n, ks, e, c, fc in rows],
    ) + ["paper: the downsized workload yields the same baselines, an "
         "accurate estimate, and transferable cost-performance trade-offs"])

    for factor, _, ks, err, cost, full_cost in rows:
        assert ks < 0.03          # distribution shape preserved
        assert err < 0.3          # estimate still accurate
        assert abs(cost - full_cost) < 0.08  # conclusions transfer
