"""Figure 8b — application performance across stores (Trending).

Measures the throughput-vs-cost behaviour of DynamoDB, Redis and
Memcached on the Trending workload.  Paper: DynamoDB is severely
impacted by SlowMem, Memcached barely influenced, Redis in between.
"""

import numpy as np

from common import emit, pct, table
from conftest import ENGINES


def gather(all_reports):
    out = {}
    for name in ENGINES:
        report = all_reports[(name, "trending")]
        out[name] = report
    return out


def test_fig8b_store_comparison(benchmark, all_reports):
    reports = benchmark(gather, all_reports)

    rows = []
    for name, report in reports.items():
        b = report.baselines
        rows.append((
            name,
            f"{b.fast.throughput_ops_s:,.0f}",
            f"{b.slow.throughput_ops_s:,.0f}",
            f"{b.throughput_gap:.2f}x",
            pct(1 - 1 / b.throughput_gap),
        ))
    emit("fig8b_stores", table(
        ["store", "FastMem ops/s", "SlowMem ops/s", "gap",
         "SlowMem penalty"], rows,
    ) + ["paper: DynamoDB severely impacted, Memcached barely influenced"])

    gaps = {n: r.baselines.throughput_gap for n, r in reports.items()}
    assert gaps["dynamodb"] > gaps["redis"] > gaps["memcached"]
    assert gaps["memcached"] < 1.06
    assert gaps["dynamodb"] > 2.0
