"""Ablation — last-level cache effects on the estimate.

The client's default timing path ignores the LLC (100 KB records vs a
12 MB cache make it second-order).  This bench turns the exact LRU
model on and quantifies (a) the throughput effect of the cache and
(b) the extra estimate error it introduces — the hot keys Mnemo places
first are also the cached ones, so the model's average-savings
assumption degrades slightly.
"""

import numpy as np

from repro.core import Mnemo, estimate_errors, measure_curve, prefix_counts
from repro.kvstore import RedisLike
from repro.ycsb import YCSBClient

from common import emit, pct, table


def run(paper_traces):
    trace = paper_traces["trending"]
    out = {}
    for use_llc in (False, True):
        client = YCSBClient(repeats=2, noise_sigma=0.01, use_llc=use_llc,
                            seed=13)
        report = Mnemo(engine_factory=RedisLike, client=client).profile(trace)
        points = measure_curve(
            trace, report.pattern.order, RedisLike,
            prefix_counts(trace.n_keys, 7), client=client,
        )
        errors = estimate_errors(report.curve, points)
        out[use_llc] = (report, float(np.median(np.abs(errors))))
    return out


def test_ablation_llc(benchmark, paper_traces):
    results = benchmark.pedantic(run, args=(paper_traces,), rounds=1,
                                 iterations=1)

    rows = []
    for use_llc, (report, err) in results.items():
        b = report.baselines
        rows.append((
            "exact LRU" if use_llc else "off",
            f"{b.slow.throughput_ops_s:,.0f}",
            f"{b.throughput_gap:.3f}x",
            f"{err:.4f}%",
        ))
    emit("ablation_llc", table(
        ["LLC model", "SlowMem ops/s", "gap", "median |err|"], rows,
    ) + ["12 MB LLC vs ~1 GB dataset of 100 KB records: the cache absorbs "
         "only the very hottest keys; the analytic model stays accurate"])

    (_, err_off), (_, err_on) = results[False], results[True]
    # the model remains in the sub-percent regime either way
    assert err_off < 0.2
    assert err_on < 1.0
    # the LLC helps (or at least never hurts) the SlowMem baseline
    gap_off = results[False][0].baselines.throughput_gap
    gap_on = results[True][0].baselines.throughput_gap
    assert gap_on <= gap_off + 0.02
