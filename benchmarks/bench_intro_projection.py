"""Section I projection — NVM price cuts translate to VM cost cuts.

The introduction argues: NVDIMMs are projected at **3-7x lower per-GB
cost** than DRAM, which "introduces a potential for a **40-67% decrease
in the VM costs**, given estimates of the per-VM memory costs in
Figure 1".  This bench recomputes the projection from our Figure 1
regression: per Memory-Optimized SKU,

    VM cost reduction = memory share x (1 - p),   p in [1/7, 1/3].
"""

import numpy as np

from repro.pricing import MEMORY_OPTIMIZED_FAMILIES, memory_fraction_summary

from common import emit, pct, table


def project_vm_savings():
    summary = memory_fraction_summary()
    rows = {}
    for family in MEMORY_OPTIMIZED_FAMILIES:
        shares = np.array(list(summary[family].values()))
        rows[family] = {
            "share": float(np.median(shares)),
            "save_3x": float(np.median(shares) * (1 - 1 / 3)),
            "save_7x": float(np.median(shares) * (1 - 1 / 7)),
        }
    return rows


def test_intro_vm_cost_projection(benchmark):
    rows = benchmark(project_vm_savings)

    lines = table(
        ["family", "mem share", "VM saving @3x", "VM saving @7x"],
        [(f, pct(r["share"]), pct(r["save_3x"]), pct(r["save_7x"]))
         for f, r in rows.items()],
        fmt="{:>24}",
    )
    all_saves = [r[k] for r in rows.values() for k in ("save_3x", "save_7x")]
    lines.append(
        f"projected VM cost reduction across families: "
        f"{pct(min(all_saves))} - {pct(max(all_saves))} "
        "(paper Section I: 40-67%)"
    )
    emit("intro_projection", lines)

    # the paper's 40-67% band, with slack for our snapshot's wider
    # memory-share spread (54-100% vs the paper's 60-85%)
    assert 0.30 <= min(all_saves) <= 0.50
    assert 0.60 <= max(all_saves) <= 0.90
