"""Extension — range scans dilute the hot set (DynamoDB Query-style).

The paper's workloads are point operations.  Feed-style applications on
ordered stores (DynamoDB Query, YCSB workload E) read short key ranges;
each scan drags the hot key's *neighbours* into the working set,
flattening the access distribution and shrinking the cost-reduction
opportunity.  This bench quantifies the effect on DynamoLike at the
10 % SLO for increasing scan lengths.
"""

from dataclasses import replace

import numpy as np

from repro.analysis.cdf import coverage_fraction
from repro.core import Mnemo
from repro.kvstore import DynamoLike
from repro.ycsb import YCSBClient, generate_trace
from repro.ycsb.presets import FEED_SCROLL

from common import emit, pct, table

SCAN_LENGTHS = [1, 4, 10, 25]


def run():
    client = YCSBClient(repeats=3, noise_sigma=0.01, seed=71)
    rows = []
    for max_len in SCAN_LENGTHS:
        spec = replace(
            FEED_SCROLL,
            name=f"feed_scan{max_len}",
            scan_fraction=0.0 if max_len == 1 else FEED_SCROLL.scan_fraction,
            scan_max_length=max_len,
        )
        trace = generate_trace(spec)
        report = Mnemo(engine_factory=DynamoLike, client=client).profile(
            trace
        )
        choice = report.choose(0.10)
        rows.append((
            max_len,
            trace.n_requests,
            coverage_fraction(trace, 0.9),
            choice.cost_factor,
        ))
    return rows


def test_ext_scans(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    emit("ext_scans", table(
        ["max scan len", "requests", "keys for 90% of reqs", "cost @SLO"],
        [(n, f"{req:,}", pct(cov), pct(cost)) for n, req, cov, cost in rows],
    ) + ["longer scans flatten the hot set: more keys must sit in "
         "FastMem to meet the same SLO (point-read results do not "
         "transfer to Query-heavy deployments)"])

    coverages = [r[2] for r in rows]
    costs = [r[3] for r in rows]
    assert coverages == sorted(coverages)   # scans widen the hot set
    assert costs[-1] > costs[0]             # and raise the SLO cost
