"""Telemetry overhead on the measurement hot path.

Telemetry must be *off-path*: instrumentation only reads pipeline state,
so results are bit-identical with a session active or not, and the
wall-clock cost of leaving it enabled stays under the committed ceiling.
This bench times the two sweep shapes the instrumentation rides on —

- a validator-style batch sweep: one ``execute_placements`` call over
  many placements (counter-per-placement instrumentation);
- a runner sweep: ``ExperimentRunner.sweep`` over a small grid
  (per-experiment spans, provenance detection, sweep-level counters);

each twice, telemetry disabled and enabled (full session lifecycle in
the timed region, JSONL flushed to a scratch sink), asserts the results
are bit-identical both ways, and gates the relative overhead against
``OVERHEAD_CEILING``.  The disabled-hook cost is recorded too (ns per
call) but not gated — it is a constant-time guard clause.

Wall-clocks are best-of-N and the summary JSON is written both to
``benchmarks/out/`` and to ``BENCH_obs.json`` at the repo root, where
the committed copy records the ceiling ``make bench-obs`` enforces.
``MNEMO_BENCH_SMOKE=1`` shrinks the sweeps for the smoke target.
"""

import json
import os
import tempfile
import time
from pathlib import Path

import numpy as np

from common import OUT_DIR, emit, table

from repro import telemetry
from repro.kvstore.redislike import RedisLike
from repro.memsim.system import HybridMemorySystem
from repro.runner import ClientConfig, ExperimentRunner, ExperimentSpec
from repro.ycsb.client import YCSBClient
from repro.ycsb.generator import generate_trace
from repro.ycsb.presets import workload_by_name

SMOKE = os.environ.get("MNEMO_BENCH_SMOKE", "") not in ("", "0")

N_PLACEMENTS = 8 if SMOKE else 16
N_REQUESTS = 5_000 if SMOKE else 20_000
ROUNDS = 5
#: Accepted maximum relative slowdown with a telemetry session active.
OVERHEAD_CEILING = 0.03

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_obs.json"


def _paired_best(fn_off, fn_on, rounds):
    """Best-of-N for both variants, rounds interleaved.

    Alternating off/on rounds exposes both variants to the same machine
    drift (frequency scaling, cache state, background load); measuring
    the phases back-to-back instead routinely shows several percent of
    phantom 'overhead' in either direction on shared boxes.
    """
    t_off = t_on = float("inf")
    out_off = out_on = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        out_off = fn_off()
        t_off = min(t_off, time.perf_counter() - t0)
        t0 = time.perf_counter()
        out_on = fn_on()
        t_on = min(t_on, time.perf_counter() - t0)
    return out_off, t_off, out_on, t_on


def _sweep_masks(n_keys, n_placements, seed=0):
    rng = np.random.default_rng(seed)
    masks = np.zeros((n_placements, n_keys), dtype=bool)
    for i in range(n_placements):
        n_fast = (i * n_keys) // n_placements
        masks[i, rng.choice(n_keys, n_fast, replace=False)] = True
    return masks


def _with_session(fn, sink_dir):
    """Run *fn* under a full telemetry session lifecycle (timed whole)."""
    def run():
        with telemetry.session(sink=Path(sink_dir) / "bench.jsonl"):
            return fn()
    return run


def _bench_batch(sink_dir):
    """Validator-style placement sweep through the batch kernel."""
    spec = workload_by_name("trending").scaled(n_requests=N_REQUESTS)
    trace = generate_trace(spec.with_seed(1))
    system = HybridMemorySystem.testbed()
    profile = RedisLike(system.fast, system.slow).profile
    masks = _sweep_masks(trace.n_keys, N_PLACEMENTS)
    client = YCSBClient(repeats=3, seed=7)

    def work():
        return client.execute_placements(trace, masks, profile, system)

    off_results, t_off, on_results, t_on = _paired_best(
        work, _with_session(work, sink_dir), ROUNDS,
    )
    assert on_results == off_results, (
        "telemetry leaked into batch-sweep results"
    )
    return {
        "n_placements": N_PLACEMENTS,
        "n_requests": trace.n_requests,
        "off_s": round(t_off, 4),
        "on_s": round(t_on, 4),
        "overhead": round((t_on - t_off) / t_off, 4),
    }


def _bench_runner(sink_dir):
    """Uncached serial runner sweep (spans + provenance per experiment)."""
    w = workload_by_name("trending").scaled(n_requests=N_REQUESTS)
    specs = ExperimentRunner.grid(
        [w], placements=("fast", "slow", "split"),
        fast_fractions=(0.2, 0.5) if SMOKE else (0.1, 0.2, 0.4, 0.6),
    )
    runner = ExperimentRunner(cache=None, client=ClientConfig(seed=7))

    def work():
        outcome = runner.sweep(specs)
        assert outcome.ok
        return outcome.results

    off_results, t_off, on_results, t_on = _paired_best(
        work, _with_session(work, sink_dir), ROUNDS,
    )
    assert on_results == off_results, (
        "telemetry leaked into runner-sweep results"
    )
    return {
        "n_experiments": len(specs),
        "off_s": round(t_off, 4),
        "on_s": round(t_on, 4),
        "overhead": round((t_on - t_off) / t_off, 4),
    }


def _bench_disabled_hook():
    """Cost of one disabled instrumentation call (recorded, not gated)."""
    assert not telemetry.enabled()
    n = 200_000
    t0 = time.perf_counter()
    for _ in range(n):
        telemetry.count("bench.noop", kind="x")
    per_call_ns = (time.perf_counter() - t0) / n * 1e9
    return {"calls": n, "ns_per_call": round(per_call_ns, 1)}


def run():
    with tempfile.TemporaryDirectory() as sink_dir:
        batch = _bench_batch(sink_dir)
        runner = _bench_runner(sink_dir)
    disabled = _bench_disabled_hook()
    return {
        "mode": "smoke" if SMOKE else "full",
        "batch_sweep": batch,
        "runner_sweep": runner,
        "disabled_hook": disabled,
        "worst_overhead": max(batch["overhead"], runner["overhead"]),
        "floors": {"overhead_ceiling": OVERHEAD_CEILING},
    }


def test_obs_overhead(benchmark):
    r = benchmark.pedantic(run, rounds=1, iterations=1)
    b, rs, d = r["batch_sweep"], r["runner_sweep"], r["disabled_hook"]

    payload = json.dumps(r, indent=2)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "obs_overhead.json").write_text(payload)
    RESULT_PATH.write_text(payload + "\n")

    emit("obs_overhead", table(
        ["sweep", "telemetry off", "telemetry on", "overhead"],
        [
            (f"batch x{b['n_placements']}", f"{b['off_s']:.3f}s",
             f"{b['on_s']:.3f}s", f"{b['overhead']:+.2%}"),
            (f"runner x{rs['n_experiments']}", f"{rs['off_s']:.3f}s",
             f"{rs['on_s']:.3f}s", f"{rs['overhead']:+.2%}"),
        ],
        fmt="{:>14}",
    ) + [
        f"disabled hook: {d['ns_per_call']:.0f} ns/call",
        f"summary JSON at BENCH_obs.json (mode={r['mode']})",
    ])

    assert r["worst_overhead"] <= OVERHEAD_CEILING, (
        f"telemetry overhead {r['worst_overhead']:.2%} exceeds the "
        f"{OVERHEAD_CEILING:.0%} ceiling"
    )
