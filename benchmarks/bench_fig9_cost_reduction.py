"""Figure 9 — cost reduction at a 10 % slowdown SLO, all workloads x stores.

For every (workload, store) pair: the cheapest estimated sizing whose
throughput stays within 10 % of FastMem-only.  The 20 % floor is the
assumed SlowMem-only cost (p = 0.2).
"""

import numpy as np
import pytest

from common import emit, pct, table
from conftest import ENGINES

WORKLOAD_ORDER = ["trending", "news_feed", "timeline", "edit_thumbnail",
                  "trending_preview"]


def choose_all(all_reports):
    return {
        key: report.choose(0.10) for key, report in all_reports.items()
    }


def test_fig9_cost_reduction(benchmark, all_reports):
    choices = benchmark(choose_all, all_reports)

    rows = []
    for wname in WORKLOAD_ORDER:
        rows.append((
            wname,
            *(pct(choices[(e, wname)].cost_factor) for e in ENGINES),
        ))
    emit("fig9_cost_reduction", table(
        ["workload", *ENGINES], rows, fmt="{:>18}",
    ) + ["cost as % of FastMem-only; floor = 20% (p = 0.2); "
         "lower is better (paper Fig 9)"])

    c = {k: v.cost_factor for k, v in choices.items()}

    # memcached: insensitive -> floor everywhere
    for w in WORKLOAD_ORDER:
        assert c[("memcached", w)] == pytest.approx(0.2, abs=0.02)

    # redis: trending cheap, news feed barely saves, writes help
    assert c[("redis", "trending")] < 0.55
    assert c[("redis", "news_feed")] > c[("redis", "trending")]
    assert c[("redis", "edit_thumbnail")] < c[("redis", "timeline")]

    # dynamodb: most impacted, but still 20-30 % savings on hotspots
    for w in WORKLOAD_ORDER:
        assert c[("dynamodb", w)] >= c[("redis", w)] - 0.02
    assert 0.60 <= c[("dynamodb", "trending")] <= 0.85
