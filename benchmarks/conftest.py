"""Shared fixtures for the benchmark harness.

Benchmarks run at the paper's scale (10,000 keys / 100,000 requests per
workload).  Heavy artefacts — generated traces and Mnemo reports — are
built once per session and shared across bench files.
"""

from __future__ import annotations

import pytest

from common import shared_cache

from repro.core import Mnemo
from repro.kvstore import DynamoLike, MemcachedLike, RedisLike
from repro.runner import CachingClient
from repro.ycsb import TABLE_III_WORKLOADS, generate_trace

ENGINES = {
    "redis": RedisLike,
    "memcached": MemcachedLike,
    "dynamodb": DynamoLike,
}


@pytest.fixture(scope="session")
def paper_traces():
    """All five Table III workloads at full paper scale."""
    return {w.name: generate_trace(w) for w in TABLE_III_WORKLOADS}


@pytest.fixture(scope="session")
def bench_client():
    """The measuring client used across benches (3 runs, 1 % noise).

    Caching: every measurement is memoized in the suite-wide result
    cache, so benches that profile the same (workload, engine) pair
    share baselines instead of recomputing them — within a session and
    across reruns.
    """
    return CachingClient(
        cache=shared_cache(), repeats=3, noise_sigma=0.01, seed=2019
    )


@pytest.fixture(scope="session")
def redis_reports(paper_traces, bench_client):
    """Mnemo (touch-order) reports for Redis on every workload."""
    mnemo = Mnemo(engine_factory=RedisLike, client=bench_client)
    return {name: mnemo.profile(t) for name, t in paper_traces.items()}


@pytest.fixture(scope="session")
def all_reports(paper_traces, bench_client):
    """Mnemo reports for every (engine, workload) pair."""
    out = {}
    for engine_name, factory in ENGINES.items():
        mnemo = Mnemo(engine_factory=factory, client=bench_client)
        for wname, trace in paper_traces.items():
            out[(engine_name, wname)] = mnemo.profile(trace)
    return out
