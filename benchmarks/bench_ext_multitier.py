"""Extension — Mnemo's model on a three-tier future system.

Generalises the sizing question to DRAM + NVM + a far tier (CXL-style:
500 ns, 0.9 GB/s, 8 % of the DRAM per-byte price).  Sweeps a grid of
(DRAM, NVM) capacity pairs on the Timeline workload (whose zipfian cold
tail is what a far tier is for), reports the Pareto frontier, and
compares the 10 %-SLO choice against the best two-tier configuration —
the far tier absorbs the coldest data at 8 % of the DRAM price, beating
the best two-tier sizing outright.
"""

import numpy as np

from repro.kvstore.profiles import REDIS_PROFILE
from repro.multitier import MultiTierAdvisor, TieredMemorySystem

from common import emit, pct, table


def run(paper_traces):
    trace = paper_traces["timeline"]
    total = int(trace.record_sizes.sum())
    advisor = MultiTierAdvisor(
        TieredMemorySystem.dram_nvm_far(), REDIS_PROFILE,
        repeats=3, noise_sigma=0.01, seed=31,
    )
    baselines = advisor.measure(trace)

    fracs = np.linspace(0.01, 1.0, 25)
    grid = [
        [max(1, int(f0 * total)), max(1, int(f1 * total)), None]
        for f0 in fracs for f1 in fracs if f0 + f1 <= 1.0 + 1e-9
    ]
    plans = advisor.sweep(trace, baselines, grid)
    frontier = advisor.pareto(plans)
    choice = advisor.cheapest_within_slo(plans, baselines, 0.10)

    # the two-tier equivalent at the same SLO
    two_tier = MultiTierAdvisor(
        TieredMemorySystem.paper_two_tier(), REDIS_PROFILE,
        repeats=3, noise_sigma=0.01, seed=32,
    )
    two_baselines = two_tier.measure(trace)
    two_grid = [[max(1, int(f * total)), None] for f in
                np.linspace(0.005, 1.0, 200)]
    two_plans = two_tier.sweep(trace, two_baselines, two_grid)
    two_choice = two_tier.cheapest_within_slo(two_plans, two_baselines, 0.10)

    # estimate-accuracy spot check on the chosen plan
    measured = advisor.validate(trace, choice)
    err = abs(measured.runtime_ns - choice.est_runtime_ns) / measured.runtime_ns
    return baselines, frontier, choice, two_choice, err


def test_ext_multitier(benchmark, paper_traces):
    baselines, frontier, choice, two_choice, err = benchmark.pedantic(
        run, args=(paper_traces,), rounds=1, iterations=1,
    )

    shown = frontier[:: max(1, len(frontier) // 20)]
    rows = [
        (pct(p.cost_factor),
         f"{p.est_throughput_ops_s:,.0f}",
         *(pct(s) for s in p.tier_shares()))
        for p in shown
    ]
    lines = table(
        ["cost", "est ops/s", "DRAM share", "NVM share", "Far share"], rows,
    )
    lines += [
        "",
        f"10%-SLO choice (3 tiers): cost {pct(choice.cost_factor)}, "
        f"shares DRAM/NVM/Far = "
        + "/".join(pct(s) for s in choice.tier_shares()),
        f"10%-SLO choice (2 tiers): cost {pct(two_choice.cost_factor)}",
        f"estimate error on the chosen plan: {err:.4%}",
    ]
    emit("ext_multitier", lines)

    # the frontier is non-trivial and the 3-tier SLO choice undercuts
    # the 2-tier one (the far tier is cheaper than NVM for cold data)
    assert len(frontier) >= 3
    assert choice.cost_factor < two_choice.cost_factor - 0.01
    assert err < 0.01
    # per-tier baselines are strictly ordered
    runtimes = [r.runtime_ns for r in baselines.runs]
    assert runtimes == sorted(runtimes)
