"""Extension — pricing the paper's "no dynamic migration" decision.

Section IV scopes Mnemo to static placement.  This bench estimates what
periodic re-tiering would actually buy per Table III workload at a 20 %
FastMem budget, charging migrations at the SlowMem link bandwidth: for
the stationary workloads migration is pure overhead (speedup < 1), and
only the drifting News Feed pays for its copies — confirming both the
paper's scope for its evaluation and its Fig 9 News Feed caveat.
"""

from repro.core.dynamic import simulate_periodic_retiering

from common import emit, pct, table

WORKLOAD_ORDER = ["trending", "news_feed", "timeline", "edit_thumbnail",
                  "trending_preview"]


def run(paper_traces, redis_reports):
    return {
        name: simulate_periodic_retiering(
            paper_traces[name], redis_reports[name].baselines,
            capacity_fraction=0.2,
        )
        for name in WORKLOAD_ORDER
    }


def test_ext_retiering(benchmark, paper_traces, redis_reports):
    outcomes = benchmark.pedantic(run, args=(paper_traces, redis_reports),
                                  rounds=1, iterations=1)

    rows = [
        (name,
         f"{o.static_throughput_ops_s:,.0f}",
         f"{o.dynamic_throughput_ops_s:,.0f}",
         f"{o.migrated_bytes / 1e6:,.0f} MB",
         f"{o.speedup:.3f}x",
         "migrate" if o.worth_migrating else "stay static")
        for name, o in outcomes.items()
    ]
    emit("ext_retiering", table(
        ["workload", "static ops/s", "retiered ops/s", "moved",
         "net speedup", "verdict"], rows, fmt="{:>16}",
    ) + ["clairvoyant per-window placement, migrations charged at the "
         "SlowMem link (1.81 GB/s); only the drifting workload pays for "
         "its copies"])

    assert outcomes["news_feed"].worth_migrating
    assert outcomes["news_feed"].speedup > 1.1
    for name in WORKLOAD_ORDER:
        if name != "news_feed":
            assert not outcomes[name].worth_migrating
