"""Grouped sweep planner speedup over per-cell pool dispatch.

Times the sweep shape the planner was built for — many split placements
of few workloads, a warm pool — two ways on the *same* runner settings:

- ``plan="cell"``: the legacy pool path, one task per grid cell.  Every
  task rebuilds a serial runner in the worker, re-reads the trace from
  the cache, builds a fresh deployment and measures through the
  per-deployment path;
- ``plan="grouped"``: the planner batches each (workload, engine)
  group into one task, workers attach the trace zero-copy from the
  shared-memory plane and execute the whole batch through the batch
  kernel.

Both runners are warmed first on a disjoint set of split fractions, so
the pools are spun up, the worker memos are hot and every trace is
published/cached — the timed sweeps then measure steady-state dispatch,
not cold-start costs, and every timed result is computed fresh (cache
misses on both sides).  Results must be *bit-identical* across plans.

The summary JSON lands in ``benchmarks/out/`` and at the repo root as
``BENCH_sweep.json``, whose committed copy records the speedup floor
``make bench-sweep`` enforces.  ``MNEMO_BENCH_SMOKE=1`` shrinks the
sweep (fewer/downscaled workloads, fewer splits) for the smoke target
wired into ``make verify``; the floor scales down accordingly.
"""

import json
import os
import shutil
import time
from pathlib import Path

import numpy as np

from common import OUT_DIR, emit, table

from repro.runner import ClientConfig, ExperimentRunner
from repro.ycsb.presets import TABLE_III_WORKLOADS

SMOKE = os.environ.get("MNEMO_BENCH_SMOKE", "") not in ("", "0")

#: Sweep shape: every Table III workload, a dozen split fractions each.
N_WORKLOADS = 3 if SMOKE else 5
N_SPLITS = 6 if SMOKE else 12
#: Accepted minimum grouped-over-cell speedup on the warm-pool sweep.
SPEEDUP_FLOOR = 2.0 if SMOKE else 3.0

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_sweep.json"
SCRATCH = OUT_DIR / "sweep_planner_caches"


def _workloads():
    picked = TABLE_III_WORKLOADS[:N_WORKLOADS]
    if SMOKE:
        picked = [w.scaled(n_keys=2_000, n_requests=5_000) for w in picked]
    return picked


def _specs(fracs):
    return ExperimentRunner.grid(
        _workloads(), engines=("redis",), placements=("split",),
        fast_fractions=tuple(fracs),
    )


def _bench_plan(plan):
    """Warm a runner under *plan*, then time the steady-state sweep."""
    cache_dir = SCRATCH / plan
    shutil.rmtree(cache_dir, ignore_errors=True)
    runner = ExperimentRunner(
        cache=str(cache_dir), client=ClientConfig(repeats=3, seed=7),
        plan=plan,
    )
    try:
        warm = runner.sweep(_specs([0.5]), workers=2)
        assert warm.ok, f"warm-up sweep failed under plan={plan!r}"
        timed_specs = _specs(np.linspace(0.05, 0.9, N_SPLITS).round(4))
        t0 = time.perf_counter()
        outcome = runner.sweep(timed_specs, workers=2)
        elapsed = time.perf_counter() - t0
        assert outcome.ok, f"timed sweep failed under plan={plan!r}"
        assert set(outcome.provenance) == {"computed"}, (
            f"timed sweep must compute fresh under plan={plan!r}, "
            f"got {set(outcome.provenance)}"
        )
        return list(outcome.results), elapsed, len(timed_specs)
    finally:
        runner.close()


def run():
    cell_results, t_cell, n_specs = _bench_plan("cell")
    grouped_results, t_grouped, _ = _bench_plan("grouped")
    assert grouped_results == cell_results, (
        "grouped planner diverged from per-cell dispatch"
    )
    shutil.rmtree(SCRATCH, ignore_errors=True)
    return {
        "mode": "smoke" if SMOKE else "full",
        "n_workloads": N_WORKLOADS,
        "splits_per_workload": N_SPLITS,
        "n_specs": n_specs,
        "workers": 2,
        "cell_s": round(t_cell, 3),
        "grouped_s": round(t_grouped, 3),
        "speedup": round(t_cell / t_grouped, 1),
        "bit_identical": True,
        "floors": {"grouped_speedup": SPEEDUP_FLOOR},
    }


def test_sweep_planner(benchmark):
    r = benchmark.pedantic(run, rounds=1, iterations=1)

    payload = json.dumps(r, indent=2)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "sweep_planner.json").write_text(payload)
    RESULT_PATH.write_text(payload + "\n")

    emit("sweep_planner", table(
        ["plan", "wall-clock", "notes"],
        [
            ("cell", f"{r['cell_s']:.2f}s",
             f"{r['n_specs']} pool tasks"),
            ("grouped", f"{r['grouped_s']:.2f}s",
             f"{r['speedup']:.1f}x, bit-identical, "
             f"{r['n_workloads']} batches"),
        ],
    ))

    assert r["speedup"] >= SPEEDUP_FLOOR, (
        f"grouped planner speedup {r['speedup']:.1f}x fell below the "
        f"{SPEEDUP_FLOOR:.1f}x floor"
    )
