"""Figure 4 — CDF of common social-media data sizes.

Regenerates the record-size CDFs for the caption / text post /
thumbnail models and the trending-preview mixture.
"""

import numpy as np

from repro.analysis.cdf import size_cdf
from repro.ycsb.sizes import PHOTO_CAPTION, PREVIEW_MIX, TEXT_POST, THUMBNAIL

from common import emit, table

MODELS = [PHOTO_CAPTION, TEXT_POST, THUMBNAIL, PREVIEW_MIX]
N = 50_000


def build_size_cdfs():
    return {m.name: size_cdf(m.sample(N, seed=4)) for m in MODELS}


def test_fig4_size_cdf(benchmark):
    cdfs = benchmark(build_size_cdfs)

    rows = []
    for m in MODELS:
        xs, ps = cdfs[m.name]
        p10, p50, p90 = np.interp([0.1, 0.5, 0.9], ps, xs)
        rows.append((m.name, f"{p10:,.0f}", f"{p50:,.0f}", f"{p90:,.0f}"))
    emit("fig4_size_cdf", table(
        ["model", "p10 (B)", "median (B)", "p90 (B)"], rows, fmt="{:>16}",
    ) + ["paper: caption ~1 KB, text post ~10 KB, thumbnail ~100 KB "
         "(log-scale CDF)"])

    med = lambda name: np.interp(0.5, cdfs[name][1], cdfs[name][0])
    assert 800 < med("photo_caption") < 1_300
    assert 8_000 < med("text_post") < 13_000
    assert 80_000 < med("thumbnail") < 130_000
