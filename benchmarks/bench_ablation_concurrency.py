"""Ablation — server parallelism folds into the measured baselines.

Section IV: "server-side parameters, such as the server thread
parallelism, hardware cache and prefetching efficiency, or the network
speed ... are all incorporated into the average request response time
... that the Sensitivity Engine extracts by actually executing the
workload."  This bench runs the pipeline at 1/4/16 concurrent client
threads (with bandwidth contention) and shows the estimate stays in the
sub-percent regime at every concurrency — because the baselines are
measured under the same conditions the estimate predicts.
"""

import numpy as np

from repro.core import Mnemo, estimate_errors, measure_curve, prefix_counts
from repro.kvstore import RedisLike
from repro.ycsb import YCSBClient

from common import emit, pct, table

CONCURRENCIES = [1, 4, 16]


def run(paper_traces):
    trace = paper_traces["trending"]
    rows = []
    for n in CONCURRENCIES:
        client = YCSBClient(repeats=3, noise_sigma=0.01, concurrency=n,
                            seed=51 + n)
        report = Mnemo(engine_factory=RedisLike, client=client).profile(trace)
        points = measure_curve(
            trace, report.pattern.order, RedisLike,
            prefix_counts(trace.n_keys, 7), client=client,
        )
        err = float(np.median(np.abs(estimate_errors(report.curve, points))))
        b = report.baselines
        rows.append((n, b.fast.throughput_ops_s, b.throughput_gap, err,
                     report.choose(0.10).cost_factor))
    return rows


def test_ablation_concurrency(benchmark, paper_traces):
    rows = benchmark.pedantic(run, args=(paper_traces,), rounds=1,
                              iterations=1)

    emit("ablation_concurrency", table(
        ["threads", "Fast ops/s", "gap", "med |err|", "cost @SLO"],
        [(n, f"{thr:,.0f}", f"{gap:.3f}x", f"{err:.4f}%", pct(cost))
         for n, thr, gap, err, cost in rows],
    ) + ["baselines measured at the deployment's concurrency keep the "
         "simple model accurate at any parallelism (paper Section IV)"])

    thrs = [r[1] for r in rows]
    gaps = [r[2] for r in rows]
    errs = [r[3] for r in rows]
    assert thrs == sorted(thrs)          # parallelism raises throughput
    assert gaps == sorted(gaps)          # contention raises memory weight
    for err in errs:
        assert err < 0.2                 # model accuracy independent of n
