"""Table I — testbed bandwidth and latency.

Runs latency (pointer-chase) and bandwidth (streaming) microbenchmarks
against the emulated hybrid memory system and reports the recovered
device parameters with the paper's B:x L:y factor notation.
"""

import pytest

from repro.memsim import HybridMemorySystem
from repro.units import MiB

from common import emit, table


def microbenchmark(system: HybridMemorySystem):
    """Recover each node's latency and bandwidth from synthetic kernels."""
    results = {}
    for node in system.nodes:
        # latency: dependent 64 B line accesses; transfer term is negligible
        lat = node.access_time_ns(64) - 64 / node.bytes_per_ns
        # bandwidth: one large streaming transfer amortises latency away
        stream = 64 * MiB
        bw = stream / (node.access_time_ns(stream) - node.latency_ns)
        results[node.name] = (lat, bw)
    return results


def test_table1_testbed_parameters(benchmark):
    system = HybridMemorySystem.testbed()
    results = benchmark(microbenchmark, system)

    fast_lat, fast_bw = results["FastMem"]
    slow_lat, slow_bw = results["SlowMem"]
    rows = [
        ("FastMem", f"{fast_lat:.1f}", f"{fast_bw:.2f}", "B:1 L:1"),
        ("SlowMem", f"{slow_lat:.1f}", f"{slow_bw:.2f}",
         f"B:{slow_bw / fast_bw:.2f} L:{slow_lat / fast_lat:.2f}"),
    ]
    emit("table1_testbed", table(
        ["node", "latency (ns)", "BW (GB/s)", "factors"], rows,
    ) + ["paper: Fast 65.7 ns / 14.9 GB/s; Slow 238.1 ns / 1.81 GB/s "
         "(B:0.12 L:3.62)"])

    assert fast_lat == pytest.approx(65.7, rel=1e-6)
    assert slow_lat == pytest.approx(238.1, rel=1e-6)
    assert slow_bw / fast_bw == pytest.approx(0.12, abs=0.01)
    assert slow_lat / fast_lat == pytest.approx(3.62, abs=0.01)
