"""Figures 8d/8e — tail latency (p95/p99), measured only.

The paper deliberately does not estimate tail latency ("the simple
analytical model ... is not sufficient to capture the variabilities of
the tail latencies") and reports measured tails instead.  This bench
measures p95/p99 at intermediate ratios on Trending for all stores and
verifies the tails exceed what the average-based model could predict.
"""

import numpy as np

from repro.core import measure_curve, prefix_counts

from common import emit, table
from conftest import ENGINES

N_POINTS = 5


def collect(paper_traces, all_reports, client):
    trace = paper_traces["trending"]
    out = {}
    for name, factory in ENGINES.items():
        report = all_reports[(name, "trending")]
        points = measure_curve(
            trace, report.pattern.order, factory,
            prefix_counts(trace.n_keys, N_POINTS), client=client,
        )
        out[name] = points
    return out


def test_fig8de_tail_latency(benchmark, paper_traces, all_reports,
                             bench_client):
    results = benchmark.pedantic(
        collect, args=(paper_traces, all_reports, bench_client),
        rounds=1, iterations=1,
    )

    lines = []
    for name, points in results.items():
        lines.append(f"[{name}]")
        rows = [
            (f"{p.cost_factor:.2f}",
             f"{p.result.avg_latency_ns / 1000:.1f}",
             f"{p.result.percentile(95.0) / 1000:.1f}",
             f"{p.result.percentile(99.0) / 1000:.1f}")
            for p in points
        ]
        lines += table(
            ["cost factor", "avg us", "p95 us", "p99 us"], rows,
        )
        lines.append("")
    lines.append("paper: tails reported as measured; no estimate produced")
    emit("fig8de_tail_latency", lines)

    for points in results.values():
        for p in points:
            assert p.result.percentile(99.0) >= p.result.percentile(95.0)
            # the tail carries variability beyond the mean
            assert p.result.percentile(99.0) > p.result.avg_latency_ns
