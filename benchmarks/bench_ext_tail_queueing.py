"""Extension — why the simple model cannot estimate tails (Figs 8d/8e).

The paper declines to estimate tail latency.  This bench demonstrates
the mechanism with the open-loop queueing simulator: at the same
placement, the *average* sojourn follows the service process (which
Mnemo models well), but p99 inflates non-linearly with offered load —
a dimension the two-baseline average model has no visibility into.
"""

from repro.kvstore import HybridDeployment, RedisLike
from repro.memsim import HybridMemorySystem
from repro.queueing import simulate_open_loop
from repro.ycsb import YCSBClient

from common import emit, table

UTILIZATIONS = [0.3, 0.6, 0.8, 0.9, 0.95]


def run(paper_traces):
    trace = paper_traces["trending"]
    deployment = HybridDeployment.all_slow(
        RedisLike, HybridMemorySystem.testbed(), trace.record_sizes
    )
    client = YCSBClient(repeats=1, noise_sigma=0.01, seed=61)
    return [
        simulate_open_loop(trace, deployment, rho, client=client,
                           seed=61 + i)
        for i, rho in enumerate(UTILIZATIONS)
    ]


def test_ext_tail_queueing(benchmark, paper_traces):
    results = benchmark.pedantic(run, args=(paper_traces,), rounds=1,
                                 iterations=1)

    rows = [
        (f"{r.utilization:.2f}",
         f"{r.avg_service_ns / 1000:.1f}",
         f"{r.avg_sojourn_ns / 1000:.1f}",
         f"{r.p95_ns / 1000:.1f}",
         f"{r.p99_ns / 1000:.1f}",
         r.max_queue_depth)
        for r in results
    ]
    emit("ext_tail_queueing", table(
        ["load rho", "avg svc us", "avg sojourn us", "p95 us", "p99 us",
         "max depth"], rows,
    ) + ["the average stays within the service process the model "
         "captures; the p99 tail inflates non-linearly with load — the "
         "variability the paper's simple model cannot capture"])

    p99s = [r.p99_ns for r in results]
    avgs = [r.avg_sojourn_ns for r in results]
    assert p99s == sorted(p99s)
    # near saturation the tail has inflated far beyond the service time
    assert results[-1].p99_ns > 5 * results[0].p99_ns
    # while at low load the average stays near the modelable service
    # time (M/D/1 wait at rho=0.3 is ~21 % of it)
    assert avgs[0] < 1.3 * results[0].avg_service_ns
