"""Collate benchmark result blocks into a single RESULTS.md.

Usage:  python tools/collect_results.py [output_path]

Run ``pytest benchmarks/ --benchmark-only`` first; each bench writes its
paper-comparable table to ``benchmarks/out/<experiment>.txt``.  This
script stitches them into one reviewable document, ordered to follow
the paper's evaluation section.
"""

from __future__ import annotations

import sys
from pathlib import Path

OUT_DIR = Path(__file__).resolve().parent.parent / "benchmarks" / "out"

#: Paper order; anything not listed is appended alphabetically.
ORDER = [
    "intro_projection",
    "fig1_pricing",
    "table1_testbed",
    "table2_cost_model",
    "fig3_key_cdf",
    "fig4_size_cdf",
    "fig5a_distribution",
    "fig5b_rw_ratio",
    "fig5c_record_size",
    "fig8a_accuracy",
    "fig8b_stores",
    "fig8c_latency",
    "fig8de_tail_latency",
    "fig8f_mnemot",
    "fig9_cost_reduction",
    "table4_overhead",
    "downsampling",
    "ablation_baselines",
    "ablation_tiering",
    "ablation_noise",
    "ablation_llc",
    "ablation_storage",
    "ablation_concurrency",
    "ext_drift",
    "ext_retiering",
    "ext_multitier",
    "ext_whatif",
    "ext_tail_queueing",
]


def collect(out_dir: Path | None = None) -> str:
    """Return the collated results document.

    ``out_dir`` defaults to the module's ``OUT_DIR`` *at call time*, so
    tests (and callers) that rebind ``collect_results.OUT_DIR`` are
    honoured — a default argument would freeze the path at import.
    """
    if out_dir is None:
        out_dir = OUT_DIR
    if not out_dir.is_dir():
        raise SystemExit(
            f"{out_dir} not found - run "
            "`pytest benchmarks/ --benchmark-only` first"
        )
    available = {p.stem: p for p in sorted(out_dir.glob("*.txt"))}
    names = [n for n in ORDER if n in available]
    names += [n for n in sorted(available) if n not in ORDER]

    parts = [
        "# Benchmark results\n",
        f"{len(names)} experiments collected from benchmarks/out/.\n",
    ]
    for name in names:
        parts.append("```")
        parts.append(available[name].read_text().rstrip())
        parts.append("```\n")
    return "\n".join(parts)


def main(argv: list[str]) -> int:
    target = Path(argv[1]) if len(argv) > 1 else Path("RESULTS.md")
    target.write_text(collect())
    print(f"wrote {target} ({target.stat().st_size:,} bytes)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
