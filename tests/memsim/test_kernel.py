"""Equivalence tests for the multi-placement batch kernel.

The kernel's contract is *bit-identity*: every `RunResult` it produces
must equal — field for field, bit for bit — what the per-deployment
path measures, because both derive their noise streams from the same
experiment fingerprints.  These tests also pin the vectorized-repeats
`execute` against a verbatim copy of the old per-repeat loop.
"""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.kvstore.redislike import RedisLike
from repro.kvstore.server import HybridDeployment
from repro.memsim.kernel import BatchKernel, realisation_matrix, summarize
from repro.memsim.system import HybridMemorySystem
from repro.memsim.timing import AccessTimer, NoiseModel
from repro.rng import derive_seed
from repro.runner.cache import ResultCache
from repro.runner.caching import CachingClient
from repro.ycsb.client import YCSBClient
from repro.ycsb.generator import generate_trace
from repro.ycsb.presets import workload_by_name


@pytest.fixture(scope="module")
def trace():
    spec = workload_by_name("trending").scaled(n_keys=400, n_requests=4000)
    return generate_trace(spec.with_seed(7))


def _masks(n_keys, fracs=(0.0, 0.35, 1.0), seed=5):
    rng = np.random.default_rng(seed)
    masks = np.zeros((len(fracs), n_keys), dtype=bool)
    for i, frac in enumerate(fracs):
        picked = rng.choice(n_keys, int(frac * n_keys), replace=False)
        masks[i, picked] = True
    return masks


def _deployments(trace, masks):
    return [
        HybridDeployment(
            RedisLike, HybridMemorySystem.testbed(), trace.record_sizes,
            fast_keys=np.nonzero(m)[0],
        )
        for m in masks
    ]


def legacy_execute(client, trace, deployment):
    """Verbatim copy of the pre-kernel per-repeat measurement loop."""
    sizes, latency, bpns, passes, cpu, on_fast = client._gather(
        trace, deployment
    )
    label, cached, cache_lat = client._experiment_context(trace, deployment)
    latency, bpns, cpu, noise_scale = client._fault_arrays(
        label, on_fast, latency, bpns, cpu
    )
    runtimes = np.empty(client.repeats)
    read_sums = np.empty(client.repeats)
    write_sums = np.empty(client.repeats)
    pct_acc = {q: np.empty(client.repeats) for q in client.percentiles}
    is_read = trace.is_read
    n_reads = int(is_read.sum())
    n_writes = trace.n_requests - n_reads
    for r in range(client.repeats):
        timer = AccessTimer(
            noise=client.noise,
            seed=derive_seed(client._seed, f"{label}/run{r}"),
        )
        times = timer.request_times_ns(
            sizes, latency, bpns, passes, cpu,
            cached=cached, cache_latency_ns=cache_lat,
            noise_scale=noise_scale,
        )
        runtimes[r] = times.sum() / client.concurrency
        read_sums[r] = times[is_read].sum()
        write_sums[r] = times.sum() - read_sums[r]
        if client.percentiles:
            qs = np.percentile(times, client.percentiles)
            for q, v in zip(client.percentiles, qs):
                pct_acc[q][r] = v
    return dict(
        runtime_ns=float(runtimes.mean()),
        avg_read_ns=float(read_sums.mean() / n_reads) if n_reads else 0.0,
        avg_write_ns=float(write_sums.mean() / n_writes) if n_writes else 0.0,
        pct={q: float(v.mean()) for q, v in pct_acc.items()},
        std=float(runtimes.std()),
    )


def assert_matches_legacy(result, legacy):
    assert result.runtime_ns == legacy["runtime_ns"]
    assert result.avg_read_ns == legacy["avg_read_ns"]
    assert result.avg_write_ns == legacy["avg_write_ns"]
    assert result.latency_percentiles_ns == legacy["pct"]
    assert result.runtime_std_ns == legacy["std"]


class TestVectorizedRepeats:
    """`execute` folded its per-repeat loop; results must not move a bit."""

    @pytest.mark.parametrize("use_llc", [False, True])
    @pytest.mark.parametrize("concurrency", [1, 4])
    def test_execute_bit_identical_to_loop(self, trace, use_llc, concurrency):
        client = YCSBClient(
            repeats=3, seed=11, use_llc=use_llc, concurrency=concurrency
        )
        (deployment,) = _deployments(trace, _masks(trace.n_keys, (0.4,)))
        legacy = legacy_execute(client, trace, deployment)
        assert_matches_legacy(client.execute(trace, deployment), legacy)

    def test_zero_sigma_path(self, trace):
        client = YCSBClient(repeats=2, seed=1, noise_sigma=0.0)
        (deployment,) = _deployments(trace, _masks(trace.n_keys, (0.0,)))
        legacy = legacy_execute(client, trace, deployment)
        assert_matches_legacy(client.execute(trace, deployment), legacy)

    def test_live_generator_seed_still_runs(self, trace):
        client = YCSBClient(repeats=2, seed=np.random.default_rng(3))
        (deployment,) = _deployments(trace, _masks(trace.n_keys, (0.5,)))
        result = client.execute(trace, deployment)
        assert result.runtime_ns > 0


class TestRealisationMatrix:
    def test_rows_match_per_repeat_timers(self):
        base = np.random.default_rng(0).random(500) * 1000 + 10
        noise = NoiseModel(sigma=0.02)
        mat = realisation_matrix(base, noise, 9, "lbl", 4)
        for r in range(4):
            timer = AccessTimer(noise=noise, seed=derive_seed(9, "lbl/run" + str(r)))
            n = base.size
            row = timer.noise.apply(base, timer._rng)
            assert np.array_equal(mat[r], row)
            assert row.size == n

    def test_zero_sigma_is_base_broadcast(self):
        base = np.arange(10.0)
        mat = realisation_matrix(base, NoiseModel(sigma=0.0), 1, "x", 3)
        assert mat.shape == (3, 10)
        assert (mat == base).all()


class TestBatchKernel:
    @pytest.mark.parametrize("use_llc", [False, True])
    def test_bit_identical_to_per_deployment(self, trace, use_llc):
        client = YCSBClient(repeats=3, seed=4, use_llc=use_llc)
        system = HybridMemorySystem.testbed()
        profile = RedisLike(system.fast, system.slow).profile
        masks = _masks(trace.n_keys)
        batch = client.execute_placements(trace, masks, profile, system)
        for mask, deployment, got in zip(
            masks, _deployments(trace, masks), batch
        ):
            assert got == client.execute(trace, deployment)

    def test_fingerprints_match_deployment_path(self, trace):
        client = YCSBClient(seed=4)
        system = HybridMemorySystem.testbed()
        profile = RedisLike(system.fast, system.slow).profile
        kernel = BatchKernel(client, trace, profile, system)
        masks = _masks(trace.n_keys)
        for mask, deployment in zip(masks, _deployments(trace, masks)):
            assert kernel.fingerprint(mask) == \
                client.experiment_fingerprint(trace, deployment)[1]

    def test_concurrency_and_faults(self, trace):
        from repro.faults import FaultSpec, JitterBursts, LatencySpikes

        faults = FaultSpec(
            latency_spikes=LatencySpikes(),
            jitter_bursts=JitterBursts(),  # exercises noise_scale too
        )
        client = YCSBClient(
            repeats=2, seed=8, concurrency=3, faults=faults
        )
        system = HybridMemorySystem.testbed()
        profile = RedisLike(system.fast, system.slow).profile
        masks = _masks(trace.n_keys, (0.2, 0.9))
        batch = client.execute_placements(trace, masks, profile, system)
        for mask, deployment, got in zip(
            masks, _deployments(trace, masks), batch
        ):
            assert got == client.execute(trace, deployment)

    def test_key_space_mismatch_raises(self, trace):
        client = YCSBClient(seed=1)
        system = HybridMemorySystem.testbed()
        profile = RedisLike(system.fast, system.slow).profile
        with pytest.raises(WorkloadError):
            BatchKernel(
                client, trace, profile, system,
                record_sizes=np.ones(trace.n_keys + 1, dtype=np.int64),
            )

    def test_bad_mask_raises(self, trace):
        client = YCSBClient(seed=1)
        system = HybridMemorySystem.testbed()
        profile = RedisLike(system.fast, system.slow).profile
        kernel = BatchKernel(client, trace, profile, system)
        with pytest.raises(WorkloadError):
            kernel.run(np.ones(trace.n_keys, dtype=np.int64))
        with pytest.raises(WorkloadError):
            kernel.run(np.ones(trace.n_keys - 1, dtype=bool))

    def test_live_generator_batch_runs(self, trace):
        client = YCSBClient(repeats=2, seed=np.random.default_rng(5))
        system = HybridMemorySystem.testbed()
        profile = RedisLike(system.fast, system.slow).profile
        results = client.execute_placements(
            trace, _masks(trace.n_keys, (0.5,)), profile, system
        )
        assert results[0].runtime_ns > 0


class TestCachingBatch:
    def test_batch_shares_cache_with_execute(self, trace, tmp_path):
        system = HybridMemorySystem.testbed()
        profile = RedisLike(system.fast, system.slow).profile
        masks = _masks(trace.n_keys)
        cache = ResultCache(tmp_path)

        writer = CachingClient(cache=cache, seed=6, repeats=2)
        batch = writer.execute_placements(trace, masks, profile, system)
        assert writer.cache_misses == len(masks)

        # the per-deployment path must recall the batch's entries
        reader = CachingClient(cache=cache, seed=6, repeats=2)
        for mask, deployment, expect in zip(
            masks, _deployments(trace, masks), batch
        ):
            assert reader.execute(trace, deployment) == expect
        assert reader.cache_hits == len(masks)

        # and the batch path recalls per-deployment entries
        again = CachingClient(cache=cache, seed=6, repeats=2)
        assert again.execute_placements(trace, masks, profile, system) == batch
        assert again.cache_hits == len(masks)
        assert again.cache_misses == 0


class TestFingerprintMemo:
    def test_memoized_fingerprint_is_stable(self, trace):
        client = YCSBClient(seed=2)
        (deployment,) = _deployments(trace, _masks(trace.n_keys, (0.3,)))
        first = client.experiment_fingerprint(trace, deployment)
        assert client.experiment_fingerprint(trace, deployment) == first
        # memo entries keyed by object identity, evicted on GC
        assert (first[0], id(deployment)) in client._fp_memo

    def test_memo_entries_evict_on_gc(self, trace):
        import gc

        client = YCSBClient(seed=2)
        (deployment,) = _deployments(trace, _masks(trace.n_keys, (0.3,)))
        client.experiment_fingerprint(trace, deployment)
        assert len(client._fp_memo) == 1
        del deployment
        gc.collect()
        assert len(client._fp_memo) == 0

    def test_distinct_deployments_distinct_fingerprints(self, trace):
        client = YCSBClient(seed=2)
        deployments = _deployments(trace, _masks(trace.n_keys, (0.2, 0.8)))
        fps = {
            client.experiment_fingerprint(trace, d)[1] for d in deployments
        }
        assert len(fps) == 2


class TestSummarize:
    def test_empty_percentiles(self, trace):
        base = np.linspace(10, 20, trace.n_requests)
        mat = realisation_matrix(base, NoiseModel(sigma=0.0), 0, "x", 2)
        result = summarize(trace, "redis-like", mat, 1, ())
        assert result.latency_percentiles_ns == {}
        assert result.repeats == 2
