"""Tests for the analytic (Che / reuse-time) performance predictors.

The analytic path trades exactness for closed form: its contract is a
*tolerance*, not bit-identity.  The tolerance tests here mirror the
ISSUE acceptance envelope — predicted runtime within 5% of the
simulator on the YCSB presets, with and without the LLC — on downsized
traces so the suite stays fast.
"""

import numpy as np
import pytest

from repro.core.mnemo import Mnemo
from repro.errors import ConfigurationError
from repro.kvstore.redislike import RedisLike
from repro.memsim.analytic import (
    che_characteristic_time,
    che_hit_rates,
    predict_baselines,
    predict_placement,
    reuse_time_eviction_age,
    reuse_time_hit_counts,
)
from repro.memsim.cache import LLCModel
from repro.memsim.system import HybridMemorySystem
from repro.ycsb.client import YCSBClient
from repro.ycsb.generator import generate_trace
from repro.ycsb.presets import TABLE_III_WORKLOADS, workload_by_name

PRESETS = [w.name for w in TABLE_III_WORKLOADS]


def small_trace(name, seed=13, n_keys=300, n_requests=3000):
    spec = workload_by_name(name).scaled(n_keys=n_keys, n_requests=n_requests)
    return generate_trace(spec.with_seed(seed))


class TestCheCharacteristicTime:
    def test_fits_entirely_means_infinite(self):
        p = np.array([0.5, 0.5])
        s = np.array([100.0, 100.0])
        assert np.isinf(che_characteristic_time(p, s, 200))

    def test_zero_capacity_is_zero(self):
        assert che_characteristic_time(
            np.array([1.0]), np.array([10.0]), 0
        ) == 0.0

    def test_capacity_constraint_holds_at_solution(self):
        rng = np.random.default_rng(0)
        p = rng.dirichlet(np.ones(50))
        s = rng.integers(10, 200, 50).astype(float)
        cap = int(s.sum() * 0.3)
        t = che_characteristic_time(p, s, cap)
        resident = float(-(s * np.expm1(-p * t)).sum())
        assert resident == pytest.approx(cap, rel=1e-6)

    def test_oversized_keys_excluded(self):
        # one key larger than the cache must not count toward residency
        p = np.array([0.5, 0.5])
        s = np.array([50.0, 1e9])
        assert np.isinf(che_characteristic_time(p, s, 60))


class TestCheHitRates:
    def test_working_set_fits_all_hit(self):
        h = che_hit_rates(np.array([5, 3]), np.array([100, 100]), 500)
        assert np.array_equal(h, [1.0, 1.0])

    def test_oversized_and_unreferenced_get_zero(self):
        h = che_hit_rates(np.array([5, 0, 3]), np.array([100, 50, 900]), 300)
        assert h[1] == 0.0  # never referenced
        assert h[2] == 0.0  # does not fit
        assert 0.0 < h[0] <= 1.0

    def test_zero_capacity_all_zero(self):
        h = che_hit_rates(np.array([5, 3]), np.array([10, 10]), 0)
        assert not h.any()

    def test_shape_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            che_hit_rates(np.array([1, 2]), np.array([10.0]), 100)

    def test_hotter_keys_hit_more(self):
        counts = np.array([100, 10, 1])
        sizes = np.full(3, 100)
        h = che_hit_rates(counts, sizes, 150)
        assert h[0] > h[1] > h[2]


class TestReuseTimeModel:
    def test_fits_entirely_means_infinite_age(self):
        keys = np.array([0, 1, 0, 1])
        sizes = np.full(4, 10)
        assert np.isinf(reuse_time_eviction_age(keys, sizes, 100))

    def test_zero_capacity(self):
        keys = np.array([0, 0])
        sizes = np.full(2, 10)
        assert reuse_time_eviction_age(keys, sizes, 0) == 0.0
        hits = reuse_time_hit_counts(keys, sizes, 1, 0)
        assert hits.sum() == 0

    def test_first_touches_always_miss(self):
        keys = np.array([0, 1, 2, 0, 1, 2])
        sizes = np.full(6, 10)
        hits = reuse_time_hit_counts(keys, sizes, 3, 1000)
        assert hits.sum() == 3  # only the three re-references

    @pytest.mark.parametrize("name", PRESETS)
    def test_agrees_with_simulated_lru_on_presets(self, name):
        trace = small_trace(name)
        # a capacity that forces real evictions on these traces
        cap = int(trace.record_sizes.sum() * 0.2)
        predicted = reuse_time_hit_counts(
            trace.keys, trace.request_sizes, trace.n_keys, cap
        ).sum()
        model = LLCModel(capacity_bytes=cap)
        actual = model.process(trace.keys, trace.request_sizes).sum()
        # the reuse-time model is approximate; 10% of trace length is a
        # loose bound — measured agreement is 98%+ per request
        assert abs(int(predicted) - int(actual)) <= 0.1 * trace.n_requests


class TestPredictPlacement:
    def _setup(self, name="trending", **client_kw):
        trace = small_trace(name)
        system = HybridMemorySystem.testbed()
        profile = RedisLike(system.fast, system.slow).profile
        client = YCSBClient(seed=17, **client_kw)
        return trace, profile, system, client

    def test_bad_mask_raises(self):
        trace, profile, system, client = self._setup()
        with pytest.raises(ConfigurationError):
            predict_placement(
                trace, profile, system,
                np.ones(trace.n_keys, dtype=np.int64), client,
            )
        with pytest.raises(ConfigurationError):
            predict_placement(
                trace, profile, system,
                np.ones(trace.n_keys + 1, dtype=bool), client,
            )

    def test_all_fast_beats_all_slow(self):
        trace, profile, system, client = self._setup()
        fast = predict_placement(
            trace, profile, system, np.ones(trace.n_keys, dtype=bool), client
        )
        slow = predict_placement(
            trace, profile, system, np.zeros(trace.n_keys, dtype=bool), client
        )
        assert fast.runtime_ns < slow.runtime_ns
        assert fast.runtime_std_ns == 0.0

    @pytest.mark.parametrize("name", PRESETS)
    @pytest.mark.parametrize("use_llc", [False, True])
    def test_runtime_within_five_percent_of_simulator(self, name, use_llc):
        trace, profile, system, client = self._setup(
            name, use_llc=use_llc, repeats=2
        )
        for frac in (0.0, 0.5, 1.0):
            mask = np.zeros(trace.n_keys, dtype=bool)
            mask[: int(frac * trace.n_keys)] = True
            predicted = predict_placement(
                trace, profile, system, mask, client
            )
            (simulated,) = client.execute_placements(
                trace, mask[None, :], profile, system
            )
            err = abs(predicted.runtime_ns - simulated.runtime_ns)
            assert err <= 0.05 * simulated.runtime_ns
            # tails are approximate too, but must stay in the envelope
            for q in client.percentiles:
                perr = abs(predicted.percentile(q) - simulated.percentile(q))
                assert perr <= 0.05 * simulated.percentile(q)

    def test_concurrency_mirrors_simulator(self):
        trace, profile, system, client = self._setup(concurrency=4, repeats=2)
        mask = np.zeros(trace.n_keys, dtype=bool)
        mask[::2] = True
        predicted = predict_placement(trace, profile, system, mask, client)
        (simulated,) = client.execute_placements(
            trace, mask[None, :], profile, system
        )
        err = abs(predicted.runtime_ns - simulated.runtime_ns)
        assert err <= 0.05 * simulated.runtime_ns
        assert predicted.concurrency == 4


class TestHitCountMemo:
    def test_memo_shared_across_predictions_and_evicted_on_gc(self):
        import gc

        from repro.memsim import analytic as mod

        trace = small_trace("trending")
        system = HybridMemorySystem.testbed()
        profile = RedisLike(system.fast, system.slow).profile
        client = YCSBClient(seed=3, use_llc=True)
        before = len(mod._hit_counts_memo)
        a = predict_placement(
            trace, profile, system, np.ones(trace.n_keys, dtype=bool), client
        )
        b = predict_placement(
            trace, profile, system, np.ones(trace.n_keys, dtype=bool), client
        )
        assert a == b  # the memo must not change the prediction
        assert len(mod._hit_counts_memo) == before + 1
        del trace
        gc.collect()
        assert len(mod._hit_counts_memo) == before


class TestPredictBaselines:
    def test_flags_empty_and_ordering(self):
        trace = small_trace("timeline")
        system = HybridMemorySystem.testbed()
        profile = RedisLike(system.fast, system.slow).profile
        baselines = predict_baselines(
            trace, profile, system, YCSBClient(seed=3)
        )
        assert baselines.flags == ()
        assert baselines.fast.runtime_ns < baselines.slow.runtime_ns


class TestMnemoAccuracyMode:
    def test_invalid_accuracy_rejected(self):
        with pytest.raises(ConfigurationError):
            Mnemo(accuracy="guess")
        with pytest.raises(ConfigurationError):
            Mnemo().profile(small_trace("trending"), accuracy="guess")

    def test_analytic_profile_produces_report(self):
        trace = small_trace("trending")
        report = Mnemo(
            client=YCSBClient(seed=5), accuracy="analytic"
        ).profile(trace)
        assert report.workload == trace.name
        assert report.baselines.flags == ()

    def test_analytic_close_to_simulated_choice(self):
        trace = small_trace("trending")
        client = YCSBClient(seed=5, repeats=2)
        simulated = Mnemo(client=client).profile(trace)
        analytic = Mnemo(client=client).profile(trace, accuracy="analytic")
        # the two modes must tell the same performance story
        for a, s in (
            (analytic.baselines.fast, simulated.baselines.fast),
            (analytic.baselines.slow, simulated.baselines.slow),
        ):
            assert abs(a.runtime_ns - s.runtime_ns) <= 0.05 * s.runtime_ns

    def test_per_call_override_back_to_simulate(self):
        trace = small_trace("trending")
        client = YCSBClient(seed=5, repeats=2)
        consultant = Mnemo(client=client, accuracy="analytic")
        measured = consultant.profile(trace, accuracy="simulate")
        direct = Mnemo(client=client).profile(trace)
        assert measured.baselines.fast == direct.baselines.fast
