"""Tests for the LLC LRU model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.memsim import LLCModel
from repro.memsim.cache import lru_hit_mask_fixed_size


class TestConstruction:
    def test_defaults(self):
        llc = LLCModel()
        assert llc.capacity_bytes == 12_000_000

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            LLCModel(capacity_bytes=0)

    def test_invalid_hit_latency(self):
        with pytest.raises(ConfigurationError):
            LLCModel(hit_latency_ns=-1)


class TestAccess:
    def test_first_access_misses(self):
        llc = LLCModel(capacity_bytes=1000)
        assert llc.access(1, 100) is False

    def test_repeat_access_hits(self):
        llc = LLCModel(capacity_bytes=1000)
        llc.access(1, 100)
        assert llc.access(1, 100) is True

    def test_lru_eviction_order(self):
        llc = LLCModel(capacity_bytes=300)
        llc.access(1, 100)
        llc.access(2, 100)
        llc.access(3, 100)
        llc.access(4, 100)  # evicts 1
        assert 1 not in llc
        assert 2 in llc and 3 in llc and 4 in llc

    def test_hit_refreshes_recency(self):
        llc = LLCModel(capacity_bytes=300)
        llc.access(1, 100)
        llc.access(2, 100)
        llc.access(3, 100)
        llc.access(1, 100)  # 1 becomes MRU; 2 is now LRU
        llc.access(4, 100)  # evicts 2
        assert 2 not in llc
        assert 1 in llc

    def test_oversized_record_bypasses(self):
        llc = LLCModel(capacity_bytes=100)
        assert llc.access(1, 200) is False
        assert 1 not in llc
        assert llc.used_bytes == 0

    def test_used_bytes_tracks_sizes(self):
        llc = LLCModel(capacity_bytes=1000)
        llc.access(1, 300)
        llc.access(2, 200)
        assert llc.used_bytes == 500

    def test_eviction_frees_enough(self):
        llc = LLCModel(capacity_bytes=250)
        llc.access(1, 100)
        llc.access(2, 100)
        llc.access(3, 200)  # must evict both
        assert llc.used_bytes == 200
        assert llc.resident_keys == 1


class TestInvalidate:
    def test_invalidate_present(self):
        llc = LLCModel(capacity_bytes=1000)
        llc.access(1, 100)
        assert llc.invalidate(1) is True
        assert llc.used_bytes == 0

    def test_invalidate_absent(self):
        llc = LLCModel(capacity_bytes=1000)
        assert llc.invalidate(9) is False


class TestStats:
    def test_hit_rate(self):
        llc = LLCModel(capacity_bytes=1000)
        llc.access(1, 10)
        llc.access(1, 10)
        llc.access(1, 10)
        llc.access(2, 10)
        assert llc.hit_rate == pytest.approx(0.5)

    def test_hit_rate_empty(self):
        assert LLCModel().hit_rate == 0.0

    def test_reset(self):
        llc = LLCModel(capacity_bytes=1000)
        llc.access(1, 10)
        llc.reset()
        assert llc.hits == llc.misses == 0
        assert llc.used_bytes == 0
        assert 1 not in llc


class TestProcess:
    def test_batch_matches_scalar(self):
        keys = np.array([1, 2, 1, 3, 2, 1])
        sizes = np.array([100, 100, 100, 100, 100, 100])
        batch = LLCModel(capacity_bytes=250).process(keys, sizes)
        scalar_llc = LLCModel(capacity_bytes=250)
        scalar = np.array(
            [scalar_llc.access(int(k), int(s)) for k, s in zip(keys, sizes)]
        )
        assert np.array_equal(batch, scalar)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            LLCModel().process(np.array([1, 2]), np.array([1]))

    def test_hot_trace_mostly_hits(self):
        keys = np.zeros(1000, dtype=np.int64)
        sizes = np.full(1000, 100)
        hits = LLCModel(capacity_bytes=1000).process(keys, sizes)
        assert hits[1:].all() and not hits[0]


def _replay(keys, sizes, capacity):
    """Reference run through the sequential exact LRU."""
    llc = LLCModel(capacity_bytes=capacity)
    mask = np.array(
        [llc.access(int(k), int(s)) for k, s in zip(keys, sizes)]
    )
    return llc, mask


class TestEdgeCases:
    def test_oversized_record_bypass_in_batch(self):
        # records larger than the cache always miss and never install
        keys = np.array([1, 1, 2, 1])
        sizes = np.full(4, 500)
        llc = LLCModel(capacity_bytes=100)
        hits = llc.process(keys, sizes)
        assert not hits.any()
        assert llc.used_bytes == 0 and llc.resident_keys == 0
        assert llc.misses == 4

    def test_invalidate_accounting_then_reuse(self):
        llc = LLCModel(capacity_bytes=1000)
        llc.access(1, 400)
        llc.access(2, 300)
        assert llc.invalidate(1) is True
        assert llc.used_bytes == 300
        # the freed space must be reusable without evicting key 2
        assert llc.access(3, 700) is False
        assert 2 in llc and 3 in llc
        assert llc.used_bytes == 1000
        # invalidating twice is a no-op
        assert llc.invalidate(1) is False
        assert llc.used_bytes == 1000

    def test_eviction_accounting_under_reinsertion(self):
        # re-inserting an evicted key repeatedly must not leak bytes
        llc = LLCModel(capacity_bytes=250)
        for _ in range(10):
            llc.access(1, 100)
            llc.access(2, 100)
            llc.access(3, 100)  # evicts 1
        assert llc.used_bytes <= 250
        assert llc.used_bytes == 100 * llc.resident_keys
        assert llc.hits == 0  # every access evicted before its repeat

    def test_resize_on_reinsert_same_key_different_size(self):
        # a hit does not resize (the model tracks whole-record residency),
        # but an insert after invalidation accounts the new size
        llc = LLCModel(capacity_bytes=1000)
        llc.access(1, 400)
        llc.invalidate(1)
        llc.access(1, 200)
        assert llc.used_bytes == 200


class TestVectorizedEquivalence:
    def test_randomized_traces_match_exact_lru(self):
        rng = np.random.default_rng(42)
        for _ in range(25):
            n = int(rng.integers(1, 3000))
            n_keys = int(rng.integers(1, 250))
            size = int(rng.integers(1, 64))
            capacity = int(rng.integers(1, 800))
            keys = rng.integers(0, n_keys, n)
            sizes = np.full(n, size)
            fast = LLCModel(capacity_bytes=capacity)
            got = fast.process(keys, sizes)
            ref, want = _replay(keys, sizes, capacity)
            assert np.array_equal(got, want)
            assert (fast.hits, fast.misses) == (ref.hits, ref.misses)
            assert fast.used_bytes == ref.used_bytes
            # residency AND recency order must match for future accesses
            assert list(fast._entries.items()) == list(ref._entries.items())

    def test_incremental_access_after_batch_matches(self):
        keys = np.array([0, 1, 2, 0, 3, 1, 4, 2, 0])
        sizes = np.full(keys.size, 100)
        fast = LLCModel(capacity_bytes=300)
        fast.process(keys, sizes)
        ref, _ = _replay(keys, sizes, 300)
        for key in (0, 5, 3, 2):
            assert fast.access(key, 100) == ref.access(key, 100)

    def test_warm_cache_falls_back_and_matches(self):
        keys = np.array([7, 8, 7, 9])
        sizes = np.full(4, 100)
        fast = LLCModel(capacity_bytes=300)
        fast.access(7, 100)  # warm state forces the sequential path
        got = fast.process(keys, sizes)
        ref = LLCModel(capacity_bytes=300)
        ref.access(7, 100)
        want = np.array([ref.access(int(k), 100) for k in keys])
        assert np.array_equal(got, want)

    def test_mixed_sizes_fall_back_and_match(self):
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 40, 500)
        sizes = rng.integers(1, 50, 500)
        got = LLCModel(capacity_bytes=400).process(keys, sizes)
        _, want = _replay(keys, sizes, 400)
        assert np.array_equal(got, want)

    def test_heavy_tail_trace_matches(self):
        # stresses the escalating sliding-window shortcut and the
        # blocked residual count with many mid-range reuse distances
        rng = np.random.default_rng(9)
        keys = (rng.pareto(1.1, 20_000) * 20).astype(np.int64) % 2_000
        sizes = np.full(keys.size, 10)
        got = LLCModel(capacity_bytes=500).process(keys, sizes)
        _, want = _replay(keys, sizes, 500)
        assert np.array_equal(got, want)


class TestHitMaskFunction:
    def test_invalid_size_raises(self):
        with pytest.raises(ConfigurationError):
            lru_hit_mask_fixed_size(np.array([1, 2]), 0, 100)

    def test_empty_trace(self):
        mask = lru_hit_mask_fixed_size(np.array([], dtype=np.int64), 10, 100)
        assert mask.size == 0 and mask.dtype == bool

    def test_zero_slots_all_miss(self):
        mask = lru_hit_mask_fixed_size(np.array([1, 1, 1]), 200, 100)
        assert not mask.any()

    def test_single_slot_exact(self):
        # K = 1: only immediate repeats hit
        keys = np.array([1, 1, 2, 2, 1, 1, 1, 3])
        mask = lru_hit_mask_fixed_size(keys, 100, 100)
        assert mask.tolist() == [
            False, True, False, True, False, True, True, False
        ]
