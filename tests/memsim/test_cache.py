"""Tests for the LLC LRU model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.memsim import LLCModel


class TestConstruction:
    def test_defaults(self):
        llc = LLCModel()
        assert llc.capacity_bytes == 12_000_000

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            LLCModel(capacity_bytes=0)

    def test_invalid_hit_latency(self):
        with pytest.raises(ConfigurationError):
            LLCModel(hit_latency_ns=-1)


class TestAccess:
    def test_first_access_misses(self):
        llc = LLCModel(capacity_bytes=1000)
        assert llc.access(1, 100) is False

    def test_repeat_access_hits(self):
        llc = LLCModel(capacity_bytes=1000)
        llc.access(1, 100)
        assert llc.access(1, 100) is True

    def test_lru_eviction_order(self):
        llc = LLCModel(capacity_bytes=300)
        llc.access(1, 100)
        llc.access(2, 100)
        llc.access(3, 100)
        llc.access(4, 100)  # evicts 1
        assert 1 not in llc
        assert 2 in llc and 3 in llc and 4 in llc

    def test_hit_refreshes_recency(self):
        llc = LLCModel(capacity_bytes=300)
        llc.access(1, 100)
        llc.access(2, 100)
        llc.access(3, 100)
        llc.access(1, 100)  # 1 becomes MRU; 2 is now LRU
        llc.access(4, 100)  # evicts 2
        assert 2 not in llc
        assert 1 in llc

    def test_oversized_record_bypasses(self):
        llc = LLCModel(capacity_bytes=100)
        assert llc.access(1, 200) is False
        assert 1 not in llc
        assert llc.used_bytes == 0

    def test_used_bytes_tracks_sizes(self):
        llc = LLCModel(capacity_bytes=1000)
        llc.access(1, 300)
        llc.access(2, 200)
        assert llc.used_bytes == 500

    def test_eviction_frees_enough(self):
        llc = LLCModel(capacity_bytes=250)
        llc.access(1, 100)
        llc.access(2, 100)
        llc.access(3, 200)  # must evict both
        assert llc.used_bytes == 200
        assert llc.resident_keys == 1


class TestInvalidate:
    def test_invalidate_present(self):
        llc = LLCModel(capacity_bytes=1000)
        llc.access(1, 100)
        assert llc.invalidate(1) is True
        assert llc.used_bytes == 0

    def test_invalidate_absent(self):
        llc = LLCModel(capacity_bytes=1000)
        assert llc.invalidate(9) is False


class TestStats:
    def test_hit_rate(self):
        llc = LLCModel(capacity_bytes=1000)
        llc.access(1, 10)
        llc.access(1, 10)
        llc.access(1, 10)
        llc.access(2, 10)
        assert llc.hit_rate == pytest.approx(0.5)

    def test_hit_rate_empty(self):
        assert LLCModel().hit_rate == 0.0

    def test_reset(self):
        llc = LLCModel(capacity_bytes=1000)
        llc.access(1, 10)
        llc.reset()
        assert llc.hits == llc.misses == 0
        assert llc.used_bytes == 0
        assert 1 not in llc


class TestProcess:
    def test_batch_matches_scalar(self):
        keys = np.array([1, 2, 1, 3, 2, 1])
        sizes = np.array([100, 100, 100, 100, 100, 100])
        batch = LLCModel(capacity_bytes=250).process(keys, sizes)
        scalar_llc = LLCModel(capacity_bytes=250)
        scalar = np.array(
            [scalar_llc.access(int(k), int(s)) for k, s in zip(keys, sizes)]
        )
        assert np.array_equal(batch, scalar)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            LLCModel().process(np.array([1, 2]), np.array([1]))

    def test_hot_trace_mostly_hits(self):
        keys = np.zeros(1000, dtype=np.int64)
        sizes = np.full(1000, 100)
        hits = LLCModel(capacity_bytes=1000).process(keys, sizes)
        assert hits[1:].all() and not hits[0]
