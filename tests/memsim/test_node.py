"""Tests for repro.memsim.node."""

import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.memsim import MemoryNode, NodeKind
from repro.units import GiB


def make_node(**kw):
    defaults = dict(
        name="FastMem", kind=NodeKind.FAST, latency_ns=65.7,
        bandwidth_gbps=14.9, capacity_bytes=4 * GiB,
    )
    defaults.update(kw)
    return MemoryNode(**defaults)


class TestConstruction:
    def test_basic(self):
        node = make_node()
        assert node.used_bytes == 0
        assert node.free_bytes == 4 * GiB

    @pytest.mark.parametrize("field,value", [
        ("latency_ns", 0), ("latency_ns", -1),
        ("bandwidth_gbps", 0), ("bandwidth_gbps", -2.0),
        ("capacity_bytes", 0), ("capacity_bytes", -100),
    ])
    def test_invalid_params_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            make_node(**{field: value})


class TestOccupancy:
    def test_allocate_release_roundtrip(self):
        node = make_node()
        node.allocate(1000)
        assert node.used_bytes == 1000
        node.release(1000)
        assert node.used_bytes == 0

    def test_allocate_over_capacity_raises(self):
        node = make_node(capacity_bytes=100)
        with pytest.raises(CapacityError):
            node.allocate(101)

    def test_allocate_exact_capacity_ok(self):
        node = make_node(capacity_bytes=100)
        node.allocate(100)
        assert node.free_bytes == 0

    def test_release_more_than_used_raises(self):
        node = make_node()
        node.allocate(10)
        with pytest.raises(CapacityError):
            node.release(11)

    def test_negative_amounts_rejected(self):
        node = make_node()
        with pytest.raises(ConfigurationError):
            node.allocate(-1)
        with pytest.raises(ConfigurationError):
            node.release(-1)

    def test_utilization(self):
        node = make_node(capacity_bytes=1000)
        node.allocate(250)
        assert node.utilization == pytest.approx(0.25)

    def test_reset(self):
        node = make_node()
        node.allocate(500)
        node.reset()
        assert node.used_bytes == 0


class TestTiming:
    def test_access_time_latency_only(self):
        node = make_node(latency_ns=100.0, bandwidth_gbps=1.0)
        assert node.access_time_ns(0) == pytest.approx(100.0)

    def test_access_time_includes_transfer(self):
        # 1 GB/s == 1 byte/ns, so 1000 bytes adds 1000 ns
        node = make_node(latency_ns=100.0, bandwidth_gbps=1.0)
        assert node.access_time_ns(1000) == pytest.approx(1100.0)

    def test_table_i_fast_access(self):
        node = make_node()
        # 64-byte line: 65.7 + 64/14.9
        assert node.access_time_ns(64) == pytest.approx(65.7 + 64 / 14.9)

    def test_slower_node_costs_more(self):
        fast = make_node()
        slow = make_node(name="SlowMem", kind=NodeKind.SLOW,
                         latency_ns=238.1, bandwidth_gbps=1.81)
        assert slow.access_time_ns(4096) > fast.access_time_ns(4096)


class TestSlowdownFactors:
    def test_table_i_factors(self):
        fast = make_node()
        slow = make_node(name="SlowMem", kind=NodeKind.SLOW,
                         latency_ns=238.1, bandwidth_gbps=1.81)
        bw, lat = slow.slowdown_factors(fast)
        assert bw == pytest.approx(0.12, abs=0.01)
        assert lat == pytest.approx(3.62, abs=0.01)

    def test_self_factors_are_unity(self):
        node = make_node()
        assert node.slowdown_factors(node) == (1.0, 1.0)
