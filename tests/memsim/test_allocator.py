"""Tests for the first-fit address-space allocator."""

import pytest

from repro.errors import AllocationError, ConfigurationError
from repro.memsim import AddressSpaceAllocator, Allocation


class TestConstruction:
    def test_starts_empty(self):
        a = AddressSpaceAllocator(1000)
        assert a.used_bytes == 0
        assert a.free_bytes == 1000
        assert a.largest_free_block == 1000

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            AddressSpaceAllocator(0)


class TestAllocate:
    def test_first_fit_offsets(self):
        a = AddressSpaceAllocator(1000)
        x = a.allocate(100)
        y = a.allocate(200)
        assert (x.offset, x.size) == (0, 100)
        assert (y.offset, y.size) == (100, 200)

    def test_exhaustion_raises(self):
        a = AddressSpaceAllocator(100)
        a.allocate(100)
        with pytest.raises(AllocationError):
            a.allocate(1)

    def test_fragmented_no_fit_raises(self):
        a = AddressSpaceAllocator(300)
        x = a.allocate(100)
        a.allocate(100)
        z = a.allocate(100)
        a.release(x)
        a.release(z)
        # 200 free but fragmented into two 100-byte holes
        assert a.free_bytes == 200
        with pytest.raises(AllocationError):
            a.allocate(150)

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigurationError):
            AddressSpaceAllocator(100).allocate(0)

    def test_skips_too_small_hole(self):
        a = AddressSpaceAllocator(1000)
        x = a.allocate(50)
        a.allocate(100)
        a.release(x)  # 50-byte hole at 0
        y = a.allocate(80)  # must skip the hole
        assert y.offset == 150


class TestRelease:
    def test_release_returns_bytes(self):
        a = AddressSpaceAllocator(100)
        x = a.allocate(60)
        a.release(x)
        assert a.free_bytes == 100

    def test_double_release_raises(self):
        a = AddressSpaceAllocator(100)
        x = a.allocate(60)
        a.release(x)
        with pytest.raises(AllocationError):
            a.release(x)

    def test_bogus_release_raises(self):
        a = AddressSpaceAllocator(100)
        with pytest.raises(AllocationError):
            a.release(Allocation(0, 10))

    def test_wrong_size_release_raises_and_preserves_state(self):
        a = AddressSpaceAllocator(100)
        x = a.allocate(60)
        with pytest.raises(AllocationError):
            a.release(Allocation(x.offset, 59))
        assert a.used_bytes == 60  # still live


class TestCoalescing:
    def test_adjacent_holes_merge(self):
        a = AddressSpaceAllocator(300)
        x = a.allocate(100)
        y = a.allocate(100)
        z = a.allocate(100)
        a.release(x)
        a.release(z)
        a.release(y)  # middle release must merge all three
        assert a.largest_free_block == 300

    def test_merge_with_successor(self):
        a = AddressSpaceAllocator(300)
        x = a.allocate(100)
        y = a.allocate(100)
        a.release(y)  # adjacent to trailing free range
        a.release(x)
        assert a.largest_free_block == 300

    def test_full_cycle_reusable(self):
        a = AddressSpaceAllocator(100)
        for _ in range(10):
            x = a.allocate(100)
            a.release(x)
        assert a.free_bytes == 100


class TestIntrospection:
    def test_fragmentation_zero_when_contiguous(self):
        a = AddressSpaceAllocator(100)
        assert a.fragmentation == 0.0

    def test_fragmentation_positive_when_split(self):
        a = AddressSpaceAllocator(300)
        x = a.allocate(100)
        a.allocate(100)
        z = a.allocate(100)
        a.release(x)
        a.release(z)
        assert 0 < a.fragmentation <= 0.5

    def test_fragmentation_zero_when_full(self):
        a = AddressSpaceAllocator(100)
        a.allocate(100)
        assert a.fragmentation == 0.0

    def test_live_allocations_sorted(self):
        a = AddressSpaceAllocator(1000)
        allocs = [a.allocate(s) for s in (10, 20, 30)]
        a.release(allocs[1])
        live = a.live_allocations()
        assert [x.offset for x in live] == [0, 30]

    def test_allocation_end(self):
        assert Allocation(10, 5).end == 15

    def test_reset(self):
        a = AddressSpaceAllocator(100)
        a.allocate(50)
        a.reset()
        assert a.free_bytes == 100
        assert a.live_allocations() == []
