"""Tests for the throttling-based emulation presets."""

import pytest

from repro.errors import ConfigurationError
from repro.memsim import (
    MemoryNode,
    NodeKind,
    ThrottleFactors,
    emulated_slow_node,
    table_i_factors,
)
from repro.memsim.emulation import TABLE_I_FAST, TABLE_I_SLOW
from repro.units import GiB


class TestTableIFactors:
    def test_bandwidth_factor(self):
        assert table_i_factors().bandwidth == pytest.approx(1.81 / 14.9)

    def test_latency_factor(self):
        assert table_i_factors().latency == pytest.approx(238.1 / 65.7)

    def test_paper_rounding(self):
        f = table_i_factors()
        assert round(f.bandwidth, 2) == 0.12
        assert round(f.latency, 2) == 3.62


class TestThrottleFactors:
    def test_bandwidth_must_reduce(self):
        with pytest.raises(ConfigurationError):
            ThrottleFactors(bandwidth=1.5, latency=2.0)

    def test_latency_must_increase(self):
        with pytest.raises(ConfigurationError):
            ThrottleFactors(bandwidth=0.5, latency=0.9)

    def test_identity_edge_allowed(self):
        f = ThrottleFactors(bandwidth=1.0, latency=1.0)
        assert f.bandwidth == 1.0


class TestEmulatedSlowNode:
    def _fast(self):
        return MemoryNode(
            name="FastMem", kind=NodeKind.FAST,
            latency_ns=TABLE_I_FAST["latency_ns"],
            bandwidth_gbps=TABLE_I_FAST["bandwidth_gbps"],
            capacity_bytes=TABLE_I_FAST["capacity_bytes"],
        )

    def test_default_matches_table_i(self):
        slow = emulated_slow_node(self._fast())
        assert slow.latency_ns == pytest.approx(TABLE_I_SLOW["latency_ns"])
        assert slow.bandwidth_gbps == pytest.approx(TABLE_I_SLOW["bandwidth_gbps"])
        assert slow.kind is NodeKind.SLOW

    def test_capacity_defaults_to_fast(self):
        slow = emulated_slow_node(self._fast())
        assert slow.capacity_bytes == 4 * GiB

    def test_capacity_override(self):
        slow = emulated_slow_node(self._fast(), capacity_bytes=16 * GiB)
        assert slow.capacity_bytes == 16 * GiB

    def test_custom_factors(self):
        f = ThrottleFactors(bandwidth=0.5, latency=2.0)
        slow = emulated_slow_node(self._fast(), factors=f)
        assert slow.latency_ns == pytest.approx(65.7 * 2.0)
        assert slow.bandwidth_gbps == pytest.approx(14.9 * 0.5)
