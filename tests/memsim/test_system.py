"""Tests for the hybrid memory system."""

import pytest

from repro.errors import ConfigurationError
from repro.memsim import HybridMemorySystem, LLCModel, MemoryNode, NodeKind
from repro.units import GiB, MB


class TestTestbedPreset:
    def test_table_i_values(self, system):
        assert system.fast.latency_ns == pytest.approx(65.7)
        assert system.fast.bandwidth_gbps == pytest.approx(14.9)
        assert system.slow.latency_ns == pytest.approx(238.1)
        assert system.slow.bandwidth_gbps == pytest.approx(1.81)

    def test_default_capacities(self, system):
        assert system.fast.capacity_bytes == 4 * GiB
        assert system.slow.capacity_bytes == 4 * GiB
        assert system.total_capacity_bytes == 8 * GiB

    def test_llc_default(self, system):
        assert system.llc.capacity_bytes == 12 * MB

    def test_custom_capacities(self):
        s = HybridMemorySystem.testbed(
            fast_capacity_bytes=GiB, slow_capacity_bytes=2 * GiB
        )
        assert s.fast.capacity_bytes == GiB
        assert s.slow.capacity_bytes == 2 * GiB

    def test_describe_matches_table_i(self, system):
        desc = system.describe()
        assert desc["SlowMem"]["bandwidth_factor"] == pytest.approx(0.12, abs=0.01)
        assert desc["SlowMem"]["latency_factor"] == pytest.approx(3.62, abs=0.01)
        assert desc["FastMem"]["latency_factor"] == 1.0


class TestBinding:
    @pytest.mark.parametrize("label", ["fast", "FastMem", "FAST"])
    def test_bind_fast(self, system, label):
        assert system.bind(label) is system.fast

    @pytest.mark.parametrize("label", ["slow", "SlowMem"])
    def test_bind_slow(self, system, label):
        assert system.bind(label) is system.slow

    def test_bind_kind(self, system):
        assert system.bind(NodeKind.FAST) is system.fast
        assert system.bind(NodeKind.SLOW) is system.slow

    def test_bind_unknown_raises(self, system):
        with pytest.raises(ConfigurationError):
            system.bind("numa9")


class TestValidation:
    def _node(self, kind, lat):
        return MemoryNode(name="n", kind=kind, latency_ns=lat,
                          bandwidth_gbps=1.0, capacity_bytes=GiB)

    def test_wrong_fast_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            HybridMemorySystem(
                fast=self._node(NodeKind.SLOW, 60),
                slow=self._node(NodeKind.SLOW, 200),
            )

    def test_swapped_latencies_rejected(self):
        with pytest.raises(ConfigurationError):
            HybridMemorySystem(
                fast=self._node(NodeKind.FAST, 300),
                slow=self._node(NodeKind.SLOW, 100),
            )


class TestReset:
    def test_reset_clears_everything(self, system):
        system.fast.allocate(100)
        system.slow.allocate(200)
        system.llc.access(1, 50)
        system.reset()
        assert system.fast.used_bytes == 0
        assert system.slow.used_bytes == 0
        assert system.llc.used_bytes == 0

    def test_nodes_property(self, system):
        assert system.nodes == (system.fast, system.slow)
