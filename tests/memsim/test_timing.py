"""Tests for the access-time model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.memsim import AccessTimer, NoiseModel


def times(timer, sizes, lat=100.0, bpns=1.0, passes=1.0, cpu=0.0, **kw):
    n = np.asarray(sizes, dtype=np.float64)
    return timer.request_times_ns(
        n, np.full(n.shape, lat), np.full(n.shape, bpns),
        np.full(n.shape, passes), np.full(n.shape, cpu), **kw,
    )


class TestNoiseModel:
    def test_zero_sigma_returns_equal_copy(self):
        # sigma == 0 must pass values through but never alias the input:
        # callers mutate returned times, and aliasing would corrupt the
        # base-time array shared across repeats/placements
        t = np.array([1.0, 2.0, 3.0])
        out = NoiseModel(sigma=0.0).apply(t, np.random.default_rng(0))
        assert out is not t
        assert np.array_equal(out, t)
        out[0] = 99.0
        assert t[0] == 1.0

    def test_noise_perturbs(self):
        t = np.ones(1000)
        out = NoiseModel(sigma=0.05).apply(t, np.random.default_rng(0))
        assert not np.array_equal(out, t)
        assert out.mean() == pytest.approx(1.0, rel=0.01)

    def test_noise_never_negative(self):
        t = np.ones(10_000)
        out = NoiseModel(sigma=2.0).apply(t, np.random.default_rng(0))
        assert (out > 0).all()

    def test_negative_sigma_rejected(self):
        with pytest.raises(ConfigurationError):
            NoiseModel(sigma=-0.1)


class TestAccessTimer:
    def test_noiseless_formula(self):
        timer = AccessTimer(noise=NoiseModel(sigma=0.0))
        out = times(timer, [1000.0], lat=100.0, bpns=2.0, passes=3.0, cpu=50.0)
        assert out[0] == pytest.approx(50.0 + 3.0 * (100.0 + 500.0))

    def test_zero_passes_is_cpu_only(self):
        timer = AccessTimer(noise=NoiseModel(sigma=0.0))
        out = times(timer, [1000.0], passes=0.0, cpu=77.0)
        assert out[0] == pytest.approx(77.0)

    def test_cache_hit_replaces_memory_term(self):
        timer = AccessTimer(noise=NoiseModel(sigma=0.0))
        out = times(
            timer, [1000.0, 1000.0], lat=100.0, bpns=1.0, passes=1.0, cpu=10.0,
            cached=np.array([True, False]), cache_latency_ns=12.0,
        )
        assert out[0] == pytest.approx(22.0)
        assert out[1] == pytest.approx(1110.0)

    def test_noisy_flag_disables_noise(self):
        timer = AccessTimer(noise=NoiseModel(sigma=0.5), seed=1)
        a = times(timer, np.ones(100) * 100, noisy=False)
        assert np.allclose(a, a[0])

    def test_seeded_noise_reproducible(self):
        a = times(AccessTimer(seed=9), np.ones(50) * 100)
        b = times(AccessTimer(seed=9), np.ones(50) * 100)
        assert np.array_equal(a, b)

    def test_vector_shapes_preserved(self):
        timer = AccessTimer(noise=NoiseModel(sigma=0.0))
        out = times(timer, np.arange(1, 11, dtype=float))
        assert out.shape == (10,)
        assert (np.diff(out) > 0).all()  # bigger transfers take longer
