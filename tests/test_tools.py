"""Tests for the results collation tool."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

import collect_results  # noqa: E402


class TestCollect:
    def test_collates_in_paper_order(self, tmp_path):
        (tmp_path / "fig9_cost_reduction.txt").write_text("== fig9 ==\n")
        (tmp_path / "fig1_pricing.txt").write_text("== fig1 ==\n")
        (tmp_path / "zzz_custom.txt").write_text("== custom ==\n")
        doc = collect_results.collect(tmp_path)
        assert doc.index("fig1") < doc.index("fig9") < doc.index("custom")
        assert "3 experiments" in doc

    def test_missing_directory_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            collect_results.collect(tmp_path / "nope")

    def test_main_writes_target(self, tmp_path, monkeypatch):
        out_dir = tmp_path / "out"
        out_dir.mkdir()
        (out_dir / "fig1_pricing.txt").write_text("== fig1 ==\n")
        monkeypatch.setattr(collect_results, "OUT_DIR", out_dir)
        target = tmp_path / "RESULTS.md"
        assert collect_results.main(["prog", str(target)]) == 0
        assert target.exists()
        assert "fig1" in target.read_text()
