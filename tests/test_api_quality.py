"""API quality gates: documentation and export hygiene.

Walks every public module of :mod:`repro` and asserts (a) all public
classes and functions carry docstrings, and (b) every name listed in an
``__all__`` actually resolves — keeping the release-quality bar the
README promises.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

#: Names exempt from the docstring requirement (dataclass autogen etc.).
_EXEMPT = frozenset({"__init__"})


def _public_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if any(part.startswith("_") for part in info.name.split(".")[1:]):
            continue
        yield importlib.import_module(info.name)


MODULES = list(_public_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), (
        f"{module.__name__} lacks a module docstring"
    )


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_callables_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(obj):
            for mname, member in vars(obj).items():
                if mname.startswith("_") or mname in _EXEMPT:
                    continue
                if not (inspect.isfunction(member)
                        or isinstance(member, property)):
                    continue
                doc = (member.fget.__doc__ if isinstance(member, property)
                       else member.__doc__)
                if not (doc and doc.strip()):
                    undocumented.append(f"{name}.{mname}")
    assert not undocumented, (
        f"{module.__name__}: missing docstrings on {undocumented}"
    )


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_all_exports_resolve(module):
    exported = getattr(module, "__all__", None)
    if exported is None:
        return
    missing = [name for name in exported if not hasattr(module, name)]
    assert not missing, f"{module.__name__}.__all__ lists missing {missing}"
