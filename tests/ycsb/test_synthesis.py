"""Tests for workload synthesis (Section V-A's synthetic path)."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.ycsb import TABLE_III_WORKLOADS, generate_trace
from repro.ycsb.distributions import DistributionSpec
from repro.ycsb.sizes import THUMBNAIL, SizeModel
from repro.ycsb.synthesis import fit_trace, synthesize
from repro.ycsb.workload import Trace, WorkloadSpec


def trace_for(dist_name, read_fraction=1.0, size_model=THUMBNAIL,
              n_keys=2_000, n_requests=30_000, seed=3, **dist_kw):
    spec = WorkloadSpec(
        name=f"synth_{dist_name}",
        distribution=DistributionSpec(name=dist_name, **dist_kw),
        read_fraction=read_fraction,
        size_model=size_model,
        n_keys=n_keys,
        n_requests=n_requests,
        seed=seed,
    )
    return generate_trace(spec)


def hottest_first_cdf(trace):
    counts = np.sort(np.bincount(trace.keys, minlength=trace.n_keys))[::-1]
    return np.cumsum(counts) / counts.sum()


class TestClassification:
    @pytest.mark.parametrize("dist", [
        "zipfian", "scrambled_zipfian", "hotspot", "latest", "uniform",
    ])
    def test_family_recovered(self, dist):
        c = fit_trace(trace_for(dist))
        assert c.distribution.name == dist

    def test_table_iii_workloads_recovered(self):
        for w in TABLE_III_WORKLOADS:
            spec = w.scaled(n_keys=2_000, n_requests=30_000)
            c = fit_trace(generate_trace(spec))
            assert c.distribution.name == w.distribution.name

    def test_hotspot_parameters(self):
        c = fit_trace(trace_for("hotspot", hot_data_fraction=0.2,
                                hot_op_fraction=0.75))
        assert c.distribution.hot_data_fraction == pytest.approx(0.2, abs=0.03)
        assert c.distribution.hot_op_fraction == pytest.approx(0.75, abs=0.03)

    def test_zipfian_theta(self):
        c = fit_trace(trace_for("zipfian", n_keys=10_000, n_requests=100_000))
        assert c.distribution.theta == pytest.approx(0.99, abs=0.05)

    def test_latest_drift_detected(self):
        c = fit_trace(trace_for("latest"))
        assert c.temporal_drift > 0.6

    def test_stationary_has_low_drift(self):
        c = fit_trace(trace_for("zipfian"))
        assert c.temporal_drift < 0.1

    def test_read_fraction_preserved(self):
        c = fit_trace(trace_for("uniform", read_fraction=0.5))
        assert c.read_fraction == pytest.approx(0.5, abs=0.02)

    def test_empty_trace_rejected(self):
        t = Trace(name="e", keys=np.array([], dtype=np.int64),
                  is_read=np.array([], dtype=bool),
                  record_sizes=np.array([100], dtype=np.int64))
        with pytest.raises(WorkloadError):
            fit_trace(t)


class TestSizeFit:
    def test_lognormal_recovered(self):
        model = SizeModel(name="x", median_bytes=50_000, sigma=0.4)
        t = trace_for("uniform", size_model=model)
        c = fit_trace(t)
        assert c.size_model.median_bytes == pytest.approx(50_000, rel=0.05)
        assert c.size_model.sigma == pytest.approx(0.4, abs=0.05)

    def test_constant_sizes(self):
        model = SizeModel(name="c", median_bytes=10_000, sigma=0.0)
        c = fit_trace(trace_for("uniform", size_model=model))
        assert c.size_model.sigma == pytest.approx(0.0, abs=1e-9)
        synth = synthesize(c, seed=1)
        assert (synth.record_sizes == 10_000).all()


class TestSynthesize:
    def test_shape(self):
        c = fit_trace(trace_for("hotspot"))
        s = synthesize(c, seed=1)
        assert s.n_keys == 2_000
        assert s.n_requests == 30_000
        assert s.name.endswith("@synthetic")

    def test_rescale(self):
        c = fit_trace(trace_for("hotspot"))
        s = synthesize(c, n_requests=5_000, seed=1)
        assert s.n_requests == 5_000

    def test_deterministic_per_seed(self):
        c = fit_trace(trace_for("zipfian"))
        a, b = synthesize(c, seed=7), synthesize(c, seed=7)
        assert np.array_equal(a.keys, b.keys)
        assert not np.array_equal(a.keys, synthesize(c, seed=8).keys)

    @pytest.mark.parametrize("dist", ["zipfian", "hotspot", "latest",
                                      "uniform"])
    def test_hot_cdf_preserved(self, dist):
        """The size-ordering statistic Mnemo consumes survives the
        fit -> synthesize round trip."""
        t = trace_for(dist)
        s = synthesize(fit_trace(t), seed=2)
        gap = np.abs(hottest_first_cdf(t) - hottest_first_cdf(s)).max()
        assert gap < 0.06

    def test_profiles_agree(self):
        """Profiling the synthetic workload reaches the same sizing
        conclusion as the real one (the paper's use case)."""
        from repro.core import MnemoT
        from repro.kvstore import RedisLike
        from repro.ycsb import YCSBClient

        t = trace_for("hotspot")
        s = synthesize(fit_trace(t), seed=3)
        mnemot = MnemoT(engine_factory=RedisLike,
                        client=YCSBClient(repeats=1, noise_sigma=0.0))
        real = mnemot.profile(t).choose(0.10)
        synth = mnemot.profile(s).choose(0.10)
        assert synth.cost_factor == pytest.approx(real.cost_factor, abs=0.05)
