"""Tests for WorkloadSpec and Trace."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, WorkloadError
from repro.ycsb.distributions import DistributionSpec
from repro.ycsb.sizes import THUMBNAIL
from repro.ycsb.workload import Trace, WorkloadSpec


def make_trace(keys, is_read=None, sizes=None, n_keys=None):
    keys = np.asarray(keys, dtype=np.int64)
    if is_read is None:
        is_read = np.ones(keys.size, dtype=bool)
    if sizes is None:
        n = n_keys if n_keys is not None else (int(keys.max()) + 1 if keys.size else 1)
        sizes = np.full(n, 100, dtype=np.int64)
    return Trace(name="t", keys=keys, is_read=np.asarray(is_read, dtype=bool),
                 record_sizes=np.asarray(sizes, dtype=np.int64))


class TestWorkloadSpec:
    def _spec(self, **kw):
        defaults = dict(
            name="w",
            distribution=DistributionSpec(name="uniform"),
            read_fraction=1.0,
            size_model=THUMBNAIL,
        )
        defaults.update(kw)
        return WorkloadSpec(**defaults)

    def test_paper_default_scale(self):
        s = self._spec()
        assert s.n_keys == 10_000
        assert s.n_requests == 100_000

    def test_read_fraction_bounds(self):
        with pytest.raises(ConfigurationError):
            self._spec(read_fraction=1.5)

    def test_scale_validation(self):
        with pytest.raises(ConfigurationError):
            self._spec(n_keys=0)

    def test_scaled_copy(self):
        s = self._spec().scaled(n_keys=50, n_requests=500)
        assert (s.n_keys, s.n_requests) == (50, 500)
        assert s.name == "w" and s.seed == self._spec().seed

    def test_scaled_partial(self):
        s = self._spec().scaled(n_requests=500)
        assert s.n_keys == 10_000 and s.n_requests == 500

    def test_with_seed(self):
        assert self._spec().with_seed(99).seed == 99


class TestTraceValidation:
    def test_key_out_of_range_rejected(self):
        with pytest.raises(WorkloadError):
            make_trace([0, 5], n_keys=3)

    def test_misaligned_ops_rejected(self):
        with pytest.raises(WorkloadError):
            make_trace([0, 1], is_read=[True])

    def test_nonpositive_sizes_rejected(self):
        with pytest.raises(WorkloadError):
            make_trace([0], sizes=[0])

    def test_empty_dataset_rejected(self):
        with pytest.raises(WorkloadError):
            make_trace([], sizes=np.array([], dtype=np.int64))


class TestTraceViews:
    def test_counts(self):
        t = make_trace([0, 1, 0, 2], is_read=[True, True, False, False])
        assert t.n_requests == 4
        assert t.n_reads == 2
        assert t.n_writes == 2
        assert t.read_fraction == 0.5

    def test_per_key_counts(self):
        t = make_trace([0, 1, 0, 2], is_read=[True, True, False, False])
        reads, writes = t.per_key_counts()
        assert reads.tolist() == [1, 1, 0]
        assert writes.tolist() == [1, 0, 1]

    def test_request_sizes_gather(self):
        t = make_trace([0, 2, 2], sizes=[10, 20, 30])
        assert t.request_sizes.tolist() == [10, 30, 30]

    def test_dataset_bytes(self):
        t = make_trace([0], sizes=[10, 20, 30])
        assert t.dataset_bytes == 60

    def test_touched_keys(self):
        t = make_trace([2, 0, 2], n_keys=5)
        assert t.touched_keys().tolist() == [0, 2]


class TestFirstTouchOrder:
    def test_order_of_first_access(self):
        t = make_trace([3, 1, 3, 0, 1], n_keys=5)
        order = t.first_touch_order()
        assert order[:3].tolist() == [3, 1, 0]

    def test_untouched_appended_by_id(self):
        t = make_trace([3, 1], n_keys=5)
        order = t.first_touch_order()
        assert order.tolist() == [3, 1, 0, 2, 4]

    def test_is_permutation(self):
        rng = np.random.default_rng(0)
        t = make_trace(rng.integers(0, 50, 500), n_keys=50)
        order = t.first_touch_order()
        assert np.array_equal(np.sort(order), np.arange(50))
