"""Tests for scan-expanded workloads (YCSB workload-E style)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.ycsb import generate_trace
from repro.ycsb.distributions import DistributionSpec
from repro.ycsb.sizes import PHOTO_CAPTION
from repro.ycsb.workload import WorkloadSpec


def spec(**kw):
    defaults = dict(
        name="scan_test",
        distribution=DistributionSpec(name="scrambled_zipfian"),
        read_fraction=1.0,
        size_model=PHOTO_CAPTION,
        n_keys=500,
        n_requests=5_000,
        seed=13,
        scan_fraction=0.3,
        scan_max_length=8,
    )
    defaults.update(kw)
    return WorkloadSpec(**defaults)


class TestValidation:
    def test_scan_fraction_bounds(self):
        with pytest.raises(ConfigurationError):
            spec(scan_fraction=1.5)

    def test_scan_length_bounds(self):
        with pytest.raises(ConfigurationError):
            spec(scan_max_length=0)

    def test_scans_must_fit_in_reads(self):
        with pytest.raises(ConfigurationError):
            spec(read_fraction=0.2, scan_fraction=0.5)


class TestExpansion:
    def test_more_requests_than_drawn(self):
        t = generate_trace(spec())
        base = generate_trace(spec(scan_fraction=0.0))
        assert t.n_requests > base.n_requests

    def test_no_scans_is_identity(self):
        a = generate_trace(spec(scan_fraction=0.0))
        b = generate_trace(spec(scan_fraction=0.0))
        assert np.array_equal(a.keys, b.keys)

    def test_scans_read_consecutive_keys(self):
        t = generate_trace(spec(scan_fraction=1.0, scan_max_length=4))
        diffs = np.diff(t.keys)
        # inside a scan, keys step by +1 (except at the clip boundary)
        assert (diffs == 1).sum() > 0.3 * t.n_requests

    def test_keys_stay_in_range(self):
        t = generate_trace(spec(scan_fraction=1.0, scan_max_length=50))
        assert t.keys.max() < 500
        assert t.keys.min() >= 0

    def test_scans_are_reads(self):
        t = generate_trace(spec(read_fraction=1.0))
        assert t.is_read.all()

    def test_deterministic(self):
        a, b = generate_trace(spec()), generate_trace(spec())
        assert np.array_equal(a.keys, b.keys)

    def test_expansion_bounded_by_max_length(self):
        s = spec(scan_fraction=1.0, scan_max_length=8)
        t = generate_trace(s)
        assert t.n_requests <= s.n_requests * 8

    def test_mixed_ops_scans_only_on_reads(self):
        s = spec(read_fraction=0.6, scan_fraction=0.3)
        t = generate_trace(s)
        # writes never expand; their count is preserved
        base = generate_trace(spec(read_fraction=0.6, scan_fraction=0.0))
        assert t.n_writes == base.n_writes


class TestPipelineIntegration:
    def test_estimate_model_handles_scans(self, quiet_client):
        """Scans expand into reads, so the analytic model stays exact
        for uniform record sizes."""
        from repro.core import Mnemo, estimate_errors, measure_curve, prefix_counts
        from repro.kvstore import RedisLike
        from repro.ycsb.sizes import SizeModel

        s = spec(
            size_model=SizeModel(name="c", median_bytes=5_000, sigma=0.0),
            n_requests=2_000,
        )
        trace = generate_trace(s)
        report = Mnemo(engine_factory=RedisLike,
                       client=quiet_client).profile(trace)
        points = measure_curve(trace, report.pattern.order, RedisLike,
                               prefix_counts(trace.n_keys, 4),
                               client=quiet_client)
        errors = estimate_errors(report.curve, points)
        assert np.abs(errors).max() < 1e-9

    def test_scans_flatten_the_hot_set(self):
        """Range scans touch neighbours of hot keys, spreading accesses —
        a DynamoLike Query-style workload saves less than point reads."""
        from repro.analysis.cdf import coverage_fraction

        point = generate_trace(spec(scan_fraction=0.0))
        scan = generate_trace(spec(scan_fraction=1.0, scan_max_length=16))
        assert (coverage_fraction(scan, 0.9)
                > coverage_fraction(point, 0.9))
