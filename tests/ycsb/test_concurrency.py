"""Tests for the client's concurrency model."""

import numpy as np
import pytest

from repro.core import Mnemo, estimate_errors, measure_curve, prefix_counts
from repro.errors import ConfigurationError
from repro.kvstore import HybridDeployment, RedisLike
from repro.memsim import HybridMemorySystem
from repro.ycsb import YCSBClient


def deploy(trace, fast=False):
    maker = HybridDeployment.all_fast if fast else HybridDeployment.all_slow
    return maker(RedisLike, HybridMemorySystem.testbed(), trace.record_sizes)


class TestConcurrencyValidation:
    def test_positive_concurrency(self):
        with pytest.raises(ConfigurationError):
            YCSBClient(concurrency=0)

    def test_nonnegative_contention(self):
        with pytest.raises(ConfigurationError):
            YCSBClient(contention=-0.1)


class TestScaling:
    def test_throughput_grows_sublinearly(self, small_trace):
        thr = {}
        for n in (1, 4):
            client = YCSBClient(repeats=1, noise_sigma=0.0, concurrency=n)
            thr[n] = client.execute(small_trace,
                                    deploy(small_trace)).throughput_ops_s
        assert thr[4] > 1.5 * thr[1]      # parallelism helps...
        assert thr[4] < 4.0 * thr[1]      # ...but contention bites

    def test_zero_contention_scales_linearly(self, small_trace):
        base = YCSBClient(repeats=1, noise_sigma=0.0).execute(
            small_trace, deploy(small_trace)
        )
        par = YCSBClient(repeats=1, noise_sigma=0.0, concurrency=4,
                         contention=0.0).execute(
            small_trace, deploy(small_trace)
        )
        assert par.throughput_ops_s == pytest.approx(
            4 * base.throughput_ops_s, rel=1e-9
        )

    def test_latency_inflates_under_contention(self, small_trace):
        base = YCSBClient(repeats=1, noise_sigma=0.0).execute(
            small_trace, deploy(small_trace)
        )
        par = YCSBClient(repeats=1, noise_sigma=0.0, concurrency=4).execute(
            small_trace, deploy(small_trace)
        )
        assert par.avg_read_ns > base.avg_read_ns

    def test_concurrency_recorded(self, small_trace):
        par = YCSBClient(repeats=1, concurrency=4).execute(
            small_trace, deploy(small_trace)
        )
        assert par.concurrency == 4
        assert par.read_runtime_contrib_ns == pytest.approx(
            par.avg_read_ns / 4
        )


class TestEstimateUnderConcurrency:
    def test_model_stays_exact(self, small_trace):
        """The paper: server parallelism is 'incorporated into the
        average request response time' — baselines measured at the
        deployment's concurrency keep the estimate exact."""
        client = YCSBClient(repeats=1, noise_sigma=0.0, concurrency=8)
        report = Mnemo(engine_factory=RedisLike, client=client).profile(
            small_trace
        )
        points = measure_curve(
            small_trace, report.pattern.order, RedisLike,
            prefix_counts(small_trace.n_keys, 5), client=client,
        )
        errors = estimate_errors(report.curve, points)
        assert np.abs(errors).max() < 1.0
        # endpoints telescope exactly
        b = report.baselines
        assert report.curve.runtime_ns[-1] == pytest.approx(
            b.fast_runtime_ns, rel=1e-9
        )

    def test_gap_shrinks_with_contention_free_cpu(self, small_trace):
        """More threads -> memory contention grows -> the Fast/Slow gap
        widens (the memory term matters more)."""
        gaps = {}
        for n in (1, 8):
            client = YCSBClient(repeats=1, noise_sigma=0.0, concurrency=n)
            fast = client.execute(small_trace, deploy(small_trace, fast=True))
            slow = client.execute(small_trace, deploy(small_trace))
            gaps[n] = fast.throughput_ops_s / slow.throughput_ops_s
        assert gaps[8] > gaps[1]
