"""Tests for the extra workload presets."""

import pytest

from repro.core import Mnemo
from repro.kvstore import RedisLike
from repro.ycsb import generate_trace, workload_by_name
from repro.ycsb.presets import (
    EXTRA_WORKLOADS,
    FEED_SCROLL,
    TABLE_III_WORKLOADS,
    UNIFORM_CACHE,
    WRITE_BURST,
)


class TestCatalog:
    def test_three_extras(self):
        assert len(EXTRA_WORKLOADS) == 3
        names = {w.name for w in EXTRA_WORKLOADS}
        assert names == {"feed_scroll", "write_burst", "uniform_cache"}

    def test_lookup_covers_extras(self):
        assert workload_by_name("feed_scroll") is FEED_SCROLL

    def test_no_name_collisions_with_table_iii(self):
        table = {w.name for w in TABLE_III_WORKLOADS}
        extra = {w.name for w in EXTRA_WORKLOADS}
        assert not table & extra

    @pytest.mark.parametrize("w", EXTRA_WORKLOADS, ids=lambda w: w.name)
    def test_all_generate(self, w):
        t = generate_trace(w.scaled(n_keys=200, n_requests=2_000))
        assert t.n_requests >= 2_000  # scans may expand


class TestShapes:
    # 10 KB records barely move RedisLike (Fig 5c), so the shape tests
    # use the memory-bound DynamoLike engine
    def _choice(self, spec, quiet_client):
        from repro.kvstore import DynamoLike

        trace = generate_trace(spec.scaled(n_keys=300, n_requests=4_000))
        return Mnemo(engine_factory=DynamoLike,
                     client=quiet_client).profile(trace).choose(0.10)

    def test_write_burst_cheapest(self, quiet_client):
        """Write-dominated ingest barely feels SlowMem (Fig 5b logic)."""
        choice = self._choice(WRITE_BURST, quiet_client)
        assert choice.cost_factor < 0.25

    def test_uniform_cache_most_expensive(self, quiet_client):
        """No skew -> every byte is equally hot -> little to save."""
        uniform = self._choice(UNIFORM_CACHE, quiet_client)
        burst = self._choice(WRITE_BURST, quiet_client)
        assert uniform.cost_factor > burst.cost_factor

    def test_feed_scroll_scans_flatten_savings(self, quiet_client):
        """Scans drag in cold neighbours, costing more than the same
        distribution with point reads."""
        from dataclasses import replace

        scan_choice = self._choice(FEED_SCROLL, quiet_client)
        point_spec = replace(FEED_SCROLL, name="feed_point",
                             scan_fraction=0.0)
        point_choice = self._choice(point_spec, quiet_client)
        assert scan_choice.cost_factor >= point_choice.cost_factor
