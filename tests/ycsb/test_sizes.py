"""Tests for the record-size models."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.ycsb.sizes import (
    PHOTO_CAPTION,
    PREVIEW_MIX,
    SIZE_MODELS,
    TEXT_POST,
    THUMBNAIL,
    SizeModel,
    record_sizes,
    size_model,
)


class TestPresets:
    def test_registry_complete(self):
        assert set(SIZE_MODELS) == {
            "thumbnail", "text_post", "photo_caption", "preview_mix",
        }

    def test_lookup(self):
        assert size_model("thumbnail") is THUMBNAIL

    def test_unknown_lookup(self):
        with pytest.raises(ConfigurationError):
            size_model("video")

    @pytest.mark.parametrize("model,center", [
        (THUMBNAIL, 100_000), (TEXT_POST, 10_000), (PHOTO_CAPTION, 1_000),
    ])
    def test_medians_match_table_iii(self, model, center):
        draws = model.sample(20_000, seed=1)
        assert np.median(draws) == pytest.approx(center, rel=0.05)

    def test_table_iii_ordering(self):
        """Thumbnail >> text post >> caption (two orders of magnitude)."""
        assert THUMBNAIL.median_bytes == 10 * TEXT_POST.median_bytes
        assert TEXT_POST.median_bytes == 10 * PHOTO_CAPTION.median_bytes


class TestSampling:
    def test_deterministic(self):
        a = THUMBNAIL.sample(100, seed=3)
        b = THUMBNAIL.sample(100, seed=3)
        assert np.array_equal(a, b)

    def test_clipping(self):
        m = SizeModel(name="x", median_bytes=100, sigma=3.0,
                      min_bytes=64, max_bytes=200)
        draws = m.sample(10_000, seed=1)
        assert draws.min() >= 64 and draws.max() <= 200

    def test_zero_sigma_constant(self):
        m = SizeModel(name="x", median_bytes=500, sigma=0.0)
        assert (m.sample(100, seed=1) == 500).all()

    def test_negative_n_rejected(self):
        with pytest.raises(ConfigurationError):
            THUMBNAIL.sample(-1)

    def test_integer_output(self):
        assert THUMBNAIL.sample(10, seed=1).dtype == np.int64


class TestMixture:
    def test_weights_validated(self):
        with pytest.raises(ConfigurationError):
            SizeModel(name="bad", components=((0.5, THUMBNAIL),))

    def test_mixture_is_multimodal(self):
        draws = PREVIEW_MIX.sample(30_000, seed=2)
        small = (draws < 3_000).mean()
        medium = ((draws >= 3_000) & (draws < 30_000)).mean()
        large = (draws >= 30_000).mean()
        for share in (small, medium, large):
            assert share == pytest.approx(1 / 3, abs=0.03)

    def test_mixture_mean(self):
        draws = PREVIEW_MIX.sample(50_000, seed=2)
        assert draws.mean() == pytest.approx(PREVIEW_MIX.mean_bytes, rel=0.05)


class TestValidation:
    def test_nonpositive_median(self):
        with pytest.raises(ConfigurationError):
            SizeModel(name="x", median_bytes=0)

    def test_negative_sigma(self):
        with pytest.raises(ConfigurationError):
            SizeModel(name="x", median_bytes=10, sigma=-1)

    def test_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            SizeModel(name="x", median_bytes=10, min_bytes=100, max_bytes=50)


class TestRecordSizesHelper:
    def test_by_name(self):
        a = record_sizes("thumbnail", 50, seed=1)
        b = record_sizes(THUMBNAIL, 50, seed=1)
        assert np.array_equal(a, b)

    def test_length(self):
        assert record_sizes(TEXT_POST, 123, seed=1).shape == (123,)
