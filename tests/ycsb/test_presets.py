"""Tests for the Table III workload presets."""

import pytest

from repro.errors import ConfigurationError
from repro.ycsb import TABLE_III_WORKLOADS, generate_trace, workload_by_name
from repro.ycsb.presets import (
    EDIT_THUMBNAIL,
    NEWS_FEED,
    TIMELINE,
    TRENDING,
    TRENDING_PREVIEW,
)


class TestTableIII:
    def test_five_workloads(self):
        assert len(TABLE_III_WORKLOADS) == 5
        names = [w.name for w in TABLE_III_WORKLOADS]
        assert names == [
            "trending", "news_feed", "timeline", "edit_thumbnail",
            "trending_preview",
        ]

    def test_paper_scale(self):
        for w in TABLE_III_WORKLOADS:
            assert w.n_keys == 10_000
            assert w.n_requests == 100_000

    def test_distributions_match_table(self):
        assert TRENDING.distribution.name == "hotspot"
        assert NEWS_FEED.distribution.name == "latest"
        assert TIMELINE.distribution.name == "scrambled_zipfian"
        assert EDIT_THUMBNAIL.distribution.name == "scrambled_zipfian"
        assert TRENDING_PREVIEW.distribution.name == "hotspot"

    def test_rw_ratios_match_table(self):
        for w in (TRENDING, NEWS_FEED, TIMELINE, TRENDING_PREVIEW):
            assert w.read_fraction == 1.0
        assert EDIT_THUMBNAIL.read_fraction == 0.5

    def test_size_models_match_table(self):
        for w in (TRENDING, NEWS_FEED, TIMELINE, EDIT_THUMBNAIL):
            assert w.size_model.name == "thumbnail"
        assert TRENDING_PREVIEW.size_model.name == "preview_mix"

    def test_lookup(self):
        assert workload_by_name("Trending") is TRENDING

    def test_lookup_unknown(self):
        with pytest.raises(ConfigurationError):
            workload_by_name("analytics")

    @pytest.mark.parametrize("w", TABLE_III_WORKLOADS, ids=lambda w: w.name)
    def test_all_generate_small_scale(self, w):
        t = generate_trace(w.scaled(n_keys=100, n_requests=1_000))
        assert t.n_requests == 1_000
