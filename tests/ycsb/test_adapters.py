"""Tests for external-trace adapters."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.ycsb.adapters import from_requests, load_keyed_csv


class TestFromRequests:
    def test_interning_first_appearance_order(self):
        t = from_requests(
            keys=["user:9", "item:2", "user:9", "item:7"],
            ops=["GET", "GET", "SET", "GET"],
            sizes=[100, 200, 100, 300],
        )
        assert t.keys.tolist() == [0, 1, 0, 2]
        assert t.record_sizes.tolist() == [100, 200, 300]

    def test_op_classification(self):
        t = from_requests(
            keys=["a", "a", "a", "a"],
            ops=["GET", "SET", "gets", "Delete"],
            sizes=[10, 10, 10, 10],
        )
        assert t.is_read.tolist() == [True, False, True, False]

    def test_unknown_verb_rejected(self):
        with pytest.raises(WorkloadError):
            from_requests(["a"], ["SCAN"], [10])

    def test_size_policy_max(self):
        t = from_requests(["a", "a"], ["SET", "SET"], [10, 30])
        assert t.record_sizes[0] == 30

    def test_size_policy_last(self):
        t = from_requests(["a", "a"], ["SET", "SET"], [30, 10],
                          size_policy="last")
        assert t.record_sizes[0] == 10

    def test_size_policy_first(self):
        t = from_requests(["a", "a"], ["SET", "SET"], [30, 10],
                          size_policy="first")
        assert t.record_sizes[0] == 30

    def test_unknown_policy_rejected(self):
        with pytest.raises(WorkloadError):
            from_requests(["a"], ["GET"], [10], size_policy="avg")

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(WorkloadError):
            from_requests(["a"], ["GET", "GET"], [10, 10])

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            from_requests([], [], [])

    def test_nonpositive_size_rejected(self):
        with pytest.raises(WorkloadError):
            from_requests(["a"], ["GET"], [0])

    def test_integer_keys_work_too(self):
        t = from_requests([42, 7, 42], ["GET"] * 3, [10, 20, 10])
        assert t.keys.tolist() == [0, 1, 0]

    def test_feeds_mnemo_pipeline(self, quiet_client):
        """An adapted trace goes straight through the consultant."""
        from repro.core import Mnemo
        from repro.kvstore import RedisLike

        rng = np.random.default_rng(0)
        raw_keys = [f"obj:{int(k)}" for k in rng.zipf(1.5, 2_000) % 50]
        t = from_requests(raw_keys, ["GET"] * len(raw_keys),
                          [50_000] * len(raw_keys), name="adapted")
        report = Mnemo(engine_factory=RedisLike,
                       client=quiet_client).profile(t)
        assert report.workload == "adapted"
        assert report.baselines.throughput_gap > 1.0


class TestLoadKeyedCsv:
    def _write(self, tmp_path, text, name="trace.csv"):
        path = tmp_path / name
        path.write_text(text)
        return path

    def test_roundtrip(self, tmp_path):
        path = self._write(
            tmp_path,
            "key,op,size_bytes\nu1,GET,100\nu2,SET,200\nu1,GET,100\n",
        )
        t = load_keyed_csv(path)
        assert t.name == "trace"
        assert t.n_requests == 3
        assert t.n_keys == 2
        assert t.read_fraction == pytest.approx(2 / 3)

    def test_no_header_mode(self, tmp_path):
        path = self._write(tmp_path, "u1,GET,100\n")
        t = load_keyed_csv(path, has_header=False)
        assert t.n_requests == 1

    def test_malformed_row(self, tmp_path):
        path = self._write(tmp_path, "key,op,size_bytes\nu1,GET\n")
        with pytest.raises(WorkloadError):
            load_keyed_csv(path)

    def test_bad_size(self, tmp_path):
        path = self._write(tmp_path, "key,op,size_bytes\nu1,GET,big\n")
        with pytest.raises(WorkloadError):
            load_keyed_csv(path)

    def test_empty_file(self, tmp_path):
        path = self._write(tmp_path, "")
        with pytest.raises(WorkloadError):
            load_keyed_csv(path)

    def test_name_override(self, tmp_path):
        path = self._write(tmp_path, "key,op,size_bytes\nu1,GET,10\n")
        assert load_keyed_csv(path, name="prod").name == "prod"
