"""Tests for the request-key distributions."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.ycsb.distributions import (
    DistributionSpec,
    empirical_cdf_over_keys,
    key_probabilities,
    sample_keys,
    zipfian_weights,
)

N_KEYS = 1_000
N_REQ = 50_000


def spec(name, **kw):
    return DistributionSpec(name=name, **kw)


class TestSpecValidation:
    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            spec("pareto")

    def test_theta_range(self):
        with pytest.raises(ConfigurationError):
            spec("zipfian", theta=1.0)

    def test_fraction_ranges(self):
        with pytest.raises(ConfigurationError):
            spec("hotspot", hot_data_fraction=0.0)
        with pytest.raises(ConfigurationError):
            spec("hotspot", hot_op_fraction=1.5)


class TestZipfianWeights:
    def test_monotone_decreasing(self):
        w = zipfian_weights(100)
        assert (np.diff(w) < 0).all()

    def test_first_rank_is_one(self):
        assert zipfian_weights(10)[0] == 1.0

    def test_invalid_n(self):
        with pytest.raises(ConfigurationError):
            zipfian_weights(0)


class TestKeyProbabilities:
    @pytest.mark.parametrize("name", [
        "zipfian", "scrambled_zipfian", "hotspot", "latest", "uniform",
    ])
    def test_sums_to_one(self, name):
        p = key_probabilities(spec(name), N_KEYS)
        assert p.shape == (N_KEYS,)
        assert p.sum() == pytest.approx(1.0)

    def test_zipfian_hot_keys_at_start(self):
        p = key_probabilities(spec("zipfian"), N_KEYS)
        assert p[0] == p.max()
        assert p[:10].sum() > p[-10:].sum()

    def test_scrambled_spreads_mass(self):
        p = key_probabilities(spec("scrambled_zipfian"), N_KEYS)
        # same total hot mass as zipfian but the top key is NOT key 0 in general
        top = np.argsort(p)[::-1][:10]
        assert not np.array_equal(np.sort(top), np.arange(10))

    def test_scrambled_preserves_mass_distribution(self):
        pz = np.sort(key_probabilities(spec("zipfian"), N_KEYS))[::-1]
        ps = np.sort(key_probabilities(spec("scrambled_zipfian"), N_KEYS))[::-1]
        # scrambling can merge ranks onto one key, but the head mass matches
        assert ps[:100].sum() == pytest.approx(pz[:100].sum(), rel=0.05)

    def test_hotspot_shape(self):
        p = key_probabilities(
            spec("hotspot", hot_data_fraction=0.2, hot_op_fraction=0.8), N_KEYS
        )
        assert p[:200].sum() == pytest.approx(0.8)
        assert p[200:].sum() == pytest.approx(0.2)
        # uniform within each region
        assert np.allclose(p[:200], p[0])
        assert np.allclose(p[200:], p[-1])

    def test_uniform_flat(self):
        p = key_probabilities(spec("uniform"), N_KEYS)
        assert np.allclose(p, 1.0 / N_KEYS)


class TestSampling:
    @pytest.mark.parametrize("name", [
        "zipfian", "scrambled_zipfian", "hotspot", "latest", "uniform",
        "sequential",
    ])
    def test_keys_in_range(self, name):
        keys = sample_keys(spec(name), N_KEYS, N_REQ, seed=1)
        assert keys.shape == (N_REQ,)
        assert keys.min() >= 0 and keys.max() < N_KEYS

    def test_deterministic(self):
        a = sample_keys(spec("zipfian"), N_KEYS, 1000, seed=5)
        b = sample_keys(spec("zipfian"), N_KEYS, 1000, seed=5)
        assert np.array_equal(a, b)

    def test_seeds_differ(self):
        a = sample_keys(spec("zipfian"), N_KEYS, 1000, seed=5)
        b = sample_keys(spec("zipfian"), N_KEYS, 1000, seed=6)
        assert not np.array_equal(a, b)

    def test_hotspot_empirical_fractions(self):
        keys = sample_keys(
            spec("hotspot", hot_data_fraction=0.2, hot_op_fraction=0.8),
            N_KEYS, N_REQ, seed=2,
        )
        hot_share = (keys < 200).mean()
        assert hot_share == pytest.approx(0.8, abs=0.01)

    def test_zipfian_empirical_matches_theory(self):
        keys = sample_keys(spec("zipfian"), N_KEYS, N_REQ, seed=3)
        p = key_probabilities(spec("zipfian"), N_KEYS)
        counts = np.bincount(keys, minlength=N_KEYS) / N_REQ
        assert counts[0] == pytest.approx(p[0], rel=0.05)

    def test_sequential_wraps(self):
        keys = sample_keys(spec("sequential"), 10, 25, seed=0)
        assert np.array_equal(keys, np.arange(25) % 10)

    def test_latest_window_moves(self):
        keys = sample_keys(spec("latest", window_fraction=0.1),
                           N_KEYS, N_REQ, seed=4)
        # early requests hit the low key range, late requests the high range
        assert keys[: N_REQ // 10].mean() < keys[-N_REQ // 10:].mean()

    def test_latest_covers_most_of_key_space(self):
        keys = sample_keys(spec("latest"), N_KEYS, N_REQ, seed=4)
        assert np.unique(keys).size > 0.9 * N_KEYS

    def test_negative_requests_rejected(self):
        with pytest.raises(ConfigurationError):
            sample_keys(spec("uniform"), 10, -1)

    def test_zero_requests_ok(self):
        assert sample_keys(spec("latest"), 10, 0).size == 0


class TestEmpiricalCdf:
    def test_monotone_and_bounded(self):
        keys = sample_keys(spec("zipfian"), N_KEYS, N_REQ, seed=1)
        cdf = empirical_cdf_over_keys(keys, N_KEYS)
        assert (np.diff(cdf) >= 0).all()
        assert cdf[-1] == pytest.approx(1.0)

    def test_zipfian_cdf_concave_head(self):
        """Fig 3: zipfian front-loads probability mass."""
        keys = sample_keys(spec("zipfian"), N_KEYS, N_REQ, seed=1)
        cdf = empirical_cdf_over_keys(keys, N_KEYS)
        assert cdf[N_KEYS // 10] > 0.5

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            empirical_cdf_over_keys(np.array([], dtype=np.int64), 10)
