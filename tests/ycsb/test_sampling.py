"""Tests for workload downsampling."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.ycsb import downsample, generate_trace
from repro.ycsb.sampling import distribution_distance


class TestDownsample:
    def test_request_count_shrinks(self, small_trace):
        down = downsample(small_trace, factor=10, seed=1)
        assert down.n_requests == pytest.approx(
            small_trace.n_requests / 10, rel=0.01
        )

    def test_dataset_preserved(self, small_trace):
        down = downsample(small_trace, factor=5, seed=1)
        assert np.array_equal(down.record_sizes, small_trace.record_sizes)

    def test_factor_must_exceed_one(self, small_trace):
        with pytest.raises(ConfigurationError):
            downsample(small_trace, factor=1.0)

    def test_name_records_factor(self, small_trace):
        assert downsample(small_trace, factor=4, seed=1).name.endswith("@1/4")

    def test_deterministic(self, small_trace):
        a = downsample(small_trace, factor=5, seed=2)
        b = downsample(small_trace, factor=5, seed=2)
        assert np.array_equal(a.keys, b.keys)

    def test_ops_follow_keys(self, mixed_trace):
        down = downsample(mixed_trace, factor=5, seed=2)
        assert down.read_fraction == pytest.approx(
            mixed_trace.read_fraction, abs=0.05
        )

    def test_distribution_preserved(self, small_trace):
        """Section V-A: sampling preserves the key distribution shape."""
        down = downsample(small_trace, factor=10, seed=3)
        assert distribution_distance(small_trace, down) < 0.08

    def test_temporal_structure_preserved(self, small_spec):
        """Interval sampling keeps `latest`-style drift intact."""
        from dataclasses import replace
        from repro.ycsb.distributions import DistributionSpec

        spec = replace(
            small_spec,
            name="latest_small",
            distribution=DistributionSpec(name="latest"),
        )
        trace = generate_trace(spec)
        down = downsample(trace, factor=5, seed=1)
        half = down.n_requests // 2
        assert down.keys[:half].mean() < down.keys[half:].mean()

    def test_one_pick_per_interval(self, small_trace):
        down = downsample(small_trace, factor=4, seed=1)
        # picks must be strictly increasing positions -> keys come from
        # disjoint windows; verify count equals number of windows
        expected = int(np.ceil(small_trace.n_requests / 4))
        assert down.n_requests == expected


class TestDistributionDistance:
    def test_identical_traces_zero(self, small_trace):
        assert distribution_distance(small_trace, small_trace) == 0.0

    def test_mismatched_key_spaces_rejected(self, small_trace, mixed_trace):
        with pytest.raises(ConfigurationError):
            distribution_distance(small_trace, mixed_trace)
