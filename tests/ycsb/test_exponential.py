"""Tests for the exponential key distribution."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.ycsb.distributions import (
    DistributionSpec,
    key_probabilities,
    sample_keys,
)


class TestExponential:
    def test_ycsb_default_mass(self):
        """95 % of the mass in the first 10 % of the key space."""
        p = key_probabilities(DistributionSpec(name="exponential"), 1_000)
        assert p[:100].sum() == pytest.approx(0.95, abs=0.005)

    def test_custom_parameters(self):
        spec = DistributionSpec(name="exponential", exp_percentile=0.25,
                                exp_frac=0.80)
        p = key_probabilities(spec, 2_000)
        assert p[:500].sum() == pytest.approx(0.80, abs=0.005)

    def test_monotone_decay(self):
        p = key_probabilities(DistributionSpec(name="exponential"), 500)
        assert (np.diff(p) < 0).all()

    def test_empirical_sampling(self):
        spec = DistributionSpec(name="exponential")
        keys = sample_keys(spec, 1_000, 50_000, seed=3)
        assert (keys < 100).mean() == pytest.approx(0.95, abs=0.01)

    def test_exp_frac_validated(self):
        with pytest.raises(ConfigurationError):
            DistributionSpec(name="exponential", exp_frac=1.0)

    def test_exp_percentile_validated(self):
        with pytest.raises(ConfigurationError):
            DistributionSpec(name="exponential", exp_percentile=0.0)

    def test_feeds_pipeline(self, quiet_client):
        from repro.core import Mnemo
        from repro.kvstore import RedisLike
        from repro.ycsb import generate_trace
        from repro.ycsb.sizes import THUMBNAIL
        from repro.ycsb.workload import WorkloadSpec

        spec = WorkloadSpec(
            name="exp_wl",
            distribution=DistributionSpec(name="exponential"),
            read_fraction=1.0,
            size_model=THUMBNAIL,
            n_keys=300,
            n_requests=3_000,
        )
        report = Mnemo(engine_factory=RedisLike,
                       client=quiet_client).profile(generate_trace(spec))
        # exponential is extremely concentrated -> cheap SLO sizing
        assert report.choose(0.10).cost_factor < 0.45
