"""Tests for trace CSV/NPZ persistence and corruption handling."""

import numpy as np
import pytest

from repro.errors import ReproError, WorkloadError
from repro.ycsb import (
    load_trace_csv,
    load_trace_npz,
    save_trace_csv,
    save_trace_npz,
)


class TestRoundtrip:
    def test_roundtrip_preserves_trace(self, small_trace, tmp_path):
        req, data = save_trace_csv(small_trace, tmp_path)
        loaded = load_trace_csv(req, data)
        assert loaded.name == small_trace.name
        assert np.array_equal(loaded.keys, small_trace.keys)
        assert np.array_equal(loaded.is_read, small_trace.is_read)
        assert np.array_equal(loaded.record_sizes, small_trace.record_sizes)

    def test_mixed_ops_roundtrip(self, mixed_trace, tmp_path):
        req, data = save_trace_csv(mixed_trace, tmp_path)
        loaded = load_trace_csv(req, data)
        assert np.array_equal(loaded.is_read, mixed_trace.is_read)

    def test_name_override(self, small_trace, tmp_path):
        req, data = save_trace_csv(small_trace, tmp_path)
        assert load_trace_csv(req, data, name="custom").name == "custom"

    def test_creates_directory(self, small_trace, tmp_path):
        target = tmp_path / "nested" / "dir"
        req, data = save_trace_csv(small_trace, target)
        assert req.exists() and data.exists()


class TestMalformedInput:
    def test_bad_request_header(self, small_trace, tmp_path):
        req, data = save_trace_csv(small_trace, tmp_path)
        req.write_text("wrong,header\n0,READ\n")
        with pytest.raises(WorkloadError):
            load_trace_csv(req, data)

    def test_bad_dataset_header(self, small_trace, tmp_path):
        req, data = save_trace_csv(small_trace, tmp_path)
        data.write_text("wrong,header\n0,100\n")
        with pytest.raises(WorkloadError):
            load_trace_csv(req, data)

    def test_unknown_op_rejected(self, small_trace, tmp_path):
        req, data = save_trace_csv(small_trace, tmp_path)
        req.write_text("key,op\n0,SCAN\n")
        with pytest.raises(WorkloadError):
            load_trace_csv(req, data)

    def test_sparse_key_space_rejected(self, small_trace, tmp_path):
        req, data = save_trace_csv(small_trace, tmp_path)
        req.write_text("key,op\n0,READ\n")
        data.write_text("key,size_bytes\n0,100\n5,100\n")
        with pytest.raises(WorkloadError):
            load_trace_csv(req, data)

    def test_malformed_row_rejected(self, small_trace, tmp_path):
        req, data = save_trace_csv(small_trace, tmp_path)
        req.write_text("key,op\n0,READ,extra\n")
        with pytest.raises(WorkloadError):
            load_trace_csv(req, data)

    def test_write_alias_accepted(self, small_trace, tmp_path):
        req, data = save_trace_csv(small_trace, tmp_path)
        req.write_text("key,op\n0,WRITE\n")
        loaded = load_trace_csv(req, data)
        assert not loaded.is_read[0]

    def test_non_integer_key_rejected(self, small_trace, tmp_path):
        req, data = save_trace_csv(small_trace, tmp_path)
        req.write_text("key,op\nabc,READ\n")
        with pytest.raises(WorkloadError, match="non-integer key"):
            load_trace_csv(req, data)

    def test_non_integer_size_rejected(self, small_trace, tmp_path):
        req, data = save_trace_csv(small_trace, tmp_path)
        req.write_text("key,op\n0,READ\n")
        data.write_text("key,size_bytes\n0,huge\n")
        with pytest.raises(WorkloadError, match="non-integer size"):
            load_trace_csv(req, data)

    def test_missing_file_raises_workload_error(self, small_trace, tmp_path):
        req, data = save_trace_csv(small_trace, tmp_path)
        with pytest.raises(WorkloadError, match="unreadable"):
            load_trace_csv(tmp_path / "nope.csv", data)
        with pytest.raises(WorkloadError, match="unreadable"):
            load_trace_csv(req, tmp_path / "nope.csv")

    def test_errors_catchable_as_repro_error(self, small_trace, tmp_path):
        req, data = save_trace_csv(small_trace, tmp_path)
        req.write_text("key,op\nabc,READ\n")
        with pytest.raises(ReproError):
            load_trace_csv(req, data)


class TestNpz:
    def test_roundtrip_preserves_trace(self, mixed_trace, tmp_path):
        path = save_trace_npz(mixed_trace, tmp_path / "t.npz")
        loaded = load_trace_npz(path)
        assert loaded.name == mixed_trace.name
        assert np.array_equal(loaded.keys, mixed_trace.keys)
        assert np.array_equal(loaded.is_read, mixed_trace.is_read)
        assert np.array_equal(loaded.record_sizes, mixed_trace.record_sizes)

    def test_missing_file(self, tmp_path):
        with pytest.raises(WorkloadError, match="truncated or unreadable"):
            load_trace_npz(tmp_path / "absent.npz")

    def test_truncated_archive(self, small_trace, tmp_path):
        path = save_trace_npz(small_trace, tmp_path / "t.npz")
        path.write_bytes(path.read_bytes()[:64])
        with pytest.raises(WorkloadError, match="truncated or unreadable"):
            load_trace_npz(path)

    def test_bit_flip_detected(self, small_trace, tmp_path):
        path = save_trace_npz(small_trace, tmp_path / "t.npz")
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(WorkloadError):
            load_trace_npz(path)

    def test_missing_array_reported(self, small_trace, tmp_path):
        path = tmp_path / "partial.npz"
        with path.open("wb") as fh:
            np.savez_compressed(fh, keys=small_trace.keys)
        with pytest.raises(WorkloadError, match="missing arrays"):
            load_trace_npz(path)

    def test_not_an_archive(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(WorkloadError, match="truncated or unreadable"):
            load_trace_npz(path)
