"""Tests for trace CSV persistence."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.ycsb import load_trace_csv, save_trace_csv


class TestRoundtrip:
    def test_roundtrip_preserves_trace(self, small_trace, tmp_path):
        req, data = save_trace_csv(small_trace, tmp_path)
        loaded = load_trace_csv(req, data)
        assert loaded.name == small_trace.name
        assert np.array_equal(loaded.keys, small_trace.keys)
        assert np.array_equal(loaded.is_read, small_trace.is_read)
        assert np.array_equal(loaded.record_sizes, small_trace.record_sizes)

    def test_mixed_ops_roundtrip(self, mixed_trace, tmp_path):
        req, data = save_trace_csv(mixed_trace, tmp_path)
        loaded = load_trace_csv(req, data)
        assert np.array_equal(loaded.is_read, mixed_trace.is_read)

    def test_name_override(self, small_trace, tmp_path):
        req, data = save_trace_csv(small_trace, tmp_path)
        assert load_trace_csv(req, data, name="custom").name == "custom"

    def test_creates_directory(self, small_trace, tmp_path):
        target = tmp_path / "nested" / "dir"
        req, data = save_trace_csv(small_trace, target)
        assert req.exists() and data.exists()


class TestMalformedInput:
    def test_bad_request_header(self, small_trace, tmp_path):
        req, data = save_trace_csv(small_trace, tmp_path)
        req.write_text("wrong,header\n0,READ\n")
        with pytest.raises(WorkloadError):
            load_trace_csv(req, data)

    def test_bad_dataset_header(self, small_trace, tmp_path):
        req, data = save_trace_csv(small_trace, tmp_path)
        data.write_text("wrong,header\n0,100\n")
        with pytest.raises(WorkloadError):
            load_trace_csv(req, data)

    def test_unknown_op_rejected(self, small_trace, tmp_path):
        req, data = save_trace_csv(small_trace, tmp_path)
        req.write_text("key,op\n0,SCAN\n")
        with pytest.raises(WorkloadError):
            load_trace_csv(req, data)

    def test_sparse_key_space_rejected(self, small_trace, tmp_path):
        req, data = save_trace_csv(small_trace, tmp_path)
        req.write_text("key,op\n0,READ\n")
        data.write_text("key,size_bytes\n0,100\n5,100\n")
        with pytest.raises(WorkloadError):
            load_trace_csv(req, data)

    def test_malformed_row_rejected(self, small_trace, tmp_path):
        req, data = save_trace_csv(small_trace, tmp_path)
        req.write_text("key,op\n0,READ,extra\n")
        with pytest.raises(WorkloadError):
            load_trace_csv(req, data)

    def test_write_alias_accepted(self, small_trace, tmp_path):
        req, data = save_trace_csv(small_trace, tmp_path)
        req.write_text("key,op\n0,WRITE\n")
        loaded = load_trace_csv(req, data)
        assert not loaded.is_read[0]
