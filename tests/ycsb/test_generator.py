"""Tests for trace generation."""

import numpy as np
import pytest

from dataclasses import replace

from repro.ycsb.distributions import DistributionSpec
from repro.ycsb.generator import generate_trace
from repro.ycsb.sizes import THUMBNAIL
from repro.ycsb.workload import WorkloadSpec


def spec(**kw):
    defaults = dict(
        name="gen_test",
        distribution=DistributionSpec(name="zipfian"),
        read_fraction=0.7,
        size_model=THUMBNAIL,
        n_keys=100,
        n_requests=2_000,
        seed=5,
    )
    defaults.update(kw)
    return WorkloadSpec(**defaults)


class TestDeterminism:
    def test_same_spec_same_trace(self):
        a, b = generate_trace(spec()), generate_trace(spec())
        assert np.array_equal(a.keys, b.keys)
        assert np.array_equal(a.is_read, b.is_read)
        assert np.array_equal(a.record_sizes, b.record_sizes)

    def test_seed_changes_trace(self):
        a = generate_trace(spec())
        b = generate_trace(spec(seed=6))
        assert not np.array_equal(a.keys, b.keys)

    def test_read_ratio_change_keeps_key_sequence(self):
        """Fig 5b's controlled comparison: same keys, different op mix."""
        a = generate_trace(spec(read_fraction=1.0))
        b = generate_trace(spec(read_fraction=0.5))
        assert np.array_equal(a.keys, b.keys)
        assert not np.array_equal(a.is_read, b.is_read)

    def test_size_model_change_keeps_key_sequence(self):
        """Fig 5c's controlled comparison: same keys, different sizes."""
        small = replace(THUMBNAIL, median_bytes=1_000)
        a = generate_trace(spec())
        b = generate_trace(spec(size_model=small))
        assert np.array_equal(a.keys, b.keys)


class TestShape:
    def test_dimensions(self):
        t = generate_trace(spec())
        assert t.n_requests == 2_000
        assert t.n_keys == 100
        assert t.name == "gen_test"

    def test_read_fraction_realised(self):
        t = generate_trace(spec(read_fraction=0.7, n_requests=20_000))
        assert t.read_fraction == pytest.approx(0.7, abs=0.02)

    def test_read_only_exact(self):
        t = generate_trace(spec(read_fraction=1.0))
        assert t.is_read.all()

    def test_write_only_exact(self):
        t = generate_trace(spec(read_fraction=0.0))
        assert not t.is_read.any()
