"""Tests for the YCSB client."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, WorkloadError
from repro.kvstore import HybridDeployment, MemcachedLike, RedisLike
from repro.memsim import HybridMemorySystem
from repro.ycsb import YCSBClient
from repro.ycsb.workload import Trace


def deploy(sizes, fast_keys=(), factory=RedisLike):
    return HybridDeployment(
        factory, HybridMemorySystem.testbed(),
        np.asarray(sizes, dtype=np.int64), fast_keys=fast_keys,
    )


def trace_of(keys, is_read, sizes, name="t"):
    return Trace(
        name=name,
        keys=np.asarray(keys, dtype=np.int64),
        is_read=np.asarray(is_read, dtype=bool),
        record_sizes=np.asarray(sizes, dtype=np.int64),
    )


class TestConstruction:
    def test_invalid_repeats(self):
        with pytest.raises(ConfigurationError):
            YCSBClient(repeats=0)

    def test_key_space_mismatch_rejected(self, quiet_client):
        t = trace_of([0], [True], [100, 200])
        with pytest.raises(WorkloadError):
            quiet_client.execute(t, deploy([100]))


class TestNoiselessTiming:
    def test_runtime_matches_hand_formula(self, quiet_client):
        t = trace_of([0, 0], [True, True], [10_000])
        dep = deploy([10_000], fast_keys=[0])
        result = quiet_client.execute(t, dep)
        prof = dep.profile
        per_req = prof.read_cpu_ns + prof.read_passes * (
            65.7 + (10_000 + prof.metadata_bytes) / 14.9
        )
        assert result.runtime_ns == pytest.approx(2 * per_req, rel=1e-9)

    def test_slow_placement_slower(self, quiet_client):
        t = trace_of([0] * 100, [True] * 100, [100_000])
        fast = quiet_client.execute(t, deploy([100_000], fast_keys=[0]))
        slow = quiet_client.execute(t, deploy([100_000]))
        assert slow.runtime_ns > fast.runtime_ns
        assert fast.throughput_ops_s > slow.throughput_ops_s

    def test_read_write_split(self, quiet_client):
        t = trace_of([0, 0, 0, 0], [True, True, False, False], [10_000])
        result = quiet_client.execute(t, deploy([10_000]))
        assert result.n_reads == 2 and result.n_writes == 2
        assert result.avg_read_ns > 0 and result.avg_write_ns > 0
        total = 2 * result.avg_read_ns + 2 * result.avg_write_ns
        assert total == pytest.approx(result.runtime_ns, rel=1e-9)

    def test_writes_cheaper_than_reads_on_slow(self, quiet_client):
        """Section III: writes are less exposed to SlowMem latency."""
        t = trace_of([0, 0], [True, False], [100_000])
        result = quiet_client.execute(t, deploy([100_000]))
        prof = deploy([100_000]).profile
        read_mem = result.avg_read_ns - prof.read_cpu_ns
        write_mem = result.avg_write_ns - prof.write_cpu_ns
        assert write_mem < read_mem


class TestStatistics:
    def test_throughput_definition(self, quiet_client):
        t = trace_of([0] * 10, [True] * 10, [1_000])
        r = quiet_client.execute(t, deploy([1_000]))
        assert r.throughput_ops_s == pytest.approx(
            10 / (r.runtime_ns / 1e9)
        )

    def test_avg_latency_definition(self, quiet_client):
        t = trace_of([0] * 10, [True] * 10, [1_000])
        r = quiet_client.execute(t, deploy([1_000]))
        assert r.avg_latency_ns == pytest.approx(r.runtime_ns / 10)

    def test_percentiles_recorded(self):
        client = YCSBClient(repeats=2, noise_sigma=0.05, seed=1)
        t = trace_of([0] * 500, [True] * 500, [1_000])
        r = client.execute(t, deploy([1_000]))
        assert r.percentile(50.0) <= r.percentile(95.0) <= r.percentile(99.0)

    def test_unrecorded_percentile_raises(self, quiet_client):
        t = trace_of([0], [True], [1_000])
        r = quiet_client.execute(t, deploy([1_000]))
        with pytest.raises(ConfigurationError):
            r.percentile(99.9)

    def test_repeats_reduce_runtime_std(self):
        t = trace_of([0] * 200, [True] * 200, [1_000])
        multi = YCSBClient(repeats=5, noise_sigma=0.05, seed=3)
        r = multi.execute(t, deploy([1_000]))
        assert r.repeats == 5
        assert r.runtime_std_ns > 0


class TestDeterminism:
    def test_same_seed_same_result(self):
        t = trace_of([0] * 100, [True] * 100, [1_000])
        a = YCSBClient(repeats=2, seed=9).execute(t, deploy([1_000]))
        b = YCSBClient(repeats=2, seed=9).execute(t, deploy([1_000]))
        assert a.runtime_ns == b.runtime_ns

    def test_different_seed_differs(self):
        t = trace_of([0] * 100, [True] * 100, [1_000])
        a = YCSBClient(repeats=1, seed=9).execute(t, deploy([1_000]))
        b = YCSBClient(repeats=1, seed=10).execute(t, deploy([1_000]))
        assert a.runtime_ns != b.runtime_ns


class TestLLCPath:
    def test_llc_speeds_up_hot_trace(self):
        t = trace_of([0] * 1_000, [True] * 1_000, [100_000])
        base = YCSBClient(repeats=1, noise_sigma=0.0)
        with_llc = YCSBClient(repeats=1, noise_sigma=0.0, use_llc=True)
        slow_dep = deploy([100_000])
        r_nollc = base.execute(t, slow_dep)
        r_llc = with_llc.execute(t, deploy([100_000]))
        assert r_llc.runtime_ns < r_nollc.runtime_ns

    def test_llc_neutral_for_streaming_trace(self):
        # every key touched once, dataset >> LLC: no hits after compulsory
        n = 500
        t = trace_of(list(range(n)), [True] * n, [100_000] * n)
        base = YCSBClient(repeats=1, noise_sigma=0.0)
        with_llc = YCSBClient(repeats=1, noise_sigma=0.0, use_llc=True)
        r0 = base.execute(t, deploy([100_000] * n))
        r1 = with_llc.execute(t, deploy([100_000] * n))
        assert r1.runtime_ns == pytest.approx(r0.runtime_ns, rel=1e-6)


class TestEngineComparison:
    def test_memcached_less_sensitive_than_redis(self, quiet_client):
        """Fig 8b ordering on a minimal workload."""
        t = trace_of([0] * 100, [True] * 100, [100_000])
        gaps = {}
        for factory in (RedisLike, MemcachedLike):
            fast = quiet_client.execute(t, deploy([100_000], [0], factory))
            slow = quiet_client.execute(t, deploy([100_000], (), factory))
            gaps[factory] = fast.throughput_ops_s / slow.throughput_ops_s
        assert gaps[RedisLike] > gaps[MemcachedLike]
