"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        errors.CapacityError,
        errors.AllocationError,
        errors.KeyNotFoundError,
        errors.ConfigurationError,
        errors.WorkloadError,
        errors.EstimateError,
        errors.PlacementError,
        errors.PricingError,
        errors.FaultError,
        errors.ExperimentTimeoutError,
        errors.CacheCorruptionError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_key_not_found_is_also_keyerror(self):
        assert issubclass(errors.KeyNotFoundError, KeyError)

    def test_timeout_is_fault_and_timeout(self):
        assert issubclass(errors.ExperimentTimeoutError, errors.FaultError)
        assert issubclass(errors.ExperimentTimeoutError, TimeoutError)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.CapacityError("full")

    @pytest.mark.parametrize("exc", [
        errors.FaultError,
        errors.ExperimentTimeoutError,
        errors.CacheCorruptionError,
    ])
    def test_new_fault_errors_catchable_as_base(self, exc):
        with pytest.raises(errors.ReproError):
            raise exc("boom")
