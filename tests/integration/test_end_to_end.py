"""End-to-end operator story: from a raw request log to a deployment.

Walks the full path a real user would take — external trace in, CSV
artefacts out, placement realised, recommendation verified against a
measured run — crossing every package boundary in one test.
"""

import numpy as np
import pytest

from repro.core import Mnemo, MnemoT, WorkloadDescriptor
from repro.kvstore import RedisLike
from repro.memsim import HybridMemorySystem
from repro.ycsb import YCSBClient, save_trace_csv
from repro.ycsb.adapters import from_requests


@pytest.fixture(scope="module")
def raw_log():
    """A synthetic production log: string keys, GET/SET verbs, sizes."""
    rng = np.random.default_rng(12)
    n_keys, n_req = 400, 8_000
    # zipf-flavoured popularity over opaque keys
    ranks = np.minimum(rng.zipf(1.3, n_req) - 1, n_keys - 1)
    perm = rng.permutation(n_keys)
    keys = [f"sess:{perm[r]:05d}" for r in ranks]
    ops = np.where(rng.random(n_req) < 0.9, "GET", "SET").tolist()
    sizes_by_rank = rng.integers(20_000, 120_000, n_keys)
    sizes = [int(sizes_by_rank[perm[r]]) for r in ranks]
    return keys, ops, sizes


class TestOperatorStory:
    def test_full_path(self, raw_log, tmp_path):
        keys, ops, sizes = raw_log

        # 1. adapt the external log
        trace = from_requests(keys, ops, sizes, name="prod_cache")
        assert trace.n_keys <= 400

        # 2. persist + reload the descriptor (team hand-off artefact)
        req_path, data_path = save_trace_csv(trace, tmp_path)
        descriptor = WorkloadDescriptor.from_csv(req_path, data_path)

        # 3. profile with MnemoT (the recommended configuration)
        client = YCSBClient(repeats=2, noise_sigma=0.01, seed=21)
        mnemot = MnemoT(engine_factory=RedisLike, client=client)
        report = mnemot.profile(descriptor)
        assert report.baselines.throughput_gap > 1.0

        # 4. artefacts: the paper CSV + the markdown report
        curve_csv = report.write_csv(tmp_path / "curve.csv")
        md = report.write_markdown(tmp_path / "report.md")
        assert curve_csv.exists() and md.exists()

        # 5. pick and realise the sizing
        choice = report.choose(0.10)
        deployment = mnemot.place(report, choice)
        assert deployment.fast_mask.sum() == choice.n_fast_keys
        assert deployment.fast_bytes() <= \
            deployment.system.fast.capacity_bytes

        # 6. the recommendation holds against a measured run
        measured = client.execute(descriptor.to_trace(), deployment)
        ideal = report.baselines.fast.throughput_ops_s
        assert measured.throughput_ops_s >= 0.88 * ideal  # 10 % SLO + noise

        # 7. and the drift guardrail signs off on static placement
        drift = report.drift_check(descriptor.to_trace())
        assert drift.stationary

    def test_stand_alone_vs_tiered_consistency(self, raw_log):
        """Both facades agree on the baselines; tiered never costs more."""
        keys, ops, sizes = raw_log
        trace = from_requests(keys, ops, sizes, name="prod_cache")
        client = YCSBClient(repeats=1, noise_sigma=0.0)
        plain = Mnemo(engine_factory=RedisLike, client=client).profile(trace)
        tiered = MnemoT(engine_factory=RedisLike, client=client).profile(trace)
        assert plain.baselines.slow_runtime_ns == pytest.approx(
            tiered.baselines.slow_runtime_ns
        )
        assert (tiered.choose(0.10).cost_factor
                <= plain.choose(0.10).cost_factor + 1e-12)
