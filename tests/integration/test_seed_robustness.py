"""Seed-robustness: headline shapes are not a seed lottery.

Re-runs the core qualitative results across several workload seeds at
reduced scale; every paper-shape assertion must hold for each seed.
"""

import pytest

from repro.core import Mnemo
from repro.kvstore import DynamoLike, MemcachedLike, RedisLike
from repro.ycsb import YCSBClient, generate_trace, workload_by_name

SEEDS = [1, 202, 40_404]
SCALE = dict(n_keys=400, n_requests=6_000)


@pytest.fixture(scope="module", params=SEEDS, ids=lambda s: f"seed{s}")
def seeded_traces(request):
    seed = request.param
    return {
        name: generate_trace(
            workload_by_name(name).scaled(**SCALE).with_seed(seed)
        )
        for name in ("trending", "news_feed", "timeline", "edit_thumbnail")
    }


@pytest.fixture(scope="module")
def client():
    return YCSBClient(repeats=2, noise_sigma=0.01, seed=99)


class TestShapesAcrossSeeds:
    def test_redis_gap_band(self, seeded_traces, client):
        report = Mnemo(engine_factory=RedisLike, client=client).profile(
            seeded_traces["trending"]
        )
        assert 1.30 < report.baselines.throughput_gap < 1.55

    def test_store_ordering(self, seeded_traces, client):
        gaps = {}
        for factory in (RedisLike, MemcachedLike, DynamoLike):
            report = Mnemo(engine_factory=factory, client=client).profile(
                seeded_traces["trending"]
            )
            gaps[factory.__name__] = report.baselines.throughput_gap
        assert gaps["DynamoLike"] > gaps["RedisLike"] > gaps["MemcachedLike"]

    def test_fig9_relations(self, seeded_traces, client):
        mnemo = Mnemo(engine_factory=RedisLike, client=client)
        costs = {
            name: mnemo.profile(trace).choose(0.10).cost_factor
            for name, trace in seeded_traces.items()
        }
        assert costs["trending"] < costs["news_feed"]
        assert costs["edit_thumbnail"] < costs["timeline"]

    def test_memcached_floor(self, seeded_traces, client):
        mnemo = Mnemo(engine_factory=MemcachedLike, client=client)
        choice = mnemo.profile(seeded_traces["timeline"]).choose(0.10)
        assert choice.cost_factor == pytest.approx(0.2, abs=0.02)
