"""Integration tests: the paper's headline results at reduced scale.

These run the full pipeline (generate -> baselines -> pattern ->
estimate -> SLO) on scaled-down Table III workloads and assert the
*shapes* the paper reports — who wins, by roughly what factor, where
the crossovers fall.  The benchmarks reproduce the same results at full
paper scale.
"""

import numpy as np
import pytest

from repro.core import Mnemo, MnemoT, estimate_errors, measure_curve, prefix_counts
from repro.kvstore import DynamoLike, MemcachedLike, RedisLike
from repro.ycsb import TABLE_III_WORKLOADS, YCSBClient, generate_trace

SCALE = dict(n_keys=500, n_requests=8_000)


@pytest.fixture(scope="module")
def traces():
    return {w.name: generate_trace(w.scaled(**SCALE))
            for w in TABLE_III_WORKLOADS}


@pytest.fixture(scope="module")
def client():
    return YCSBClient(repeats=2, noise_sigma=0.01, seed=17)


@pytest.fixture(scope="module")
def redis_reports(traces, client):
    mnemo = Mnemo(engine_factory=RedisLike, client=client)
    return {name: mnemo.profile(trace) for name, trace in traces.items()}


class TestFig5aKeyDistribution:
    def test_redis_gap_about_forty_percent(self, redis_reports):
        """FastMem-only ~40 % over SlowMem-only for thumbnail reads."""
        for name in ("trending", "timeline"):
            gap = redis_reports[name].baselines.throughput_gap
            assert gap == pytest.approx(1.40, abs=0.08)

    def test_trending_hot_prefix_narrative(self, traces, client):
        """Hot keys in FastMem (hot-first ordering): ~0.36 cost, ~10 %
        below ideal, ~25-31 % above SlowMem-only (the Fig 5a walkthrough)."""
        report = MnemoT(engine_factory=RedisLike, client=client).profile(
            traces["trending"]
        )
        curve = report.curve
        thr = curve.throughput_ops_s
        i = int(np.searchsorted(curve.cost_factor, 0.36))
        assert thr[i] >= 0.88 * thr[-1]          # within ~10-12 % of ideal
        assert thr[i] / thr[0] >= 1.22           # >=22 % over SlowMem-only

    def test_curve_follows_access_cdf(self, redis_reports, traces):
        """Fig 5a: the throughput trendline tracks the request CDF."""
        report = redis_reports["trending"]
        trace = traces["trending"]
        thr = report.curve.throughput_ops_s
        gain = (thr[1:] - thr[0]) / (thr[-1] - thr[0])
        # CDF over the tiering order
        reads, writes = trace.per_key_counts()
        accesses = (reads + writes)[report.pattern.order]
        cdf = np.cumsum(accesses) / accesses.sum()
        # the residual gap comes from per-key size variation (savings are
        # size-weighted); the trendline still tracks the CDF tightly
        assert np.abs(gain - cdf).max() < 0.15
        assert np.corrcoef(gain, cdf)[0, 1] > 0.995


class TestFig5bReadWriteRatio:
    def test_write_heavy_less_impacted(self, redis_reports):
        """Edit Thumbnail (50:50) suffers less from SlowMem than the
        read-only Timeline over the same access pattern."""
        read_gap = redis_reports["timeline"].baselines.throughput_gap
        write_gap = redis_reports["edit_thumbnail"].baselines.throughput_gap
        assert write_gap < read_gap


class TestFig5cRecordSize:
    def _gap_for(self, client, median):
        from dataclasses import replace
        from repro.ycsb.presets import TIMELINE
        from repro.ycsb.sizes import SizeModel

        spec = replace(
            TIMELINE.scaled(**SCALE), name=f"timeline_{median}",
            size_model=SizeModel(name="s", median_bytes=median, sigma=0.2),
        )
        report = Mnemo(engine_factory=RedisLike, client=client).profile(
            generate_trace(spec)
        )
        return report.baselines.throughput_gap

    def test_bigger_records_bigger_knee(self, client):
        """Section III: big records move the throughput much more than
        small ones — the 'knee' (total recoverable gain) grows with size."""
        gaps = {m: self._gap_for(client, m) for m in (1_000, 10_000, 100_000)}
        assert gaps[1_000] < gaps[10_000] < gaps[100_000]
        assert gaps[1_000] < 1.02       # 1 KB records: barely any impact
        assert gaps[100_000] > 1.30     # 100 KB records: the full Fig 5a gap


class TestFig8bStoreComparison:
    def test_sensitivity_ordering(self, traces, client):
        """DynamoDB most impacted by SlowMem, Memcached least."""
        gaps = {}
        for factory in (RedisLike, MemcachedLike, DynamoLike):
            report = Mnemo(engine_factory=factory, client=client).profile(
                traces["trending"]
            )
            gaps[factory.__name__] = report.baselines.throughput_gap
        assert gaps["DynamoLike"] > gaps["RedisLike"] > gaps["MemcachedLike"]
        assert gaps["MemcachedLike"] < 1.08
        assert gaps["DynamoLike"] > 2.0


class TestFig8aAccuracy:
    def test_median_error_below_paper_scale(self, redis_reports, traces,
                                            client):
        """Estimate error stays in the sub-percent regime (paper: 0.07 %)."""
        errors = []
        for name, report in redis_reports.items():
            points = measure_curve(
                traces[name], report.pattern.order, RedisLike,
                prefix_counts(traces[name].n_keys, 6), client=client,
            )
            errors.extend(estimate_errors(report.curve, points).tolist())
        assert np.median(np.abs(errors)) < 0.3


class TestFig8fMnemoT:
    def test_tiering_reorders_scrambled_to_zipfian_like(self, traces,
                                                        client):
        """MnemoT's weight order front-loads the scrambled zipfian's hot
        keys, recovering throughput much earlier than first-touch."""
        trace = traces["timeline"]
        plain = Mnemo(engine_factory=RedisLike, client=client).profile(trace)
        tiered = MnemoT(engine_factory=RedisLike, client=client).profile(trace)
        assert (tiered.curve.throughput_at_cost(0.5)
                > plain.curve.throughput_at_cost(0.5))


class TestFig9CostReduction:
    def test_memcached_floor_everywhere(self, traces, client):
        mnemo = Mnemo(engine_factory=MemcachedLike, client=client)
        for trace in traces.values():
            choice = mnemo.profile(trace).choose(0.10)
            assert choice.cost_factor == pytest.approx(0.2, abs=0.02)

    def test_redis_trending_near_floor(self, redis_reports):
        choice = redis_reports["trending"].choose(0.10)
        assert choice.cost_factor < 0.5

    def test_redis_news_feed_few_savings(self, redis_reports):
        """News Feed depends on the (shifting) latest keys; static
        placement saves little."""
        trending = redis_reports["trending"].choose(0.10).cost_factor
        news = redis_reports["news_feed"].choose(0.10).cost_factor
        assert news > trending

    def test_writes_allow_more_savings(self, redis_reports):
        edit = redis_reports["edit_thumbnail"].choose(0.10).cost_factor
        timeline = redis_reports["timeline"].choose(0.10).cost_factor
        assert edit < timeline

    def test_dynamo_modest_savings(self, traces, client):
        """DynamoDB tolerates little SlowMem, but still saves 20-30 % on
        favourable patterns."""
        report = Mnemo(engine_factory=DynamoLike, client=client).profile(
            traces["trending"]
        )
        choice = report.choose(0.10)
        assert 0.60 <= choice.cost_factor <= 0.85


class TestDownsampling:
    def test_estimate_transfers_to_downsampled_workload(self, traces,
                                                        client):
        """Section V-A: a 10x-downsampled workload produces the same
        cost/performance conclusions."""
        from repro.ycsb import downsample

        full = traces["trending"]
        down = downsample(full, factor=10, seed=5)
        mnemo = Mnemo(engine_factory=RedisLike, client=client)
        full_choice = mnemo.profile(full).choose(0.10)
        down_choice = mnemo.profile(down).choose(0.10)
        assert down_choice.cost_factor == pytest.approx(
            full_choice.cost_factor, abs=0.08
        )
