"""Tests for the multi-tier extension."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, EstimateError, WorkloadError
from repro.kvstore.profiles import REDIS_PROFILE
from repro.multitier import (
    MultiTierAdvisor,
    MultiTierClient,
    TieredMemorySystem,
    TierSpec,
)


@pytest.fixture
def system():
    return TieredMemorySystem.dram_nvm_far()


@pytest.fixture
def advisor(system):
    return MultiTierAdvisor(system, REDIS_PROFILE, repeats=1,
                            noise_sigma=0.0)


@pytest.fixture
def baselines(advisor, small_trace):
    return advisor.measure(small_trace)


class TestTierSpec:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TierSpec("x", latency_ns=0, bandwidth_gbps=1, price_factor=1)
        with pytest.raises(ConfigurationError):
            TierSpec("x", latency_ns=1, bandwidth_gbps=1, price_factor=1.5)
        with pytest.raises(ConfigurationError):
            TierSpec("x", latency_ns=1, bandwidth_gbps=1, price_factor=0.5,
                     capacity_bytes=0)


class TestTieredMemorySystem:
    def test_preset_ordering(self, system):
        assert system.names == ["DRAM", "NVM", "Far"]
        assert (np.diff(system.latency_array()) > 0).all()
        assert (np.diff(system.price_array()) < 0).all()

    def test_tier0_price_reference_required(self):
        with pytest.raises(ConfigurationError):
            TieredMemorySystem([
                TierSpec("a", 60, 10, 0.9),
                TierSpec("b", 200, 2, 0.2),
            ])

    def test_fast_first_required(self):
        with pytest.raises(ConfigurationError):
            TieredMemorySystem([
                TierSpec("a", 200, 10, 1.0),
                TierSpec("b", 60, 2, 0.2),
            ])

    def test_needs_two_tiers(self):
        with pytest.raises(ConfigurationError):
            TieredMemorySystem([TierSpec("a", 60, 10, 1.0)])

    def test_cost_factor_anchors(self, system):
        assert system.cost_factor([100, 0, 0]) == 1.0
        assert system.cost_factor([0, 100, 0]) == pytest.approx(0.2)
        assert system.cost_factor([0, 0, 100]) == pytest.approx(0.08)

    def test_cost_factor_mix(self, system):
        # 50/30/20 split
        r = system.cost_factor([50, 30, 20])
        assert r == pytest.approx(0.5 + 0.3 * 0.2 + 0.2 * 0.08)

    def test_cost_factor_validation(self, system):
        with pytest.raises(ConfigurationError):
            system.cost_factor([1, 2])
        with pytest.raises(ConfigurationError):
            system.cost_factor([0, 0, 0])

    def test_two_tier_degenerate_matches_paper(self):
        two = TieredMemorySystem.paper_two_tier()
        assert two.cost_factor([20, 80]) == pytest.approx(0.36)


class TestMultiTierClient:
    def test_faster_tier_faster_run(self, system, small_trace):
        client = MultiTierClient(system, REDIS_PROFILE, repeats=1,
                                 noise_sigma=0.0)
        runs = [
            client.execute(small_trace,
                           np.full(small_trace.n_keys, k, dtype=np.int64))
            for k in range(3)
        ]
        assert (runs[0].runtime_ns < runs[1].runtime_ns
                < runs[2].runtime_ns)

    def test_assignment_validation(self, system, small_trace):
        client = MultiTierClient(system, REDIS_PROFILE, repeats=1)
        with pytest.raises(WorkloadError):
            client.execute(small_trace, np.zeros(3, dtype=np.int64))
        with pytest.raises(WorkloadError):
            client.execute(
                small_trace, np.full(small_trace.n_keys, 9, dtype=np.int64)
            )

    def test_matches_two_tier_client(self, small_trace):
        """The degenerate 2-tier system reproduces the paper pipeline's
        numbers exactly (same formula, same noise model off)."""
        from repro.kvstore import HybridDeployment, RedisLike
        from repro.memsim import HybridMemorySystem
        from repro.ycsb import YCSBClient

        two = TieredMemorySystem.paper_two_tier()
        mt_client = MultiTierClient(two, REDIS_PROFILE, repeats=1,
                                    noise_sigma=0.0)
        mt = mt_client.execute(
            small_trace, np.ones(small_trace.n_keys, dtype=np.int64)
        )
        dep = HybridDeployment.all_slow(
            RedisLike, HybridMemorySystem.testbed(), small_trace.record_sizes
        )
        classic = YCSBClient(repeats=1, noise_sigma=0.0).execute(
            small_trace, dep
        )
        assert mt.runtime_ns == pytest.approx(classic.runtime_ns, rel=1e-12)


class TestWaterfall:
    def test_respects_capacities(self, advisor, small_trace):
        total = int(small_trace.record_sizes.sum())
        caps = [total // 4, total // 4, None]
        assignment = advisor.waterfall_assignment(small_trace, caps)
        bytes_t = np.bincount(assignment, weights=small_trace.record_sizes,
                              minlength=3)
        assert bytes_t[0] <= caps[0]
        assert bytes_t[1] <= caps[1]
        assert bytes_t.sum() == total

    def test_hottest_keys_in_fastest_tier(self, advisor, small_trace):
        total = int(small_trace.record_sizes.sum())
        assignment = advisor.waterfall_assignment(
            small_trace, [total // 4, total // 4, None]
        )
        counts = np.bincount(small_trace.keys, minlength=small_trace.n_keys)
        weights = counts / small_trace.record_sizes
        assert weights[assignment == 0].mean() > weights[assignment == 2].mean()

    def test_unfittable_capacity_rejected(self, advisor, small_trace):
        with pytest.raises(EstimateError):
            advisor.waterfall_assignment(small_trace, [100, 100, 100])

    def test_capacity_count_validated(self, advisor, small_trace):
        with pytest.raises(ConfigurationError):
            advisor.waterfall_assignment(small_trace, [None, None])


class TestEstimate:
    def test_estimate_exact_without_noise(self, advisor, baselines,
                                          small_trace):
        """With noiseless baselines and uniform-ish sizes the N-tier
        model telescopes to the measured runtime."""
        total = int(small_trace.record_sizes.sum())
        plan = advisor.estimate(small_trace, baselines,
                                [total // 3, total // 3, None])
        measured = advisor.validate(small_trace, plan)
        assert plan.est_runtime_ns == pytest.approx(
            measured.runtime_ns, rel=0.01
        )

    def test_all_in_tier_endpoints(self, advisor, baselines, small_trace):
        for k in range(3):
            assignment = np.full(small_trace.n_keys, k, dtype=np.int64)
            plan = advisor.estimate_assignment(small_trace, baselines,
                                               assignment)
            assert plan.est_runtime_ns == pytest.approx(
                baselines.runs[k].runtime_ns, rel=1e-9
            )

    def test_cost_between_bounds(self, advisor, baselines, small_trace):
        total = int(small_trace.record_sizes.sum())
        plan = advisor.estimate(small_trace, baselines,
                                [total // 3, total // 3, None])
        assert 0.08 < plan.cost_factor < 1.0

    def test_tier_shares_sum_to_one(self, advisor, baselines, small_trace):
        total = int(small_trace.record_sizes.sum())
        plan = advisor.estimate(small_trace, baselines,
                                [total // 2, None, None])
        assert plan.tier_shares().sum() == pytest.approx(1.0)


class TestSweepAndSlo:
    def _grid(self, total):
        fracs = [0.0, 0.1, 0.25, 0.5, 1.0]
        grid = []
        for f0 in fracs:
            for f1 in fracs:
                if f0 + f1 <= 1.0:
                    grid.append([int(f0 * total) or None if f0 == 0 else
                                 int(f0 * total),
                                 int(f1 * total) if f1 else 1,
                                 None])
        return grid

    def test_sweep_and_pareto(self, advisor, baselines, small_trace):
        total = int(small_trace.record_sizes.sum())
        grid = [[int(f0 * total) + 1, int(f1 * total) + 1, None]
                for f0 in (0.1, 0.3, 0.5) for f1 in (0.1, 0.3, 0.5)]
        plans = advisor.sweep(small_trace, baselines, grid)
        frontier = advisor.pareto(plans)
        assert 1 <= len(frontier) <= len(plans)
        costs = [p.cost_factor for p in frontier]
        thrs = [p.est_throughput_ops_s for p in frontier]
        assert costs == sorted(costs)
        assert thrs == sorted(thrs)

    def test_slo_choice(self, advisor, baselines, small_trace):
        total = int(small_trace.record_sizes.sum())
        grid = [[max(1, int(f0 * total)), max(1, int(f1 * total)), None]
                for f0 in (0.05, 0.2, 0.5, 1.0) for f1 in (0.05, 0.3, 0.6)]
        plans = advisor.sweep(small_trace, baselines, grid)
        choice = advisor.cheapest_within_slo(plans, baselines, 0.10)
        ref = baselines.runs[0].throughput_ops_s
        assert choice.est_throughput_ops_s >= 0.9 * ref
        # three tiers beat the two-tier floor of 0.2 when the far tier
        # can absorb cold data
        assert choice.cost_factor < 1.0

    def test_slo_unreachable_raises(self, advisor, baselines, small_trace):
        assignment = np.full(small_trace.n_keys, 2, dtype=np.int64)
        plan = advisor.estimate_assignment(small_trace, baselines, assignment)
        with pytest.raises(EstimateError):
            advisor.cheapest_within_slo([plan], baselines, 0.0)
