"""Tests for the request plane: deadlines, auth, pooling, and the ops.

Unit tests drive :class:`Deadline` / :class:`AuthRegistry` /
:class:`RequestPlane` directly (microseconds), then the served-advisor
dispatch (`size`/`validate`/`drift`/`reload`, auth gating, degradation,
stale-socket reclamation) through :meth:`GuardService._control` with a
real downsampled advisor — no socket needed, so the whole matrix stays
fast and deterministic.
"""

import json
import threading
import time

import pytest

from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    ServiceError,
    StoreError,
)
from repro.service import (
    AuthRegistry,
    ClientPolicy,
    Deadline,
    GuardService,
    RequestPlane,
    ServeConfig,
    ServiceClient,
    diagnose_unreachable,
    token_digest,
)
from repro.store import (
    KIND_TOKEN_REGISTERED,
    KIND_TOKEN_REVOKED,
    SQLiteStore,
)

#: Cheap, deterministic daemon settings shared by every advisor test.
FAST = dict(downsample=50.0, repeats=1, interval_s=0.1, validate_every=0)


def _config(tmp_path, **kwargs):
    merged = {**FAST, "rundir": str(tmp_path / "run"),
              "run_id": "test-requests", **kwargs}
    return ServeConfig(**merged)


class TestDeadline:
    def test_counts_down_and_expires(self):
        d = Deadline(30.0)
        assert not d.expired
        assert 0 < d.remaining() <= 30.0
        d._expires = time.monotonic() - 1  # force expiry
        assert d.expired
        assert d.remaining() == 0.0

    def test_check_raises_when_expired(self):
        d = Deadline(0.001)
        time.sleep(0.005)
        with pytest.raises(DeadlineExceededError, match="profile"):
            d.check("profile")

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            Deadline(0.0)


class TestAuthRegistry:
    def test_empty_registry_is_open(self):
        registry = AuthRegistry()
        assert not registry.active
        assert registry.authorize(None)
        assert registry.authorize("anything")

    def test_register_locks_and_authorizes(self):
        registry = AuthRegistry()
        registry.register("token-aaaa-1")
        assert registry.active
        assert registry.authorize("token-aaaa-1")
        assert not registry.authorize("token-aaaa-2")
        assert not registry.authorize(None)
        assert not registry.authorize(12345)  # non-strings never pass

    def test_short_tokens_rejected(self):
        with pytest.raises(ConfigurationError, match="8"):
            AuthRegistry().register("short")
        with pytest.raises(ConfigurationError):
            AuthRegistry().register(None)

    def test_revoke_reopens_when_last_token_goes(self):
        registry = AuthRegistry()
        registry.register("token-aaaa-1")
        assert registry.revoke("token-aaaa-1")
        assert not registry.revoke("token-aaaa-1")  # already gone
        assert not registry.active
        assert registry.authorize(None)  # back to bootstrap mode

    def test_replay_folds_register_and_revoke(self, tmp_path):
        store = SQLiteStore(tmp_path / "s.db")
        try:
            log = store.oplog
            log.append("r", KIND_TOKEN_REGISTERED,
                       token_sha256=token_digest("keep-token-1"))
            log.append("r", KIND_TOKEN_REGISTERED,
                       token_sha256=token_digest("gone-token-1"))
            log.append("r", KIND_TOKEN_REVOKED,
                       token_sha256=token_digest("gone-token-1"))
            registry = AuthRegistry.replay(log, "r")
            assert registry.active
            assert registry.authorize("keep-token-1")
            assert not registry.authorize("gone-token-1")
            # other runs' tokens don't leak in
            assert not AuthRegistry.replay(log, "other").active
        finally:
            store.close()


class TestRequestPlane:
    def test_submit_runs_on_worker(self):
        plane = RequestPlane(workers=2, queue_depth=4).start()
        try:
            out = plane.submit(
                "op", lambda: {"ok": True, "n": 7}, Deadline(5.0),
            )
            assert out == {"ok": True, "n": 7}
        finally:
            plane.close()

    def test_full_queue_sheds_with_retry_hint(self):
        from repro.service.requests import _Job

        release = threading.Event()
        picked_up = threading.Event()

        def block():
            picked_up.set()
            release.wait(10.0)
            return {"ok": True}

        plane = RequestPlane(workers=1, queue_depth=1).start()
        try:
            # pin the only worker ...
            threading.Thread(
                target=lambda: plane.submit("op", block, Deadline(10.0)),
                daemon=True,
            ).start()
            assert picked_up.wait(5.0)
            # ... and fill the only queue slot
            plane._queue.put(_Job("op", block, Deadline(10.0)))
            out = plane.submit(
                "op", lambda: {"ok": True}, Deadline(10.0),
            )
            assert out["ok"] is False
            assert out["error"] == "overloaded"
            assert out["retry_after_s"] > 0
            assert out["queue_depth"] == 1
        finally:
            release.set()
            plane.close()

    def test_expired_job_not_executed(self):
        from repro.service.requests import _Job

        ran = []

        def work():
            ran.append(1)
            return {"ok": True}

        plane = RequestPlane(workers=1, queue_depth=2)
        deadline = Deadline(5.0)
        deadline._expires = time.monotonic() - 1.0  # aged out in the queue
        plane._queue.put(_Job("op", work, deadline))
        plane.start()
        try:
            time.sleep(0.2)
            assert ran == []  # worker skipped the stale job
        finally:
            plane.close()

    def test_worker_exception_becomes_structured_error(self):
        plane = RequestPlane(workers=1, queue_depth=2).start()
        try:
            def boom():
                raise RuntimeError("kaput")

            out = plane.submit("op", boom, Deadline(5.0))
            assert out["ok"] is False
            assert out["error"] == "internal_error"
            assert "kaput" in out["detail"]
        finally:
            plane.close()

    def test_deadline_error_becomes_structured_response(self):
        plane = RequestPlane(workers=1, queue_depth=2).start()
        try:
            def slow():
                raise DeadlineExceededError("deadline (1s) exceeded at x")

            out = plane.submit("op", slow, Deadline(1.0))
            assert out["error"] == "deadline_exceeded"
            assert out["deadline_s"] == 1.0
        finally:
            plane.close()

    def test_close_is_idempotent_and_refuses_new_work(self):
        plane = RequestPlane(workers=1, queue_depth=2).start()
        plane.close()
        plane.close()
        out = plane.submit("op", lambda: {"ok": True}, Deadline(1.0))
        assert out["error"] == "shutting_down"

    def test_invalid_sizing_rejected(self):
        with pytest.raises(ConfigurationError):
            RequestPlane(workers=0)
        with pytest.raises(ConfigurationError):
            RequestPlane(queue_depth=0)


class TestClientPolicy:
    def test_backoff_grows_and_is_deterministic(self):
        policy = ClientPolicy(backoff_base_s=0.1, backoff_cap_s=1.0)
        first = policy.backoff_s(1, label="c")
        second = policy.backoff_s(2, label="c")
        assert 0.1 <= first <= 0.125
        assert second > first
        assert policy.backoff_s(9, label="c") <= 1.0 * 1.25  # capped
        assert first == policy.backoff_s(1, label="c")

    def test_labels_desynchronise_jitter(self):
        policy = ClientPolicy()
        assert policy.backoff_s(1, label="a") != policy.backoff_s(
            1, label="b",
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ClientPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            ClientPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigurationError):
            ClientPolicy(timeout_s=0)


class TestServiceClient:
    def test_gives_up_after_attempt_budget(self, tmp_path):
        client = ServiceClient(
            tmp_path / "nope.sock",
            policy=ClientPolicy(max_attempts=2, backoff_base_s=0.001),
        )
        with pytest.raises(ServiceError, match="2 attempts"):
            client.call("ping")
        assert client.attempts == 2

    def test_diagnose_never_started(self, tmp_path):
        message = diagnose_unreachable(
            tmp_path / "s.sock", tmp_path / "hb.json", "boom",
        )
        assert "never started" in message

    def test_diagnose_stopped_gracefully(self, tmp_path):
        hb = tmp_path / "hb.json"
        hb.write_text(json.dumps(
            {"status": "stopped", "pid": 123, "ticks": 9}
        ))
        message = diagnose_unreachable(tmp_path / "s.sock", hb, "boom")
        assert "stopped gracefully" in message
        assert "9 ticks" in message

    def test_diagnose_dead_daemon(self, tmp_path):
        hb = tmp_path / "hb.json"
        hb.write_text(json.dumps(
            {"status": "running", "pid": 123, "ticks": 4}
        ))
        message = diagnose_unreachable(tmp_path / "s.sock", hb, "boom")
        assert "dead since" in message
        assert "pid 123" in message


class TestAuthGating:
    def test_unauthenticated_callers_limited_to_ping(self, tmp_path):
        service = GuardService(_config(tmp_path), tick_fn=lambda: 0)
        try:
            assert service._control(
                {"op": "register", "new_token": "gate-token-1"}
            )["ok"]
            assert service._control({"op": "ping"})["ok"]
            for op in ("status", "metrics", "shutdown", "size",
                       "validate", "drift", "reload", "register",
                       "revoke"):
                reply = service._control({"op": op})
                assert reply["ok"] is False, op
                assert reply["error"] == "unauthorized", op
            ok = service._control(
                {"op": "status", "token": "gate-token-1"}
            )
            assert ok["ok"] and ok["auth_active"]
        finally:
            service._plane.close()

    def test_register_and_revoke_journaled(self, tmp_path):
        store = SQLiteStore(tmp_path / "s.db")
        try:
            config = _config(tmp_path)
            service = GuardService(config, tick_fn=lambda: 0, store=store)
            reg = service._control(
                {"op": "register", "new_token": "journal-token-1"}
            )
            assert reg["ok"]
            assert reg["token_sha256"] == token_digest("journal-token-1")
            service._control({
                "op": "revoke", "token": "journal-token-1",
                "revoke_token": "journal-token-1",
            })
            registered = store.oplog.entries(
                config.run_id, kind=KIND_TOKEN_REGISTERED,
            )
            revoked = store.oplog.entries(
                config.run_id, kind=KIND_TOKEN_REVOKED,
            )
            assert [e.payload["token_sha256"] for e in registered] == [
                token_digest("journal-token-1"),
            ]
            assert [e.payload["token_sha256"] for e in revoked] == [
                token_digest("journal-token-1"),
            ]
            # raw tokens never reach the journal
            for entry in registered + revoked:
                assert "journal-token-1" not in json.dumps(entry.payload)
            service._plane.close()
        finally:
            store.close()

    def test_registry_replayed_across_restart(self, tmp_path):
        store = SQLiteStore(tmp_path / "s.db")
        try:
            config = _config(tmp_path)
            first = GuardService(config, tick_fn=lambda: 0, store=store)
            first._control(
                {"op": "register", "new_token": "durable-token-1"}
            )
            first.run(max_ticks=1)
            # a fresh process: replay from the journal during run()
            second = GuardService(config, tick_fn=lambda: 0, store=store)
            second.run(max_ticks=1)
            assert second._auth.active
            assert second._auth.authorize("durable-token-1")
            reply = second._control({"op": "status"})
            assert reply["error"] == "unauthorized"
        finally:
            store.close()


class TestAdviceOps:
    """The real advisor behind `size`/`validate`/`drift`, downsampled."""

    @pytest.fixture(scope="class")
    def service(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("advice")
        store = SQLiteStore(tmp_path / "s.db")
        service = GuardService(
            _config(tmp_path), tick_fn=lambda: 0, store=store,
        )
        yield service
        service._plane.close()
        store.close()

    def test_size_watched_profile(self, service):
        reply = service._control({"op": "size"})
        assert reply["ok"] and reply["op"] == "size"
        assert reply["watched"] is True
        assert reply["stale"] is False
        choice = reply["choice"]
        assert choice["n_fast_keys"] > 0
        assert 0 < choice["cost_factor"] < 1
        assert choice["slowdown"] <= 0.1
        json.dumps(reply)  # the whole response is JSON-safe

    def test_size_is_deterministic_across_requests(self, service):
        first = service._control({"op": "size"})
        second = service._control({"op": "size"})
        assert first["choice"] == second["choice"]

    def test_size_custom_slo(self, service):
        tight = service._control({"op": "size", "slo": 0.02})
        loose = service._control({"op": "size", "slo": 0.30})
        assert tight["ok"] and loose["ok"]
        assert (
            tight["choice"]["n_fast_keys"] > loose["choice"]["n_fast_keys"]
        )

    def test_size_bad_params_are_bad_requests(self, service):
        assert service._control(
            {"op": "size", "slo": 5.0}
        )["error"] == "bad_request"
        assert service._control(
            {"op": "size", "workload": "no-such-workload"}
        )["error"] == "bad_request"
        assert service._control(
            {"op": "size", "engine": "no-such-engine"}
        )["error"] == "bad_request"

    def test_validate_default_choice(self, service):
        reply = service._control({"op": "validate"})
        assert reply["ok"]
        assert reply["passed"] is True
        assert reply["verdict"]["status"] == "pass"

    def test_validate_explicit_split(self, service):
        reply = service._control({"op": "validate", "n_fast_keys": 64})
        assert reply["ok"]
        assert reply["n_fast_keys"] == 64

    def test_drift_clean_sample_keeps_plan(self, service):
        keys = service.advisor._planning.keys[:3000].tolist()
        reply = service._control({"op": "drift", "keys": keys})
        assert reply["ok"]
        assert reply["level"] == "ok"
        assert reply["action"] == "keep"
        assert {s["metric"] for s in reply["signals"]} == {
            "divergence", "churn", "size_shift",
        }

    def test_drift_rejects_bad_samples(self, service):
        assert service._control(
            {"op": "drift", "keys": []}
        )["error"] == "bad_request"
        assert service._control(
            {"op": "drift", "keys": [10**9]}
        )["error"] == "bad_request"
        assert service._control(
            {"op": "drift", "keys": [1, 2], "sizes": [1.0]}
        )["error"] == "bad_request"
        assert service._control(
            {"op": "drift", "keys": "not-a-list"}
        )["error"] == "bad_request"

    def test_request_served_journaled(self, service):
        service._control({"op": "size"})
        entries = service.store.oplog.entries(
            service.config.run_id, kind="request_served",
        )
        assert entries
        assert entries[-1].payload["op"] == "size"
        assert entries[-1].payload["status"] == "ok"


class TestReload:
    def test_reload_swaps_without_restart(self, tmp_path):
        service = GuardService(_config(tmp_path), tick_fn=lambda: 0)
        try:
            before = service._control({"op": "size"})
            assert before["generation"] == 0
            reply = service._control({"op": "reload", "slo": 0.25})
            assert reply["ok"]
            assert reply["generation"] == 1
            assert reply["changed"] == ["slo"]
            after = service._control({"op": "size"})
            assert after["generation"] == 1
            assert after["slo"] == 0.25
            assert (
                after["choice"]["n_fast_keys"]
                < before["choice"]["n_fast_keys"]
            )
        finally:
            service._plane.close()

    def test_reload_rejects_identity_fields(self, tmp_path):
        service = GuardService(_config(tmp_path), tick_fn=lambda: 0)
        try:
            for field in ("rundir", "run_id", "store", "workers"):
                reply = service._control({"op": "reload", field: "x"})
                assert reply["error"] == "bad_request", field
            assert service.generation == 0
        finally:
            service._plane.close()

    def test_failed_reload_keeps_old_advisor(self, tmp_path):
        service = GuardService(_config(tmp_path), tick_fn=lambda: 0)
        try:
            before = service._control({"op": "size"})
            reply = service._control(
                {"op": "reload", "workload": "no-such-workload"}
            )
            assert reply["ok"] is False
            assert reply["error"] == "reload_failed"
            after = service._control({"op": "size"})
            assert after["choice"] == before["choice"]
            assert service.generation == 0
        finally:
            service._plane.close()


class TestGracefulDegradation:
    def test_advisor_error_serves_last_good_flagged_stale(self, tmp_path):
        service = GuardService(_config(tmp_path), tick_fn=lambda: 0)
        try:
            good = service._control({"op": "size"})
            assert good["ok"] and good["stale"] is False

            def broken(**kwargs):
                raise StoreError("store on fire")

            service.advisor.size = broken
            degraded = service._control({"op": "size"})
            assert degraded["ok"] is True
            assert degraded["stale"] is True
            assert degraded["stale_age_s"] >= 0
            assert "store on fire" in degraded["stale_reason"]
            assert degraded["choice"] == good["choice"]
        finally:
            service._plane.close()

    def test_advisor_error_without_memo_is_structured(self, tmp_path):
        service = GuardService(_config(tmp_path), tick_fn=lambda: 0)
        try:
            def broken(**kwargs):
                raise StoreError("cold and broken")

            service.advisor.size = broken
            reply = service._control({"op": "size"})
            assert reply["ok"] is False
            assert reply["error"] == "advisor_error"
        finally:
            service._plane.close()

    def test_failing_tick_does_not_kill_the_loop(self, tmp_path):
        codes = iter([RuntimeError("tick boom"), 0, 0])

        def tick():
            item = next(codes)
            if isinstance(item, Exception):
                raise item
            return item

        store = SQLiteStore(tmp_path / "s.db")
        try:
            config = _config(tmp_path)
            service = GuardService(config, tick_fn=tick, store=store)
            assert service.run(max_ticks=3) == 0
            assert service.ticks == 3
            assert service.tick_failures == 1
            failed = store.oplog.entries(
                config.run_id, kind="guard_tick_failed",
            )
            assert len(failed) == 1
            assert "tick boom" in failed[0].payload["error"]
        finally:
            store.close()


class TestStaleSocket:
    def test_stale_socket_reclaimed_on_startup(self, tmp_path):
        config = _config(tmp_path)
        config.socket_path.parent.mkdir(parents=True, exist_ok=True)
        config.socket_path.touch()  # what a SIGKILL leaves behind
        service = GuardService(config, tick_fn=lambda: 0)
        assert service.run(max_ticks=1) == 0  # bind succeeded
        assert not config.socket_path.exists()

    def test_live_socket_never_stolen(self, tmp_path):
        import threading as _threading

        config = _config(tmp_path)
        first = GuardService(config, tick_fn=lambda: 0)
        thread = _threading.Thread(
            target=lambda: first.run(), daemon=True,
        )
        thread.start()
        try:
            deadline = time.monotonic() + 30.0
            while not config.socket_path.exists():
                assert time.monotonic() < deadline
                time.sleep(0.02)
            second = GuardService(config, tick_fn=lambda: 0)
            with pytest.raises(ConfigurationError, match="already"):
                second._open_socket()
        finally:
            first.request_stop()
            thread.join(timeout=10)
