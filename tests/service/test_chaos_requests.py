"""Chaos drills against the served advisor's request plane.

Three attacks, all of which a robust daemon must survive without
corruption or crashes (``make serve-drill`` runs this file in CI):

- **slowloris** — a client that stalls mid-request-line must get a
  structured ``read_timeout`` answer, not pin a handler thread.
- **flood** — a burst past the admission queue must be answered or
  *cleanly* shed with structured ``overloaded`` errors; transport-level
  connection failures are never acceptable.
- **mid-request SIGKILL** — killing the supervised daemon child while
  an advice request is in flight must end in an automatic restart, a
  working daemon, and a structurally sound store.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro import telemetry
from repro.faults import request_flood, slowloris_probe
from repro.service import GuardService, ServeConfig, control_call
from repro.store import SQLiteStore

#: Cheap advisor settings (profile in seconds, memoized thereafter).
FAST = dict(downsample=50.0, repeats=1, interval_s=0.1, validate_every=0)


def _wait_for(predicate, timeout_s=60.0, interval_s=0.02):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


class _Daemon:
    """An in-thread daemon with deterministic setup/teardown."""

    def __init__(self, tmp_path, **overrides):
        merged = {**FAST, "rundir": str(tmp_path / "run"),
                  "run_id": "test-chaos", **overrides}
        self.config = ServeConfig(**merged)
        self.service = GuardService(self.config, tick_fn=lambda: 0)
        self._codes = []
        self._thread = threading.Thread(target=self._serve, daemon=True)

    def _serve(self):
        with telemetry.session(run_id=self.config.run_id):
            self._codes.append(self.service.run())

    def __enter__(self):
        self._thread.start()
        assert _wait_for(self.config.socket_path.exists)
        return self

    def __exit__(self, *exc):
        self.service.request_stop()
        self._thread.join(timeout=30)
        assert self._codes == [0]


class TestSlowloris:
    def test_stalled_client_gets_structured_timeout(self, tmp_path):
        with _Daemon(tmp_path, read_timeout_s=0.5) as daemon:
            t0 = time.monotonic()
            reply = slowloris_probe(daemon.config.socket_path)
            elapsed = time.monotonic() - t0
            assert reply is not None, "handler dropped the connection"
            assert reply["ok"] is False
            assert reply["error"] == "read_timeout"
            assert reply["read_timeout_s"] == 0.5
            assert elapsed < 5.0  # bounded by the timeout, not forever
            # the daemon is unharmed
            assert control_call(
                daemon.config.socket_path, {"op": "ping"},
            )["ok"]

    def test_oversized_request_line_rejected(self, tmp_path):
        with _Daemon(tmp_path, max_request_bytes=256) as daemon:
            huge = {"op": "ping", "padding": "x" * 1024}
            reply = control_call(daemon.config.socket_path, huge)
            assert reply["ok"] is False
            assert reply["error"] == "request_too_large"
            assert control_call(
                daemon.config.socket_path, {"op": "ping"},
            )["ok"]


class TestFlood:
    def test_flood_past_admission_queue_sheds_cleanly(self, tmp_path):
        with _Daemon(tmp_path, workers=1, queue_depth=1) as daemon:
            # warm the profile so flood timing is advisor-independent
            assert control_call(
                daemon.config.socket_path, {"op": "size"}, timeout=120.0,
            )["ok"]
            # slow the op down so the burst actually queues
            advisor = daemon.service.advisor
            real_size = advisor.size

            def slow_size(**kwargs):
                time.sleep(0.3)
                return real_size(**kwargs)

            advisor.size = slow_size
            tally = request_flood(
                daemon.config.socket_path, {"op": "size"},
                n_requests=12, concurrency=12,
            )
            assert tally["connection_error"] == 0, tally
            assert tally["other_error"] == 0, tally
            assert tally["ok"] >= 1, tally
            assert tally["overloaded"] >= 1, tally
            shed = [
                r for r in tally["responses"]
                if r and r.get("error") == "overloaded"
            ]
            assert all(r["retry_after_s"] > 0 for r in shed)
            # the daemon answers normally once the burst passes
            advisor.size = real_size
            assert control_call(
                daemon.config.socket_path, {"op": "size"}, timeout=30.0,
            )["ok"]

    def test_tiny_deadline_is_a_structured_error(self, tmp_path):
        with _Daemon(tmp_path, workers=1, queue_depth=2) as daemon:
            assert control_call(
                daemon.config.socket_path, {"op": "size"}, timeout=120.0,
            )["ok"]
            advisor = daemon.service.advisor
            real_size = advisor.size

            def slow_size(**kwargs):
                time.sleep(0.5)
                return real_size(**kwargs)

            advisor.size = slow_size
            reply = control_call(
                daemon.config.socket_path,
                {"op": "size", "deadline_s": 0.01},
                timeout=30.0,
            )
            assert reply["ok"] is False
            assert reply["error"] == "deadline_exceeded"
            assert reply["deadline_s"] == 0.01


class TestMidRequestKill:
    """SIGKILL the supervised child mid-request; supervision recovers."""

    def _launch(self, tmp_path, store_path):
        rundir = tmp_path / "run"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--workload", "trending",
                "--downsample", "50",
                "--repeats", "1",
                "--validate-every", "0",
                "--interval", "0.2",
                "--rundir", str(rundir),
                "--store", str(store_path),
            ],
            env=env,
            cwd=tmp_path,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
        )
        return proc, ServeConfig(rundir=str(rundir))

    def _heartbeat(self, config):
        try:
            return json.loads(config.heartbeat_path.read_text())
        except (OSError, json.JSONDecodeError):
            return None

    def test_sigkill_mid_request_restarts_without_corruption(self, tmp_path):
        store_path = tmp_path / "store.db"
        proc, config = self._launch(tmp_path, store_path)
        try:
            assert _wait_for(
                lambda: (self._heartbeat(config) or {}).get("ticks", 0) >= 1,
                timeout_s=180.0,
            ), "daemon never became healthy"
            assert control_call(
                config.socket_path, {"op": "size"}, timeout=120.0,
            )["ok"]
            first_pid = self._heartbeat(config)["pid"]
            assert first_pid != proc.pid  # supervised: child != parent

            # fire a request and kill the child while it is in flight
            def doomed():
                try:
                    control_call(
                        config.socket_path, {"op": "size"}, timeout=30.0,
                    )
                except (OSError, ValueError):
                    pass  # losing THIS request is expected; corruption is not

            killer_victim = threading.Thread(target=doomed, daemon=True)
            killer_victim.start()
            time.sleep(0.05)
            os.kill(first_pid, signal.SIGKILL)
            killer_victim.join(timeout=60)

            # the supervisor restarts a fresh child on the same socket
            assert _wait_for(
                lambda: (
                    (self._heartbeat(config) or {}).get("pid")
                    not in (None, first_pid)
                    and (self._heartbeat(config) or {}).get("status")
                    == "running"
                ),
                timeout_s=180.0,
            ), "supervisor never restarted the child"
            second_pid = self._heartbeat(config)["pid"]
            assert second_pid != first_pid
            assert control_call(
                config.socket_path, {"op": "ping"}, timeout=10.0,
            )["ok"]
            sized = control_call(
                config.socket_path, {"op": "size"}, timeout=120.0,
            )
            assert sized["ok"]
            assert sized["choice"]["n_fast_keys"] > 0

            # graceful end through the front door
            assert control_call(
                config.socket_path, {"op": "shutdown"}, timeout=10.0,
            )["ok"]
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

        # zero corruption: SQLite verdict + both service starts journaled
        store = SQLiteStore(store_path)
        try:
            assert store.integrity_check() == "ok"
            started = [
                e for e in store.oplog.entries("serve")
                if e.kind == "service_started"
            ]
            assert len(started) >= 2  # original + post-SIGKILL restart
        finally:
            store.close()
