"""Tests for the guard service: config, socket API, supervision, signals.

The in-process tests drive :class:`~repro.service.GuardService` with an
injected tick function (no simulator work), so the loop/socket/journal
machinery is exercised in milliseconds; one subprocess test proves the
real ``mnemo serve`` process dies gracefully on SIGTERM.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro import telemetry
from repro.errors import ConfigurationError
from repro.service import (
    GuardService,
    RestartPolicy,
    ServeConfig,
    Supervisor,
    TerminationSignal,
    control_call,
    handle_termination,
    run_service,
)
from repro.store import SQLiteStore


def _wait_for(predicate, timeout_s=30.0, interval_s=0.02):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return False


class TestServeConfig:
    def test_defaults_are_valid(self):
        config = ServeConfig()
        assert config.heartbeat_path.name == "heartbeat.json"
        assert config.socket_path.name == "control.sock"

    def test_nonpositive_interval_rejected(self):
        with pytest.raises(ConfigurationError, match="interval_s"):
            ServeConfig(interval_s=0)

    def test_negative_validate_every_rejected(self):
        with pytest.raises(ConfigurationError, match="validate_every"):
            ServeConfig(validate_every=-1)


class TestGuardServiceLoop:
    def _config(self, tmp_path, **kwargs):
        kwargs.setdefault("interval_s", 0.01)
        kwargs.setdefault("rundir", str(tmp_path / "run"))
        kwargs.setdefault("run_id", "test-serve")
        return ServeConfig(**kwargs)

    def test_max_ticks_bounds_the_run(self, tmp_path):
        codes = iter([0, 1, 3])
        service = GuardService(
            self._config(tmp_path), tick_fn=lambda: next(codes),
        )
        assert service.run(max_ticks=3) == 0
        assert service.ticks == 3
        assert service.last_exit_code == 3

    def test_heartbeat_written_and_stamped_stopped(self, tmp_path):
        config = self._config(tmp_path)
        service = GuardService(config, tick_fn=lambda: 0)
        service.run(max_ticks=2)
        doc = json.loads(config.heartbeat_path.read_text())
        assert doc["status"] == "stopped"
        assert doc["ticks"] == 2
        assert doc["pid"] == os.getpid()
        assert doc["run_id"] == "test-serve"
        # the socket never outlives the service
        assert not config.socket_path.exists()

    def test_ticks_journaled_to_injected_store(self, tmp_path):
        store = SQLiteStore(tmp_path / "s.db")
        try:
            config = self._config(tmp_path)
            service = GuardService(config, tick_fn=lambda: 0, store=store)
            service.run(max_ticks=2)
            kinds = [
                e.kind for e in store.oplog.entries("test-serve")
            ]
            assert kinds == [
                "service_started", "guard_tick", "guard_tick",
                "service_stopped",
            ]
            ticks = store.oplog.entries("test-serve", kind="guard_tick")
            assert [e.payload["n"] for e in ticks] == [1, 2]
            assert ticks[0].payload["exit_code"] == 0
        finally:
            store.close()  # injected stores stay open: service must not close

    def test_control_dispatch(self, tmp_path):
        service = GuardService(self._config(tmp_path), tick_fn=lambda: 0)
        assert service._control(None)["ok"] is False
        assert service._control({})["ok"] is False
        assert service._control({"op": "nope"})["ok"] is False
        ping = service._control({"op": "ping"})
        assert ping["ok"] and ping["pid"] == os.getpid()
        status = service._control({"op": "status"})
        assert status["ok"] and status["status"] == "running"
        shutdown = service._control({"op": "shutdown"})
        assert shutdown["ok"] and shutdown["stopping"]
        assert service._control({"op": "status"})["status"] == "stopping"

    def test_socket_api_live(self, tmp_path):
        """Run the service in a thread and poke it over the real socket."""
        config = self._config(tmp_path)
        service = GuardService(config, tick_fn=lambda: 0)
        done = []

        def serve():
            with telemetry.session(run_id="test-serve"):
                done.append(service.run())

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        try:
            assert _wait_for(config.socket_path.exists)
            ping = control_call(config.socket_path, {"op": "ping"})
            assert ping["ok"]
            assert _wait_for(
                lambda: control_call(
                    config.socket_path, {"op": "status"},
                )["ticks"] >= 2
            )
            metrics = control_call(config.socket_path, {"op": "metrics"})
            assert metrics["ok"]
            assert "serve_ticks" in metrics["prometheus"]
            assert control_call(config.socket_path, {"op": "shutdown"})["ok"]
        finally:
            service.request_stop()
            thread.join(timeout=10)
        assert done == [0]
        doc = json.loads(config.heartbeat_path.read_text())
        assert doc["status"] == "stopped"

    def test_run_service_wrapper_returns_zero(self, tmp_path):
        # run_service adds the telemetry session + signal handling
        assert run_service(self._config(tmp_path), max_ticks=1) == 0


# -- supervisor ----------------------------------------------------------------


FAST_POLICY = RestartPolicy(
    max_restarts=3, backoff_base_s=0.01, healthy_s=60.0,
)


def _exit_clean():
    pass


def _crash_once(marker):
    if os.path.exists(marker):
        sys.exit(0)
    open(marker, "w").close()
    sys.exit(1)


def _crash_always():
    sys.exit(1)


def _sleep_long():
    time.sleep(60)


class TestRestartPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RestartPolicy(max_restarts=-1)
        with pytest.raises(ConfigurationError):
            RestartPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigurationError):
            RestartPolicy(healthy_s=-1)

    def test_backoff_grows_and_caps(self):
        policy = RestartPolicy(
            backoff_base_s=1.0, backoff_factor=2.0, backoff_cap_s=3.0,
        )
        first = policy.backoff_s(1)
        second = policy.backoff_s(2)
        assert 1.0 <= first <= 1.25
        assert second > first
        assert policy.backoff_s(10) <= 3.0 * 1.25  # capped (plus jitter)

    def test_backoff_is_deterministic(self):
        policy = RestartPolicy(backoff_base_s=0.5)
        assert policy.backoff_s(2, label="svc") == policy.backoff_s(
            2, label="svc",
        )


class TestSupervisor:
    def test_normal_exit_ends_supervision(self):
        supervisor = Supervisor(_exit_clean, policy=FAST_POLICY)
        assert supervisor.run() == 0
        assert supervisor.restarts == 0

    def test_crash_restarted_then_clean_exit(self, tmp_path):
        marker = str(tmp_path / "crashed-once")
        supervisor = Supervisor(
            _crash_once, args=(marker,), policy=FAST_POLICY,
        )
        assert supervisor.run() == 0
        assert supervisor.restarts == 1

    def test_budget_exhaustion_gives_up_with_child_code(self):
        supervisor = Supervisor(
            _crash_always,
            policy=RestartPolicy(max_restarts=2, backoff_base_s=0.01),
        )
        assert supervisor.run() == 1
        assert supervisor.restarts == 3  # the fatal third strike

    def test_stop_terminates_child_and_returns_zero(self):
        supervisor = Supervisor(_sleep_long, policy=FAST_POLICY)
        codes = []
        thread = threading.Thread(
            target=lambda: codes.append(supervisor.run()), daemon=True,
        )
        thread.start()
        assert _wait_for(lambda: supervisor.child_pid is not None)
        supervisor.stop()
        thread.join(timeout=15)
        assert not thread.is_alive()
        assert codes == [0]


# -- signals -------------------------------------------------------------------


class TestTerminationHandling:
    def test_sigterm_becomes_catchable_and_fires_once(self):
        with pytest.raises(TerminationSignal) as excinfo:
            with handle_termination():
                try:
                    os.kill(os.getpid(), signal.SIGTERM)
                    time.sleep(5)
                    pytest.fail("signal never delivered")
                except TerminationSignal:
                    # a second SIGTERM mid-unwind must NOT re-raise,
                    # or cleanup would be cut short
                    os.kill(os.getpid(), signal.SIGTERM)
                    time.sleep(0.05)
                    raise
        assert excinfo.value.signum == signal.SIGTERM
        assert excinfo.value.exit_code == 143

    def test_previous_handlers_restored(self):
        before = signal.getsignal(signal.SIGTERM)
        with handle_termination():
            assert signal.getsignal(signal.SIGTERM) is not before
        assert signal.getsignal(signal.SIGTERM) is before

    def test_noop_off_main_thread(self):
        outcome = []

        def worker():
            with handle_termination():
                outcome.append(signal.getsignal(signal.SIGTERM))

        before = signal.getsignal(signal.SIGTERM)
        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert outcome == [before]  # nothing was installed


# -- end to end ----------------------------------------------------------------


class TestServeEndToEnd:
    def test_sigterm_shuts_down_gracefully(self, tmp_path):
        """A real `mnemo serve` process exits 143 with a clean heartbeat."""
        rundir = tmp_path / "run"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--workload", "trending", "--downsample", "20",
                "--repeats", "1", "--validate-every", "0",
                "--interval", "0.2", "--rundir", str(rundir),
                "--no-supervise", "--store", str(tmp_path / "serve.db"),
            ],
            env=env, cwd=str(tmp_path),
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        heartbeat = rundir / "heartbeat.json"
        try:
            assert _wait_for(
                lambda: heartbeat.exists()
                and json.loads(heartbeat.read_text()).get("ticks", 0) >= 1,
                timeout_s=120.0, interval_s=0.1,
            ), "service never produced a tick"
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert proc.returncode == 143
        doc = json.loads(heartbeat.read_text())
        assert doc["status"] == "stopped"
        assert doc["ticks"] >= 1
        assert not (rundir / "control.sock").exists()
        # the stop was journaled before the store closed
        store = SQLiteStore(tmp_path / "serve.db")
        try:
            kinds = [e.kind for e in store.oplog.entries("serve")]
            assert "service_started" in kinds
            assert "service_stopped" in kinds
        finally:
            store.close()
