"""Concurrent clients against one live served-advisor daemon.

One in-thread daemon (real socket, real SQLite store, downsampled
advisor) takes a barrage of mixed ``size``/``validate``/``drift``/
``ping`` requests from many client threads at once.  Every request must
be answered or *cleanly* shed — never a dropped connection — the store
must stay structurally sound, and a socket-served ``size`` answer must
be bit-identical to the same computation run directly through the CLI
profiling path with a cold cache.
"""

import json
import threading
import time

import pytest

from repro import telemetry
from repro.service import GuardService, ServeConfig, control_call
from repro.service.advisor import choice_payload
from repro.store import SQLiteStore

#: Answers a robust daemon may give under concurrent load: success, or
#: a structured shed.  Anything else (connection drop, internal error)
#: fails the test.
CLEAN_ERRORS = ("overloaded",)


def _wait_for(predicate, timeout_s=30.0, interval_s=0.02):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    """A live daemon on a real socket, shared by the whole module."""
    tmp_path = tmp_path_factory.mktemp("concurrency")
    store = SQLiteStore(tmp_path / "store.db")
    config = ServeConfig(
        rundir=str(tmp_path / "run"),
        run_id="test-concurrency",
        interval_s=0.05,
        validate_every=0,
        downsample=50.0,
        repeats=1,
        workers=2,
        queue_depth=8,
    )
    service = GuardService(config, store=store)
    exit_codes = []

    def serve():
        with telemetry.session(run_id=config.run_id):
            exit_codes.append(service.run())

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    assert _wait_for(config.socket_path.exists)
    # pay for the watched profile once, before any timing-sensitive test
    assert control_call(
        config.socket_path, {"op": "size"}, timeout=120.0,
    )["ok"]
    yield config, service, store
    service.request_stop()
    thread.join(timeout=30)
    assert exit_codes == [0]
    store.close()


def _call(config, request):
    try:
        return control_call(config.socket_path, request, timeout=60.0)
    except (OSError, ValueError) as exc:  # a drop is never acceptable
        return {"ok": False, "error": "connection_error",
                "detail": str(exc)}


class TestConcurrentClients:
    def test_mixed_barrage_all_answered_or_cleanly_shed(self, daemon):
        config, service, store = daemon
        drift_keys = service.advisor._planning.keys[:2000].tolist()
        requests = [
            {"op": "size"},
            {"op": "size", "slo": 0.2},
            {"op": "validate"},
            {"op": "drift", "keys": drift_keys},
            {"op": "ping"},
            {"op": "status"},
        ]
        n_threads = 12
        per_thread = 4
        responses = []
        lock = threading.Lock()

        def client(worker_id):
            for k in range(per_thread):
                request = requests[(worker_id + k) % len(requests)]
                response = _call(config, request)
                with lock:
                    responses.append((request["op"], response))

        threads = [
            threading.Thread(target=client, args=(i,), daemon=True)
            for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert len(responses) == n_threads * per_thread
        bad = [
            (op, r) for op, r in responses
            if not r.get("ok") and r.get("error") not in CLEAN_ERRORS
        ]
        assert bad == []
        answered = [r for _, r in responses if r.get("ok")]
        assert len(answered) >= n_threads  # load shedding is partial
        # the daemon survived and the store is structurally sound
        assert control_call(config.socket_path, {"op": "ping"})["ok"]
        assert store.integrity_check() == "ok"

    def test_size_responses_identical_across_threads(self, daemon):
        config, _service, _store = daemon
        out = []
        lock = threading.Lock()

        def client():
            response = _call(config, {"op": "size"})
            with lock:
                out.append(response)

        threads = [
            threading.Thread(target=client, daemon=True) for _ in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        answered = [r for r in out if r.get("ok")]
        assert answered
        first = answered[0]["choice"]
        assert all(r["choice"] == first for r in answered)

    def test_socket_size_bit_identical_to_cli_path(self, daemon):
        """The acceptance gate: served == one-shot CLI, bit for bit."""
        config, _service, _store = daemon
        served = _call(config, {"op": "size"})
        assert served["ok"]

        # the exact `mnemo profile` path, with a cold cache so nothing
        # is shared with the daemon but the math
        from repro.core import Mnemo, WorkloadDescriptor
        from repro.kvstore import RedisLike
        from repro.ycsb import (
            YCSBClient,
            downsample,
            generate_trace,
            workload_by_name,
        )

        trace = generate_trace(workload_by_name(config.workload))
        trace = downsample(
            trace, factor=config.downsample, seed=config.seed,
        )
        descriptor = WorkloadDescriptor.from_trace(trace)
        report = Mnemo(
            engine_factory=RedisLike,
            client=YCSBClient(repeats=config.repeats, seed=config.seed),
        ).profile(descriptor)
        expected = choice_payload(report.choose(config.slo))

        assert served["choice"] == expected
        assert served["confidence"] == float(report.confidence)
        assert served["pattern_mode"] == report.pattern.mode
        # and the payload round-trips through JSON unchanged
        assert json.loads(json.dumps(served["choice"])) == expected

    def test_reload_with_requests_in_flight(self, daemon):
        """Hot reload drops no in-flight request and answers coherently."""
        config, service, _store = daemon
        stop = threading.Event()
        responses = []
        lock = threading.Lock()

        def hammer():
            while not stop.is_set():
                response = _call(config, {"op": "size"})
                with lock:
                    responses.append(response)

        threads = [
            threading.Thread(target=hammer, daemon=True) for _ in range(3)
        ]
        for t in threads:
            t.start()
        try:
            generation = service.generation
            reply = _call(
                config, {"op": "reload", "slo": 0.18},
            )
            assert reply["ok"], reply
            assert reply["generation"] == generation + 1
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=120)
        bad = [
            r for r in responses
            if not r.get("ok") and r.get("error") not in CLEAN_ERRORS
        ]
        assert bad == []
        answered = [r for r in responses if r.get("ok")]
        assert answered
        # every answer matches exactly one of the two generations'
        # coherent (slo, choice) snapshots — never a torn mix
        by_generation = {}
        for r in answered:
            by_generation.setdefault(r["generation"], set()).add(
                (r["slo"], r["choice"]["n_fast_keys"]),
            )
        for generation, snapshots in by_generation.items():
            assert len(snapshots) == 1, (generation, snapshots)
        # restore the watched SLO for any test that runs after us
        restore = _call(config, {"op": "reload", "slo": 0.1})
        assert restore["ok"]
