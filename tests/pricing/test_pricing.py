"""Tests for the cloud pricing analysis (Figure 1)."""

import numpy as np
import pytest

from repro.errors import PricingError
from repro.pricing import (
    CATALOGS,
    MEMORY_OPTIMIZED_FAMILIES,
    FitResult,
    VMInstance,
    catalog_for,
    fit_unit_costs,
    memory_cost_fractions,
    memory_fraction_summary,
    provider_catalog,
    provider_families,
    providers,
)


class TestCatalog:
    def test_five_families(self):
        assert set(provider_families()) == {
            "aws/cache.m5", "aws/cache.r5", "gcp/n1-ultramem-megamem",
            "azure/E", "azure/M",
        }

    def test_three_providers(self):
        assert providers() == ["aws", "azure", "gcp"]

    def test_catalog_lookup(self):
        assert len(catalog_for("aws/cache.r5")) == 6

    def test_unknown_catalog(self):
        with pytest.raises(PricingError):
            catalog_for("oracle/exadata")

    def test_provider_catalog_pools_families(self):
        pool = provider_catalog("aws")
        assert len(pool) == 12  # m5 + r5
        assert {i.family for i in pool} == {"cache.m5", "cache.r5"}

    def test_unknown_provider(self):
        with pytest.raises(PricingError):
            provider_catalog("ibm")

    def test_instances_validated(self):
        with pytest.raises(PricingError):
            VMInstance("x", "f", "n", vcpus=0, memory_gb=1, hourly_usd=1)

    def test_memory_optimized_shapes(self):
        # memory-optimized families: > 4 GB per vCPU everywhere
        for key in MEMORY_OPTIMIZED_FAMILIES:
            for inst in catalog_for(key):
                assert inst.memory_gb / inst.vcpus > 4

    def test_memory_optimized_excludes_m5(self):
        assert "aws/cache.m5" not in MEMORY_OPTIMIZED_FAMILIES
        assert set(MEMORY_OPTIMIZED_FAMILIES) <= set(CATALOGS)


class TestRegression:
    def test_exact_synthetic_fit(self):
        insts = [
            VMInstance("p", "f", f"i{v}", vcpus=v, memory_gb=8 * v,
                       hourly_usd=v * 0.03 + 8 * v * 0.01)
            for v in (1, 2, 4)
        ] + [VMInstance("p", "f", "big", vcpus=2, memory_gb=64,
                        hourly_usd=2 * 0.03 + 64 * 0.01)]
        fit = fit_unit_costs(insts)
        assert fit.vcpu_cost == pytest.approx(0.03, rel=1e-6)
        assert fit.memory_cost == pytest.approx(0.01, rel=1e-6)
        assert fit.residual < 1e-9

    def test_proportional_shapes_attribute_to_memory(self):
        insts = [
            VMInstance("p", "f", f"i{v}", vcpus=v, memory_gb=10 * v,
                       hourly_usd=0.1 * v)
            for v in (1, 2, 4)
        ]
        fit = fit_unit_costs(insts)
        assert fit.vcpu_cost == 0.0
        assert fit.memory_cost == pytest.approx(0.01)

    def test_needs_two_instances(self):
        with pytest.raises(PricingError):
            fit_unit_costs(catalog_for("aws/cache.r5")[:1])

    def test_mixed_providers_rejected(self):
        mixed = list(catalog_for("azure/E")[:2]) + list(
            catalog_for("gcp/n1-ultramem-megamem")[:2]
        )
        with pytest.raises(PricingError):
            fit_unit_costs(mixed)

    def test_mixed_families_same_provider_allowed(self):
        fit = fit_unit_costs(provider_catalog("aws"))
        assert fit.family == "cache.m5+cache.r5"

    @pytest.mark.parametrize("provider", ["aws", "azure", "gcp"])
    def test_provider_pools_fit_well(self, provider):
        fit = fit_unit_costs(provider_catalog(provider))
        assert fit.memory_cost > 0
        assert fit.vcpu_cost >= 0
        assert fit.residual < 0.15  # published sheets are near-linear

    def test_nonnegative_flag(self):
        # unconstrained fit on the Azure pool goes negative on vCPU;
        # the constrained default clamps it
        pool = provider_catalog("azure")
        unconstrained = fit_unit_costs(pool, nonnegative=False)
        constrained = fit_unit_costs(pool)
        assert constrained.vcpu_cost >= 0
        assert unconstrained.memory_cost > 0

    def test_predict(self):
        fit = FitResult("p", "f", vcpu_cost=0.03, memory_cost=0.01,
                        residual=0.0)
        assert fit.predict(2, 10) == pytest.approx(0.16)


class TestMemoryFractions:
    def test_fractions_bounded(self):
        for key in MEMORY_OPTIMIZED_FAMILIES:
            for frac in memory_cost_fractions(catalog_for(key)).values():
                assert 0 < frac <= 1

    def test_figure_1_band(self):
        """The paper's headline: memory dominates Memory-Optimized VM
        cost (the paper band is ~60-85 %; our snapshot spans 54-100 %)."""
        summary = memory_fraction_summary()
        fracs = np.array([f for d in summary.values() for f in d.values()])
        assert 0.60 <= np.median(fracs) <= 0.90
        assert fracs.min() > 0.5
        assert fracs.max() <= 1.0

    def test_summary_covers_memory_optimized(self):
        summary = memory_fraction_summary()
        assert set(summary) == set(MEMORY_OPTIMIZED_FAMILIES)

    def test_general_purpose_fraction_lower(self):
        """m5 (general purpose) spends a smaller share on memory than r5."""
        from repro.pricing.regression import fit_unit_costs as fit

        aws_fit = fit(provider_catalog("aws"))
        m5 = memory_cost_fractions(catalog_for("aws/cache.m5"), aws_fit)
        r5 = memory_cost_fractions(catalog_for("aws/cache.r5"), aws_fit)
        assert max(m5.values()) < min(r5.values())

    def test_explicit_fit_reused(self):
        insts = catalog_for("azure/E")
        fit = fit_unit_costs(provider_catalog("azure"))
        a = memory_cost_fractions(insts, fit)
        b = memory_cost_fractions(insts)
        assert a == b

    def test_mixed_provider_fractions_rejected(self):
        mixed = list(catalog_for("azure/E")[:1]) + list(
            catalog_for("aws/cache.r5")[:1]
        )
        with pytest.raises(PricingError):
            memory_cost_fractions(mixed)
