"""Fixtures for the telemetry suite: a tiny grid over a fast workload."""

from __future__ import annotations

import pytest

from repro.runner import ExperimentSpec
from repro.ycsb.distributions import DistributionSpec
from repro.ycsb.sizes import THUMBNAIL
from repro.ycsb.workload import WorkloadSpec


@pytest.fixture
def tiny_specs(small_spec: WorkloadSpec) -> list[ExperimentSpec]:
    """Three placements of the shared small workload."""
    return [
        ExperimentSpec(workload=small_spec, engine="redis", placement="fast"),
        ExperimentSpec(workload=small_spec, engine="redis", placement="slow"),
        ExperimentSpec(
            workload=small_spec, engine="redis",
            placement="split", fast_fraction=0.3,
        ),
    ]


@pytest.fixture
def two_workload_specs(small_spec: WorkloadSpec) -> list[ExperimentSpec]:
    """Four cells over two workloads (enough to occupy two pool workers)."""
    other = WorkloadSpec(
        name="tiny_zipf",
        distribution=DistributionSpec(name="scrambled_zipfian"),
        read_fraction=0.8,
        size_model=THUMBNAIL,
        n_keys=150,
        n_requests=2_000,
        seed=13,
    )
    return [
        ExperimentSpec(workload=w, engine="redis", placement=p)
        for w in (small_spec, other)
        for p in ("fast", "slow")
    ]
