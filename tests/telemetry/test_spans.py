"""Span tracing: nesting, attributes, disabled no-ops, tree rebuild."""

import os

import pytest

from repro import telemetry
from repro.telemetry.spans import NULL_SPAN, Tracer, build_tree


class TestTracer:
    def test_nesting_records_parentage(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        inner_rec, outer_rec = tracer.records
        assert inner_rec.name == "inner"
        assert inner_rec.parent_id == outer.span_id
        assert outer_rec.parent_id is None
        assert outer_rec.duration_ns >= inner_rec.duration_ns >= 0
        assert outer_rec.pid == os.getpid()

    def test_attrs_settable_while_open(self):
        tracer = Tracer()
        with tracer.span("s", fixed=1) as sp:
            sp.set("late", "value")
        assert tracer.records[0].attrs == {"fixed": 1, "late": "value"}

    def test_exception_tagged_and_propagated(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        assert tracer.records[0].attrs["error"] == "ValueError"

    def test_root_id_adopted_by_top_level_spans(self):
        tracer = Tracer(root_id="feed-1")
        with tracer.span("worker"):
            pass
        assert tracer.records[0].parent_id == "feed-1"

    def test_ids_unique_and_pid_prefixed(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        ids = {r.span_id for r in tracer.records}
        assert len(ids) == 2
        assert all(i.startswith(f"{os.getpid():x}-") for i in ids)


class TestDisabledHooks:
    def test_span_returns_shared_null_span(self):
        assert not telemetry.enabled()
        sp = telemetry.span("anything", label="x")
        assert sp is NULL_SPAN
        with sp as inner:
            inner.set("k", "v")  # swallowed

    def test_all_hooks_are_noops(self):
        assert not telemetry.enabled()
        telemetry.count("c", kind="x")
        telemetry.gauge("g", 1.0)
        telemetry.observe("h", 0.5)
        telemetry.event("e", a=1)
        assert telemetry.worker_config() is None
        assert telemetry.drain_worker() is None
        telemetry.absorb(None)


class TestBuildTree:
    def _span(self, sid, parent, pid=1, start=0):
        return {"span": sid, "parent": parent, "pid": pid,
                "start_ns": start, "name": sid, "duration_ns": 1,
                "attrs": {}}

    def test_reassembles_children_under_parents(self):
        spans = [
            self._span("a", None, start=0),
            self._span("b", "a", start=1),
            self._span("c", "a", start=2),
        ]
        roots, children = build_tree(spans)
        assert [r["span"] for r in roots] == ["a"]
        assert [c["span"] for c in children["a"]] == ["b", "c"]

    def test_orphan_parent_becomes_root(self):
        roots, _ = build_tree([self._span("x", "missing")])
        assert [r["span"] for r in roots] == ["x"]

    def test_sibling_order_is_pid_then_start(self):
        spans = [
            self._span("late", "r", pid=2, start=0),
            self._span("early", "r", pid=1, start=5),
            self._span("r", None),
        ]
        _, children = build_tree(spans)
        assert [c["span"] for c in children["r"]] == ["early", "late"]
