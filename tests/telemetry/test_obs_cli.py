"""The ``obs`` CLI: --obs capture, report rendering, logging flags."""

import json
import logging

import pytest

from repro.cli import main


@pytest.fixture
def captured_run(tmp_path):
    """A real ``sweep --obs`` capture (exit code, log path)."""
    sink = tmp_path / "run.jsonl"
    code = main([
        "sweep", "--workloads", "trending", "--engines", "redis",
        "--placements", "fast,slow", "--seed", "3",
        "--cache-dir", str(tmp_path / "cache"), "--obs", str(sink),
    ])
    return code, sink


class TestObsCapture:
    def test_sweep_obs_writes_a_log(self, captured_run):
        code, sink = captured_run
        assert code == 0
        lines = sink.read_text().splitlines()
        assert json.loads(lines[0])["kind"] == "run"
        assert json.loads(lines[0])["attrs"]["command"] == "sweep"

    def test_obs_renders_the_report(self, captured_run, capsys):
        _, sink = captured_run
        capsys.readouterr()
        assert main(["obs", str(sink)]) == 0
        out = capsys.readouterr().out
        assert "span tree:" in out
        assert "runner.sweep" in out
        assert "runner.experiment" in out
        assert "cache:" in out
        assert "kernel path mix" in out

    def test_obs_prometheus_export(self, captured_run, capsys):
        _, sink = captured_run
        capsys.readouterr()
        assert main(["obs", str(sink), "--prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE memsim_path counter" in out
        assert 'memsim_path{path="per_deployment"}' in out

    def test_obs_top_must_be_positive(self, captured_run, capsys):
        _, sink = captured_run
        assert main(["obs", str(sink), "--top", "0"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_obs_empty_file_is_clean_error(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["obs", str(empty)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err

    def test_obs_missing_file_is_clean_error(self, tmp_path, capsys):
        assert main(["obs", str(tmp_path / "nope.jsonl")]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err


class TestLoggingFlags:
    def test_default_hides_diagnostics(self, capsys):
        assert main(["workloads"]) == 0
        assert logging.getLogger("repro.cli").getEffectiveLevel() \
            == logging.WARNING

    def test_verbose_enables_info(self):
        assert main(["-v", "workloads"]) == 0
        assert logging.getLogger("repro.cli").getEffectiveLevel() \
            == logging.INFO

    def test_double_verbose_enables_debug(self):
        assert main(["-vv", "workloads"]) == 0
        assert logging.getLogger("repro.cli").getEffectiveLevel() \
            == logging.DEBUG

    def test_quiet_raises_to_error(self):
        assert main(["--quiet", "workloads"]) == 0
        assert logging.getLogger("repro.cli").getEffectiveLevel() \
            == logging.ERROR

    def test_sweep_diagnostics_routed_to_logging(self, tmp_path, capsys):
        argv = [
            "sweep", "--workloads", "trending", "--engines", "redis",
            "--placements", "fast", "--seed", "3",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        quiet = capsys.readouterr()
        assert "sweeping" not in quiet.err  # diagnostics off by default
        assert "trending/redis/fast" in quiet.out  # the report still prints

        assert main(["-v", *argv]) == 0
        verbose = capsys.readouterr()
        assert "sweeping 1 experiment(s)" in verbose.err
        assert "completed 1/1" in verbose.err
        assert "sweeping" not in verbose.out  # never mixed into the report
