"""The zero-dependency metrics registry: counters, gauges, histograms."""

import pytest

from repro.errors import ConfigurationError
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    labels_key,
)


class TestCounter:
    def test_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ConfigurationError, match="only go up"):
            Counter().inc(-1)

    def test_merge_adds(self):
        a, b = Counter(), Counter()
        a.inc(2)
        b.inc(3)
        a.merge(b.payload())
        assert a.value == 5


class TestGauge:
    def test_set_and_merge_last_write_wins(self):
        g = Gauge()
        g.set(1.5)
        g.merge({"value": 9.0})
        assert g.value == 9.0


class TestHistogram:
    def test_bucketing_edges(self):
        h = Histogram(buckets=(1.0, 5.0))
        h.observe(0.5)   # first bucket
        h.observe(1.0)   # upper bound is inclusive (le semantics)
        h.observe(3.0)   # second bucket
        h.observe(99.0)  # overflow (+Inf)
        assert h.counts == [2, 1, 1]
        assert h.count == 4
        assert h.sum == pytest.approx(103.5)

    def test_non_increasing_buckets_rejected(self):
        with pytest.raises(ConfigurationError, match="strictly increasing"):
            Histogram(buckets=(1.0, 1.0))

    def test_merge_requires_same_bounds(self):
        h = Histogram(buckets=(1.0, 2.0))
        other = Histogram(buckets=(1.0, 3.0))
        with pytest.raises(ConfigurationError, match="bucket bounds"):
            h.merge(other.payload())

    def test_merge_accumulates(self):
        a = Histogram(buckets=(1.0,))
        b = Histogram(buckets=(1.0,))
        a.observe(0.5)
        b.observe(2.0)
        a.merge(b.payload())
        assert a.counts == [1, 1]
        assert a.count == 2


class TestRegistry:
    def test_labels_distinguish_series(self):
        reg = MetricsRegistry()
        reg.counter("cache.lookup", outcome="hit").inc()
        reg.counter("cache.lookup", outcome="miss").inc(2)
        assert len(reg) == 2
        assert reg.counter("cache.lookup", outcome="hit").value == 1

    def test_labels_key_is_order_insensitive(self):
        assert labels_key({"a": 1, "b": "x"}) == labels_key({"b": "x", "a": 1})

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigurationError, match="already registered"):
            reg.gauge("x")

    def test_snapshot_is_sorted_and_json_ready(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.gauge("a", tier="fast").set(2.0)
        snap = reg.snapshot()
        assert [r["name"] for r in snap] == ["a", "b"]
        assert snap[0] == {
            "name": "a", "type": "gauge",
            "labels": {"tier": "fast"}, "value": 2.0,
        }

    def test_merge_roundtrip(self):
        src = MetricsRegistry()
        src.counter("n", k="1").inc(3)
        src.histogram("h").observe(0.002)
        dst = MetricsRegistry()
        dst.counter("n", k="1").inc(1)
        dst.merge(src.snapshot())
        assert dst.counter("n", k="1").value == 4
        assert dst.histogram("h").count == 1

    def test_prometheus_rendering(self):
        reg = MetricsRegistry()
        reg.counter("cache.lookup", outcome="hit").inc(3)
        reg.histogram("dur", buckets=(1.0, 2.0)).observe(1.5)
        text = reg.to_prometheus()
        assert "# TYPE cache_lookup counter" in text
        assert 'cache_lookup{outcome="hit"} 3' in text
        # histogram buckets render cumulatively with an +Inf tail
        assert 'dur_bucket{le="1.0"} 0' in text
        assert 'dur_bucket{le="2.0"} 1' in text
        assert 'dur_bucket{le="+Inf"} 1' in text
        assert "dur_sum 1.5" in text
        assert "dur_count 1" in text
