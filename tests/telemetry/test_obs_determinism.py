"""Telemetry is off-path: enabling it cannot change a single bit.

The noise streams of every measurement derive from the experiment
fingerprint, so if telemetry stayed off the RNG/fingerprint path, a
sweep with a session active is *equal* (dataclass equality covers every
measured number) to one without.  Worker spans must also reassemble
into one consistent tree on the coordinator.
"""

from repro import telemetry
from repro.runner import ClientConfig, ExperimentRunner
from repro.telemetry.events import read_jsonl
from repro.telemetry.spans import build_tree


def _runner(tmp_path, sub="cache"):
    return ExperimentRunner(
        cache=str(tmp_path / sub), client=ClientConfig(seed=7),
    )


class TestBitIdentical:
    def test_sweep_identical_with_and_without_session(
        self, tiny_specs, tmp_path,
    ):
        baseline = _runner(tmp_path, "a").sweep(tiny_specs)

        runner_on = _runner(tmp_path, "b")  # fresh cache: measures, not recalls
        with telemetry.session(sink=tmp_path / "on.jsonl"):
            observed = runner_on.sweep(tiny_specs)

        assert observed.results == baseline.results
        assert observed.ok and baseline.ok

    def test_fingerprints_unchanged_under_session(self, tiny_specs, tmp_path):
        runner = _runner(tmp_path)
        trace = runner.trace_for(tiny_specs[0].workload)
        plain = [runner.spec_fingerprint(s, trace) for s in tiny_specs]
        with telemetry.session():
            under = [runner.spec_fingerprint(s, trace) for s in tiny_specs]
        assert under == plain

    def test_pooled_sweep_identical_to_serial(
        self, two_workload_specs, tmp_path,
    ):
        serial = _runner(tmp_path, "a").sweep(two_workload_specs)
        with telemetry.session():
            pooled = _runner(tmp_path, "b").sweep(
                two_workload_specs, workers=2,
            )
        assert pooled.results == serial.results

    def test_cached_recall_identical_and_tagged(self, tiny_specs, tmp_path):
        runner = _runner(tmp_path)
        cold = runner.sweep(tiny_specs)
        assert set(cold.provenance) == {"computed"}
        with telemetry.session():
            warm = _runner(tmp_path).sweep(tiny_specs)
        assert warm.results == cold.results
        assert set(warm.provenance) == {"cache"}


class TestOutcomeMeta:
    def test_durations_and_provenance_parallel_results(
        self, tiny_specs, tmp_path,
    ):
        outcome = _runner(tmp_path).sweep(tiny_specs)
        assert len(outcome.durations) == len(outcome.results)
        assert all(d is not None and d > 0 for d in outcome.durations)
        assert all(p == "computed" for p in outcome.provenance)

    def test_uncached_runner_tags_uncached(self, tiny_specs):
        outcome = ExperimentRunner(
            cache=None, client=ClientConfig(seed=7),
        ).sweep(tiny_specs[:1])
        assert outcome.provenance == ("uncached",)

    def test_summary_surfaces_timing_and_provenance(
        self, tiny_specs, tmp_path,
    ):
        runner = _runner(tmp_path)
        runner.sweep(tiny_specs)  # warm the cache
        text = _runner(tmp_path).sweep(tiny_specs).summary()
        assert "completed 3/3" in text
        assert "3 cache" in text
        assert "slowest:" in text

    def test_metas_never_retain_worker_snapshots(
        self, two_workload_specs, tmp_path,
    ):
        with telemetry.session():
            outcome = _runner(tmp_path).sweep(two_workload_specs, workers=2)
        assert all(m.telemetry is None for m in outcome.metas)


class TestWorkerSpanReassembly:
    def test_pool_spans_form_one_tree_under_the_sweep(
        self, two_workload_specs, tmp_path,
    ):
        sink = tmp_path / "run.jsonl"
        with telemetry.session(sink=sink):
            outcome = _runner(tmp_path).sweep(two_workload_specs, workers=2)
        assert outcome.ok

        records, problems = read_jsonl(sink)
        assert problems == []
        spans = [r for r in records if r["kind"] == "span"]
        roots, children = build_tree(spans)
        assert [r["name"] for r in roots] == ["runner.sweep"]

        sweep_id = roots[0]["span"]
        experiments = children[sweep_id]
        assert len(experiments) == len(two_workload_specs)
        assert {s["name"] for s in experiments} == {"runner.experiment"}
        # spans crossed the pool boundary: some ran in other processes
        assert {s["pid"] for s in experiments} != {roots[0]["pid"]}
        labels = {s["attrs"]["label"] for s in experiments}
        assert labels == {s.label for s in two_workload_specs}
