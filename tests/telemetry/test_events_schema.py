"""The JSONL event log: schema validation, writer/reader round trips.

The schema test here is the tier-1 gate for the event-log format: a
real instrumented sweep is flushed to disk and *every* line must
validate against :func:`repro.telemetry.events.validate_record`.
"""

import json

from repro import telemetry
from repro.runner import ClientConfig, ExperimentRunner
from repro.telemetry.events import (
    EVENT_SCHEMA_VERSION,
    read_jsonl,
    validate_record,
    write_jsonl,
)


class TestValidateRecord:
    def test_rejects_non_objects(self):
        assert validate_record([1, 2]) == ["record is not a JSON object"]

    def test_rejects_missing_envelope(self):
        errors = validate_record({"kind": "event"})
        assert any("run" in e for e in errors)
        assert any("schema" in e for e in errors)

    def test_rejects_unknown_kind(self):
        errors = validate_record(
            {"run": "r", "schema": EVENT_SCHEMA_VERSION, "kind": "mystery"}
        )
        assert errors == ["unknown kind 'mystery'"]

    def test_rejects_histogram_count_mismatch(self):
        errors = validate_record({
            "run": "r", "schema": EVENT_SCHEMA_VERSION, "kind": "metric",
            "name": "h", "type": "histogram", "labels": {},
            "buckets": [1.0, 2.0], "counts": [1, 2],  # needs 3 bins
            "sum": 1.0, "count": 3,
        })
        assert any("len(buckets) + 1" in e for e in errors)

    def test_accepts_minimal_event(self):
        assert validate_record({
            "run": "r", "schema": EVENT_SCHEMA_VERSION, "kind": "event",
            "name": "e", "seq": 1, "pid": 42, "attrs": {},
        }) == []


class TestReadWrite:
    def test_corrupt_lines_skipped_with_problems(self, tmp_path):
        path = tmp_path / "log.jsonl"
        good = {
            "run": "r", "schema": EVENT_SCHEMA_VERSION, "kind": "event",
            "name": "e", "seq": 1, "pid": 1, "attrs": {},
        }
        path.write_text(
            json.dumps(good) + "\n"
            + "{not json\n"
            + json.dumps({"kind": "event"}) + "\n"
        )
        records, problems = read_jsonl(path)
        assert len(records) == 1
        assert len(problems) == 2
        assert problems[0].startswith("line 2:")

    def test_write_creates_parents(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "log.jsonl"
        write_jsonl(path, [{"a": 1}])
        assert json.loads(path.read_text()) == {"a": 1}


class TestSweepLogSchema:
    def test_every_line_of_a_real_sweep_validates(
        self, tiny_specs, tmp_path,
    ):
        """Tier-1 gate: an instrumented sweep emits only valid records."""
        sink = tmp_path / "run.jsonl"
        runner = ExperimentRunner(
            cache=str(tmp_path / "cache"), client=ClientConfig(seed=7),
        )
        with telemetry.session(run_id="schema-test", sink=sink):
            runner.sweep(tiny_specs)

        lines = sink.read_text().splitlines()
        assert lines, "sweep wrote no telemetry"
        header = json.loads(lines[0])
        assert header["kind"] == "run"
        assert header["run"] == "schema-test"
        kinds = set()
        for lineno, line in enumerate(lines, start=1):
            obj = json.loads(line)
            problems = validate_record(obj)
            assert not problems, f"line {lineno}: {problems}"
            kinds.add(obj["kind"])
        assert {"run", "span", "metric"} <= kinds

    def test_pooled_sweep_log_validates_and_has_worker_pids(
        self, two_workload_specs, tmp_path,
    ):
        sink = tmp_path / "run.jsonl"
        runner = ExperimentRunner(
            cache=str(tmp_path / "cache"), client=ClientConfig(seed=7),
        )
        with telemetry.session(sink=sink):
            runner.sweep(two_workload_specs, workers=2)
        records, problems = read_jsonl(sink)
        assert problems == []
        pids = {r["pid"] for r in records if r["kind"] == "span"}
        assert len(pids) > 1, "no worker spans made it back to the log"
