"""Tests for repro.units."""

import pytest

from repro import units


class TestTimeConversions:
    def test_ns_to_s(self):
        assert units.ns_to_s(1_000_000_000) == 1.0

    def test_ns_to_us(self):
        assert units.ns_to_us(1_500) == 1.5

    def test_ns_to_ms(self):
        assert units.ns_to_ms(2_500_000) == 2.5

    def test_s_to_ns_roundtrip(self):
        assert units.ns_to_s(units.s_to_ns(3.25)) == pytest.approx(3.25)


class TestBandwidthConversions:
    def test_one_gbps_is_one_byte_per_ns(self):
        assert units.gbps_to_bytes_per_ns(1.0) == 1.0

    def test_table_i_bandwidth(self):
        assert units.gbps_to_bytes_per_ns(14.9) == pytest.approx(14.9)

    def test_roundtrip(self):
        assert units.bytes_per_ns_to_gbps(
            units.gbps_to_bytes_per_ns(1.81)
        ) == pytest.approx(1.81)


class TestCapacityConstants:
    def test_decimal_units(self):
        assert units.GB == 1_000 * units.MB == 1_000_000 * units.KB

    def test_binary_units(self):
        assert units.GiB == 1024 * units.MiB == 1024 * 1024 * units.KiB


class TestFormatting:
    def test_format_bytes_gb(self):
        assert units.format_bytes(2_500_000_000) == "2.50 GB"

    def test_format_bytes_small(self):
        assert units.format_bytes(512) == "512 B"

    def test_format_ns_seconds(self):
        assert units.format_ns(1_500_000_000) == "1.500 s"

    def test_format_ns_micro(self):
        assert units.format_ns(42_000) == "42.000 us"

    def test_format_ns_raw(self):
        assert units.format_ns(65.7) == "65.7 ns"
