"""Tests for the X-Mem-style instrumented profiler."""

import numpy as np
import pytest

from repro.baselines import InstrumentedProfiler
from repro.core import Mnemo, MnemoT, WorkloadDescriptor
from repro.errors import ConfigurationError
from repro.kvstore import RedisLike


@pytest.fixture
def profiler(quiet_client):
    return InstrumentedProfiler(RedisLike, client=quiet_client)


@pytest.fixture
def descriptor(small_trace):
    return WorkloadDescriptor.from_trace(small_trace)


class TestMicrobenchmarks:
    def test_recovers_device_parameters(self, profiler):
        micro = profiler.run_microbenchmarks()
        assert micro.fast_latency_ns == pytest.approx(65.7)
        assert micro.slow_latency_ns == pytest.approx(238.1)
        assert micro.fast_bytes_per_ns == pytest.approx(14.9)

    def test_microbench_takes_time(self, profiler):
        micro = profiler.run_microbenchmarks()
        assert micro.microbench_ns > 0

    def test_device_time_lookup(self, profiler):
        micro = profiler.run_microbenchmarks()
        assert micro.device_time_ns("fast", 0) == pytest.approx(65.7)
        assert micro.device_time_ns("slow", 1810) == pytest.approx(238.1 + 1000)
        with pytest.raises(ConfigurationError):
            micro.device_time_ns("gpu", 0)


class TestProfilingCost:
    def test_overhead_dominates(self, profiler, descriptor, quiet_client):
        """Table IV: instrumentation costs ~40x one workload execution."""
        result = profiler.profile(descriptor)
        plain = Mnemo(engine_factory=RedisLike,
                      client=quiet_client).profile(descriptor)
        one_run = plain.baselines.fast.runtime_ns
        assert result.cost.tiering_ns == pytest.approx(40 * one_run, rel=0.01)

    def test_requires_source_instrumentation(self, profiler, descriptor):
        assert profiler.profile(descriptor).cost.requires_source_instrumentation

    def test_total_is_sum(self, profiler, descriptor):
        cost = profiler.profile(descriptor).cost
        assert cost.total_ns == pytest.approx(
            cost.input_prep_ns + cost.baselines_ns + cost.tiering_ns
        )

    def test_overhead_configurable(self, descriptor, quiet_client):
        cheap = InstrumentedProfiler(
            RedisLike, client=quiet_client, instrumentation_overhead=10.0
        )
        pricey = InstrumentedProfiler(
            RedisLike, client=quiet_client, instrumentation_overhead=40.0
        )
        assert (cheap.profile(descriptor).cost.tiering_ns
                < pricey.profile(descriptor).cost.tiering_ns)

    def test_invalid_overhead(self):
        with pytest.raises(ConfigurationError):
            InstrumentedProfiler(RedisLike, instrumentation_overhead=0.5)


class TestOrderingQuality:
    def test_matches_mnemot_ordering(self, profiler, descriptor,
                                     quiet_client):
        """The expensive instrumented run recovers exactly the ordering
        MnemoT computes for free from the descriptor (Table IV's point)."""
        result = profiler.profile(descriptor)
        tiered = MnemoT(engine_factory=RedisLike,
                        client=quiet_client).profile(descriptor)
        assert np.array_equal(result.pattern.order, tiered.pattern.order)


class TestDevicePrediction:
    def test_misses_cpu_component(self, profiler, descriptor, quiet_client):
        """Microbenchmark baselines see only device time, so they badly
        underpredict end-to-end runtime (why Mnemo measures instead)."""
        micro = profiler.run_microbenchmarks()
        predicted = profiler.predict_runtime_ns(descriptor, micro, "fast")
        real = Mnemo(engine_factory=RedisLike, client=quiet_client).profile(
            descriptor
        ).baselines.fast.runtime_ns
        assert predicted < 0.25 * real
