"""Tests for the Tahoe-style ML baseline profiler."""

import pytest

from dataclasses import replace

from repro.baselines import MLBaselineProfiler, train_fast_baseline_model
from repro.core import EstimateEngine, Mnemo, PatternEngine, WorkloadDescriptor
from repro.errors import ConfigurationError
from repro.kvstore import RedisLike
from repro.ycsb.distributions import DistributionSpec
from repro.ycsb.sizes import SizeModel
from repro.ycsb.workload import WorkloadSpec


def training_specs(n=6):
    """Diverse small workloads for model training."""
    specs = []
    dists = ["zipfian", "hotspot", "uniform", "scrambled_zipfian"]
    for i in range(n):
        specs.append(WorkloadSpec(
            name=f"train_{i}",
            distribution=DistributionSpec(name=dists[i % len(dists)]),
            read_fraction=[1.0, 0.8, 0.5][i % 3],
            size_model=SizeModel(
                name=f"s{i}", median_bytes=[100_000, 10_000, 50_000][i % 3],
                sigma=0.2,
            ),
            n_keys=100,
            n_requests=1_500,
            seed=100 + i,
        ))
    return specs


@pytest.fixture(scope="module")
def model():
    from repro.ycsb import YCSBClient

    return train_fast_baseline_model(
        training_specs(), RedisLike,
        client=YCSBClient(repeats=1, noise_sigma=0.0),
    )


class TestTraining:
    def test_needs_enough_workloads(self):
        with pytest.raises(ConfigurationError):
            train_fast_baseline_model(training_specs(3), RedisLike)

    def test_training_cost_accumulates(self, model):
        assert model.training_cost_ns > 0
        assert model.n_training_workloads == 6


class TestInference:
    def test_predicted_fast_baseline_close(self, model, small_trace,
                                           quiet_client):
        profiler = MLBaselineProfiler(model, RedisLike, client=quiet_client)
        result = profiler.profile(WorkloadDescriptor.from_trace(small_trace))
        real = Mnemo(engine_factory=RedisLike,
                     client=quiet_client).profile(small_trace)
        predicted = result.baselines.fast.runtime_ns
        actual = real.baselines.fast.runtime_ns
        # the linear model extrapolates well within the feature envelope
        assert predicted == pytest.approx(actual, rel=0.10)

    def test_slow_baseline_is_measured(self, model, small_trace,
                                       quiet_client):
        profiler = MLBaselineProfiler(model, RedisLike, client=quiet_client)
        result = profiler.profile(WorkloadDescriptor.from_trace(small_trace))
        real = Mnemo(engine_factory=RedisLike,
                     client=quiet_client).profile(small_trace)
        assert result.baselines.slow.runtime_ns == pytest.approx(
            real.baselines.slow.runtime_ns
        )

    def test_estimate_curve_buildable(self, model, small_trace,
                                      quiet_client):
        """Tahoe-style baselines drop into the Estimate Engine."""
        profiler = MLBaselineProfiler(model, RedisLike, client=quiet_client)
        descriptor = WorkloadDescriptor.from_trace(small_trace)
        result = profiler.profile(descriptor)
        pattern = PatternEngine(mode="weight").analyze(descriptor)
        curve = EstimateEngine().estimate(result.baselines, pattern)
        assert curve.n_keys == small_trace.n_keys


class TestCostAccounting:
    def test_training_cost_included_by_default(self, model, small_trace,
                                               quiet_client):
        profiler = MLBaselineProfiler(model, RedisLike, client=quiet_client)
        cost = profiler.profile(
            WorkloadDescriptor.from_trace(small_trace)
        ).cost
        assert cost.baselines_ns > model.training_cost_ns

    def test_amortized_excludes_training(self, model, small_trace,
                                         quiet_client):
        profiler = MLBaselineProfiler(
            model, RedisLike, client=quiet_client, amortize_training=True
        )
        cost = profiler.profile(
            WorkloadDescriptor.from_trace(small_trace)
        ).cost
        assert cost.baselines_ns < model.training_cost_ns

    def test_no_source_instrumentation(self, model, small_trace,
                                       quiet_client):
        profiler = MLBaselineProfiler(model, RedisLike, client=quiet_client)
        cost = profiler.profile(
            WorkloadDescriptor.from_trace(small_trace)
        ).cost
        assert not cost.requires_source_instrumentation
