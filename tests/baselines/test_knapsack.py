"""Tests for the 0/1 knapsack tiering solvers."""

import numpy as np
import pytest

from repro.baselines import knapsack_tiering
from repro.baselines.knapsack import dp_knapsack, greedy_knapsack
from repro.errors import ConfigurationError


def value_of(chosen, values):
    return values[chosen].sum() if chosen.size else 0.0


class TestGreedy:
    def test_fits_capacity(self):
        rng = np.random.default_rng(0)
        values = rng.random(100)
        sizes = rng.integers(1, 50, 100)
        chosen = greedy_knapsack(values, sizes, 300)
        assert sizes[chosen].sum() <= 300

    def test_prefers_density(self):
        values = np.array([10.0, 10.0])
        sizes = np.array([100, 10])
        chosen = greedy_knapsack(values, sizes, 10)
        assert chosen.tolist() == [1]

    def test_squeezes_later_items(self):
        # item 0 dense but big leftover allows item 2
        values = np.array([100.0, 50.0, 1.0])
        sizes = np.array([50, 49, 1])
        chosen = greedy_knapsack(values, sizes, 51)
        assert 0 in chosen and 2 in chosen

    def test_zero_capacity(self):
        chosen = greedy_knapsack(np.array([1.0]), np.array([1]), 0)
        assert chosen.size == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            greedy_knapsack(np.array([1.0]), np.array([0]), 10)
        with pytest.raises(ConfigurationError):
            greedy_knapsack(np.array([-1.0]), np.array([1]), 10)
        with pytest.raises(ConfigurationError):
            greedy_knapsack(np.array([1.0, 2.0]), np.array([1]), 10)


class TestDP:
    def test_classic_instance_optimal(self):
        values = np.array([60.0, 100.0, 120.0])
        sizes = np.array([10, 20, 30])
        chosen = dp_knapsack(values, sizes, 50)
        assert value_of(chosen, values) == 220.0  # items 1+2

    def test_beats_or_ties_greedy(self):
        rng = np.random.default_rng(1)
        for _ in range(5):
            values = rng.random(30) * 100
            sizes = rng.integers(1, 40, 30)
            cap = int(sizes.sum() // 3)
            dp_val = value_of(dp_knapsack(values, sizes, cap), values)
            gr_val = value_of(greedy_knapsack(values, sizes, cap), values)
            assert dp_val >= gr_val - 1e-9

    def test_never_overfills(self):
        rng = np.random.default_rng(2)
        values = rng.random(50)
        sizes = rng.integers(100, 10_000, 50)
        cap = int(sizes.sum() // 4)
        chosen = dp_knapsack(values, sizes, cap)
        assert sizes[chosen].sum() <= cap

    def test_empty_inputs(self):
        assert dp_knapsack(np.array([]), np.array([], dtype=int), 10).size == 0

    def test_item_bigger_than_capacity_skipped(self):
        chosen = dp_knapsack(np.array([5.0, 1.0]), np.array([100, 1]), 10)
        assert chosen.tolist() == [1]


class TestDispatch:
    def test_default_is_greedy(self):
        values = np.array([10.0, 10.0])
        sizes = np.array([100, 10])
        assert np.array_equal(
            knapsack_tiering(values, sizes, 10),
            greedy_knapsack(values, sizes, 10),
        )

    def test_exact_dispatch(self):
        values = np.array([60.0, 100.0, 120.0])
        sizes = np.array([10, 20, 30])
        chosen = knapsack_tiering(values, sizes, 50, exact=True)
        assert value_of(chosen, values) == 220.0
