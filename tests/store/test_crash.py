"""Kill-9 drills: the store and the journaled sweep survive SIGKILL.

Three escalating crashes, none of which may corrupt a byte:

- a **writer process** SIGKILLed mid-write stream — on reopen the
  database passes ``integrity_check``, nothing is quarantined, and the
  write-ordering invariant holds (every oplog-acknowledged fingerprint
  has its row; a row may lack its oplog line, never the reverse);
- a **sweep coordinator** SIGKILLed mid-sweep — completed experiments
  are durable in the journal, and ``--resume`` finishes the run with
  results bit-identical to an uninterrupted sweep;
- a **pool worker** SIGKILLed by chaos — the resilient runner retries
  it to convergence, exactly like the softer ``exit`` mode.
"""

import multiprocessing as mp
import os
import signal
import time

import pytest

from repro.faults import ChaosPlan
from repro.runner import ClientConfig, ExperimentRunner, RetryPolicy
from repro.store import SQLiteStore, SweepJournal

FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base_s=0.01)


def _wait_for(predicate, timeout_s=30.0, interval_s=0.02):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return False


# -- drill 1: writer killed mid-stream ---------------------------------------


def _doomed_writer(path):
    """Write verdict rows forever; each oplog line follows its row."""
    store = SQLiteStore(path)
    i = 0
    while True:
        fp = f"fp-{i:05d}"
        store.put_verdict(fp, {"i": i, "pad": "x" * 256})
        store.oplog.append("kill-run", "wrote", i=i, fingerprint=fp)
        i += 1


class TestWriterSigkill:
    def test_reopen_after_sigkill_zero_corruption(self, tmp_path):
        path = tmp_path / "victim.db"
        SQLiteStore(path).close()
        ctx = mp.get_context("fork")
        child = ctx.Process(target=_doomed_writer, args=(path,))
        child.start()
        probe = SQLiteStore(path)
        try:
            # let a real write stream build up before pulling the plug
            assert _wait_for(
                lambda: len(probe.oplog.entries("kill-run")) >= 20
            ), "writer never reached 20 acknowledged writes"
        finally:
            probe.close()
        os.kill(child.pid, signal.SIGKILL)
        child.join(timeout=30)
        assert child.exitcode == -signal.SIGKILL

        store = SQLiteStore(path)
        try:
            assert store.integrity_check() == "ok"
            report = store.verify()
            assert report.ok
            assert store.stats().total_quarantined == 0
            acked = store.oplog.entries("kill-run", kind="wrote")
            assert len(acked) >= 20
            rows = set(store.fingerprints("verdicts"))
            # write ordering: an acknowledgement implies a durable row
            for entry in acked:
                assert entry.payload["fingerprint"] in rows
            # and acknowledgements were never reordered or dropped
            assert [e.payload["i"] for e in acked] == list(range(len(acked)))
        finally:
            store.close()


# -- drill 2: coordinator killed mid-sweep, then resumed ---------------------


def _doomed_coordinator(store_path, run_id, specs, config, marker_dir):
    """Run a journaled serial sweep that wedges on the last spec."""
    store = SQLiteStore(store_path)
    runner = ExperimentRunner(
        cache=store, client=config,
        chaos=ChaosPlan(
            kill_labels=(specs[-1].label,), mode="hang", hang_s=300.0,
            marker_dir=marker_dir,
        ),
        retry=RetryPolicy(max_attempts=1),
    )
    try:
        runner.sweep(
            specs, workers=1, journal=SweepJournal(store, run_id),
        )
    finally:  # pragma: no cover - SIGKILL lands inside the hang
        runner.close()
        store.close()


class TestCoordinatorSigkill:
    def test_resume_completes_bit_identical(
        self, tmp_path, small_spec,
    ):
        specs = ExperimentRunner.grid(
            [small_spec], engines=("redis", "memcached"),
            placements=("fast", "slow"),
        )
        config = ClientConfig(repeats=2, seed=11)
        reference = ExperimentRunner(client=config).run_grid(specs)

        path = tmp_path / "sweep.db"
        SQLiteStore(path).close()
        ctx = mp.get_context("fork")
        child = ctx.Process(
            target=_doomed_coordinator,
            args=(path, "drill", specs, config, str(tmp_path / "chaos")),
        )
        child.start()
        probe = SQLiteStore(path)
        try:
            # wait until some checkpoints are durable, then kill -9
            assert _wait_for(
                lambda: len(SweepJournal(probe, "drill").completed()) >= 2
            ), "coordinator never checkpointed an experiment"
        finally:
            probe.close()
        os.kill(child.pid, signal.SIGKILL)
        child.join(timeout=30)
        assert child.exitcode == -signal.SIGKILL

        store = SQLiteStore(path)
        try:
            assert store.integrity_check() == "ok"
            journal = SweepJournal(store, "drill")
            assert journal.started() and not journal.finished()
            n_durable = len(journal.completed())
            assert 2 <= n_durable < len(specs)

            # resume: same run id, no chaos this time
            runner = ExperimentRunner(cache=store, client=config)
            try:
                outcome = runner.sweep(
                    specs, workers=1, journal=SweepJournal(store, "drill"),
                )
            finally:
                runner.close()
            assert outcome.ok
            assert list(outcome.results) == reference  # bit-identical
            assert outcome.provenance.count("journal") == n_durable
            assert f"{n_durable} resumed from journal" in outcome.summary()
            assert SweepJournal(store, "drill").finished()
        finally:
            store.close()


# -- drill 3: pool worker SIGKILLed by chaos ---------------------------------


class TestWorkerSigkill:
    def test_sigkilled_worker_retried_to_identical_results(
        self, tmp_path, small_spec,
    ):
        specs = ExperimentRunner.grid(
            [small_spec], engines=("redis", "memcached"),
            placements=("fast", "slow"),
        )
        config = ClientConfig(repeats=2, seed=11)
        reference = ExperimentRunner(client=config).run_grid(specs)
        victim = specs[1].label
        runner = ExperimentRunner(
            client=config,
            chaos=ChaosPlan(
                kill_labels=(victim,), mode="sigkill",
                marker_dir=str(tmp_path / "chaos"),
            ),
            retry=FAST_RETRY,
        )
        outcome = runner.sweep(specs, workers=2)
        assert outcome.ok
        assert list(outcome.results) == reference
        assert runner.chaos.strikes_delivered(victim) == 1

    def test_serial_sigkill_downgrades_to_raise(self, tmp_path, small_spec):
        # serial sweeps must never let chaos SIGKILL the caller
        specs = ExperimentRunner.grid([small_spec], engines=("redis",))
        config = ClientConfig(repeats=1, seed=11)
        runner = ExperimentRunner(
            client=config,
            chaos=ChaosPlan(
                kill_labels=(specs[0].label,), mode="sigkill",
                marker_dir=str(tmp_path / "chaos"),
            ),
            retry=FAST_RETRY,
        )
        outcome = runner.sweep(specs, workers=1)
        assert outcome.ok  # retried in-process, nobody was killed
