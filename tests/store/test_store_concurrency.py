"""Two-process concurrent-writer stress test for the SQLite store.

SQLite serialises writers; the store's job is to make that invisible —
``busy_timeout`` plus the bounded-backoff retry in
:meth:`~repro.store.db.Database.write_txn` must absorb lock contention
so that two processes hammering one store lose no rows and duplicate
none.
"""

import multiprocessing as mp
import sqlite3
import threading

import pytest

from repro.errors import StoreError
from repro.store import SQLiteStore
from repro.store.db import Database

N_PER_WRITER = 40


def _writer(path, worker, n):
    """Child-process target: write *n* verdicts + oplog entries."""
    store = SQLiteStore(path, busy_timeout_ms=2_000)
    try:
        for i in range(n):
            store.put_verdict(
                f"w{worker}-{i:03d}", {"worker": worker, "i": i},
            )
            store.oplog.append(f"run-w{worker}", "tick", worker=worker, i=i)
    finally:
        store.close()


class TestConcurrentWriters:
    def test_two_process_stress_no_lost_or_duplicate_rows(self, tmp_path):
        path = tmp_path / "shared.db"
        SQLiteStore(path).close()  # create the schema up front
        ctx = mp.get_context("fork")
        procs = [
            ctx.Process(target=_writer, args=(path, w, N_PER_WRITER))
            for w in range(2)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        store = SQLiteStore(path)
        try:
            fps = store.fingerprints("verdicts")
            expected = sorted(
                f"w{w}-{i:03d}"
                for w in range(2) for i in range(N_PER_WRITER)
            )
            assert fps == expected  # nothing lost, nothing duplicated
            for w in range(2):
                entries = store.oplog.entries(f"run-w{w}")
                assert [e.payload["i"] for e in entries] == list(
                    range(N_PER_WRITER)
                )
            assert store.integrity_check() == "ok"
        finally:
            store.close()

    def test_same_fingerprint_from_both_writers_last_write_wins(
        self, tmp_path,
    ):
        path = tmp_path / "clash.db"
        SQLiteStore(path).close()
        ctx = mp.get_context("fork")
        procs = [ctx.Process(target=_clash_writer, args=(path, w))
                 for w in range(2)]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        store = SQLiteStore(path)
        try:
            # exactly one row survives, and it is one of the writes
            assert store.fingerprints("verdicts") == ["shared"]
            got = store.get_verdict("shared")
            assert got["worker"] in (0, 1) and got["i"] == 19
        finally:
            store.close()


def _clash_writer(path, worker):
    st = SQLiteStore(path, busy_timeout_ms=2_000)
    try:
        for i in range(20):
            st.put_verdict("shared", {"worker": worker, "i": i})
    finally:
        st.close()


class TestLockRetry:
    def test_held_lock_is_retried_then_succeeds(self, tmp_path):
        """A writer blocked by a long transaction waits it out."""
        path = tmp_path / "locked.db"
        store = SQLiteStore(path, busy_timeout_ms=50)
        store.put_verdict("seed", {"x": 0})
        blocker = sqlite3.connect(
            path, isolation_level=None, check_same_thread=False,
        )
        blocker.execute("BEGIN IMMEDIATE")
        release = threading.Timer(0.3, lambda: blocker.execute("COMMIT"))
        release.start()
        try:
            store.put_verdict("after", {"x": 1})  # retries until released
            assert store.get_verdict("after") == {"x": 1}
        finally:
            release.cancel()
            blocker.close()
            store.close()

    def test_exhausted_retries_raise_store_error(self, tmp_path):
        path = tmp_path / "stuck.db"
        store = SQLiteStore(
            path, busy_timeout_ms=10, max_attempts=2,
        )
        store.db.backoff_base_s = 0.01
        store.put_verdict("seed", {"x": 0})
        blocker = sqlite3.connect(path, isolation_level=None)
        blocker.execute("BEGIN IMMEDIATE")
        try:
            with pytest.raises(StoreError, match="stayed locked"):
                store.put_verdict("never", {"x": 1})
        finally:
            blocker.execute("ROLLBACK")
            blocker.close()
            store.close()

    def test_fork_reopens_connection(self, tmp_path):
        """A forked child must not reuse the parent's connection."""
        path = tmp_path / "forked.db"
        store = SQLiteStore(path)
        store.put_verdict("parent", {"x": 0})  # opens parent connection
        ctx = mp.get_context("fork")
        p = ctx.Process(target=_fork_child, args=(store,))
        p.start()
        p.join(timeout=30)
        try:
            assert p.exitcode == 0
            assert store.get_verdict("child") == {"x": 1}
        finally:
            store.close()

    def test_database_rejects_unopenable_path(self, tmp_path):
        target = tmp_path / "not-a-dir"
        target.write_text("plain file")
        with pytest.raises(StoreError, match="cannot open"):
            Database(target / "x.db").connection()


def _fork_child(store):
    store.put_verdict("child", {"x": 1})
    store.close()
