"""Tests for the one-shot file-cache -> SQLite store migration."""

import numpy as np
import pytest

from repro.errors import StoreError
from repro.faults import corrupt_cache_entries
from repro.runner.cache import ResultCache
from repro.store import SQLiteStore, migrate_cache
from repro.ycsb.client import RunResult


@pytest.fixture
def result():
    return RunResult(
        workload="w", engine="redis", n_requests=100, n_reads=60,
        n_writes=40, runtime_ns=1.5e8, avg_read_ns=1200.5,
        avg_write_ns=1500.25,
        latency_percentiles_ns={50.0: 900.0, 99.0: 4000.125},
        repeats=3, runtime_std_ns=12.5, concurrency=2,
    )


@pytest.fixture
def populated_cache(tmp_path, result, small_trace):
    """A file cache holding one entry of every kind."""
    cache = ResultCache(tmp_path / "cache")
    cache.put_result("fp-r", result)
    cache.put_trace("fp-t", small_trace)
    cache.put_hitmask("fp-h", np.array([True, False, True, True]))
    cache.put_verdict("fp-v", {"status": "pass", "n_fast_keys": 7})
    return cache


@pytest.fixture
def store(tmp_path):
    st = SQLiteStore(tmp_path / "dst.db")
    yield st
    st.close()


class TestMigrate:
    def test_all_kinds_migrated_and_verified(
        self, populated_cache, store, result, small_trace,
    ):
        report = migrate_cache(populated_cache, store)
        assert report.ok
        assert report.total_migrated == 4
        assert report.migrated == {
            "results": 1, "traces": 1, "hitmasks": 1, "verdicts": 1,
        }
        assert store.get_result("fp-r") == result
        got = store.get_trace("fp-t")
        assert np.array_equal(got.keys, small_trace.keys)
        assert np.array_equal(
            store.get_hitmask("fp-h"), np.array([True, False, True, True]),
        )
        assert store.get_verdict("fp-v") == {
            "status": "pass", "n_fast_keys": 7,
        }

    def test_migrated_bytes_are_bit_identical(self, populated_cache, store):
        # stronger than decoded equality: the stored blob must be the
        # exact bytes the file cache held
        migrate_cache(populated_cache, store)
        for kind in ("results", "traces", "hitmasks", "verdicts"):
            for path in populated_cache._entries(kind):
                row = store._row(kind, path.stem)
                assert bytes(row["body"]) == path.read_bytes(), (kind, path)

    def test_corrupt_source_entries_skipped(self, populated_cache, store):
        corrupt_cache_entries(populated_cache, kinds=("results",))
        report = migrate_cache(populated_cache, store)
        assert report.ok  # skipping is not a failure
        assert report.skipped["results"] == ("fp-r",)
        assert report.total_skipped == 1
        assert report.migrated["results"] == 0
        assert store.get_result("fp-r") is None

    def test_source_left_untouched(self, populated_cache, store, result):
        migrate_cache(populated_cache, store)
        assert populated_cache.get_result("fp-r") == result
        assert populated_cache.stats().total_entries == 4

    def test_sqlite_source_rejected(self, store, tmp_path):
        other = SQLiteStore(tmp_path / "other.db")
        try:
            with pytest.raises(StoreError, match="file-tree cache"):
                migrate_cache(other, store)
        finally:
            other.close()

    def test_idempotent_rerun(self, populated_cache, store):
        first = migrate_cache(populated_cache, store)
        second = migrate_cache(populated_cache, store)
        assert second.ok
        assert second.total_migrated == first.total_migrated == 4
        assert store.stats().total_entries == 4

    def test_report_lines_mention_every_kind(self, populated_cache, store):
        report = migrate_cache(populated_cache, store)
        text = "\n".join(report.lines())
        for kind in ("results", "traces", "hitmasks", "verdicts", "total"):
            assert kind in text
        assert "bit-identical" in text

    def test_empty_cache_migrates_cleanly(self, tmp_path, store):
        report = migrate_cache(ResultCache(tmp_path / "empty"), store)
        assert report.ok
        assert report.total_migrated == 0
