"""Tests for the durable SQLite-backed experiment store.

The store's contract: a drop-in :class:`~repro.runner.cache.ResultCache`
replacement with the same envelopes (so migrated entries read back
bit-identically), the same quarantine-and-recompute corruption policy,
plus durability (single-transaction writes), an append-only oplog, and
SQL-queryable censuses.
"""

import json

import numpy as np
import pytest

from repro.errors import CacheCorruptionError, StoreError
from repro.faults import corrupt_store_rows
from repro.runner.cache import (
    SCHEMA_VERSION,
    ResultCache,
    ensure_cache,
    is_sqlite_path,
)
from repro.store import SQLiteStore, SweepJournal, ensure_store
from repro.ycsb.client import RunResult


@pytest.fixture
def store(tmp_path):
    """A fresh store in a temp file."""
    st = SQLiteStore(tmp_path / "mnemo.db")
    yield st
    st.close()


@pytest.fixture
def result():
    """A representative RunResult with float percentile keys."""
    return RunResult(
        workload="w", engine="redis", n_requests=100, n_reads=60,
        n_writes=40, runtime_ns=1.5e8, avg_read_ns=1200.5,
        avg_write_ns=1500.25,
        latency_percentiles_ns={50.0: 900.0, 99.0: 4000.125},
        repeats=3, runtime_std_ns=12.5, concurrency=2,
    )


class TestRoundTrips:
    def test_result_roundtrip_is_exact(self, store, result):
        store.put_result("fp1", result)
        assert store.get_result("fp1") == result

    def test_percentile_keys_restored_as_floats(self, store, result):
        store.put_result("fp1", result)
        got = store.get_result("fp1")
        assert set(got.latency_percentiles_ns) == {50.0, 99.0}

    def test_trace_roundtrip(self, store, small_trace):
        store.put_trace("t1", small_trace)
        got = store.get_trace("t1")
        assert got.name == small_trace.name
        assert np.array_equal(got.keys, small_trace.keys)
        assert np.array_equal(got.is_read, small_trace.is_read)
        assert np.array_equal(got.record_sizes, small_trace.record_sizes)

    def test_hitmask_roundtrip(self, store):
        mask = np.array([True, False, True])
        store.put_hitmask("h1", mask)
        assert np.array_equal(store.get_hitmask("h1"), mask)

    def test_verdict_roundtrip(self, store):
        payload = {"status": "pass", "n_fast_keys": 42, "points": [1, 2, 3]}
        store.put_verdict("v1", payload)
        assert store.get_verdict("v1") == payload

    def test_missing_returns_none(self, store):
        assert store.get_result("nope") is None
        assert store.get_trace("nope") is None
        assert store.get_hitmask("nope") is None
        assert store.get_verdict("nope") is None

    def test_overwrite_replaces(self, store, result):
        store.put_verdict("v", {"status": "pass"})
        store.put_verdict("v", {"status": "reject"})
        assert store.get_verdict("v") == {"status": "reject"}
        assert store.stats().entries["verdicts"] == 1

    def test_same_envelope_as_file_cache(self, tmp_path, store, result):
        # the store persists the exact bytes the file cache would —
        # that byte-level agreement is what makes migration bit-exact
        cache = ResultCache(tmp_path / "cache")
        path = cache.put_result("fp1", result)
        store.put_result("fp1", result)
        assert store._row("results", "fp1")["body"] == path.read_bytes()


class TestCorruption:
    def test_corrupt_row_quarantined_as_miss(self, store, result):
        store.put_result("fp1", result)
        corrupt_store_rows(store, kinds=("results",))
        assert store.get_result("fp1") is None
        assert store.stats().quarantined["results"] == 1
        # the entry is gone from the live table, so reruns recompute
        assert store.stats().entries["results"] == 0

    def test_strict_mode_raises(self, tmp_path, result):
        store = SQLiteStore(tmp_path / "strict.db", strict=True)
        try:
            store.put_result("fp1", result)
            corrupt_store_rows(store, kinds=("results",))
            with pytest.raises(CacheCorruptionError, match="fp1"):
                store.get_result("fp1")
        finally:
            store.close()

    def test_truncated_blob_detected(self, store, small_trace):
        store.put_trace("t1", small_trace)
        corrupt_store_rows(store, kinds=("traces",), mode="truncate")
        assert store.get_trace("t1") is None
        assert store.stats().quarantined["traces"] == 1

    def test_verify_reports_and_repairs(self, store, result):
        store.put_result("good", result)
        store.put_result("bad", result)
        corrupt_store_rows(store, kinds=("results",), limit=1)
        report = store.verify()
        assert not report.ok
        assert report.corrupt["results"] == ("bad",)
        # repaired: the corrupt row moved to quarantine
        assert store.verify().ok
        assert store.get_result("good") == result

    def test_schema_stale_row_is_a_miss_not_corruption(self, store, result):
        store.put_result("fp1", result)

        def bump(conn):
            conn.execute(
                "UPDATE entries SET body = ? WHERE fingerprint = 'fp1'",
                (json.dumps(
                    {"schema": SCHEMA_VERSION + 1, "checksum": "x",
                     "result": {}},
                ).encode(),),
            )

        store.db.write_txn(bump)
        assert store.get_result("fp1") is None
        assert store.stats().quarantined["results"] == 0


class TestMaintenance:
    def test_stats_counts_kinds(self, store, result, small_trace):
        store.put_result("a", result)
        store.put_result("b", result)
        store.put_trace("t", small_trace)
        stats = store.stats()
        assert stats.entries["results"] == 2
        assert stats.entries["traces"] == 1
        assert stats.entries["hitmasks"] == 0
        assert stats.total_entries == 3
        assert stats.total_bytes > 0

    def test_fingerprints_sorted(self, store, result):
        for fp in ("c", "a", "b"):
            store.put_result(fp, result)
        assert store.fingerprints("results") == ["a", "b", "c"]

    def test_clear_keeps_oplog(self, store, result):
        store.put_result("a", result)
        store.oplog.append("run1", "sweep_started", n_specs=1)
        assert store.clear() == 1
        assert store.get_result("a") is None
        assert len(store.oplog.entries("run1")) == 1

    def test_integrity_check_ok(self, store, result):
        store.put_result("a", result)
        assert store.integrity_check() == "ok"

    def test_close_is_idempotent(self, tmp_path):
        store = SQLiteStore(tmp_path / "x.db")
        store.close()
        store.close()

    def test_reopen_sees_previous_writes(self, tmp_path, result):
        path = tmp_path / "x.db"
        st = SQLiteStore(path)
        st.put_result("fp1", result)
        st.close()
        st2 = SQLiteStore(path)
        try:
            assert st2.get_result("fp1") == result
        finally:
            st2.close()


class TestOplog:
    def test_append_returns_monotonic_seqs(self, store):
        seqs = [store.oplog.append("r", "tick", n=i) for i in range(3)]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 3

    def test_entries_filter_by_run_and_kind(self, store):
        store.oplog.append("r1", "a", x=1)
        store.oplog.append("r2", "a", x=2)
        store.oplog.append("r1", "b", x=3)
        assert [e.payload["x"] for e in store.oplog.entries("r1")] == [1, 3]
        assert [e.kind for e in store.oplog.entries("r1", kind="b")] == ["b"]

    def test_runs_census(self, store):
        store.oplog.append("old", "a")
        store.oplog.append("new", "a")
        store.oplog.append("new", "b")
        assert store.oplog.runs() == [("new", 2), ("old", 1)]

    def test_describe_is_one_line(self, store):
        store.oplog.append("r", "tick", n=1)
        line = store.oplog.entries("r")[0].describe()
        assert "tick" in line and "\n" not in line


class TestJournal:
    def test_empty_run_id_rejected(self, store):
        with pytest.raises(StoreError, match="run id"):
            SweepJournal(store, "")

    def test_begin_record_finish_lifecycle(self, store):
        j = SweepJournal(store, "run")
        assert not j.started()
        assert j.begin(["a", "b"]) is False  # fresh, not a resume
        j.record(0, "a", "fp-a")
        assert j.completed() == {"fp-a": "a"}
        assert not j.finished()
        j.finish(completed=1, failed=1)
        assert j.finished()

    def test_second_begin_is_a_resume(self, store):
        j = SweepJournal(store, "run")
        j.begin(["a"])
        j2 = SweepJournal(store, "run")
        assert j2.begin(["a"]) is True
        assert len(j2.entries(kind="sweep_started")) == 2


class TestEnsure:
    def test_sqlite_path_detected_by_suffix(self, tmp_path):
        assert is_sqlite_path(tmp_path / "x.db")
        assert is_sqlite_path(tmp_path / "x.sqlite3")
        assert not is_sqlite_path(tmp_path / "cache-dir")

    def test_sqlite_file_detected_by_magic(self, tmp_path):
        # a store file without a helpful suffix is still recognised
        odd = tmp_path / "state"
        SQLiteStore(odd).close()
        assert is_sqlite_path(odd)
        built = ensure_cache(odd)
        assert isinstance(built, SQLiteStore)
        built.close()

    def test_ensure_cache_builds_store_for_db_path(self, tmp_path):
        built = ensure_cache(tmp_path / "x.db")
        assert isinstance(built, SQLiteStore)
        built.close()

    def test_ensure_store_passthrough(self, store, tmp_path):
        assert ensure_store(None) is None
        assert ensure_store(store) is store
        built = ensure_store(tmp_path / "y.db")
        assert isinstance(built, SQLiteStore)
        built.close()
