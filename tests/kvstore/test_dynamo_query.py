"""Tests for DynamoLike's timed Query operation."""

import pytest

from repro.errors import ConfigurationError
from repro.kvstore import DynamoLike


@pytest.fixture
def store(system):
    eng = DynamoLike(system.fast, system.slow)
    eng.load({k: 1_000 for k in range(0, 100, 2)}, fast_keys=range(0, 50, 2))
    return eng


class TestQuery:
    def test_returns_consecutive_items(self, store):
        results = store.query(10, limit=5)
        assert [r.key for r in results] == [10, 12, 14, 16, 18]

    def test_respects_limit(self, store):
        assert len(store.query(0, limit=3)) == 3

    def test_short_tail(self, store):
        results = store.query(96, limit=10)
        assert [r.key for r in results] == [96, 98]

    def test_empty_range(self, store):
        assert store.query(200, limit=5) == []

    def test_items_charged_per_node(self, store):
        results = store.query(44, limit=5)  # spans the fast/slow boundary
        nodes = {r.key: r.node for r in results}
        assert nodes[44] == "FastMem" and nodes[48] == "FastMem"
        assert nodes[50] == "SlowMem"

    def test_accrues_time(self, store):
        before = store.clock_ns
        store.query(0, limit=10)
        assert store.clock_ns > before
        assert store.op_count >= 10

    def test_limit_validated(self, store):
        with pytest.raises(ConfigurationError):
            store.query(0, limit=0)
