"""Tests for the storage-backed store (Mnemo's scoping counterexample)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, WorkloadError
from repro.kvstore.storage import ROCKS_PROFILE, StorageBackedStore, StorageConfig
from repro.memsim import HybridMemorySystem


@pytest.fixture
def store(system):
    return StorageBackedStore(system)


def all_fast(trace):
    return np.ones(trace.n_keys, dtype=bool)


def all_slow(trace):
    return np.zeros(trace.n_keys, dtype=bool)


class TestConfig:
    def test_defaults(self):
        cfg = StorageConfig()
        assert cfg.cache_fraction == 0.25

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StorageConfig(disk_latency_ns=0)
        with pytest.raises(ConfigurationError):
            StorageConfig(cache_fraction=0.0)


class TestExecution:
    def test_fast_cache_beats_slow_cache(self, store, small_trace):
        fast = store.execute(small_trace, all_fast(small_trace),
                             repeats=1, noise_sigma=0.0)
        slow = store.execute(small_trace, all_slow(small_trace),
                             repeats=1, noise_sigma=0.0)
        assert fast.runtime_ns < slow.runtime_ns

    def test_memory_gap_smaller_than_inmemory_store(self, small_trace,
                                                    quiet_client):
        """Disk misses dilute the memory sensitivity versus RedisLike."""
        from repro.kvstore import HybridDeployment, RedisLike

        store = StorageBackedStore(HybridMemorySystem.testbed())
        s_fast = store.execute(small_trace, all_fast(small_trace),
                               repeats=1, noise_sigma=0.0)
        s_slow = store.execute(small_trace, all_slow(small_trace),
                               repeats=1, noise_sigma=0.0)
        storage_gap = s_slow.runtime_ns / s_fast.runtime_ns

        system = HybridMemorySystem.testbed()
        r_fast = quiet_client.execute(
            small_trace,
            HybridDeployment.all_fast(RedisLike, system,
                                      small_trace.record_sizes),
        )
        system2 = HybridMemorySystem.testbed()
        r_slow = quiet_client.execute(
            small_trace,
            HybridDeployment.all_slow(RedisLike, system2,
                                      small_trace.record_sizes),
        )
        redis_gap = r_slow.runtime_ns / r_fast.runtime_ns
        assert storage_gap < redis_gap

    def test_bigger_cache_faster(self, system, small_trace):
        small_cache = StorageBackedStore(
            system, StorageConfig(cache_fraction=0.05)
        )
        big_cache = StorageBackedStore(
            system, StorageConfig(cache_fraction=0.8)
        )
        t_small = small_cache.execute(small_trace, all_fast(small_trace),
                                      repeats=1, noise_sigma=0.0)
        t_big = big_cache.execute(small_trace, all_fast(small_trace),
                                  repeats=1, noise_sigma=0.0)
        assert t_big.runtime_ns < t_small.runtime_ns

    def test_hit_rate_grows_with_cache(self, system, small_trace):
        rates = [
            StorageBackedStore(
                system, StorageConfig(cache_fraction=f)
            ).cache_hit_rate(small_trace)
            for f in (0.05, 0.25, 1.0)
        ]
        assert rates[0] < rates[1] < rates[2]

    def test_writes_placement_insensitive(self, system, mixed_trace):
        store = StorageBackedStore(system)
        fast = store.execute(mixed_trace, all_fast(mixed_trace),
                             repeats=1, noise_sigma=0.0)
        slow = store.execute(mixed_trace, all_slow(mixed_trace),
                             repeats=1, noise_sigma=0.0)
        assert fast.avg_write_ns == pytest.approx(slow.avg_write_ns,
                                                  rel=1e-9)
        assert fast.avg_read_ns < slow.avg_read_ns

    def test_mask_validation(self, store, small_trace):
        with pytest.raises(WorkloadError):
            store.execute(small_trace, np.ones(3, dtype=bool))

    def test_repeats_validation(self, store, small_trace):
        with pytest.raises(ConfigurationError):
            store.execute(small_trace, all_fast(small_trace), repeats=0)

    def test_deterministic(self, store, small_trace):
        a = store.execute(small_trace, all_fast(small_trace), seed=3)
        b = store.execute(small_trace, all_fast(small_trace), seed=3)
        assert a.runtime_ns == b.runtime_ns


class TestModelBreakage:
    def test_estimate_error_large(self, system, small_trace):
        """The headline: Mnemo's uniform-average model degrades by
        orders of magnitude on a storage-engaged store (Section V-A
        'Target applications')."""
        store = StorageBackedStore(system)
        fast = store.execute(small_trace, all_fast(small_trace),
                             repeats=1, noise_sigma=0.0)
        slow = store.execute(small_trace, all_slow(small_trace),
                             repeats=1, noise_sigma=0.0)
        read_delta = slow.avg_read_ns - fast.avg_read_ns

        # Mnemo-style estimate at a 30 % hot-first placement
        counts = np.bincount(small_trace.keys,
                             minlength=small_trace.n_keys)
        order = np.argsort(-counts, kind="stable")
        k = int(0.3 * small_trace.n_keys)
        mask = np.zeros(small_trace.n_keys, dtype=bool)
        mask[order[:k]] = True
        reads_fast = counts[order[:k]].sum()
        est_runtime = slow.runtime_ns - reads_fast * read_delta

        measured = store.execute(small_trace, mask, repeats=1,
                                 noise_sigma=0.0)
        error = abs(measured.runtime_ns - est_runtime) / measured.runtime_ns
        assert error > 0.01  # percent-scale, vs ~1e-4 for in-memory stores

    def test_profile_exported(self):
        assert ROCKS_PROFILE.name == "rockslike"
