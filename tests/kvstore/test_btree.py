"""Tests for the B-tree index."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, KeyNotFoundError
from repro.kvstore import BTree


class TestBasics:
    def test_insert_lookup(self):
        t = BTree(order=4)
        assert t.insert(5, "v") is True
        assert t.lookup(5) == "v"

    def test_update(self):
        t = BTree(order=4)
        t.insert(5, "a")
        assert t.insert(5, "b") is False
        assert t.lookup(5) == "b"
        assert len(t) == 1

    def test_missing_raises(self):
        with pytest.raises(KeyNotFoundError):
            BTree().lookup(1)

    def test_get_default(self):
        assert BTree().get(1, "d") == "d"

    def test_contains(self):
        t = BTree(order=4)
        t.insert(1, 1)
        assert 1 in t and 2 not in t

    def test_min_order(self):
        with pytest.raises(ConfigurationError):
            BTree(order=3)


class TestBulk:
    @pytest.mark.parametrize("order", [4, 8, 64])
    def test_sequential_inserts(self, order):
        t = BTree(order=order)
        for k in range(500):
            t.insert(k, k * 2)
        assert len(t) == 500
        t.check_invariants()
        for k in range(500):
            assert t.lookup(k) == k * 2

    @pytest.mark.parametrize("order", [4, 8, 64])
    def test_random_inserts(self, order):
        rng = np.random.default_rng(0)
        keys = rng.permutation(1000)
        t = BTree(order=order)
        for k in keys:
            t.insert(int(k), int(k))
        t.check_invariants()
        assert len(t) == 1000

    def test_height_grows_logarithmically(self):
        t = BTree(order=8)
        for k in range(1000):
            t.insert(k, k)
        assert t.height <= 5


class TestDelete:
    @pytest.mark.parametrize("order", [4, 8])
    def test_delete_all_random(self, order):
        rng = np.random.default_rng(1)
        keys = rng.permutation(300)
        t = BTree(order=order)
        for k in keys:
            t.insert(int(k), int(k))
        for k in rng.permutation(300):
            assert t.remove(int(k)) == int(k)
            if len(t) % 50 == 0:
                t.check_invariants()
        assert len(t) == 0

    def test_delete_missing_raises(self):
        t = BTree(order=4)
        t.insert(1, 1)
        with pytest.raises(KeyNotFoundError):
            t.remove(9)

    def test_delete_internal_key(self):
        t = BTree(order=4)
        for k in range(50):
            t.insert(k, k)
        # key 25 is certainly internal somewhere along the way
        t.remove(25)
        t.check_invariants()
        assert 25 not in t
        assert len(t) == 49

    def test_interleaved_insert_delete(self):
        t = BTree(order=4)
        for k in range(200):
            t.insert(k, k)
            if k % 3 == 0 and k > 0:
                t.remove(k - 1)
        t.check_invariants()


class TestIteration:
    def test_items_sorted(self):
        rng = np.random.default_rng(2)
        t = BTree(order=8)
        for k in rng.permutation(200):
            t.insert(int(k), int(k))
        keys = [k for k, _ in t.items()]
        assert keys == sorted(keys) == list(range(200))

    def test_range_scan(self):
        t = BTree(order=8)
        for k in range(100):
            t.insert(k, k)
        got = [k for k, _ in t.range(10, 20)]
        assert got == list(range(10, 20))

    def test_range_open_ended(self):
        t = BTree(order=8)
        for k in range(20):
            t.insert(k, k)
        assert [k for k, _ in t.range(15)] == [15, 16, 17, 18, 19]


class TestVisitAccounting:
    def test_node_visits_increase(self):
        t = BTree(order=4)
        for k in range(100):
            t.insert(k, k)
        before = t.node_visits
        t.lookup(50)
        assert t.node_visits > before
