"""Tests for the engine sensitivity profiles."""

import pytest

from repro.errors import ConfigurationError
from repro.kvstore import (
    DYNAMO_PROFILE,
    MEMCACHED_PROFILE,
    REDIS_PROFILE,
    EngineProfile,
    profile_for,
)
from repro.kvstore.profiles import builtin_profiles


class TestBuiltins:
    def test_lookup_by_name(self):
        assert profile_for("redis") is REDIS_PROFILE
        assert profile_for("MEMCACHED") is MEMCACHED_PROFILE
        assert profile_for("DynamoDB") is DYNAMO_PROFILE

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            profile_for("rocksdb")

    def test_builtin_profiles_copy(self):
        d = builtin_profiles()
        d["redis"] = None
        assert profile_for("redis") is REDIS_PROFILE


class TestSensitivityOrdering:
    """The paper's cross-store ordering (Figs 8b, 9) is a calibration
    invariant: DynamoDB most memory-bound, Memcached least."""

    def _memory_share(self, p, nbytes=100_000, slow_ns=55_000):
        return p.read_passes * slow_ns / (p.read_cpu_ns + p.read_passes * slow_ns)

    def test_dynamo_most_sensitive(self):
        assert self._memory_share(DYNAMO_PROFILE) > self._memory_share(REDIS_PROFILE)

    def test_memcached_least_sensitive(self):
        assert self._memory_share(MEMCACHED_PROFILE) < self._memory_share(REDIS_PROFILE)

    def test_writes_less_exposed_than_reads(self):
        for p in (REDIS_PROFILE, MEMCACHED_PROFILE, DYNAMO_PROFILE):
            assert p.write_passes < p.read_passes


class TestAccessors:
    def test_cpu_ns_by_type(self):
        assert REDIS_PROFILE.cpu_ns(True) == REDIS_PROFILE.read_cpu_ns
        assert REDIS_PROFILE.cpu_ns(False) == REDIS_PROFILE.write_cpu_ns

    def test_passes_by_type(self):
        assert DYNAMO_PROFILE.passes(True) == DYNAMO_PROFILE.read_passes
        assert DYNAMO_PROFILE.passes(False) == DYNAMO_PROFILE.write_passes


class TestValidation:
    def test_nonpositive_cpu_rejected(self):
        with pytest.raises(ConfigurationError):
            EngineProfile(name="x", read_cpu_ns=0, write_cpu_ns=1,
                          read_passes=1, write_passes=1)

    def test_negative_passes_rejected(self):
        with pytest.raises(ConfigurationError):
            EngineProfile(name="x", read_cpu_ns=1, write_cpu_ns=1,
                          read_passes=-1, write_passes=1)

    def test_negative_metadata_rejected(self):
        with pytest.raises(ConfigurationError):
            EngineProfile(name="x", read_cpu_ns=1, write_cpu_ns=1,
                          read_passes=1, write_passes=1, metadata_bytes=-1)

    def test_zero_passes_allowed(self):
        p = EngineProfile(name="x", read_cpu_ns=1, write_cpu_ns=1,
                          read_passes=0, write_passes=0)
        assert p.passes(True) == 0
