"""Churn stress tests: accounting invariants under insert/delete cycles.

A capacity-sizing consultant is only as good as its capacity
accounting; these tests hammer each engine with load/delete/reload
cycles and assert the node occupancy, allocator state and dataset
bookkeeping never drift.
"""

import numpy as np
import pytest

from repro.kvstore import DynamoLike, MemcachedLike, RedisLike
from repro.kvstore.base import FAST, SLOW


@pytest.fixture
def engine(engine_factory, system):
    return engine_factory(system.fast, system.slow)


def churn(engine, rng, rounds=5, n=120):
    """Load/delete/update in randomized interleavings."""
    live = {}
    next_key = 0
    for _ in range(rounds):
        # insert a batch
        batch = {}
        for _ in range(n):
            size = int(rng.integers(100, 50_000))
            batch[next_key] = size
            live[next_key] = size
            next_key += 1
        fast_keys = [k for k in batch if rng.random() < 0.5]
        engine.load(batch, fast_keys=fast_keys)
        # delete a random half of everything live
        victims = rng.choice(sorted(live), size=len(live) // 2,
                             replace=False)
        for k in victims:
            engine.delete(int(k))
            del live[int(k)]
        # resize a few survivors
        for k in rng.choice(sorted(live), size=min(10, len(live)),
                            replace=False):
            new_size = int(rng.integers(100, 50_000))
            engine.put(int(k), size=new_size)
            live[int(k)] = new_size
    return live


class TestChurnInvariants:
    def test_dataset_bytes_track_live_set(self, engine):
        live = churn(engine, np.random.default_rng(1))
        assert len(engine) == len(live)
        assert engine.dataset_bytes == sum(live.values())

    def test_every_live_key_readable(self, engine):
        live = churn(engine, np.random.default_rng(2))
        for k, size in live.items():
            assert engine.get(k).size == size

    def test_node_occupancy_consistent_with_backing(self, engine, system):
        churn(engine, np.random.default_rng(3))
        reserved = engine.stored_bytes(FAST) + engine.stored_bytes(SLOW)
        assert system.fast.used_bytes + system.slow.used_bytes == reserved

    def test_occupancy_never_exceeds_capacity(self, engine, system):
        churn(engine, np.random.default_rng(4), rounds=8)
        assert system.fast.used_bytes <= system.fast.capacity_bytes
        assert system.slow.used_bytes <= system.slow.capacity_bytes

    def test_full_drain_releases_everything(self, engine_factory, system):
        engine = engine_factory(system.fast, system.slow)
        engine.load({k: 10_000 for k in range(200)}, fast_keys=range(100))
        for k in range(200):
            engine.delete(k)
        assert len(engine) == 0
        assert engine.dataset_bytes == 0
        if isinstance(engine, MemcachedLike):
            # slab pages are never returned, only chunks recycle
            assert system.fast.used_bytes > 0
        else:
            assert system.fast.used_bytes == 0
            assert system.slow.used_bytes == 0


class TestStructureHealth:
    def test_redis_index_load_factor_bounded(self, system):
        engine = RedisLike(system.fast, system.slow)
        churn(engine, np.random.default_rng(5), rounds=6)
        assert engine.index.load_factor < 0.7

    def test_dynamo_tree_invariants_after_churn(self, system):
        engine = DynamoLike(system.fast, system.slow)
        churn(engine, np.random.default_rng(6), rounds=6)
        engine.tree.check_invariants()

    def test_memcached_chunks_recycled(self, system):
        engine = MemcachedLike(system.fast, system.slow)
        rng = np.random.default_rng(7)
        churn(engine, rng, rounds=6)
        slab = engine.slab_allocator(SLOW)
        # reserved pages bound the live chunks (free lists recycle)
        assert slab.used_bytes <= slab.allocated_bytes
