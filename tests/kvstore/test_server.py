"""Tests for ServerInstance and HybridDeployment."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, KeyNotFoundError
from repro.kvstore import HybridDeployment, RedisLike, ServerInstance


class TestServerInstance:
    def test_bind_fast(self, system):
        srv = ServerInstance(RedisLike, system, "fast")
        assert srv.is_fast
        assert srv.bound_node is system.fast

    def test_bind_slow(self, system):
        srv = ServerInstance(RedisLike, system, "slow")
        assert not srv.is_fast

    def test_bind_invalid(self, system):
        with pytest.raises(ConfigurationError):
            ServerInstance(RedisLike, system, "gpu")

    def test_load_records_land_on_bound_node(self, system):
        srv = ServerInstance(RedisLike, system, "fast")
        srv.load_records({0: 1_000, 1: 2_000})
        assert srv.engine.node_of(0) == "FastMem"
        assert srv.engine.node_of(1) == "FastMem"
        assert len(srv) == 2

    def test_ops_route_through_engine(self, system):
        srv = ServerInstance(RedisLike, system, "slow")
        srv.load_records({0: 1_000})
        assert srv.get(0).node == "SlowMem"
        assert srv.put(0).node == "SlowMem"

    def test_stored_bytes(self, system):
        srv = ServerInstance(RedisLike, system, "fast")
        srv.load_records({0: 1_000})
        assert srv.stored_bytes() >= 1_000

    def test_name_includes_engine_and_node(self, system):
        srv = ServerInstance(RedisLike, system, "fast")
        assert srv.name == "redis@FastMem"


class TestHybridDeployment:
    def test_routing(self, system, tiny_sizes):
        dep = HybridDeployment(RedisLike, system, tiny_sizes, fast_keys=[0, 1])
        assert dep.route(0) is dep.fast_server
        assert dep.route(5) is dep.slow_server

    def test_fast_mask(self, system, tiny_sizes):
        dep = HybridDeployment(RedisLike, system, tiny_sizes, fast_keys=[3, 7])
        assert dep.fast_mask.sum() == 2
        assert dep.fast_mask[3] and dep.fast_mask[7]

    def test_all_fast(self, system, tiny_sizes):
        dep = HybridDeployment.all_fast(RedisLike, system, tiny_sizes)
        assert dep.fast_mask.all()
        assert dep.capacity_ratio() == 1.0

    def test_all_slow(self, system, tiny_sizes):
        dep = HybridDeployment.all_slow(RedisLike, system, tiny_sizes)
        assert not dep.fast_mask.any()
        assert dep.capacity_ratio() == 0.0

    def test_fast_bytes(self, system, tiny_sizes):
        dep = HybridDeployment(RedisLike, system, tiny_sizes, fast_keys=[0, 9])
        assert dep.fast_bytes() == tiny_sizes[0] + tiny_sizes[9]

    def test_get_put_route(self, system, tiny_sizes):
        dep = HybridDeployment(RedisLike, system, tiny_sizes, fast_keys=[0])
        assert dep.get(0).node == "FastMem"
        assert dep.get(1).node == "SlowMem"
        assert dep.put(1).node == "SlowMem"

    def test_out_of_range_fast_keys_rejected(self, system, tiny_sizes):
        with pytest.raises(ConfigurationError):
            HybridDeployment(RedisLike, system, tiny_sizes, fast_keys=[99])

    def test_route_unknown_key_raises_descriptively(self, system, tiny_sizes):
        dep = HybridDeployment(RedisLike, system, tiny_sizes, fast_keys=[0])
        with pytest.raises(KeyNotFoundError) as exc_info:
            dep.route(tiny_sizes.size + 5)
        message = str(exc_info.value)
        assert str(tiny_sizes.size + 5) in message  # the offending key
        assert "redis" in message                   # the deployment profile
        assert str(tiny_sizes.size) in message      # the key-space bound

    def test_route_rejects_negative_key(self, system, tiny_sizes):
        # numpy would silently wrap -1 to the last key; routing must not
        dep = HybridDeployment(RedisLike, system, tiny_sizes, fast_keys=[0])
        with pytest.raises(KeyNotFoundError):
            dep.route(-1)

    def test_route_error_is_also_a_keyerror(self, system, tiny_sizes):
        dep = HybridDeployment(RedisLike, system, tiny_sizes)
        with pytest.raises(KeyError):
            dep.get(999)

    def test_empty_sizes_rejected(self, system):
        with pytest.raises(ConfigurationError):
            HybridDeployment(RedisLike, system, np.array([], dtype=np.int64))

    def test_nonpositive_sizes_rejected(self, system):
        with pytest.raises(ConfigurationError):
            HybridDeployment(RedisLike, system, np.array([10, 0], dtype=np.int64))

    def test_placement_arrays(self, system, tiny_sizes):
        dep = HybridDeployment(RedisLike, system, tiny_sizes, fast_keys=[1])
        sizes, mask = dep.placement_arrays()
        assert sizes is dep.record_sizes
        assert mask[1] and mask.sum() == 1

    def test_profile_shared(self, system, tiny_sizes):
        dep = HybridDeployment(RedisLike, system, tiny_sizes)
        assert dep.profile.name == "redis"
        assert dep.n_keys == tiny_sizes.size
