"""Tests for the three store engines (shared behaviour, parametrised)."""

import pytest

from repro.errors import (
    AllocationError,
    CapacityError,
    ConfigurationError,
    KeyNotFoundError,
)
from repro.kvstore import DynamoLike, MemcachedLike, RedisLike
from repro.kvstore.base import FAST, SLOW
from repro.memsim import HybridMemorySystem


@pytest.fixture
def engine(engine_factory, system):
    return engine_factory(system.fast, system.slow)


class TestLoading:
    def test_load_places_keys(self, engine):
        engine.load({0: 100, 1: 200, 2: 300}, fast_keys=[0])
        assert engine.node_of(0) == "FastMem"
        assert engine.node_of(1) == "SlowMem"
        assert len(engine) == 3

    def test_duplicate_load_rejected(self, engine):
        engine.load({0: 100})
        with pytest.raises(ConfigurationError):
            engine.load({0: 100})

    def test_nonpositive_size_rejected(self, engine):
        with pytest.raises(ConfigurationError):
            engine.load({0: 0})

    def test_node_of_missing_raises(self, engine):
        with pytest.raises(KeyNotFoundError):
            engine.node_of(7)

    def test_dataset_bytes(self, engine):
        engine.load({0: 100, 1: 200})
        assert engine.dataset_bytes == 300

    def test_fast_bytes(self, engine):
        engine.load({0: 100, 1: 200}, fast_keys=[1])
        assert engine.fast_bytes() == 200

    def test_node_occupancy_reflects_load(self, engine, system):
        engine.load({k: 10_000 for k in range(10)}, fast_keys=range(5))
        assert system.fast.used_bytes >= 5 * 10_000
        assert system.slow.used_bytes >= 5 * 10_000


class TestOperations:
    def test_get_returns_result(self, engine):
        engine.load({0: 1_000}, fast_keys=[0])
        r = engine.get(0)
        assert r.op == "get"
        assert r.node == "FastMem"
        assert r.size == 1_000
        assert r.service_time_ns > 0

    def test_get_missing_raises(self, engine):
        with pytest.raises(KeyNotFoundError):
            engine.get(99)

    def test_slow_get_costs_more_or_equal(self, engine_factory, system):
        engine = engine_factory(system.fast, system.slow)
        engine.load({0: 100_000, 1: 100_000}, fast_keys=[0])
        fast_t = engine.get(0).service_time_ns
        slow_t = engine.get(1).service_time_ns
        assert slow_t >= fast_t

    def test_put_keeps_size(self, engine):
        engine.load({0: 1_000})
        r = engine.put(0)
        assert r.op == "put"
        assert r.size == 1_000

    def test_put_resize(self, engine):
        engine.load({0: 1_000})
        engine.put(0, size=2_000)
        assert engine.get(0).size == 2_000
        assert engine.dataset_bytes == 2_000

    def test_delete_removes(self, engine):
        engine.load({0: 1_000, 1: 500})
        engine.delete(0)
        assert len(engine) == 1
        with pytest.raises(KeyNotFoundError):
            engine.get(0)

    def test_delete_releases_capacity(self, engine, system):
        engine.load({0: 100_000})
        used = system.slow.used_bytes
        engine.delete(0)
        if isinstance(engine, MemcachedLike):
            # memcached keeps slab pages reserved after item eviction
            assert system.slow.used_bytes == used
        else:
            assert system.slow.used_bytes < used

    def test_clock_accumulates(self, engine):
        engine.load({0: 1_000})
        engine.get(0)
        engine.get(0)
        assert engine.op_count == 2
        assert engine.clock_ns > 0


class TestVectorViews:
    def test_key_arrays_aligned(self, engine):
        engine.load({0: 100, 1: 200, 2: 300}, fast_keys=[2])
        keys, sizes, nodes = engine.key_arrays()
        assert keys.tolist() == [0, 1, 2]
        assert sizes.tolist() == [100, 200, 300]
        assert nodes.tolist() == [SLOW, SLOW, FAST]


class TestCapacityEnforcement:
    def test_fast_node_overflow_raises(self, engine_factory):
        system = HybridMemorySystem.testbed(fast_capacity_bytes=2_000_000)
        engine = engine_factory(system.fast, system.slow)
        with pytest.raises((CapacityError, AllocationError)):
            engine.load({k: 1_000_000 for k in range(10)}, fast_keys=range(10))


class TestEngineSpecifics:
    def test_redis_overhead_accounting(self, system):
        eng = RedisLike(system.fast, system.slow)
        eng.load({0: 1_000})
        assert eng.overhead_bytes() > 0

    def test_memcached_slab_pages(self, system):
        eng = MemcachedLike(system.fast, system.slow)
        eng.load({k: 10_000 for k in range(5)})
        slab = eng.slab_allocator(SLOW)
        assert slab.allocated_bytes >= 1_000_000  # at least one page

    def test_memcached_stored_bytes_page_granular(self, system):
        eng = MemcachedLike(system.fast, system.slow)
        eng.load({0: 100})
        assert eng.stored_bytes(SLOW) == 1_048_576

    def test_dynamo_btree_ordered_scan(self, system):
        eng = DynamoLike(system.fast, system.slow)
        eng.load({k: 100 for k in (5, 1, 3, 2, 4)})
        assert [k for k, _ in eng.scan(2, 5)] == [2, 3, 4]

    def test_dynamo_tree_invariants_after_churn(self, system):
        eng = DynamoLike(system.fast, system.slow)
        eng.load({k: 100 for k in range(200)})
        for k in range(0, 200, 3):
            eng.delete(k)
        eng.tree.check_invariants()

    def test_profiles_attached(self, system):
        assert RedisLike(system.fast, system.slow).profile.name == "redis"
        assert MemcachedLike(system.fast, system.slow).profile.name == "memcached"
        assert DynamoLike(system.fast, system.slow).profile.name == "dynamodb"
