"""Tests for the slab allocator."""

import pytest

from repro.errors import AllocationError, CapacityError, ConfigurationError
from repro.kvstore import SlabAllocator
from repro.memsim import AddressSpaceAllocator
from repro.units import MiB


def make_slab(capacity=64 * MiB, **kw):
    return SlabAllocator(AddressSpaceAllocator(capacity), **kw)


class TestSizeClasses:
    def test_classes_are_geometric(self):
        slab = make_slab(growth_factor=2.0, min_chunk=100)
        sizes = [c.chunk_size for c in slab.classes]
        assert sizes[0] == 100
        for a, b in zip(sizes, sizes[1:]):
            assert b > a

    def test_class_for_picks_smallest_fit(self):
        slab = make_slab()
        cls = slab.class_for(100)
        assert cls.chunk_size >= 100
        smaller = [c for c in slab.classes if c.chunk_size < cls.chunk_size]
        assert all(c.chunk_size < 100 for c in smaller)

    def test_class_for_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            make_slab().class_for(0)

    def test_oversized_record_rejected(self):
        with pytest.raises(CapacityError):
            make_slab().class_for(2 * MiB)

    def test_invalid_growth_factor(self):
        with pytest.raises(ConfigurationError):
            make_slab(growth_factor=1.0)

    def test_largest_class_is_page(self):
        slab = make_slab()
        assert slab.classes[-1].chunk_size == SlabAllocator.PAGE_SIZE


class TestAllocate:
    def test_allocate_reserves_full_page(self):
        slab = make_slab()
        slab.allocate(100)
        assert slab.allocated_bytes == SlabAllocator.PAGE_SIZE
        assert slab.backing.used_bytes == SlabAllocator.PAGE_SIZE

    def test_same_class_shares_page(self):
        slab = make_slab()
        slab.allocate(100)
        slab.allocate(100)
        assert slab.allocated_bytes == SlabAllocator.PAGE_SIZE

    def test_distinct_classes_get_distinct_pages(self):
        slab = make_slab()
        slab.allocate(100)
        slab.allocate(500_000)
        assert slab.allocated_bytes == 2 * SlabAllocator.PAGE_SIZE

    def test_page_exhaustion_adds_page(self):
        slab = make_slab()
        cls = slab.class_for(100)
        for _ in range(cls.chunks_per_page + 1):
            slab.allocate(100)
        assert slab.allocated_bytes == 2 * SlabAllocator.PAGE_SIZE

    def test_offsets_unique(self):
        slab = make_slab()
        offsets = {slab.allocate(100) for _ in range(1000)}
        assert len(offsets) == 1000

    def test_backing_exhaustion_propagates(self):
        slab = make_slab(capacity=1 * MiB)
        cls = slab.class_for(100)
        for _ in range(cls.chunks_per_page):
            slab.allocate(100)
        with pytest.raises(AllocationError):
            slab.allocate(100)


class TestRelease:
    def test_release_reuses_chunk(self):
        slab = make_slab()
        off = slab.allocate(100)
        slab.release(off)
        assert slab.allocate(100) == off

    def test_release_unknown_raises(self):
        with pytest.raises(AllocationError):
            make_slab().release(12345)

    def test_pages_stay_reserved_after_release(self):
        slab = make_slab()
        off = slab.allocate(100)
        slab.release(off)
        # memcached never returns pages to the OS
        assert slab.allocated_bytes == SlabAllocator.PAGE_SIZE

    def test_used_bytes_tracks_chunks(self):
        slab = make_slab()
        cls = slab.class_for(100)
        off = slab.allocate(100)
        assert slab.used_bytes == cls.chunk_size
        slab.release(off)
        assert slab.used_bytes == 0


class TestOverhead:
    def test_overhead_ratio_at_least_one(self):
        slab = make_slab()
        payload = 0
        for _ in range(100):
            slab.allocate(10_000)
            payload += 10_000
        assert slab.overhead_ratio(payload) >= 1.0

    def test_overhead_ratio_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            make_slab().overhead_ratio(0)
