"""Tests for the open-addressing hash index."""

import pytest

from repro.errors import ConfigurationError, KeyNotFoundError
from repro.kvstore import HashIndex


class TestBasics:
    def test_insert_and_lookup(self):
        idx = HashIndex()
        assert idx.insert(5, "a") is True
        assert idx.lookup(5) == "a"

    def test_update_returns_false(self):
        idx = HashIndex()
        idx.insert(5, "a")
        assert idx.insert(5, "b") is False
        assert idx.lookup(5) == "b"
        assert len(idx) == 1

    def test_missing_lookup_raises(self):
        with pytest.raises(KeyNotFoundError):
            HashIndex().lookup(1)

    def test_get_default(self):
        idx = HashIndex()
        assert idx.get(1) is None
        assert idx.get(1, "x") == "x"

    def test_contains(self):
        idx = HashIndex()
        idx.insert(3, 1)
        assert 3 in idx
        assert 4 not in idx

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            HashIndex(initial_capacity=0)

    def test_capacity_rounds_to_power_of_two(self):
        idx = HashIndex(initial_capacity=100)
        assert idx.capacity == 128


class TestRemove:
    def test_remove_returns_value(self):
        idx = HashIndex()
        idx.insert(5, "v")
        assert idx.remove(5) == "v"
        assert 5 not in idx

    def test_remove_missing_raises(self):
        with pytest.raises(KeyNotFoundError):
            HashIndex().remove(5)

    def test_tombstone_does_not_break_probe_chain(self):
        idx = HashIndex(initial_capacity=8)
        # force collisions by filling several keys
        for k in range(6):
            idx.insert(k, k)
        idx.remove(2)
        # all remaining keys still reachable through any tombstones
        for k in (0, 1, 3, 4, 5):
            assert idx.lookup(k) == k

    def test_tombstone_slot_reused(self):
        idx = HashIndex(initial_capacity=8)
        for k in range(5):
            idx.insert(k, k)
        idx.remove(3)
        idx.insert(3, "new")
        assert idx.lookup(3) == "new"


class TestGrowth:
    def test_grows_past_load_factor(self):
        idx = HashIndex(initial_capacity=8)
        for k in range(100):
            idx.insert(k, k)
        assert len(idx) == 100
        assert idx.capacity >= 128
        assert idx.load_factor < 0.7

    def test_all_keys_survive_growth(self):
        idx = HashIndex(initial_capacity=8)
        for k in range(500):
            idx.insert(k * 7919, k)
        for k in range(500):
            assert idx.lookup(k * 7919) == k


class TestIteration:
    def test_iter_yields_live_keys(self):
        idx = HashIndex()
        for k in (1, 2, 3):
            idx.insert(k, k * 10)
        idx.remove(2)
        assert sorted(idx) == [1, 3]

    def test_items(self):
        idx = HashIndex()
        idx.insert(1, "a")
        idx.insert(2, "b")
        assert dict(idx.items()) == {1: "a", 2: "b"}


class TestProbeAccounting:
    def test_probe_counter_increases(self):
        idx = HashIndex()
        before = idx.total_probes
        idx.insert(1, 1)
        idx.lookup(1)
        assert idx.total_probes > before
