"""Tests for repro.rng."""

import numpy as np
import pytest

from repro import rng as rng_mod
from repro.rng import DEFAULT_SEED, derive_seed, ensure_rng, spawn


class TestEnsureRng:
    def test_none_uses_default_seed(self):
        a = ensure_rng(None).integers(0, 1 << 30, 10)
        b = ensure_rng(DEFAULT_SEED).integers(0, 1 << 30, 10)
        assert np.array_equal(a, b)

    def test_int_seed_deterministic(self):
        assert np.array_equal(
            ensure_rng(123).random(5), ensure_rng(123).random(5)
        )

    def test_different_seeds_differ(self):
        assert not np.array_equal(
            ensure_rng(1).random(5), ensure_rng(2).random(5)
        )

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert ensure_rng(g) is g


class TestSpawn:
    def test_spawn_count(self):
        children = spawn(ensure_rng(5), 4)
        assert len(children) == 4

    def test_spawn_streams_independent(self):
        a, b = spawn(ensure_rng(5), 2)
        assert not np.array_equal(a.random(8), b.random(8))

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn(ensure_rng(5), -1)

    def test_spawn_deterministic(self):
        a1, _ = spawn(ensure_rng(5), 2)
        a2, _ = spawn(ensure_rng(5), 2)
        assert np.array_equal(a1.random(8), a2.random(8))


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(42, "x") == derive_seed(42, "x")

    def test_labels_decorrelate(self):
        assert derive_seed(42, "keys") != derive_seed(42, "ops")

    def test_seeds_decorrelate(self):
        assert derive_seed(1, "keys") != derive_seed(2, "keys")

    def test_none_seed_uses_default(self):
        assert derive_seed(None, "x") == derive_seed(DEFAULT_SEED, "x")

    def test_returns_plain_int(self):
        assert isinstance(derive_seed(7, "y"), int)

    def test_module_exports(self):
        assert hasattr(rng_mod, "SeedLike")
