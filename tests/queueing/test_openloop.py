"""Tests for the open-loop queueing simulator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.kvstore import HybridDeployment, RedisLike
from repro.memsim import HybridMemorySystem
from repro.queueing import OpenLoopResult, simulate_open_loop, tail_blowup_ratio
from repro.ycsb import YCSBClient


@pytest.fixture
def deployment(small_trace):
    return HybridDeployment.all_slow(
        RedisLike, HybridMemorySystem.testbed(), small_trace.record_sizes
    )


class TestSimulation:
    def test_result_shape(self, small_trace, deployment):
        result = simulate_open_loop(small_trace, deployment, 0.7, seed=1)
        assert isinstance(result, OpenLoopResult)
        assert result.utilization == 0.7
        assert result.p50_ns <= result.p95_ns <= result.p99_ns
        assert result.avg_sojourn_ns >= result.avg_service_ns

    def test_sojourn_at_least_service(self, small_trace, deployment):
        result = simulate_open_loop(small_trace, deployment, 0.3, seed=1)
        assert result.avg_wait_ns >= 0

    def test_low_load_barely_queues(self, small_trace, deployment):
        result = simulate_open_loop(small_trace, deployment, 0.05, seed=1)
        assert result.avg_sojourn_ns == pytest.approx(
            result.avg_service_ns, rel=0.05
        )
        assert result.max_queue_depth <= 3

    def test_high_load_queues_heavily(self, small_trace, deployment):
        lo = simulate_open_loop(small_trace, deployment, 0.3, seed=1)
        hi = simulate_open_loop(small_trace, deployment, 0.95, seed=1)
        assert hi.avg_sojourn_ns > 2 * lo.avg_sojourn_ns
        assert hi.max_queue_depth > lo.max_queue_depth

    def test_mm1_like_waiting_time(self, small_trace):
        """With near-deterministic service, the mean wait approaches the
        M/D/1 prediction rho/(2(1-rho)) * E[s]."""
        dep = HybridDeployment.all_slow(
            RedisLike, HybridMemorySystem.testbed(),
            small_trace.record_sizes,
        )
        client = YCSBClient(repeats=1, noise_sigma=0.0, seed=2)
        rho = 0.6
        result = simulate_open_loop(small_trace, dep, rho, client=client,
                                    seed=3)
        # service times vary a little with record size; allow a band
        md1_wait = rho / (2 * (1 - rho)) * result.avg_service_ns
        assert result.avg_wait_ns == pytest.approx(md1_wait, rel=0.35)

    def test_utilization_validated(self, small_trace, deployment):
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ConfigurationError):
                simulate_open_loop(small_trace, deployment, bad)

    def test_deterministic_given_seed(self, small_trace, deployment):
        a = simulate_open_loop(
            small_trace, deployment, 0.8,
            client=YCSBClient(seed=5), seed=5,
        )
        b = simulate_open_loop(
            small_trace, deployment, 0.8,
            client=YCSBClient(seed=5), seed=5,
        )
        assert a.p99_ns == b.p99_ns


class TestTailBlowup:
    def test_tail_explodes_near_saturation(self, small_trace, deployment):
        """The Fig 8d/8e point: averages cannot see this."""
        ratio = tail_blowup_ratio(small_trace, deployment, 0.5, 0.95,
                                  client=YCSBClient(seed=7), seed=7)
        assert ratio > 3.0

    def test_tail_inflation_property(self, small_trace, deployment):
        result = simulate_open_loop(small_trace, deployment, 0.9, seed=1)
        assert result.tail_inflation > 2.0
