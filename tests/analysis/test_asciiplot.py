"""Tests for the terminal curve renderer."""

import numpy as np
import pytest

from repro.analysis.asciiplot import render_curve, render_estimate
from repro.core import Mnemo
from repro.errors import ConfigurationError
from repro.kvstore import RedisLike


class TestRenderCurve:
    def test_dimensions(self):
        out = render_curve(np.linspace(0, 1, 20), np.linspace(0, 10, 20),
                           width=40, height=8)
        lines = out.splitlines()
        assert len(lines) == 8 + 3  # grid + axis + x labels + caption
        grid = lines[:8]
        assert all("|" in l for l in grid)

    def test_monotone_curve_marks_corners(self):
        out = render_curve(np.array([0.0, 1.0]), np.array([0.0, 10.0]),
                           width=20, height=5)
        lines = out.splitlines()
        assert "*" in lines[0]          # max y
        assert "*" in lines[4]          # min y

    def test_y_labels_present(self):
        out = render_curve(np.array([0.0, 1.0]), np.array([100.0, 9_000.0]))
        assert "9,000" in out
        assert "100" in out

    def test_flat_curve_ok(self):
        out = render_curve(np.array([0.0, 1.0]), np.array([5.0, 5.0]))
        assert "*" in out

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            render_curve(np.array([0.0]), np.array([1.0]))
        with pytest.raises(ConfigurationError):
            render_curve(np.array([0.0, 1.0]), np.array([1.0, 2.0]),
                         width=4)


class TestRenderEstimate:
    def test_renders_report_curve(self, small_trace, quiet_client):
        report = Mnemo(engine_factory=RedisLike,
                       client=quiet_client).profile(small_trace)
        out = render_estimate(report.curve, width=50, height=10)
        assert "cost factor" in out
        assert out.count("*") > 10

    def test_downsampling_bounds_points(self, small_trace, quiet_client):
        report = Mnemo(engine_factory=RedisLike,
                       client=quiet_client).profile(small_trace)
        out = render_estimate(report.curve, points=10)
        assert isinstance(out, str)
