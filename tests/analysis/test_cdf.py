"""Tests for the CDF utilities (Figures 3-4)."""

import numpy as np
import pytest

from repro.analysis import empirical_cdf, key_space_cdf, size_cdf
from repro.analysis.cdf import coverage_fraction
from repro.errors import ConfigurationError
from repro.ycsb import generate_trace
from repro.ycsb.distributions import DistributionSpec
from repro.ycsb.sizes import PREVIEW_MIX
from repro.ycsb.workload import WorkloadSpec


class TestEmpiricalCdf:
    def test_sorted_output(self):
        xs, ps = empirical_cdf(np.array([3, 1, 2]))
        assert xs.tolist() == [1, 2, 3]
        assert ps.tolist() == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            empirical_cdf(np.array([]))


class TestKeySpaceCdf:
    def test_fig3_shapes(self, small_spec):
        """Hotspot CDF: steep over the hot range then shallow."""
        trace = generate_trace(small_spec)
        keys, cum = key_space_cdf(trace)
        assert keys.size == trace.n_keys
        hot_end = int(0.2 * trace.n_keys)
        assert cum[hot_end] == pytest.approx(0.75, abs=0.03)
        assert cum[-1] == pytest.approx(1.0)

    def test_uniform_is_diagonal(self, small_spec):
        from dataclasses import replace
        spec = replace(small_spec, name="u",
                       distribution=DistributionSpec(name="uniform"))
        trace = generate_trace(spec)
        _, cum = key_space_cdf(trace)
        diag = np.arange(1, trace.n_keys + 1) / trace.n_keys
        assert np.abs(cum - diag).max() < 0.05


class TestSizeCdf:
    def test_fig4_mixture_steps(self):
        """Preview mix: three visible plateaus at 1K / 10K / 100K."""
        sizes = PREVIEW_MIX.sample(30_000, seed=1)
        xs, ps = size_cdf(sizes)
        # cumulative shares at the decade boundaries
        p_at_3k = ps[np.searchsorted(xs, 3_000)]
        p_at_30k = ps[np.searchsorted(xs, 30_000)]
        assert p_at_3k == pytest.approx(1 / 3, abs=0.03)
        assert p_at_30k == pytest.approx(2 / 3, abs=0.03)


class TestCoverageFraction:
    def test_hotspot_coverage(self, small_trace):
        """~20 % of keys (hot set) serve 75 % of requests."""
        frac = coverage_fraction(small_trace, 0.75)
        assert frac == pytest.approx(0.2, abs=0.05)

    def test_full_share_needs_touched_keys_only(self, small_trace):
        frac = coverage_fraction(small_trace, 1.0)
        assert frac <= 1.0

    def test_invalid_share(self, small_trace):
        with pytest.raises(ConfigurationError):
            coverage_fraction(small_trace, 0.0)
