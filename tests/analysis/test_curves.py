"""Tests for curve utilities."""

import numpy as np
import pytest

from repro.analysis import curve_knee, interpolate_curve, relative_curve
from repro.analysis.curves import knee_sharpness
from repro.errors import ConfigurationError


class TestRelativeCurve:
    def test_normalises_to_last(self):
        y = np.array([1.0, 2.0, 4.0])
        assert relative_curve(y).tolist() == [0.25, 0.5, 1.0]

    def test_explicit_reference(self):
        y = np.array([1.0, 2.0])
        assert relative_curve(y, reference=2.0).tolist() == [0.5, 1.0]

    def test_zero_reference_rejected(self):
        with pytest.raises(ConfigurationError):
            relative_curve(np.array([1.0, 0.0]))


class TestInterpolate:
    def test_linear_midpoint(self):
        x = np.array([0.0, 1.0])
        y = np.array([0.0, 10.0])
        out = interpolate_curve(x, y, np.array([0.5]))
        assert out[0] == pytest.approx(5.0)

    def test_clips_outside_range(self):
        x = np.array([0.0, 1.0])
        y = np.array([0.0, 10.0])
        out = interpolate_curve(x, y, np.array([-1.0, 2.0]))
        assert out.tolist() == [0.0, 10.0]

    def test_decreasing_x_rejected(self):
        with pytest.raises(ConfigurationError):
            interpolate_curve(np.array([1.0, 0.0]), np.array([0.0, 1.0]),
                              np.array([0.5]))

    def test_short_curve_rejected(self):
        with pytest.raises(ConfigurationError):
            interpolate_curve(np.array([1.0]), np.array([0.0]),
                              np.array([0.5]))


class TestKnee:
    def test_saturating_curve_knee(self):
        x = np.linspace(0, 1, 101)
        y = 1 - np.exp(-8 * x)  # saturates early
        knee = curve_knee(x, y)
        assert 5 <= knee <= 40  # well before the end

    def test_straight_line_no_knee_preference(self):
        x = np.linspace(0, 1, 11)
        assert knee_sharpness(x, x.copy()) == pytest.approx(0.0, abs=1e-12)

    def test_sharper_saturation_sharper_knee(self):
        """Section III: big records -> bigger knee."""
        x = np.linspace(0, 1, 101)
        soft = 1 - np.exp(-2 * x)
        hard = 1 - np.exp(-20 * x)
        assert knee_sharpness(x, hard) > knee_sharpness(x, soft)

    def test_flat_curve(self):
        x = np.linspace(0, 1, 11)
        y = np.ones(11)
        assert curve_knee(x, y) == 0
        assert knee_sharpness(x, y) == 0.0
