"""Tests for the bootstrap CI helper."""

import numpy as np
import pytest

from repro.analysis.bootstrap import BootstrapCI, bootstrap_ci
from repro.errors import ConfigurationError


class TestBootstrapCI:
    def test_contains_true_median_usually(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(10.0, 2.0, size=500)
        ci = bootstrap_ci(samples, seed=1)
        assert 10.0 in ci
        assert ci.low <= ci.statistic <= ci.high

    def test_width_shrinks_with_sample_size(self):
        rng = np.random.default_rng(0)
        small = bootstrap_ci(rng.normal(0, 1, 50), seed=1)
        large = bootstrap_ci(rng.normal(0, 1, 5_000), seed=1)
        assert large.width < small.width

    def test_higher_confidence_wider(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(0, 1, 300)
        narrow = bootstrap_ci(samples, confidence=0.80, seed=1)
        wide = bootstrap_ci(samples, confidence=0.99, seed=1)
        assert wide.width > narrow.width

    def test_custom_statistic(self):
        samples = np.arange(100, dtype=float)
        ci = bootstrap_ci(samples, statistic=np.mean, seed=1)
        assert ci.statistic == pytest.approx(49.5)

    def test_non_axis_statistic_fallback(self):
        samples = np.arange(50, dtype=float)

        def mid_range(x):
            return (np.min(x) + np.max(x)) / 2

        ci = bootstrap_ci(samples, statistic=mid_range, n_resamples=100,
                          seed=1)
        assert isinstance(ci, BootstrapCI)
        assert ci.low <= ci.statistic + 1e-9

    def test_deterministic_with_seed(self):
        samples = np.random.default_rng(0).normal(0, 1, 100)
        a = bootstrap_ci(samples, seed=5)
        b = bootstrap_ci(samples, seed=5)
        assert (a.low, a.high) == (b.low, b.high)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bootstrap_ci(np.array([]))
        with pytest.raises(ConfigurationError):
            bootstrap_ci(np.array([1.0]), confidence=1.0)
        with pytest.raises(ConfigurationError):
            bootstrap_ci(np.array([1.0]), n_resamples=5)

    def test_constant_sample_degenerate(self):
        ci = bootstrap_ci(np.full(20, 7.0), seed=1)
        assert ci.low == ci.high == ci.statistic == 7.0
