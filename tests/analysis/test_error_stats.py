"""Tests for the error statistics (Figure 8a)."""

import numpy as np
import pytest

from repro.analysis import BoxplotStats, boxplot_stats, percentage_error
from repro.errors import ConfigurationError


class TestPercentageError:
    def test_paper_formula(self):
        # (r - e) / r * 100
        err = percentage_error(np.array([100.0]), np.array([99.0]))
        assert err[0] == pytest.approx(1.0)

    def test_sign_convention(self):
        over = percentage_error(np.array([100.0]), np.array([110.0]))
        assert over[0] == pytest.approx(-10.0)

    def test_vectorized(self):
        err = percentage_error(np.array([10.0, 20.0]), np.array([9.0, 22.0]))
        assert err.tolist() == pytest.approx([10.0, -10.0])

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            percentage_error(np.array([1.0]), np.array([1.0, 2.0]))

    def test_zero_real_rejected(self):
        with pytest.raises(ConfigurationError):
            percentage_error(np.array([0.0]), np.array([1.0]))


class TestBoxplotStats:
    def test_five_number_summary(self):
        values = np.arange(1, 101, dtype=float)
        stats = boxplot_stats(values)
        assert stats.median == pytest.approx(50.5)
        assert stats.q1 == pytest.approx(25.75)
        assert stats.q3 == pytest.approx(75.25)
        assert stats.n == 100
        assert stats.n_outliers == 0

    def test_outliers_outside_whiskers(self):
        values = np.concatenate([np.random.default_rng(0).normal(0, 1, 200),
                                 [50.0, -50.0]])
        stats = boxplot_stats(values)
        assert stats.n_outliers >= 2
        assert stats.whisker_high < 50.0
        assert stats.whisker_low > -50.0

    def test_iqr(self):
        stats = boxplot_stats(np.arange(1, 101, dtype=float))
        assert stats.iqr == pytest.approx(stats.q3 - stats.q1)

    def test_single_value(self):
        stats = boxplot_stats(np.array([5.0]))
        assert stats.median == 5.0
        assert stats.whisker_low == stats.whisker_high == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            boxplot_stats(np.array([]))

    def test_dataclass_type(self):
        assert isinstance(boxplot_stats(np.array([1.0, 2.0])), BoxplotStats)
