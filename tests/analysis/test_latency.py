"""Tests for latency analysis (Figures 8c-8e)."""

import numpy as np
import pytest

from repro.analysis import latency_summary, tail_percentiles
from repro.analysis.latency import tail_to_average_ratio
from repro.errors import ConfigurationError
from repro.kvstore import HybridDeployment, RedisLike
from repro.memsim import HybridMemorySystem
from repro.ycsb import YCSBClient


@pytest.fixture
def run_result(small_trace):
    dep = HybridDeployment.all_slow(
        RedisLike, HybridMemorySystem.testbed(), small_trace.record_sizes
    )
    client = YCSBClient(repeats=2, noise_sigma=0.05, seed=1)
    return client.execute(small_trace, dep)


class TestTailPercentiles:
    def test_default_tails(self):
        samples = np.arange(1, 1001, dtype=float)
        tails = tail_percentiles(samples)
        assert tails[95.0] == pytest.approx(950.05, rel=0.01)
        assert tails[99.0] == pytest.approx(990.01, rel=0.01)

    def test_custom_percentiles(self):
        tails = tail_percentiles(np.arange(100, dtype=float), qs=(50.0,))
        assert set(tails) == {50.0}

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            tail_percentiles(np.array([]))


class TestLatencySummary:
    def test_summary_keys(self, run_result):
        summary = latency_summary(run_result)
        assert {"avg_ns", "avg_read_ns", "avg_write_ns",
                "p50_ns", "p95_ns", "p99_ns"} <= set(summary)

    def test_tails_ordered(self, run_result):
        summary = latency_summary(run_result)
        assert summary["p50_ns"] <= summary["p95_ns"] <= summary["p99_ns"]

    def test_tail_exceeds_average(self, run_result):
        """Fig 8d/8e: the tail carries variability the mean hides."""
        assert tail_to_average_ratio(run_result, 99.0) > 1.0
