"""End-to-end tests for the closed guard loop.

The acceptance scenario: a recommendation planned on a zipfian trace is
rejected by the validator once the hot set rotates past the drift "act"
threshold, the fallback search returns a split that does validate, and
the whole loop is deterministic — a rerun against the same cache is a
pure hit yielding a bit-identical verdict.
"""

import dataclasses

import pytest

from repro.core import Mnemo
from repro.guard import GuardLoop
from repro.guard.drift import rotate_hot_set
from repro.guard.validator import ErrorBudget
from repro.kvstore import RedisLike
from repro.runner import ResultCache
from repro.ycsb import YCSBClient, generate_trace
from repro.ycsb.distributions import DistributionSpec
from repro.ycsb.sizes import THUMBNAIL
from repro.ycsb.workload import WorkloadSpec


@pytest.fixture(scope="module")
def zipf_trace():
    """A small scrambled-zipfian planning trace."""
    spec = WorkloadSpec(
        name="guard_zipf",
        distribution=DistributionSpec(name="scrambled_zipfian"),
        read_fraction=0.9,
        size_model=THUMBNAIL,
        n_keys=200,
        n_requests=4_000,
        seed=23,
    )
    return generate_trace(spec)


def _mnemo(cache=None):
    return Mnemo(
        engine_factory=RedisLike,
        client=YCSBClient(repeats=1, seed=23),
        cache=cache,
    )


class TestCleanPass:
    def test_matching_live_trace_exits_zero(self, zipf_trace):
        mnemo = _mnemo()
        report = mnemo.profile(zipf_trace)
        outcome = mnemo.guard_loop().run(
            report, zipf_trace, live_trace=zipf_trace
        )
        assert outcome.ok
        assert outcome.exit_code == 0
        assert outcome.verdict.passed
        assert outcome.fallback is None
        assert outcome.advice.keep
        assert outcome.headroom == 1.0

    def test_no_live_trace_skips_drift(self, zipf_trace):
        mnemo = _mnemo()
        report = mnemo.profile(zipf_trace)
        outcome = mnemo.guard_loop().run(report, zipf_trace)
        assert outcome.drift is None
        assert outcome.advice.keep
        assert "not checked" in "\n".join(outcome.lines())

    def test_validation_can_be_skipped(self, zipf_trace):
        mnemo = _mnemo()
        report = mnemo.profile(zipf_trace)
        outcome = mnemo.guard_loop().run(
            report, zipf_trace, live_trace=zipf_trace, validate=False
        )
        assert outcome.verdict is None
        assert outcome.exit_code == 0


class TestAcceptanceScenario:
    def test_rotation_past_act_threshold_rejects_then_replans(
        self, zipf_trace,
    ):
        mnemo = _mnemo()
        report = mnemo.profile(zipf_trace)
        live = rotate_hot_set(zipf_trace, zipf_trace.n_keys // 2)

        outcome = mnemo.guard_loop().run(
            report, zipf_trace, live_trace=live
        )
        # drift crossed the act threshold
        assert outcome.drift.level == "act"
        assert outcome.advice.action == "reprofile"
        # the original recommendation was rejected by replay
        assert outcome.verdict.status == "reject"
        assert outcome.verdict.violating_metric is not None
        # and the fallback search found a split that validates
        assert outcome.replanned
        assert outcome.fallback.verdict.ok
        assert outcome.choice.n_fast_keys == outcome.fallback.n_fast_keys
        assert outcome.exit_code == 3

    def test_loop_is_deterministic_and_cache_hit_on_rerun(
        self, zipf_trace, tmp_path,
    ):
        live = rotate_hot_set(zipf_trace, zipf_trace.n_keys // 2)
        cache = ResultCache(tmp_path / "cache")

        mnemo1 = _mnemo(cache=cache)
        loop1 = mnemo1.guard_loop()
        out1 = loop1.run(mnemo1.profile(zipf_trace), zipf_trace,
                         live_trace=live)
        assert loop1.validator.cache_hits == 0
        assert loop1.validator.cache_misses > 0

        mnemo2 = _mnemo(cache=cache)
        loop2 = mnemo2.guard_loop()
        out2 = loop2.run(mnemo2.profile(zipf_trace), zipf_trace,
                         live_trace=live)
        # every verdict came straight from the cache the second time
        assert loop2.validator.cache_misses == 0
        assert loop2.validator.cache_hits == loop1.validator.cache_misses
        # and the outcomes are bit-identical
        assert out1.verdict == out2.verdict
        assert out1.verdict.fingerprint == out2.verdict.fingerprint
        assert out1.fallback.verdict == out2.fallback.verdict
        assert out1.choice == out2.choice
        assert out1.exit_code == out2.exit_code

    def test_widen_margin_band_warns(self, zipf_trace):
        from repro.guard.drift import DriftThresholds

        mnemo = _mnemo()
        report = mnemo.profile(zipf_trace)
        live = rotate_hot_set(zipf_trace, zipf_trace.n_keys // 2)
        # thresholds placed so the rotation lands in the warn band; a
        # huge error budget keeps validation out of the picture
        loop = mnemo.guard_loop(
            budget=ErrorBudget(throughput_pct=1e6, latency_pct=1e6),
            thresholds=DriftThresholds(
                divergence_warn=0.01, divergence_act=0.99,
                churn_warn=0.01, churn_act=1.1,
                size_warn=0.9, size_act=0.99,
            ),
        )
        outcome = loop.run(report, zipf_trace, live_trace=live)
        assert outcome.advice.action == "widen_margin"
        assert outcome.headroom > 1.0
        assert outcome.effective_slowdown < 0.10
        assert outcome.exit_code == 1

    def test_degraded_confidence_warns(self, zipf_trace):
        mnemo = _mnemo()
        report = mnemo.profile(zipf_trace)
        baselines = dataclasses.replace(
            report.baselines, flags=("fast:estimated",)
        )
        degraded = dataclasses.replace(report, baselines=baselines)
        outcome = mnemo.guard_loop(
            budget=ErrorBudget(throughput_pct=1e6, latency_pct=1e6),
        ).run(degraded, zipf_trace, live_trace=zipf_trace)
        assert outcome.headroom == pytest.approx(1.5)
        assert outcome.exit_code == 1

    def test_lines_cover_every_stage(self, zipf_trace):
        mnemo = _mnemo()
        report = mnemo.profile(zipf_trace)
        live = rotate_hot_set(zipf_trace, zipf_trace.n_keys // 2)
        text = "\n".join(
            mnemo.guard_loop().run(report, zipf_trace, live_trace=live).lines()
        )
        for fragment in ("divergence", "advice", "margin", "validation",
                         "fallback", "deploy"):
            assert fragment in text


class TestGuardLoopConstruction:
    def test_loop_inherits_mnemo_cache(self, zipf_trace, tmp_path):
        mnemo = _mnemo(cache=ResultCache(tmp_path / "c"))
        loop = mnemo.guard_loop()
        assert loop.validator.cache is mnemo.client.cache

    def test_loop_without_cache(self, zipf_trace):
        loop = _mnemo().guard_loop()
        assert loop.validator.cache is None

    def test_standalone_construction(self, zipf_trace):
        mnemo = _mnemo()
        loop = GuardLoop(mnemo)
        report = mnemo.profile(zipf_trace)
        assert loop.run(report, zipf_trace).exit_code == 0
