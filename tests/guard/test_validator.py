"""Tests for recommendation validation and the fallback search."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, GuardError
from repro.guard.drift import rotate_hot_set
from repro.guard.validator import (
    ErrorBudget,
    RecommendationValidator,
    ValidationVerdict,
)
from repro.kvstore import RedisLike
from repro.runner import ResultCache
from repro.ycsb import YCSBClient


@pytest.fixture
def validator(guard_client):
    """A cache-less validator sharing the profiling client."""
    return RecommendationValidator(RedisLike, client=guard_client)


class TestErrorBudget:
    def test_defaults_valid(self):
        b = ErrorBudget()
        assert b.throughput_pct == 10.0
        assert b.marginal_fraction == 0.5

    def test_invalid_budgets_raise(self):
        with pytest.raises(ConfigurationError):
            ErrorBudget(throughput_pct=0.0)
        with pytest.raises(ConfigurationError):
            ErrorBudget(marginal_fraction=0.0)


class TestValidate:
    def test_planning_trace_passes(self, validator, guard_report,
                                   small_trace_module):
        choice = guard_report.choose(0.10)
        verdict = validator.validate(
            guard_report.curve, choice, small_trace_module
        )
        assert verdict.passed
        assert verdict.ok
        assert verdict.violating_metric is None
        assert verdict.n_fast_keys == choice.n_fast_keys
        # the neighbourhood was replayed, not just the point itself
        assert len(verdict.points) >= 2

    def test_tiny_budget_rejects_and_names_metric(
        self, guard_client, guard_report, small_trace_module,
    ):
        strict = RecommendationValidator(
            RedisLike, client=guard_client,
            budget=ErrorBudget(throughput_pct=1e-6, latency_pct=1e-6),
        )
        verdict = strict.validate(
            guard_report.curve, guard_report.choose(0.10), small_trace_module
        )
        assert verdict.status == "reject"
        assert not verdict.ok
        assert verdict.violating_metric in ("throughput", "latency")

    def test_marginal_band(self, guard_client, guard_report,
                           small_trace_module):
        # derive a budget from the observed error so the worst ratio
        # lands inside the budget but above the comfort fraction
        probe = RecommendationValidator(RedisLike, client=guard_client)
        choice = guard_report.choose(0.10)
        base = probe.validate(
            guard_report.curve, choice, small_trace_module
        )
        worst = max(base.max_throughput_error_pct,
                    base.max_latency_error_pct)
        assert worst > 0
        marginal = RecommendationValidator(
            RedisLike, client=guard_client,
            budget=ErrorBudget(
                throughput_pct=worst * 1.3,
                latency_pct=worst * 1.3,
                marginal_fraction=0.5,
            ),
        )
        verdict = marginal.validate(
            guard_report.curve, choice, small_trace_module
        )
        assert verdict.status == "marginal"
        assert verdict.ok and not verdict.passed

    def test_out_of_range_split_raises(self, validator, guard_report,
                                       small_trace_module):
        with pytest.raises(GuardError):
            validator.validate(
                guard_report.curve,
                guard_report.curve.n_keys + 1,
                small_trace_module,
            )

    def test_mismatched_key_space_raises(self, validator, guard_report,
                                         small_trace_module):
        bad = rotate_hot_set(small_trace_module, 0)
        bad = type(bad)(
            name="bad",
            keys=bad.keys[: bad.n_requests // 2] % 50,
            is_read=bad.is_read[: bad.n_requests // 2],
            record_sizes=bad.record_sizes[:50],
        )
        with pytest.raises(GuardError):
            validator.validate(guard_report.curve, 10, bad)


class TestVerdictPayload:
    def test_roundtrip(self, validator, guard_report, small_trace_module):
        verdict = validator.validate(
            guard_report.curve, guard_report.choose(0.10), small_trace_module
        )
        assert ValidationVerdict.from_payload(verdict.to_payload()) == verdict

    def test_malformed_payload_raises(self):
        with pytest.raises(GuardError):
            ValidationVerdict.from_payload({"status": "pass"})


class TestCaching:
    def test_rerun_is_a_cache_hit_with_identical_verdict(
        self, tmp_path, guard_client, guard_report, small_trace_module,
    ):
        cache = ResultCache(tmp_path / "cache")
        choice = guard_report.choose(0.10)

        first = RecommendationValidator(
            RedisLike, client=guard_client, cache=cache
        )
        v1 = first.validate(guard_report.curve, choice, small_trace_module)
        assert (first.cache_hits, first.cache_misses) == (0, 1)

        second = RecommendationValidator(
            RedisLike, client=guard_client, cache=cache
        )
        v2 = second.validate(guard_report.curve, choice, small_trace_module)
        assert (second.cache_hits, second.cache_misses) == (1, 0)
        assert v1 == v2
        assert v1.fingerprint == v2.fingerprint

    def test_different_trace_changes_fingerprint(
        self, tmp_path, guard_client, guard_report, small_trace_module,
    ):
        cache = ResultCache(tmp_path / "cache")
        validator = RecommendationValidator(
            RedisLike, client=guard_client, cache=cache
        )
        choice = guard_report.choose(0.10)
        v1 = validator.validate(
            guard_report.curve, choice, small_trace_module
        )
        v2 = validator.validate(
            guard_report.curve, choice,
            rotate_hot_set(small_trace_module, 60),
        )
        assert v1.fingerprint != v2.fingerprint

    def test_generator_seeded_client_skips_cache(
        self, tmp_path, guard_report, small_trace_module,
    ):
        cache = ResultCache(tmp_path / "cache")
        live_rng = YCSBClient(repeats=1, seed=np.random.default_rng(1))
        validator = RecommendationValidator(
            RedisLike, client=live_rng, cache=cache
        )
        verdict = validator.validate(
            guard_report.curve, guard_report.choose(0.10), small_trace_module
        )
        assert verdict.fingerprint == ""
        assert (validator.cache_hits, validator.cache_misses) == (0, 0)
        assert cache.stats().entries["verdicts"] == 0


class TestFallback:
    def test_rotated_trace_rejects_then_falls_back(
        self, validator, guard_report, small_trace_module,
    ):
        live = rotate_hot_set(
            small_trace_module, small_trace_module.n_keys // 2
        )
        choice = guard_report.choose(0.10)
        verdict, fallback = validator.validate_or_fallback(
            guard_report.curve, choice, live
        )
        assert verdict.status == "reject"
        assert fallback is not None
        assert fallback.verdict.ok
        assert fallback.n_fast_keys in fallback.probed
        assert fallback.n_fast_keys != choice.n_fast_keys
        assert fallback.choice.n_fast_keys == fallback.n_fast_keys

    def test_validating_choice_needs_no_fallback(
        self, validator, guard_report, small_trace_module,
    ):
        verdict, fallback = validator.validate_or_fallback(
            guard_report.curve, guard_report.choose(0.10), small_trace_module
        )
        assert verdict.passed
        assert fallback is None

    def test_impossible_budget_raises_guard_error(
        self, guard_client, guard_report, small_trace_module,
    ):
        impossible = RecommendationValidator(
            RedisLike, client=guard_client,
            budget=ErrorBudget(throughput_pct=1e-9, latency_pct=1e-9),
        )
        with pytest.raises(GuardError):
            impossible.find_fallback(
                guard_report.curve, small_trace_module,
                guard_report.choose(0.10), max_probes=2,
            )

    def test_probes_are_nearest_first(self, validator, guard_report):
        step = validator.step(guard_report.curve.n_keys)
        n0 = guard_report.choose(0.10).n_fast_keys
        # reach into the candidate generator via a strict budget run on
        # a rejected split: distances must be non-decreasing
        candidates = []
        for distance in range(1, 4):
            for signed in (n0 + distance * step, n0 - distance * step):
                k = int(np.clip(signed, 0, guard_report.curve.n_keys))
                if k != n0 and k not in candidates:
                    candidates.append(k)
        distances = [abs(k - n0) for k in candidates]
        assert distances == sorted(distances)
