"""Tests for the streaming workload-drift detectors."""

import numpy as np
import pytest

from repro.errors import GuardError
from repro.guard.drift import (
    DriftDetector,
    DriftThresholds,
    detect_drift,
    hot_set_churn,
    js_divergence,
    kl_divergence,
    rotate_hot_set,
    size_shift,
)
from repro.ycsb import generate_trace


class TestDivergence:
    def test_identical_is_zero(self):
        p = np.array([0.5, 0.3, 0.2])
        assert js_divergence(p, p) == pytest.approx(0.0, abs=1e-12)
        assert kl_divergence(p, p) == pytest.approx(0.0, abs=1e-9)

    def test_js_bounded_by_one(self):
        p = np.array([1.0, 0.0, 0.0])
        q = np.array([0.0, 0.0, 1.0])
        assert js_divergence(p, q) == pytest.approx(1.0, abs=1e-6)

    def test_js_symmetric(self):
        rng = np.random.default_rng(3)
        p, q = rng.random(50), rng.random(50)
        assert js_divergence(p, q) == pytest.approx(js_divergence(q, p))

    def test_unnormalised_inputs_accepted(self):
        p = np.array([5.0, 3.0, 2.0])
        q = np.array([0.5, 0.3, 0.2])
        assert js_divergence(p, q) == pytest.approx(0.0, abs=1e-9)

    def test_shape_mismatch_raises(self):
        with pytest.raises(GuardError):
            js_divergence(np.ones(3), np.ones(4))


class TestChurnAndSize:
    def test_no_churn_for_identical_mass(self):
        mass = np.array([10.0, 5.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0])
        assert hot_set_churn(mass, mass) == 0.0

    def test_full_churn_when_hot_set_moves(self):
        ref = np.array([10.0, 10.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0])
        live = np.array([1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 10.0, 10.0])
        assert hot_set_churn(ref, live, top_fraction=0.2) == 1.0

    def test_size_shift_relative(self):
        assert size_shift(100.0, 125.0) == pytest.approx(0.25)
        assert size_shift(100.0, 75.0) == pytest.approx(0.25)


class TestRotateHotSet:
    def test_rotation_preserves_shape_and_histogram(self, small_trace):
        rotated = rotate_hot_set(small_trace, 37)
        assert rotated.n_requests == small_trace.n_requests
        assert rotated.n_keys == small_trace.n_keys
        assert np.array_equal(
            np.sort(np.bincount(rotated.keys, minlength=rotated.n_keys)),
            np.sort(np.bincount(small_trace.keys,
                                minlength=small_trace.n_keys)),
        )

    def test_zero_rotation_is_identity(self, small_trace):
        rotated = rotate_hot_set(small_trace, 0)
        assert np.array_equal(rotated.keys, small_trace.keys)


class TestDetector:
    def test_identical_trace_keeps(self, small_trace):
        report = detect_drift(small_trace, small_trace)
        assert report.level == "ok"
        assert report.advice.action == "keep"
        assert report.advice.keep

    def test_rotated_trace_triggers_act(self, small_trace):
        live = rotate_hot_set(small_trace, small_trace.n_keys // 2)
        report = detect_drift(small_trace, live)
        assert report.level == "act"
        assert report.advice.action == "reprofile"

    def test_streaming_chunks_match_whole_trace(self, small_trace):
        live = rotate_hot_set(small_trace, 50)
        whole = detect_drift(small_trace, live)

        det = DriftDetector(small_trace)
        third = live.n_requests // 3
        det.observe(live.keys[:third])
        det.observe(live.keys[third:2 * third])
        det.observe(live.keys[2 * third:])
        chunked = det.report()

        for a, b in zip(whole.signals, chunked.signals):
            assert a.metric == b.metric
            assert a.value == pytest.approx(b.value)

    def test_empty_stream_raises(self, small_trace):
        with pytest.raises(GuardError):
            DriftDetector(small_trace).report()

    def test_out_of_range_key_raises(self, small_trace):
        det = DriftDetector(small_trace)
        with pytest.raises(GuardError):
            det.observe(np.array([small_trace.n_keys + 5]))

    def test_thresholds_tune_the_verdict(self, small_trace):
        live = rotate_hot_set(small_trace, small_trace.n_keys // 2)
        lax = DriftThresholds(
            divergence_warn=0.95, divergence_act=0.99,
            churn_warn=1.01, churn_act=1.1,
            size_warn=0.9, size_act=0.99,
        )
        report = detect_drift(small_trace, live, thresholds=lax)
        assert report.level == "ok"

    def test_warn_band_advises_widen(self, small_trace):
        live = rotate_hot_set(small_trace, small_trace.n_keys // 2)
        # thresholds placed so the rotation lands between warn and act
        between = DriftThresholds(
            divergence_warn=0.01, divergence_act=0.99,
            churn_warn=0.01, churn_act=1.1,
            size_warn=0.9, size_act=0.99,
        )
        report = detect_drift(small_trace, live, thresholds=between)
        assert report.level == "warn"
        assert report.advice.action == "widen_margin"

    def test_lines_render(self, small_trace):
        report = detect_drift(small_trace, small_trace)
        text = "\n".join(report.lines())
        assert "divergence" in text
        assert "advice" in text


class TestSensitivityEngineIntegration:
    def test_drift_between_descriptor_and_live(self, small_trace):
        from repro.core import SensitivityEngine, WorkloadDescriptor
        from repro.kvstore import RedisLike

        engine = SensitivityEngine(RedisLike)
        descriptor = WorkloadDescriptor.from_trace(small_trace)
        live = rotate_hot_set(small_trace, small_trace.n_keys // 2)
        report = engine.drift_between(descriptor, live)
        assert report.advice.action == "reprofile"
