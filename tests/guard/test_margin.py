"""Tests for confidence-aware SLO safety margins."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.core import MnemoReport
from repro.guard.margin import DEFAULT_MARGIN_POLICY, MarginPolicy


class TestHeadroomFormula:
    def test_clean_baselines_keep_full_slack(self):
        policy = MarginPolicy()
        assert policy.headroom(1.0) == 1.0
        assert policy.effective_slowdown(0.10, 1.0) == pytest.approx(0.10)

    def test_one_estimated_side(self):
        # confidence 0.5 (one synthesised baseline) -> headroom 1.5
        policy = MarginPolicy(alpha=1.0)
        assert policy.headroom(0.5) == pytest.approx(1.5)
        assert policy.effective_slowdown(0.10, 0.5) == pytest.approx(0.10 / 1.5)

    def test_headroom_is_capped(self):
        policy = MarginPolicy(alpha=100.0, max_headroom=4.0)
        assert policy.headroom(0.0) == 4.0

    def test_widen_multiplies_by_drift_extra(self):
        policy = MarginPolicy(alpha=1.0, drift_extra=0.5)
        assert policy.headroom(1.0, widen=True) == pytest.approx(1.5)
        assert policy.headroom(0.5, widen=True) == pytest.approx(2.25)

    def test_monotone_in_lost_confidence(self):
        policy = MarginPolicy()
        values = [policy.headroom(c) for c in (1.0, 0.75, 0.5, 0.25, 0.0)]
        assert values == sorted(values)

    def test_invalid_inputs_raise(self):
        with pytest.raises(ConfigurationError):
            MarginPolicy(alpha=-1.0)
        with pytest.raises(ConfigurationError):
            MarginPolicy(max_headroom=0.5)
        with pytest.raises(ConfigurationError):
            MarginPolicy().headroom(1.5)
        with pytest.raises(ConfigurationError):
            MarginPolicy().effective_slowdown(1.0, 1.0)


@pytest.fixture
def report(guard_report):
    """The session-shared profiling report (see conftest)."""
    return guard_report


def _degrade(report: MnemoReport, flags: tuple[str, ...]) -> MnemoReport:
    """The same report, with its baselines re-flagged as degraded."""
    baselines = dataclasses.replace(report.baselines, flags=flags)
    return dataclasses.replace(report, baselines=baselines)


class TestChooseGuarded:
    def test_clean_report_matches_plain_choice(self, report):
        assert (report.choose_guarded(0.10).n_fast_keys
                == report.choose(0.10).n_fast_keys)

    def test_degraded_report_buys_more_fastmem(self, report):
        degraded = _degrade(report, ("fast:estimated",))
        assert degraded.confidence == pytest.approx(0.5)
        guarded = degraded.choose_guarded(0.10)
        plain = degraded.choose(0.10)
        assert guarded.n_fast_keys >= plain.n_fast_keys
        assert guarded.max_slowdown == pytest.approx(0.10 / 1.5)

    def test_widen_tightens_even_clean_reports(self, report):
        widened = report.choose_guarded(0.10, widen=True)
        assert widened.max_slowdown == pytest.approx(0.10 / 1.5)
        assert widened.n_fast_keys >= report.choose(0.10).n_fast_keys

    def test_custom_policy_respected(self, report):
        degraded = _degrade(report, ("fast:estimated",))
        off = MarginPolicy(alpha=0.0)
        assert (degraded.choose_guarded(0.10, policy=off).n_fast_keys
                == degraded.choose(0.10).n_fast_keys)

    def test_summary_surfaces_guarded_sizing(self, report):
        degraded = _degrade(report, ("fast:estimated", "slow:faulty"))
        text = degraded.summary()
        assert "confidence" in text
        assert "guarded sizing" in text
        assert "headroom" in text

    def test_clean_summary_has_no_guard_line(self, report):
        assert "guarded sizing" not in report.summary()


def test_default_policy_is_documented_default():
    assert DEFAULT_MARGIN_POLICY == MarginPolicy()
