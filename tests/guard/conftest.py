"""Shared fixtures for the guard suite.

Profiling runs are the expensive part of these tests, so the planning
trace and its report are built once per session and shared; everything
downstream of them is deterministic (integer-seeded clients), so
sharing does not couple the tests.
"""

from __future__ import annotations

import pytest

from repro.core import Mnemo
from repro.kvstore import RedisLike
from repro.ycsb import YCSBClient, generate_trace
from repro.ycsb.distributions import DistributionSpec
from repro.ycsb.sizes import THUMBNAIL
from repro.ycsb.workload import WorkloadSpec


@pytest.fixture(scope="session")
def small_trace_module():
    """A small hotspot trace shared by the whole guard suite."""
    spec = WorkloadSpec(
        name="guard_hotspot",
        distribution=DistributionSpec(
            name="hotspot", hot_data_fraction=0.2, hot_op_fraction=0.75
        ),
        read_fraction=1.0,
        size_model=THUMBNAIL,
        n_keys=200,
        n_requests=4_000,
        seed=7,
    )
    return generate_trace(spec)


@pytest.fixture(scope="session")
def guard_client():
    """A fast, deterministic (hence cacheable) measuring client."""
    return YCSBClient(repeats=1, seed=13)


@pytest.fixture(scope="session")
def guard_report(small_trace_module, guard_client):
    """One profiling report shared across the guard suite."""
    mnemo = Mnemo(engine_factory=RedisLike, client=guard_client)
    return mnemo.profile(small_trace_module)
