"""Shared fixtures for the test suite.

Scales are kept small (hundreds of keys, thousands of requests) so the
whole suite runs in seconds; the benchmarks exercise paper scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kvstore import DynamoLike, MemcachedLike, RedisLike
from repro.memsim import HybridMemorySystem
from repro.ycsb import YCSBClient, generate_trace, workload_by_name
from repro.ycsb.distributions import DistributionSpec
from repro.ycsb.sizes import THUMBNAIL, SizeModel
from repro.ycsb.workload import WorkloadSpec

ALL_ENGINES = (RedisLike, MemcachedLike, DynamoLike)


@pytest.fixture
def system() -> HybridMemorySystem:
    """A fresh Table I testbed."""
    return HybridMemorySystem.testbed()


@pytest.fixture
def small_spec() -> WorkloadSpec:
    """A small hotspot read-only workload (fast to run everywhere)."""
    return WorkloadSpec(
        name="small_hotspot",
        distribution=DistributionSpec(
            name="hotspot", hot_data_fraction=0.2, hot_op_fraction=0.75
        ),
        read_fraction=1.0,
        size_model=THUMBNAIL,
        n_keys=200,
        n_requests=4_000,
        seed=7,
    )


@pytest.fixture
def small_trace(small_spec):
    """The generated trace of ``small_spec``."""
    return generate_trace(small_spec)


@pytest.fixture
def mixed_spec() -> WorkloadSpec:
    """A small mixed read/write zipfian workload."""
    return WorkloadSpec(
        name="small_mixed",
        distribution=DistributionSpec(name="scrambled_zipfian"),
        read_fraction=0.5,
        size_model=SizeModel(name="small_vals", median_bytes=2_000, sigma=0.3),
        n_keys=300,
        n_requests=5_000,
        seed=11,
    )


@pytest.fixture
def mixed_trace(mixed_spec):
    """The generated trace of ``mixed_spec``."""
    return generate_trace(mixed_spec)


@pytest.fixture
def quiet_client() -> YCSBClient:
    """A noise-free single-repeat client for deterministic assertions."""
    return YCSBClient(repeats=1, noise_sigma=0.0)


@pytest.fixture
def tiny_sizes() -> np.ndarray:
    """A 10-record dataset with deterministic sizes."""
    return np.array([100, 200, 300, 400, 500, 600, 700, 800, 900, 1_000],
                    dtype=np.int64)


@pytest.fixture(params=ALL_ENGINES, ids=lambda e: e.__name__)
def engine_factory(request):
    """Parametrised over the three store engines."""
    return request.param
