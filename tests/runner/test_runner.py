"""Tests for the caching client and the parallel experiment runner."""

import numpy as np
import pytest

from repro.core.sensitivity import PerformanceBaselines, SensitivityEngine
from repro.core.descriptor import WorkloadDescriptor
from repro.errors import ConfigurationError
from repro.kvstore import RedisLike
from repro.memsim import HybridMemorySystem
from repro.runner import (
    CachingClient,
    ClientConfig,
    ExperimentRunner,
    ExperimentSpec,
    ResultCache,
    split_fast_keys,
)
from repro.kvstore.server import HybridDeployment
from repro.ycsb import YCSBClient


@pytest.fixture
def cache(tmp_path):
    """A fresh result cache."""
    return ResultCache(tmp_path / "cache")


@pytest.fixture
def slow_deployment(small_trace):
    """All-SlowMem deployment for the small trace."""
    return HybridDeployment.all_slow(
        RedisLike, HybridMemorySystem.testbed(), small_trace.record_sizes
    )


class TestCachingClient:
    def test_hit_returns_identical_result(
        self, cache, small_trace, slow_deployment,
    ):
        client = CachingClient(cache=cache, repeats=2, seed=5)
        first = client.execute(small_trace, slow_deployment)
        second = client.execute(small_trace, slow_deployment)
        assert first == second
        assert client.cache_misses == 1 and client.cache_hits == 1

    def test_cached_equals_plain_client(
        self, cache, small_trace, slow_deployment,
    ):
        plain = YCSBClient(repeats=2, seed=5).execute(
            small_trace, slow_deployment
        )
        caching = CachingClient(cache=cache, repeats=2, seed=5)
        assert caching.execute(small_trace, slow_deployment) == plain
        # and the recalled copy is bit-identical too
        fresh = CachingClient(cache=cache, repeats=2, seed=5)
        assert fresh.execute(small_trace, slow_deployment) == plain

    def test_different_seeds_do_not_alias(
        self, cache, small_trace, slow_deployment,
    ):
        a = CachingClient(cache=cache, seed=1).execute(
            small_trace, slow_deployment
        )
        b = CachingClient(cache=cache, seed=2).execute(
            small_trace, slow_deployment
        )
        assert a != b

    def test_generator_seed_bypasses_cache(
        self, cache, small_trace, slow_deployment,
    ):
        client = CachingClient(
            cache=cache, seed=np.random.default_rng(0), repeats=1
        )
        client.execute(small_trace, slow_deployment)
        assert client.cache_hits == client.cache_misses == 0
        assert cache.stats().entries["results"] == 0

    def test_wrap_preserves_settings(self, cache):
        base = YCSBClient(
            repeats=4, noise_sigma=0.02, use_llc=True,
            seed=9, concurrency=2, contention=0.3,
        )
        wrapped = CachingClient.wrap(base, cache)
        assert wrapped.repeats == 4
        assert wrapped.noise.sigma == 0.02
        assert wrapped.use_llc is True
        assert wrapped.seed == 9
        assert wrapped.concurrency == 2
        assert wrapped.contention == 0.3

    def test_llc_hitmask_persisted_and_reused(
        self, cache, small_trace, slow_deployment,
    ):
        client = CachingClient(cache=cache, use_llc=True, seed=5, repeats=1)
        first = client.execute(small_trace, slow_deployment)
        assert cache.stats().entries["hitmasks"] == 1
        # a fresh client in a fresh process loads the mask from disk
        other = CachingClient(cache=cache, use_llc=True, seed=5, repeats=1)
        assert other.execute(small_trace, slow_deployment) == first


class TestExperimentSpec:
    def test_unknown_engine_rejected(self, small_spec):
        with pytest.raises(ConfigurationError):
            ExperimentSpec(workload=small_spec, engine="mongodb")

    def test_unknown_placement_rejected(self, small_spec):
        with pytest.raises(ConfigurationError):
            ExperimentSpec(workload=small_spec, placement="striped")

    def test_fraction_bounds(self, small_spec):
        with pytest.raises(ConfigurationError):
            ExperimentSpec(
                workload=small_spec, placement="split", fast_fraction=1.5
            )

    def test_label(self, small_spec):
        spec = ExperimentSpec(
            workload=small_spec, engine="redis",
            placement="split", fast_fraction=0.25,
        )
        assert spec.label == "small_hotspot/redis/split0.25"


class TestSplitFastKeys:
    def test_respects_byte_budget(self, small_trace):
        keys = split_fast_keys(small_trace, 0.3)
        used = int(small_trace.record_sizes[keys].sum())
        assert used <= 0.3 * small_trace.record_sizes.sum()

    def test_zero_and_full(self, small_trace):
        assert split_fast_keys(small_trace, 0.0).size == 0
        full = split_fast_keys(small_trace, 1.0)
        assert full.size == small_trace.record_sizes.size

    def test_prefers_hot_keys(self, small_trace):
        keys = split_fast_keys(small_trace, 0.2)
        counts = np.bincount(
            small_trace.keys, minlength=small_trace.record_sizes.size
        )
        cold = np.setdiff1d(
            np.arange(small_trace.record_sizes.size), keys
        )
        assert counts[keys].min() >= np.percentile(counts[cold], 50)


class TestExperimentRunner:
    @pytest.fixture
    def specs(self, small_spec, mixed_spec):
        return ExperimentRunner.grid(
            [small_spec, mixed_spec],
            engines=("redis", "memcached"),
            placements=("fast", "slow", "split"),
            fast_fractions=(0.25,),
        )

    def test_grid_shape(self, specs):
        assert len(specs) == 2 * 2 * 3

    def test_serial_cold_warm_parallel_bit_identical(
        self, tmp_path, specs,
    ):
        config = ClientConfig(repeats=2, seed=11)
        base = ExperimentRunner(cache=None, client=config).run_grid(specs)
        cold = ExperimentRunner(
            cache=tmp_path / "c", client=config
        ).run_grid(specs)
        warm = ExperimentRunner(
            cache=tmp_path / "c", client=config
        ).run_grid(specs)
        parallel = ExperimentRunner(cache=None, client=config).run_grid(
            specs, workers=2
        )
        assert base == cold == warm == parallel

    def test_warm_run_skips_measurement(self, tmp_path, specs, monkeypatch):
        config = ClientConfig(repeats=2, seed=11)
        ExperimentRunner(cache=tmp_path / "c", client=config).run_grid(specs)
        warm_runner = ExperimentRunner(cache=tmp_path / "c", client=config)

        def boom(*a, **k):  # pragma: no cover - must not run
            raise AssertionError("warm run rebuilt a deployment")

        monkeypatch.setattr(warm_runner, "deployment_for", boom)
        assert len(warm_runner.run_grid(specs)) == len(specs)

    def test_trace_cached_on_disk(self, tmp_path, small_spec):
        runner = ExperimentRunner(cache=tmp_path / "c")
        t1 = runner.trace_for(small_spec)
        assert runner.cache.stats().entries["traces"] == 1
        t2 = runner.trace_for(small_spec)
        assert np.array_equal(t1.keys, t2.keys)

    def test_baselines_match_sensitivity_engine(self, small_spec):
        runner = ExperimentRunner(
            cache=None, client=ClientConfig(repeats=2, seed=4)
        )
        got = runner.baselines(small_spec, engine="redis")
        assert isinstance(got, PerformanceBaselines)
        engine = SensitivityEngine(
            RedisLike, client=YCSBClient(repeats=2, seed=4)
        )
        trace = runner.trace_for(small_spec)
        want = engine.measure(WorkloadDescriptor.from_trace(trace))
        assert got.fast == want.fast
        assert got.slow == want.slow


class TestSensitivityEngineCache:
    def test_cache_param_wraps_client(self, tmp_path, small_trace):
        engine = SensitivityEngine(
            RedisLike,
            client=YCSBClient(repeats=2, seed=4),
            cache=tmp_path / "c",
        )
        assert isinstance(engine.client, CachingClient)
        descriptor = WorkloadDescriptor.from_trace(small_trace)
        first = engine.measure(descriptor)
        assert engine.client.cache_misses == 2
        second = engine.measure(descriptor)
        assert engine.client.cache_hits == 2
        assert first == second
