"""Tests for experiment fingerprinting and canonicalisation."""

import dataclasses

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.kvstore import RedisLike
from repro.kvstore.server import HybridDeployment
from repro.memsim import HybridMemorySystem
from repro.runner.fingerprint import (
    array_digest,
    canonicalize,
    client_fingerprint,
    digest,
    experiment_fingerprint,
    experiment_fingerprint_parts,
    trace_fingerprint,
    workload_fingerprint,
)
from repro.ycsb import YCSBClient, generate_trace


@dataclasses.dataclass(frozen=True)
class _Point:
    x: int
    y: float


class TestCanonicalize:
    def test_scalars_pass_through(self):
        assert canonicalize(3) == 3
        assert canonicalize("a") == "a"
        assert canonicalize(None) is None
        assert canonicalize(True) is True

    def test_floats_are_exact(self):
        # repr round-trips doubles exactly; 0.1 + 0.2 != 0.3 must differ
        assert canonicalize(0.1 + 0.2) != canonicalize(0.3)

    def test_numpy_scalars_match_python(self):
        assert canonicalize(np.int64(5)) == canonicalize(5)
        assert canonicalize(np.float64(1.5)) == canonicalize(1.5)

    def test_dataclasses_include_type_and_fields(self):
        out = canonicalize(_Point(x=1, y=2.0))
        assert out["__dataclass__"] == "_Point"
        assert out["x"] == 1

    def test_mapping_order_does_not_matter(self):
        assert digest({"a": 1, "b": 2}) == digest({"b": 2, "a": 1})

    def test_unsupported_type_raises(self):
        with pytest.raises(ConfigurationError):
            canonicalize(lambda: None)


class TestDigests:
    def test_array_digest_sensitive_to_content_and_dtype(self):
        a = np.array([1, 2, 3], dtype=np.int64)
        assert array_digest(a) == array_digest(a.copy())
        assert array_digest(a) != array_digest(a.astype(np.int32))
        assert array_digest(a) != array_digest(np.array([1, 2, 4]))

    def test_workload_fingerprint_changes_with_seed(self, small_spec):
        assert workload_fingerprint(small_spec) != workload_fingerprint(
            small_spec.with_seed(small_spec.seed + 1)
        )

    def test_spec_and_trace_fingerprints_are_stable(self, small_spec):
        assert workload_fingerprint(small_spec) == workload_fingerprint(
            small_spec
        )
        trace = generate_trace(small_spec)
        assert trace_fingerprint(trace) == trace_fingerprint(trace)

    def test_generator_seeded_client_rejected(self):
        client = YCSBClient(seed=np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            client_fingerprint(client)


class TestExperimentFingerprint:
    @pytest.fixture
    def parts(self, small_trace):
        system = HybridMemorySystem.testbed()
        deployment = HybridDeployment.all_slow(
            RedisLike, system, small_trace.record_sizes
        )
        client = YCSBClient(seed=3)
        return small_trace, deployment, client

    def test_deterministic(self, parts):
        trace, deployment, client = parts
        td = trace_fingerprint(trace)
        assert experiment_fingerprint(td, deployment, client) == \
            experiment_fingerprint(td, deployment, client)

    def test_placement_changes_fingerprint(self, parts, small_trace):
        trace, slow, client = parts
        fast = HybridDeployment.all_fast(
            RedisLike, HybridMemorySystem.testbed(), small_trace.record_sizes
        )
        td = trace_fingerprint(trace)
        assert experiment_fingerprint(td, slow, client) != \
            experiment_fingerprint(td, fast, client)

    def test_client_settings_change_fingerprint(self, parts):
        trace, deployment, _ = parts
        td = trace_fingerprint(trace)
        assert experiment_fingerprint(td, deployment, YCSBClient(seed=3)) != \
            experiment_fingerprint(td, deployment, YCSBClient(seed=4))
        assert experiment_fingerprint(td, deployment, YCSBClient(seed=3)) != \
            experiment_fingerprint(
                td, deployment, YCSBClient(seed=3, repeats=5)
            )

    def test_parts_variant_matches_deployment_variant(self, parts):
        trace, deployment, client = parts
        td = trace_fingerprint(trace)
        record_sizes, fast_mask = deployment.placement_arrays()
        assert experiment_fingerprint(td, deployment, client) == \
            experiment_fingerprint_parts(
                td, deployment.profile, fast_mask,
                deployment.system, client,
            )
