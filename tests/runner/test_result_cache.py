"""Tests for the on-disk content-addressed cache."""

import json

import numpy as np
import pytest

from repro.runner.cache import (
    SCHEMA_VERSION,
    ResultCache,
    ensure_cache,
)
from repro.ycsb.client import RunResult
from repro.ycsb.workload import Trace


@pytest.fixture
def cache(tmp_path):
    """A fresh cache rooted in a temp directory."""
    return ResultCache(tmp_path / "cache")


@pytest.fixture
def result():
    """A representative RunResult with float percentile keys."""
    return RunResult(
        workload="w", engine="redis", n_requests=100, n_reads=60,
        n_writes=40, runtime_ns=1.5e8, avg_read_ns=1200.5,
        avg_write_ns=1500.25,
        latency_percentiles_ns={50.0: 900.0, 99.0: 4000.125},
        repeats=3, runtime_std_ns=12.5, concurrency=2,
    )


class TestResults:
    def test_roundtrip_is_exact(self, cache, result):
        cache.put_result("fp1", result)
        assert cache.get_result("fp1") == result

    def test_percentile_keys_restored_as_floats(self, cache, result):
        cache.put_result("fp1", result)
        got = cache.get_result("fp1")
        assert set(got.latency_percentiles_ns) == {50.0, 99.0}

    def test_missing_returns_none(self, cache):
        assert cache.get_result("nope") is None

    def test_schema_mismatch_invalidates(self, cache, result):
        path = cache.put_result("fp1", result)
        payload = json.loads(path.read_text())
        payload["schema"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(payload))
        assert cache.get_result("fp1") is None

    def test_corrupt_json_returns_none(self, cache, result):
        path = cache.put_result("fp1", result)
        path.write_text("{not json")
        assert cache.get_result("fp1") is None


class TestTraces:
    def test_roundtrip(self, cache, small_trace):
        cache.put_trace("t1", small_trace)
        got = cache.get_trace("t1")
        assert got.name == small_trace.name
        assert np.array_equal(got.keys, small_trace.keys)
        assert np.array_equal(got.is_read, small_trace.is_read)
        assert np.array_equal(got.record_sizes, small_trace.record_sizes)

    def test_missing_returns_none(self, cache):
        assert cache.get_trace("nope") is None


class TestHitmasks:
    def test_roundtrip(self, cache):
        mask = np.array([True, False, True])
        cache.put_hitmask("h1", mask)
        assert np.array_equal(cache.get_hitmask("h1"), mask)

    def test_missing_returns_none(self, cache):
        assert cache.get_hitmask("nope") is None


class TestVerdicts:
    PAYLOAD = {"status": "pass", "n_fast_keys": 42, "points": [1, 2, 3]}

    def test_roundtrip(self, cache):
        cache.put_verdict("v1", self.PAYLOAD)
        assert cache.get_verdict("v1") == self.PAYLOAD

    def test_missing_returns_none(self, cache):
        assert cache.get_verdict("nope") is None

    def test_corrupt_json_quarantined(self, cache):
        path = cache.put_verdict("v1", self.PAYLOAD)
        path.write_text("{not json")
        assert cache.get_verdict("v1") is None
        assert not path.exists()  # quarantined, not left to rot

    def test_checksum_mismatch_rejected(self, cache):
        path = cache.put_verdict("v1", self.PAYLOAD)
        payload = json.loads(path.read_text())
        payload["verdict"]["status"] = "reject"
        path.write_text(json.dumps(payload))
        assert cache.get_verdict("v1") is None

    def test_counted_by_stats_and_verify(self, cache):
        cache.put_verdict("v1", self.PAYLOAD)
        assert cache.stats().entries["verdicts"] == 1
        report = cache.verify()
        assert report.ok
        assert report.checked["verdicts"] == 1


class TestMaintenance:
    def test_stats_counts_kinds(self, cache, result, small_trace):
        cache.put_result("a", result)
        cache.put_result("b", result)
        cache.put_trace("t", small_trace)
        stats = cache.stats()
        assert stats.entries["results"] == 2
        assert stats.entries["traces"] == 1
        assert stats.entries["hitmasks"] == 0
        assert stats.total_entries == 3
        assert stats.total_bytes > 0
        assert len(stats.lines()) == 5

    def test_empty_cache_stats(self, cache):
        assert cache.stats().total_entries == 0

    def test_clear_removes_everything(self, cache, result):
        cache.put_result("a", result)
        assert cache.clear() == 1
        assert cache.get_result("a") is None
        assert cache.stats().total_entries == 0

    def test_clear_empty_is_safe(self, cache):
        assert cache.clear() == 0


class TestEnsureCache:
    def test_passthrough_and_coercion(self, cache, tmp_path):
        assert ensure_cache(None) is None
        assert ensure_cache(cache) is cache
        built = ensure_cache(tmp_path / "other")
        assert isinstance(built, ResultCache)
