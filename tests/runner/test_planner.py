"""Sweep planner: grouped dispatch equivalence, attribution, shm hygiene.

The planner's contract is strict: grouped-batch dispatch over the
shared-memory trace plane must produce results, fingerprints and cache
entries *bit-identical* to the serial and per-cell paths, attribute
failures to individual specs even when they arrive batched, and never
leak a shared-memory segment — including on the failure paths.
"""

import numpy as np
import pytest
from multiprocessing import shared_memory

from repro import telemetry
from repro.errors import ConfigurationError, FaultError
from repro.faults import ChaosPlan
from repro.runner import (
    ClientConfig,
    ExperimentRunner,
    ExperimentSpec,
    PlacementBatch,
    RetryPolicy,
    TracePlane,
)
from repro.runner.grid import _worker_run_batch
from repro.runner.shm import attach_trace
from repro.ycsb import generate_trace

#: Retries that keep test wall-clock low.
FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base_s=0.01)


def _runner(tmp_path, sub, **kwargs):
    kwargs.setdefault("client", ClientConfig(repeats=2, seed=7))
    kwargs.setdefault("retry", FAST_RETRY)
    return ExperimentRunner(cache=str(tmp_path / sub), **kwargs)


def _segment_exists(name: str) -> bool:
    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    seg.close()
    return True


@pytest.fixture
def grid_specs(small_spec, mixed_spec):
    """Six cells: two (workload, engine) groups of three placements."""
    return ExperimentRunner.grid(
        [small_spec, mixed_spec], engines=("redis",),
        placements=("fast", "slow", "split"), fast_fractions=(0.3,),
    )


@pytest.fixture
def reference(grid_specs, tmp_path):
    """Clean serial results every planner configuration must equal."""
    runner = _runner(tmp_path, "ref")
    try:
        return runner.sweep(grid_specs)
    finally:
        runner.close()


class TestEquivalence:
    def test_grouped_identical_to_serial(
        self, grid_specs, reference, tmp_path,
    ):
        with _runner(tmp_path, "grp") as runner:
            grouped = runner.sweep(grid_specs, workers=2)
        assert grouped.ok
        assert grouped.results == reference.results

    def test_cell_plan_identical_to_grouped(
        self, grid_specs, reference, tmp_path,
    ):
        with _runner(tmp_path, "cell", plan="cell") as runner:
            cell = runner.sweep(grid_specs, workers=2)
        assert cell.ok
        assert cell.results == reference.results

    def test_no_shm_identical(self, grid_specs, reference, tmp_path):
        with _runner(tmp_path, "noshm", use_shm=False) as runner:
            outcome = runner.sweep(grid_specs, workers=2)
        assert outcome.ok
        assert outcome.results == reference.results

    def test_cache_entries_identical_across_plans(
        self, grid_specs, tmp_path,
    ):
        # the grouped workers and the serial path must write the same
        # fingerprints — the caches are interchangeable byte stores
        with _runner(tmp_path, "a") as serial:
            serial.sweep(grid_specs)
        with _runner(tmp_path, "b") as grouped:
            grouped.sweep(grid_specs, workers=2)

        def entries(sub):
            return sorted(
                p.relative_to(tmp_path / sub).as_posix()
                for p in (tmp_path / sub).rglob("*.json") if p.is_file()
            )

        assert entries("a") == entries("b")
        assert len(entries("a")) >= len(grid_specs)

    def test_batch_fingerprints_match_spec_fingerprints(
        self, grid_specs, tmp_path,
    ):
        with _runner(tmp_path, "fp") as runner:
            spec = grid_specs[0]
            trace = runner.trace_for(spec.workload)
            batch = PlacementBatch(
                runner._client, trace, __import__(
                    "repro.kvstore.profiles", fromlist=["profile_for"]
                ).profile_for(spec.engine), runner.system_factory(),
            )
            mask = runner.placement_mask(spec, trace)
            assert batch.fingerprint(mask) == runner.spec_fingerprint(
                spec, trace
            )

    def test_warm_grouped_sweep_recalls_from_cache(
        self, grid_specs, tmp_path,
    ):
        with _runner(tmp_path, "warm") as runner:
            cold = runner.sweep(grid_specs, workers=2)
            warm = runner.sweep(grid_specs, workers=2)
        assert set(cold.provenance) == {"computed"}
        assert set(warm.provenance) == {"cache"}
        assert warm.results == cold.results


class TestPlanner:
    def test_batches_group_by_workload_and_engine(
        self, grid_specs, tmp_path,
    ):
        with _runner(tmp_path, "plan") as runner:
            batches = runner._plan_batches(
                grid_specs, list(range(len(grid_specs))), {},
            )
            assert [m for _, m in batches] == [[0, 1, 2], [3, 4, 5]]

    def test_split_levels_chunk_deterministically(
        self, grid_specs, tmp_path,
    ):
        with _runner(tmp_path, "plan") as runner:
            order = list(range(len(grid_specs)))
            level_0 = runner._plan_batches(grid_specs, order, {})
            key = level_0[0][0]
            level_1 = runner._plan_batches(grid_specs, order, {key: 1})
            level_2 = runner._plan_batches(grid_specs, order, {key: 2})
        assert [m for _, m in level_1] == [[0, 1], [2], [3, 4, 5]]
        assert [m for _, m in level_2] == [[0], [1], [2], [3, 4, 5]]

    def test_bad_plan_rejected(self, tmp_path, grid_specs):
        with pytest.raises(ConfigurationError):
            ExperimentRunner(plan="scattered")
        with _runner(tmp_path, "bad") as runner:
            with pytest.raises(ConfigurationError):
                runner.sweep(grid_specs, workers=2, plan="scattered")

    def test_pool_persists_across_sweeps(self, grid_specs, tmp_path):
        with _runner(tmp_path, "pool") as runner:
            runner.sweep(grid_specs, workers=2)
            first = runner._res.pool
            assert first is not None
            runner.sweep(grid_specs, workers=2)
            assert runner._res.pool is first
        assert runner._res.pool is None

    def test_summary_reports_aggregate_and_elapsed(
        self, grid_specs, tmp_path,
    ):
        with _runner(tmp_path, "sum") as runner:
            outcome = runner.sweep(grid_specs, workers=2)
        assert outcome.elapsed_s > 0
        text = outcome.summary()
        assert "compute:" in text and "aggregate" in text
        assert "wall clock:" in text and "elapsed" in text


class TestGroupedChaos:
    def test_mid_batch_kill_attributed_and_converges(
        self, grid_specs, reference, tmp_path,
    ):
        # the victim sits mid-batch: its death takes the pool (and its
        # batch-mates' in-flight work) down, yet the sweep must converge
        # to bit-identical results with exactly one strike delivered
        victim = grid_specs[1].label
        runner = _runner(
            tmp_path, "kill",
            chaos=ChaosPlan(
                kill_labels=(victim,), mode="exit",
                marker_dir=str(tmp_path / "chaos"),
            ),
        )
        with runner:
            outcome = runner.sweep(grid_specs, workers=2)
        assert outcome.ok
        assert outcome.results == reference.results
        assert runner.chaos.strikes_delivered(victim) == 1

    def test_unrecoverable_spec_fails_alone(
        self, grid_specs, reference, tmp_path,
    ):
        # a spec that fails in-band on every attempt is reported against
        # its own label; its batch-mates complete untouched
        victim = grid_specs[2].label
        runner = _runner(
            tmp_path, "fail",
            chaos=ChaosPlan(
                kill_labels=(victim,), mode="raise", max_strikes=99,
                marker_dir=str(tmp_path / "chaos"),
            ),
        )
        with runner:
            outcome = runner.sweep(grid_specs, workers=2)
        assert not outcome.ok
        assert len(outcome.report) == 1
        failure = outcome.report.failures[0]
        assert failure.label == victim
        assert failure.attempts == FAST_RETRY.max_attempts
        for spec, res, ref in zip(
            grid_specs, outcome.results, reference.results,
        ):
            if spec.label == victim:
                assert res is None
            else:
                assert res == ref


class TestTracePlane:
    def test_publish_attach_roundtrip(self, small_trace):
        plane = TracePlane()
        try:
            handle = plane.publish(small_trace)
            trace, seg = handle.attach()
            assert trace.name == small_trace.name
            np.testing.assert_array_equal(trace.keys, small_trace.keys)
            np.testing.assert_array_equal(trace.is_read, small_trace.is_read)
            np.testing.assert_array_equal(
                trace.record_sizes, small_trace.record_sizes,
            )
            assert not trace.keys.flags.writeable
            seg.close()
        finally:
            plane.close()

    def test_publish_idempotent_per_digest(self, small_trace):
        plane = TracePlane()
        try:
            first = plane.publish(small_trace)
            second = plane.publish(small_trace)
            assert first is second
            assert len(plane) == 1
        finally:
            plane.close()

    def test_close_unlinks_segments(self, small_trace):
        plane = TracePlane()
        handle = plane.publish(small_trace)
        assert _segment_exists(handle.segment)
        plane.close()
        assert not _segment_exists(handle.segment)
        with pytest.raises(FileNotFoundError):
            handle.attach()

    def test_worker_falls_back_when_segment_vanished(
        self, small_spec, small_trace,
    ):
        # a dead handle degrades to materialising the trace — results
        # still flow, bit-identical to an in-process run
        plane = TracePlane()
        handle = plane.publish(small_trace)
        plane.close()
        spec = ExperimentSpec(workload=small_spec, placement="slow")
        config = ClientConfig(repeats=2, seed=7)
        entries, _ = _worker_run_batch((
            (spec,), handle, config, None,
            ExperimentRunner().system_factory, None, None,
        ))
        assert [ok for _, ok, _ in entries] == [True]
        expected = ExperimentRunner(cache=None, client=config).run(spec)
        assert entries[0][2][0] == expected

    def test_runner_close_removes_all_segments(self, grid_specs, tmp_path):
        runner = _runner(tmp_path, "leak")
        runner.sweep(grid_specs, workers=2)
        names = runner._res.plane.segment_names
        assert len(names) == 2  # one per workload
        assert all(_segment_exists(n) for n in names)
        runner.close()
        assert all(not _segment_exists(n) for n in names)

    def test_no_segment_survives_chaos(self, grid_specs, tmp_path):
        runner = _runner(
            tmp_path, "chaosleak",
            chaos=ChaosPlan(
                kill_labels=(grid_specs[0].label,), mode="exit",
                marker_dir=str(tmp_path / "chaos"),
            ),
        )
        runner.sweep(grid_specs, workers=2)
        names = runner._res.plane.segment_names
        runner.close()
        assert all(not _segment_exists(n) for n in names)


class TestPlannerTelemetry:
    def test_grouped_path_label_and_shm_counters(
        self, grid_specs, tmp_path,
    ):
        with telemetry.session() as tel:
            with _runner(tmp_path, "tele") as runner:
                outcome = runner.sweep(grid_specs, workers=2)
        assert outcome.ok

        def total(name, **labels):
            return sum(
                rec["value"] for rec in tel.metrics.snapshot()
                if rec["name"] == name and all(
                    rec["labels"].get(k) == v for k, v in labels.items()
                )
            )

        assert total("memsim.path", path="grouped_batch") >= 2
        assert total("memsim.path", path="batch_kernel") == 0
        assert total("runner.shm", op="publish") == 2
        assert total("runner.shm", op="attach") >= 1
        sweeps = [
            s for s in tel.all_spans() if s.name == "runner.sweep"
        ]
        assert sweeps and all(
            s.attrs.get("plan") == "grouped" for s in sweeps
        )
