"""Property-based tests for the hash index and B-tree (model-based)."""

import hypothesis.strategies as st
from hypothesis import given, settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.errors import KeyNotFoundError
from repro.kvstore import BTree, HashIndex


class IndexMachine(RuleBasedStateMachine):
    """Differential test of both index structures against a dict."""

    def __init__(self):
        super().__init__()
        self.hash = HashIndex(initial_capacity=8)
        self.tree = BTree(order=4)
        self.model = {}

    @rule(key=st.integers(min_value=0, max_value=50),
          value=st.integers())
    def insert(self, key, value):
        new = key not in self.model
        assert self.hash.insert(key, value) == new
        assert self.tree.insert(key, value) == new
        self.model[key] = value

    @rule(key=st.integers(min_value=0, max_value=50))
    def lookup(self, key):
        if key in self.model:
            assert self.hash.lookup(key) == self.model[key]
            assert self.tree.lookup(key) == self.model[key]
        else:
            for idx in (self.hash, self.tree):
                try:
                    idx.lookup(key)
                    raise AssertionError("expected KeyNotFoundError")
                except KeyNotFoundError:
                    pass

    @rule(key=st.integers(min_value=0, max_value=50))
    def remove(self, key):
        if key in self.model:
            expected = self.model.pop(key)
            assert self.hash.remove(key) == expected
            assert self.tree.remove(key) == expected

    @invariant()
    def sizes_agree(self):
        assert len(self.hash) == len(self.tree) == len(self.model)

    @invariant()
    def iteration_agrees(self):
        assert sorted(self.hash) == sorted(self.model)
        assert [k for k, _ in self.tree.items()] == sorted(self.model)

    @invariant()
    def tree_structure_valid(self):
        self.tree.check_invariants()


TestIndexStateMachine = IndexMachine.TestCase
TestIndexStateMachine.settings = settings(
    max_examples=20, stateful_step_count=50, deadline=None
)


class TestBulkProperties:
    @given(keys=st.lists(st.integers(min_value=0, max_value=10_000),
                         min_size=1, max_size=300, unique=True))
    @settings(max_examples=50, deadline=None)
    def test_btree_sorted_iteration(self, keys):
        tree = BTree(order=8)
        for k in keys:
            tree.insert(k, k)
        assert [k for k, _ in tree.items()] == sorted(keys)

    @given(keys=st.lists(st.integers(min_value=0, max_value=10_000),
                         min_size=1, max_size=300, unique=True))
    @settings(max_examples=50, deadline=None)
    def test_hashindex_membership(self, keys):
        idx = HashIndex()
        for k in keys:
            idx.insert(k, k * 3)
        assert sorted(idx) == sorted(keys)
        for k in keys:
            assert idx.lookup(k) == k * 3
