"""Property-based tests for the cost model, knapsack and estimate curve."""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.baselines.knapsack import dp_knapsack, greedy_knapsack
from repro.cost import capacity_for_cost, cost_reduction_factor


class TestCostModelProperties:
    @given(
        total=st.integers(min_value=1, max_value=10**12),
        frac=st.floats(min_value=0.0, max_value=1.0),
        p=st.floats(min_value=0.01, max_value=0.99),
    )
    @settings(max_examples=200)
    def test_factor_bounded_by_p_and_one(self, total, frac, p):
        fast = int(frac * total)
        r = cost_reduction_factor(fast, total, p)
        assert p - 1e-12 <= r <= 1 + 1e-12

    @given(
        total=st.integers(min_value=100, max_value=10**9),
        f1=st.floats(min_value=0.0, max_value=1.0),
        f2=st.floats(min_value=0.0, max_value=1.0),
        p=st.floats(min_value=0.01, max_value=0.99),
    )
    @settings(max_examples=200)
    def test_monotone_in_fast_share(self, total, f1, f2, p):
        lo, hi = sorted([int(f1 * total), int(f2 * total)])
        assert (cost_reduction_factor(lo, total, p)
                <= cost_reduction_factor(hi, total, p) + 1e-12)

    @given(
        total=st.integers(min_value=100, max_value=10**9),
        frac=st.floats(min_value=0.0, max_value=1.0),
        p=st.floats(min_value=0.01, max_value=0.99),
    )
    @settings(max_examples=200)
    def test_inverse_roundtrip(self, total, frac, p):
        fast = frac * total
        r = cost_reduction_factor(fast, total, p)
        back = capacity_for_cost(min(1.0, max(p, r)), total, p)
        # inverting through r amplifies r's rounding error by 1 / (1 - p),
        # so the absolute tolerance must scale with total * eps / (1 - p)
        tol = max(1e-6, total * 5e-16 / (1 - p))
        assert back == pytest.approx(fast, rel=1e-9, abs=tol)


@st.composite
def knapsack_instances(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    values = draw(st.lists(st.floats(min_value=0, max_value=100),
                           min_size=n, max_size=n))
    sizes = draw(st.lists(st.integers(min_value=1, max_value=30),
                          min_size=n, max_size=n))
    capacity = draw(st.integers(min_value=0, max_value=sum(sizes)))
    return np.array(values), np.array(sizes), capacity


class TestKnapsackProperties:
    @given(instance=knapsack_instances())
    @settings(max_examples=100, deadline=None)
    def test_both_solvers_respect_capacity(self, instance):
        values, sizes, cap = instance
        for solver in (greedy_knapsack, dp_knapsack):
            chosen = solver(values, sizes, cap)
            assert sizes[chosen].sum() <= cap if chosen.size else True

    @given(instance=knapsack_instances())
    @settings(max_examples=100, deadline=None)
    def test_dp_optimal_vs_bruteforce(self, instance):
        values, sizes, cap = instance
        n = values.size
        best = 0.0
        for mask in range(1 << n):
            idx = [i for i in range(n) if mask >> i & 1]
            if sizes[idx].sum() <= cap:
                best = max(best, float(values[idx].sum()))
        chosen = dp_knapsack(values, sizes, cap)
        got = float(values[chosen].sum()) if chosen.size else 0.0
        # dp uses ceil-scaled sizes, so it is optimal on small exact grids
        assert got <= best + 1e-9
        if sizes.max() <= 512:  # no scaling distortion in this regime
            assert got == pytest.approx(best)

    @given(instance=knapsack_instances())
    @settings(max_examples=100, deadline=None)
    def test_chosen_indices_unique_and_valid(self, instance):
        values, sizes, cap = instance
        chosen = greedy_knapsack(values, sizes, cap)
        assert len(set(chosen.tolist())) == chosen.size
        if chosen.size:
            assert chosen.min() >= 0 and chosen.max() < values.size
