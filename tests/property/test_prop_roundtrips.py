"""Property-based round-trip tests for trace persistence and adapters."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.ycsb import load_trace_csv, save_trace_csv
from repro.ycsb.adapters import from_requests
from repro.ycsb.workload import Trace


@st.composite
def traces(draw):
    n_keys = draw(st.integers(min_value=1, max_value=30))
    n_req = draw(st.integers(min_value=1, max_value=150))
    keys = draw(st.lists(st.integers(0, n_keys - 1),
                         min_size=n_req, max_size=n_req))
    is_read = draw(st.lists(st.booleans(), min_size=n_req, max_size=n_req))
    sizes = draw(st.lists(st.integers(min_value=1, max_value=10**6),
                          min_size=n_keys, max_size=n_keys))
    return Trace(
        name="prop",
        keys=np.array(keys, dtype=np.int64),
        is_read=np.array(is_read, dtype=bool),
        record_sizes=np.array(sizes, dtype=np.int64),
    )


class TestCsvRoundtrip:
    @given(trace=traces())
    @settings(max_examples=40, deadline=None)
    def test_save_load_identity(self, trace, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("roundtrip")
        req, data = save_trace_csv(trace, tmp)
        loaded = load_trace_csv(req, data)
        assert np.array_equal(loaded.keys, trace.keys)
        assert np.array_equal(loaded.is_read, trace.is_read)
        assert np.array_equal(loaded.record_sizes, trace.record_sizes)


class TestAdapterProperties:
    @given(trace=traces())
    @settings(max_examples=60, deadline=None)
    def test_adapting_dense_trace_is_relabelling(self, trace):
        """Feeding a dense trace through the adapter yields an
        isomorphic trace (keys renamed to first-touch order)."""
        ops = np.where(trace.is_read, "GET", "SET")
        adapted = from_requests(
            trace.keys.tolist(), ops.tolist(),
            trace.record_sizes[trace.keys].tolist(),
        )
        # request count and op pattern survive
        assert adapted.n_requests == trace.n_requests
        assert np.array_equal(adapted.is_read, trace.is_read)
        # per-request sizes survive the relabelling (sizes are
        # per-key constants here, so max-policy is lossless)
        assert np.array_equal(
            adapted.record_sizes[adapted.keys],
            trace.record_sizes[trace.keys],
        )
        # same-key requests stay same-key, distinct stay distinct
        a, b = adapted.keys, trace.keys
        for i in range(min(30, a.size)):
            same_a = a == a[i]
            same_b = b == b[i]
            assert np.array_equal(same_a, same_b)
