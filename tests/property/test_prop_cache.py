"""Property-based tests for the LLC LRU model."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.memsim import LLCModel


@st.composite
def traces(draw):
    n_keys = draw(st.integers(min_value=1, max_value=20))
    length = draw(st.integers(min_value=1, max_value=200))
    keys = draw(st.lists(st.integers(0, n_keys - 1),
                         min_size=length, max_size=length))
    sizes = {k: draw(st.integers(min_value=1, max_value=400))
             for k in set(keys)}
    return keys, sizes


class ReferenceLRU:
    """Textbook LRU over (key, size) for differential testing."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.order = []  # LRU ... MRU
        self.sizes = {}

    def access(self, key, size):
        if key in self.sizes:
            self.order.remove(key)
            self.order.append(key)
            return True
        if size > self.capacity:
            return False
        self.sizes[key] = size
        self.order.append(key)
        while sum(self.sizes.values()) > self.capacity:
            victim = self.order.pop(0)
            del self.sizes[victim]
        return False


class TestDifferential:
    @given(trace=traces(), capacity=st.integers(min_value=1, max_value=2_000))
    @settings(max_examples=200, deadline=None)
    def test_matches_reference_lru(self, trace, capacity):
        keys, sizes = trace
        model = LLCModel(capacity_bytes=capacity)
        ref = ReferenceLRU(capacity)
        for k in keys:
            assert model.access(k, sizes[k]) == ref.access(k, sizes[k])
        assert model.used_bytes == sum(ref.sizes.values())
        assert model.resident_keys == len(ref.sizes)


class TestInvariants:
    @given(trace=traces(), capacity=st.integers(min_value=1, max_value=1_000))
    @settings(max_examples=100, deadline=None)
    def test_never_exceeds_capacity(self, trace, capacity):
        keys, sizes = trace
        model = LLCModel(capacity_bytes=capacity)
        for k in keys:
            model.access(k, sizes[k])
            assert model.used_bytes <= capacity

    @given(trace=traces())
    @settings(max_examples=100, deadline=None)
    def test_hits_plus_misses_is_accesses(self, trace):
        keys, sizes = trace
        model = LLCModel(capacity_bytes=500)
        for k in keys:
            model.access(k, sizes[k])
        assert model.hits + model.misses == len(keys)
