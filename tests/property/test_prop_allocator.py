"""Property-based tests for the address-space allocator."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.errors import AllocationError
from repro.memsim import AddressSpaceAllocator


class AllocatorMachine(RuleBasedStateMachine):
    """Random alloc/free interleavings preserve accounting invariants."""

    def __init__(self):
        super().__init__()
        self.capacity = 10_000
        self.alloc = AddressSpaceAllocator(self.capacity)
        self.live = []

    @rule(size=st.integers(min_value=1, max_value=3_000))
    def allocate(self, size):
        try:
            a = self.alloc.allocate(size)
        except AllocationError:
            # legitimate only when no single free block fits
            assert self.alloc.largest_free_block < size
            return
        self.live.append(a)

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def release(self, data):
        i = data.draw(st.integers(min_value=0, max_value=len(self.live) - 1))
        self.alloc.release(self.live.pop(i))

    @invariant()
    def used_matches_live(self):
        assert self.alloc.used_bytes == sum(a.size for a in self.live)

    @invariant()
    def free_plus_used_is_capacity(self):
        assert self.alloc.free_bytes + self.alloc.used_bytes == self.capacity

    @invariant()
    def no_overlaps(self):
        ranges = sorted((a.offset, a.end) for a in self.live)
        for (_, end1), (start2, _) in zip(ranges, ranges[1:]):
            assert end1 <= start2

    @invariant()
    def within_bounds(self):
        for a in self.live:
            assert 0 <= a.offset and a.end <= self.capacity


TestAllocatorStateMachine = AllocatorMachine.TestCase
TestAllocatorStateMachine.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)


class TestAllocateAll:
    @given(sizes=st.lists(st.integers(min_value=1, max_value=500),
                          min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_sequential_fill_then_drain(self, sizes):
        total = sum(sizes)
        alloc = AddressSpaceAllocator(total)
        allocations = [alloc.allocate(s) for s in sizes]
        assert alloc.free_bytes == 0
        for a in allocations:
            alloc.release(a)
        assert alloc.free_bytes == total
        assert alloc.largest_free_block == total  # fully coalesced
