"""Property-based tests for workload synthesis and drift analysis."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.core.drift import drift_score, static_placement_regret
from repro.ycsb import generate_trace
from repro.ycsb.distributions import DistributionSpec
from repro.ycsb.sizes import SizeModel
from repro.ycsb.synthesis import fit_trace, synthesize
from repro.ycsb.workload import WorkloadSpec


@st.composite
def specs(draw):
    dist = draw(st.sampled_from(
        ["zipfian", "scrambled_zipfian", "hotspot", "uniform", "latest"]
    ))
    return WorkloadSpec(
        name=f"prop_synth_{dist}",
        distribution=DistributionSpec(name=dist),
        read_fraction=draw(st.sampled_from([1.0, 0.7, 0.5])),
        size_model=SizeModel(
            name="s",
            median_bytes=draw(st.sampled_from([1_000, 30_000, 100_000])),
            sigma=draw(st.sampled_from([0.0, 0.2, 0.5])),
        ),
        n_keys=draw(st.integers(min_value=50, max_value=400)),
        n_requests=draw(st.integers(min_value=500, max_value=4_000)),
        seed=draw(st.integers(min_value=0, max_value=500)),
    )


class TestSynthesisProperties:
    @given(spec=specs())
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_preserves_scale(self, spec):
        trace = generate_trace(spec)
        synth = synthesize(fit_trace(trace), seed=1)
        assert synth.n_keys == trace.n_keys
        assert synth.n_requests == trace.n_requests

    @given(spec=specs())
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_preserves_read_fraction(self, spec):
        trace = generate_trace(spec)
        synth = synthesize(fit_trace(trace), seed=1)
        assert abs(synth.read_fraction - trace.read_fraction) < 0.08

    @given(spec=specs())
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_preserves_size_scale(self, spec):
        trace = generate_trace(spec)
        synth = synthesize(fit_trace(trace), seed=1)
        real_med = float(np.median(trace.record_sizes))
        synth_med = float(np.median(synth.record_sizes))
        assert 0.7 * real_med <= synth_med <= 1.4 * real_med

    @given(spec=specs())
    @settings(max_examples=30, deadline=None)
    def test_characterisation_is_valid_spec_material(self, spec):
        """The fitted distribution always passes DistributionSpec
        validation (clips stay inside legal ranges)."""
        c = fit_trace(generate_trace(spec))
        assert c.distribution.name in (
            "zipfian", "scrambled_zipfian", "hotspot", "uniform", "latest",
            "sequential",
        )


class TestDriftProperties:
    @given(spec=specs(), windows=st.sampled_from([2, 5, 10]))
    @settings(max_examples=30, deadline=None)
    def test_drift_bounded(self, spec, windows):
        trace = generate_trace(spec)
        assert 0.0 <= drift_score(trace, n_windows=windows) <= 1.0

    @given(spec=specs(),
           frac=st.sampled_from([0.1, 0.3, 0.7, 1.0]))
    @settings(max_examples=30, deadline=None)
    def test_oracle_never_below_static(self, spec, frac):
        trace = generate_trace(spec)
        r = static_placement_regret(trace, capacity_fraction=frac,
                                    n_windows=5)
        assert r.oracle_hit_fraction >= r.static_hit_fraction - 1e-9
        assert 0.0 <= r.regret <= 1.0
