"""Property-based tests for the Mnemo pipeline invariants."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.core import Mnemo, min_cost_for_slowdown
from repro.kvstore import RedisLike
from repro.ycsb import YCSBClient, generate_trace
from repro.ycsb.distributions import DistributionSpec
from repro.ycsb.sizes import SizeModel
from repro.ycsb.workload import WorkloadSpec


@st.composite
def workload_specs(draw):
    dist = draw(st.sampled_from(
        ["zipfian", "scrambled_zipfian", "hotspot", "uniform", "latest"]
    ))
    return WorkloadSpec(
        name=f"prop_{dist}",
        distribution=DistributionSpec(name=dist),
        read_fraction=draw(st.sampled_from([1.0, 0.5, 0.8])),
        size_model=SizeModel(
            name="s",
            median_bytes=draw(st.sampled_from([1_000, 10_000, 100_000])),
            sigma=draw(st.sampled_from([0.0, 0.3])),
        ),
        n_keys=draw(st.integers(min_value=10, max_value=80)),
        n_requests=draw(st.integers(min_value=50, max_value=600)),
        seed=draw(st.integers(min_value=0, max_value=1_000)),
    )


def profile(spec):
    client = YCSBClient(repeats=1, noise_sigma=0.0)
    trace = generate_trace(spec)
    return Mnemo(engine_factory=RedisLike, client=client).profile(trace)


class TestPipelineInvariants:
    @given(spec=workload_specs())
    @settings(max_examples=25, deadline=None)
    def test_curve_monotone_for_any_workload(self, spec):
        curve = profile(spec).curve
        assert (np.diff(curve.runtime_ns) <= 1e-6).all()
        assert (np.diff(curve.cost_factor) >= 0).all()
        assert abs(curve.cost_factor[0] - 0.2) < 1e-12
        assert abs(curve.cost_factor[-1] - 1.0) < 1e-12

    @given(spec=workload_specs())
    @settings(max_examples=25, deadline=None)
    def test_endpoints_telescope_to_baselines(self, spec):
        report = profile(spec)
        b = report.baselines
        assert np.isclose(report.curve.runtime_ns[0], b.slow_runtime_ns)
        assert np.isclose(report.curve.runtime_ns[-1], b.fast_runtime_ns,
                          rtol=1e-9)

    @given(spec=workload_specs(),
           slack=st.sampled_from([0.01, 0.05, 0.10, 0.25]))
    @settings(max_examples=25, deadline=None)
    def test_slo_choice_always_feasible(self, spec, slack):
        curve = profile(spec).curve
        choice = min_cost_for_slowdown(curve, slack)
        assert 0 <= choice.n_fast_keys <= curve.n_keys
        assert choice.slowdown <= slack + 1e-9
        assert 0.2 - 1e-12 <= choice.cost_factor <= 1.0 + 1e-12
