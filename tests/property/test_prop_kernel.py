"""Property-based tests for the vectorized mixed-size LRU fast path.

`lru_hit_mask_mixed_size` claims exact equivalence with a sequential
byte-capped LRU for per-key-constant sizes — the byte-weighted
stack-distance argument from :mod:`repro.memsim.cache`.  These tests
check that claim differentially against the textbook reference across
random key/size/capacity draws: hit mask, hit/miss counters, residency
order and ``used_bytes``.  A monkeypatched guard-bailout run pins the
fallback path to the same answers.
"""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

import repro.memsim.cache as cache_mod
from repro.memsim import LLCModel
from repro.memsim.cache import lru_hit_mask_mixed_size


@st.composite
def keyed_traces(draw):
    """(keys array, per-request sizes array) with per-key-constant sizes."""
    n_keys = draw(st.integers(min_value=1, max_value=24))
    length = draw(st.integers(min_value=1, max_value=300))
    keys = np.array(
        draw(st.lists(st.integers(0, n_keys - 1),
                      min_size=length, max_size=length)),
        dtype=np.int64,
    )
    by_key = {
        k: draw(st.integers(min_value=1, max_value=400))
        for k in set(keys.tolist())
    }
    sizes = np.array([by_key[k] for k in keys.tolist()], dtype=np.int64)
    return keys, sizes


def sequential_reference(keys, sizes, capacity):
    """Hit mask + final state from a dict-based byte-capped LRU."""
    entries = {}  # key -> size, insertion order = LRU order
    hits = np.zeros(keys.size, dtype=bool)
    for i, (k, s) in enumerate(zip(keys.tolist(), sizes.tolist())):
        if k in entries:
            entries[k] = entries.pop(k)  # move to MRU
            hits[i] = True
            continue
        if s > capacity:
            continue
        entries[k] = s
        while sum(entries.values()) > capacity:
            entries.pop(next(iter(entries)))
    return hits, entries


class TestMixedSizeMask:
    @given(trace=keyed_traces(),
           capacity=st.integers(min_value=1, max_value=3_000))
    @settings(max_examples=300, deadline=None)
    def test_mask_matches_sequential_lru(self, trace, capacity):
        keys, sizes = trace
        expect, _ = sequential_reference(keys, sizes, capacity)
        got = lru_hit_mask_mixed_size(keys, sizes, capacity)
        assert np.array_equal(got, expect)

    @given(trace=keyed_traces(),
           capacity=st.integers(min_value=1, max_value=3_000))
    @settings(max_examples=150, deadline=None)
    def test_guarded_mode_is_exact_or_none(self, trace, capacity):
        keys, sizes = trace
        got = lru_hit_mask_mixed_size(keys, sizes, capacity, guarded=True)
        if got is not None:
            expect, _ = sequential_reference(keys, sizes, capacity)
            assert np.array_equal(got, expect)


class TestModelProcess:
    @given(trace=keyed_traces(),
           capacity=st.integers(min_value=1, max_value=3_000))
    @settings(max_examples=200, deadline=None)
    def test_process_matches_sequential_lru(self, trace, capacity):
        keys, sizes = trace
        expect_hits, expect_entries = sequential_reference(
            keys, sizes, capacity
        )
        model = LLCModel(capacity_bytes=capacity)
        got = model.process(keys, sizes)
        assert np.array_equal(got, expect_hits)
        assert model.hits == int(expect_hits.sum())
        assert model.misses == keys.size - model.hits
        assert model.used_bytes == sum(expect_entries.values())
        # residency must match in LRU order, not just as a set
        assert list(model._entries.items()) == list(expect_entries.items())

    @given(trace=keyed_traces(),
           capacity=st.integers(min_value=1, max_value=3_000))
    @settings(max_examples=100, deadline=None)
    def test_fast_path_agrees_with_forced_fallback(self, trace, capacity):
        keys, sizes = trace
        fast = LLCModel(capacity_bytes=capacity)
        fast_mask = fast.process(keys, sizes)
        # force the guarded fast path to bail; process() must fall back
        # to the sequential model and still produce identical results
        # (patched inline: hypothesis forbids function-scoped fixtures)
        original = cache_mod.lru_hit_mask_mixed_size
        cache_mod.lru_hit_mask_mixed_size = lambda *a, **kw: None
        try:
            slow = LLCModel(capacity_bytes=capacity)
            slow_mask = slow.process(keys, sizes)
        finally:
            cache_mod.lru_hit_mask_mixed_size = original
        assert np.array_equal(fast_mask, slow_mask)
        assert (fast.hits, fast.misses, fast.used_bytes) == \
            (slow.hits, slow.misses, slow.used_bytes)
        assert list(fast._entries.items()) == list(slow._entries.items())
