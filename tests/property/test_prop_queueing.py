"""Property-based tests for the queueing simulator.

The vectorized FIFO recurrence is differential-tested against a naive
sequential implementation, and classic queueing invariants are checked
on random arrival/service processes.
"""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings


def vectorized_sojourns(arrivals: np.ndarray, service: np.ndarray):
    """The production recurrence (mirrors repro.queueing.openloop)."""
    csum = np.cumsum(service)
    base = arrivals - (csum - service)
    completion = csum + np.maximum.accumulate(base)
    return completion - arrivals, completion


def naive_sojourns(arrivals: np.ndarray, service: np.ndarray):
    """Textbook sequential FIFO simulation."""
    completion = np.empty_like(service)
    prev = 0.0
    for i in range(service.size):
        start = max(arrivals[i], prev)
        prev = start + service[i]
        completion[i] = prev
    return completion - arrivals, completion


@st.composite
def queue_instances(draw):
    n = draw(st.integers(min_value=1, max_value=200))
    gaps = draw(st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=n, max_size=n,
    ))
    service = draw(st.lists(
        st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
        min_size=n, max_size=n,
    ))
    return np.cumsum(gaps), np.array(service)


class TestDifferential:
    @given(instance=queue_instances())
    @settings(max_examples=200, deadline=None)
    def test_matches_naive_fifo(self, instance):
        arrivals, service = instance
        v_soj, v_comp = vectorized_sojourns(arrivals, service)
        n_soj, n_comp = naive_sojourns(arrivals, service)
        assert np.allclose(v_comp, n_comp)
        assert np.allclose(v_soj, n_soj)


class TestInvariants:
    @given(instance=queue_instances())
    @settings(max_examples=200, deadline=None)
    def test_sojourn_at_least_service(self, instance):
        arrivals, service = instance
        sojourn, _ = vectorized_sojourns(arrivals, service)
        assert (sojourn >= service - 1e-9).all()

    @given(instance=queue_instances())
    @settings(max_examples=200, deadline=None)
    def test_completions_monotone(self, instance):
        arrivals, service = instance
        _, completion = vectorized_sojourns(arrivals, service)
        assert (np.diff(completion) >= -1e-9).all()

    @given(instance=queue_instances())
    @settings(max_examples=200, deadline=None)
    def test_work_conservation(self, instance):
        """The server never finishes before all work that arrived."""
        arrivals, service = instance
        _, completion = vectorized_sojourns(arrivals, service)
        assert completion[-1] >= arrivals[-1] + service[-1] - 1e-9
        assert completion[-1] >= service.sum() * (1 - 1e-12) or \
            arrivals[-1] > 0  # idling only if arrivals were spaced
