"""Property-based tests for the guard drift metrics.

Three invariants the thresholds rely on:

- divergence is exactly zero for identical access distributions;
- JS divergence is symmetric in its arguments (and bounded in [0, 1]);
- divergence grows monotonically as the hot set rotates further away
  from the planning reference (up to the half-cycle point), so warn
  and act thresholds order drift severities correctly.
"""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.guard.drift import (
    hot_set_churn,
    js_divergence,
    kl_divergence,
    rotate_hot_set,
)
from repro.ycsb import generate_trace
from repro.ycsb.distributions import DistributionSpec
from repro.ycsb.sizes import THUMBNAIL
from repro.ycsb.workload import WorkloadSpec


def _mass(values: list[float]) -> np.ndarray:
    return np.asarray(values, dtype=np.float64)


positive_masses = st.lists(
    st.floats(min_value=1e-6, max_value=1e6,
              allow_nan=False, allow_infinity=False),
    min_size=2, max_size=64,
)


class TestDivergenceProperties:
    @given(mass=positive_masses)
    @settings(max_examples=150)
    def test_identical_distributions_have_zero_divergence(self, mass):
        p = _mass(mass)
        assert js_divergence(p, p) == pytest.approx(0.0, abs=1e-9)
        assert kl_divergence(p, p) == pytest.approx(0.0, abs=1e-9)
        assert hot_set_churn(p, p) == 0.0

    @given(data=st.data(), n=st.integers(min_value=2, max_value=64))
    @settings(max_examples=150)
    def test_js_symmetric_and_bounded(self, data, n):
        element = st.floats(min_value=0.0, max_value=1e6,
                            allow_nan=False, allow_infinity=False)
        vec = st.lists(element, min_size=n, max_size=n)
        p = _mass(data.draw(vec)) + 1e-9
        q = _mass(data.draw(vec)) + 1e-9
        forward = js_divergence(p, q)
        assert forward == pytest.approx(js_divergence(q, p), abs=1e-9)
        assert -1e-9 <= forward <= 1.0 + 1e-9

    @given(mass=positive_masses)
    @settings(max_examples=100)
    def test_scale_invariance(self, mass):
        p = _mass(mass)
        q = np.roll(p, 1)
        assert js_divergence(p, q) == pytest.approx(
            js_divergence(p * 7.5, q * 0.125), abs=1e-9
        )


class TestRotationMonotonicity:
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        theta=st.floats(min_value=0.6, max_value=0.99),
    )
    @settings(max_examples=50, deadline=None)
    def test_divergence_monotone_under_hot_set_rotation(self, seed, theta):
        # a zipf-like decreasing mass vector: the canonical skewed
        # workload histogram, randomly perturbed
        n = 64
        rng = np.random.default_rng(seed)
        ranks = np.arange(1, n + 1, dtype=np.float64)
        p = ranks ** (-theta) * (1.0 + 0.01 * rng.random(n))
        shifts = [0, 1, 2, 4, 8, 16, 32]
        values = [js_divergence(p, np.roll(p, s)) for s in shifts]
        for earlier, later in zip(values, values[1:]):
            assert earlier <= later + 1e-9

    # the hot set is 20 keys wide (10 % of 200): overlap with the
    # planning hot set shrinks strictly until a full hot-width shift,
    # after which divergence plateaus — so the property is asserted
    # inside the shrinking-overlap regime
    @given(shift1=st.integers(min_value=0, max_value=10),
           shift2=st.integers(min_value=11, max_value=20))
    @settings(max_examples=25, deadline=None)
    def test_trace_rotation_monotone(self, shift1, shift2):
        spec = WorkloadSpec(
            name="prop_hotspot",
            distribution=DistributionSpec(
                name="hotspot", hot_data_fraction=0.1, hot_op_fraction=0.9
            ),
            read_fraction=1.0,
            size_model=THUMBNAIL,
            n_keys=200,
            n_requests=2_000,
            seed=5,
        )
        trace = generate_trace(spec)
        mass = np.bincount(trace.keys, minlength=trace.n_keys).astype(float)

        def rotated_divergence(shift: int) -> float:
            live = rotate_hot_set(trace, shift)
            live_mass = np.bincount(
                live.keys, minlength=live.n_keys
            ).astype(float)
            return js_divergence(mass, live_mass)

        # further rotation (still below the half cycle) never looks
        # *less* drifted than a smaller one
        assert (rotated_divergence(shift1)
                <= rotated_divergence(shift2) + 1e-9)
