"""Property-based tests for the multi-tier advisor."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.multitier import MultiTierAdvisor, TieredMemorySystem
from repro.multitier.advisor import TieredPlan


def make_plan(cost, thr):
    return TieredPlan(
        workload="p",
        assignment=np.zeros(1, dtype=np.int64),
        bytes_per_tier=np.array([1.0, 0.0, 0.0]),
        cost_factor=cost,
        est_runtime_ns=1e9 / thr,
        n_requests=1,
    )


@st.composite
def plan_sets(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    costs = draw(st.lists(st.floats(0.05, 1.0), min_size=n, max_size=n))
    thrs = draw(st.lists(st.floats(1.0, 1e6), min_size=n, max_size=n))
    return [make_plan(c, t) for c, t in zip(costs, thrs)]


class TestParetoProperties:
    @given(plans=plan_sets())
    @settings(max_examples=200, deadline=None)
    def test_frontier_is_nondominated(self, plans):
        frontier = MultiTierAdvisor.pareto(plans)
        for f in frontier:
            for p in plans:
                dominates = (p.cost_factor < f.cost_factor - 1e-12 and
                             p.est_throughput_ops_s
                             > f.est_throughput_ops_s + 1e-9)
                assert not dominates

    @given(plans=plan_sets())
    @settings(max_examples=200, deadline=None)
    def test_frontier_sorted_both_axes(self, plans):
        frontier = MultiTierAdvisor.pareto(plans)
        costs = [p.cost_factor for p in frontier]
        thrs = [p.est_throughput_ops_s for p in frontier]
        assert costs == sorted(costs)
        assert thrs == sorted(thrs)

    @given(plans=plan_sets())
    @settings(max_examples=200, deadline=None)
    def test_every_plan_dominated_by_some_frontier_point(self, plans):
        frontier = MultiTierAdvisor.pareto(plans)
        assert frontier  # never empty for a non-empty input
        for p in plans:
            assert any(
                f.cost_factor <= p.cost_factor + 1e-12
                and f.est_throughput_ops_s >= p.est_throughput_ops_s - 1e-9
                for f in frontier
            )

    @given(plans=plan_sets())
    @settings(max_examples=100, deadline=None)
    def test_idempotent(self, plans):
        once = MultiTierAdvisor.pareto(plans)
        twice = MultiTierAdvisor.pareto(once)
        assert [(p.cost_factor, p.est_throughput_ops_s) for p in once] == \
            [(p.cost_factor, p.est_throughput_ops_s) for p in twice]


class TestCostFactorProperties:
    @given(
        shares=st.lists(st.floats(0.0, 1.0), min_size=3, max_size=3)
        .filter(lambda s: sum(s) > 0)
    )
    @settings(max_examples=200, deadline=None)
    def test_cost_bounded_by_tier_prices(self, shares):
        system = TieredMemorySystem.dram_nvm_far()
        r = system.cost_factor(np.array(shares))
        prices = system.price_array()
        assert prices.min() - 1e-12 <= r <= prices.max() + 1e-12
