"""Tests for the extension CLI subcommands (drift / retier / multitier)."""

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def small_workloads(monkeypatch):
    """Shrink the built-in workloads so CLI tests stay fast."""
    import repro.cli as cli_mod

    original = cli_mod.generate_trace

    def small_generate(spec):
        return original(spec.scaled(n_keys=200, n_requests=4_000))

    monkeypatch.setattr(cli_mod, "generate_trace", small_generate)


class TestDriftCommand:
    def test_stationary_workload(self, capsys):
        assert main(["drift", "--workload", "trending"]) == 0
        out = capsys.readouterr().out
        assert "drift" in out
        assert "static placement" in out

    def test_drifting_workload(self, capsys):
        assert main(["drift", "--workload", "news_feed",
                     "--capacity", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "dynamic tiering" in out or "drifts" in out

    def test_unknown_workload(self, capsys):
        assert main(["drift", "--workload", "nope"]) == 2


class TestRetierCommand:
    def test_static_verdict(self, capsys):
        assert main(["retier", "--workload", "trending"]) == 0
        out = capsys.readouterr().out
        assert "stay static" in out

    def test_migrate_verdict(self, capsys):
        assert main(["retier", "--workload", "news_feed",
                     "--capacity", "0.15"]) == 0
        out = capsys.readouterr().out
        assert "net speedup" in out

    def test_engine_option(self, capsys):
        assert main(["retier", "--workload", "trending",
                     "--engine", "memcached"]) == 0
        assert "memcached" in capsys.readouterr().out


class TestMultitierCommand:
    def test_frontier_and_choice(self, capsys):
        assert main(["multitier", "--workload", "timeline",
                     "--grid", "6"]) == 0
        out = capsys.readouterr().out
        assert "DRAM" in out
        assert "choice @10% SLO" in out

    def test_custom_slo(self, capsys):
        assert main(["multitier", "--workload", "timeline",
                     "--grid", "6", "--slo", "0.25"]) == 0
        assert "choice @25% SLO" in capsys.readouterr().out


class TestSweepCommand:
    def test_grid_table(self, capsys, tmp_path):
        assert main(["sweep", "--workloads", "trending",
                     "--engines", "redis,memcached",
                     "--placements", "fast,slow",
                     "--cache-dir", str(tmp_path / "c")]) == 0
        out = capsys.readouterr().out
        assert "trending/redis/fast" in out
        assert "trending/memcached/slow" in out

    def test_rerun_is_identical(self, capsys, tmp_path):
        argv = ["sweep", "--workloads", "trending", "--engines", "redis",
                "--placements", "slow", "--seed", "7",
                "--cache-dir", str(tmp_path / "c")]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_unknown_workload_errors(self, capsys, tmp_path):
        assert main(["sweep", "--workloads", "nope"]) == 2
        assert "unknown workload" in capsys.readouterr().err


class TestCacheCommand:
    def test_stats_and_clear(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "c")
        assert main(["sweep", "--workloads", "trending",
                     "--engines", "redis", "--placements", "slow",
                     "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "results" in out and "traces" in out
        assert main(["cache", "clear", "--dir", cache_dir]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["cache", "stats", "--dir", cache_dir]) == 0
        assert " 0 entries" in capsys.readouterr().out
