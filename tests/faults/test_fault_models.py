"""Tests for the fault models, their schedules, and the CLI fault DSL."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    FAULT_KINDS,
    BandwidthDegradation,
    FaultSpec,
    JitterBursts,
    LatencySpikes,
    NodeOffline,
    parse_faults,
)
from repro.rng import derive_seed, ensure_rng


def _rng(label="lbl"):
    return ensure_rng(derive_seed(None, label))


class TestLatencySpikes:
    def test_multipliers_are_magnitude_or_one(self):
        mult = LatencySpikes(rate=0.05, magnitude=4.0).latency_multipliers(
            5_000, _rng()
        )
        assert set(np.unique(mult)) <= {1.0, 4.0}

    def test_positive_rate_always_spikes(self):
        # even traces shorter than one window per 1/rate get a window
        mult = LatencySpikes(rate=0.01, width=128).latency_multipliers(
            1_000, _rng()
        )
        assert mult.max() > 1.0

    def test_zero_rate_is_identity(self):
        mult = LatencySpikes(rate=0.0).latency_multipliers(1_000, _rng())
        assert (mult == 1.0).all()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LatencySpikes(rate=1.5)
        with pytest.raises(ConfigurationError):
            LatencySpikes(magnitude=0.5)
        with pytest.raises(ConfigurationError):
            LatencySpikes(width=0)


class TestBandwidthDegradation:
    def test_ramp_is_monotone_and_bounded(self):
        mult = BandwidthDegradation(onset=0.25, floor=0.5).bandwidth_multipliers(
            4_000
        )
        assert mult[0] == 1.0
        assert (np.diff(mult) <= 0).all()
        assert mult.min() >= 0.5 - 1e-9

    def test_before_onset_untouched(self):
        mult = BandwidthDegradation(onset=0.5).bandwidth_multipliers(1_000)
        assert (mult[:500] == 1.0).all()
        assert mult[-1] < 1.0

    def test_deterministic_without_rng(self):
        d = BandwidthDegradation()
        assert np.array_equal(
            d.bandwidth_multipliers(777), d.bandwidth_multipliers(777)
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BandwidthDegradation(onset=1.0)
        with pytest.raises(ConfigurationError):
            BandwidthDegradation(floor=0.0)


class TestNodeOffline:
    def test_stall_values(self):
        stalls = NodeOffline(windows=2, stall_ns=10_000.0).stall_schedule(
            5_000, _rng()
        )
        assert set(np.unique(stalls)) <= {0.0, 10_000.0}
        assert stalls.max() == 10_000.0

    def test_zero_windows_is_identity(self):
        stalls = NodeOffline(windows=0).stall_schedule(1_000, _rng())
        assert (stalls == 0.0).all()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NodeOffline(node="medium")
        with pytest.raises(ConfigurationError):
            NodeOffline(stall_ns=-1.0)


class TestJitterBursts:
    def test_scales(self):
        scales = JitterBursts(bursts=2, sigma_scale=5.0).noise_scales(
            5_000, _rng()
        )
        assert set(np.unique(scales)) <= {1.0, 5.0}
        assert scales.max() == 5.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            JitterBursts(sigma_scale=0.5)


class TestFaultSpec:
    def test_empty_spec_inactive(self):
        spec = FaultSpec()
        assert not spec.active
        assert spec.describe() == "none"

    def test_active_and_describe(self):
        spec = FaultSpec(latency_spikes=LatencySpikes(),
                         jitter_bursts=JitterBursts())
        assert spec.active
        assert spec.describe() == "latency_spikes+jitter_bursts"

    def test_timeline_shapes(self):
        spec = FaultSpec(
            latency_spikes=LatencySpikes(),
            bandwidth_degradation=BandwidthDegradation(),
            node_offline=NodeOffline(node="fast"),
            jitter_bursts=JitterBursts(),
        )
        tl = spec.timeline(2_000, "fp")
        for arr in (tl.slow_latency_mult, tl.slow_bandwidth_mult,
                    tl.stall_ns, tl.noise_scale):
            assert arr is not None and arr.shape == (2_000,)
        assert tl.stall_node == "fast"

    def test_absent_models_leave_none(self):
        tl = FaultSpec(latency_spikes=LatencySpikes()).timeline(100, "fp")
        assert tl.slow_latency_mult is not None
        assert tl.slow_bandwidth_mult is None
        assert tl.stall_ns is None
        assert tl.noise_scale is None


class TestParseFaults:
    def test_empty_input(self):
        assert parse_faults(None) is None
        assert parse_faults("") is None
        assert parse_faults("   ") is None

    def test_bare_names(self):
        spec = parse_faults("spikes,ramp,offline,jitter")
        assert spec.latency_spikes == LatencySpikes()
        assert spec.bandwidth_degradation == BandwidthDegradation()
        assert spec.node_offline == NodeOffline()
        assert spec.jitter_bursts == JitterBursts()

    def test_parameterised(self):
        spec = parse_faults(
            "spikes(rate=0.05,magnitude=6),ramp(floor=0.4),offline(node=fast)"
        )
        assert spec.latency_spikes.rate == 0.05
        assert spec.latency_spikes.magnitude == 6.0
        assert spec.bandwidth_degradation.floor == 0.4
        assert spec.node_offline.node == "fast"
        assert spec.jitter_bursts is None

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown fault model"):
            parse_faults("gremlins")

    def test_unknown_parameter(self):
        with pytest.raises(ConfigurationError, match="no parameter"):
            parse_faults("spikes(height=2)")

    def test_bad_value(self):
        with pytest.raises(ConfigurationError, match="bad value"):
            parse_faults("spikes(rate=abc)")

    def test_malformed(self):
        with pytest.raises(ConfigurationError):
            parse_faults("spikes(rate=0.05")

    def test_all_kinds_parse(self):
        for name in FAULT_KINDS:
            assert parse_faults(name).active
