"""Fault-injection determinism: schedules and measurements are pure
functions of (experiment fingerprint, fault spec).

The load-bearing guarantee of :mod:`repro.faults`: injecting faults
must not cost reproducibility or cacheability.  Serial, parallel and
warm-cache executions of the same faulty experiment are bit-identical.
"""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.faults import (
    BandwidthDegradation,
    FaultSpec,
    JitterBursts,
    LatencySpikes,
    NodeOffline,
    parse_faults,
)
from repro.kvstore import RedisLike
from repro.kvstore.server import HybridDeployment
from repro.memsim import HybridMemorySystem
from repro.runner import ClientConfig, ExperimentRunner, ExperimentSpec
from repro.ycsb import YCSBClient


def _timeline_arrays(tl):
    return [
        a for a in (tl.slow_latency_mult, tl.slow_bandwidth_mult,
                    tl.stall_ns, tl.noise_scale)
        if a is not None
    ]


@st.composite
def fault_specs(draw):
    """Random (but valid) fault specs with at least one model active."""
    spec = FaultSpec(
        latency_spikes=draw(st.one_of(st.none(), st.builds(
            LatencySpikes,
            rate=st.floats(0.001, 0.2),
            magnitude=st.floats(1.0, 10.0),
            width=st.integers(1, 256),
        ))),
        bandwidth_degradation=draw(st.one_of(st.none(), st.builds(
            BandwidthDegradation,
            onset=st.floats(0.0, 0.9),
            floor=st.floats(0.1, 1.0),
        ))),
        node_offline=draw(st.one_of(st.none(), st.builds(
            NodeOffline,
            node=st.sampled_from(["fast", "slow"]),
            windows=st.integers(0, 4),
            width=st.integers(1, 512),
            stall_ns=st.floats(0.0, 100_000.0),
        ))),
        jitter_bursts=draw(st.one_of(st.none(), st.builds(
            JitterBursts,
            bursts=st.integers(0, 4),
            width=st.integers(1, 512),
            sigma_scale=st.floats(1.0, 10.0),
        ))),
    )
    if not spec.active:
        spec = FaultSpec(latency_spikes=LatencySpikes())
    return spec


class TestScheduleDeterminism:
    @settings(max_examples=25, deadline=None)
    @given(spec=fault_specs(),
           label=st.text(min_size=1, max_size=40),
           n=st.integers(1, 3_000))
    def test_timeline_is_pure_function_of_label_and_spec(
        self, spec, label, n,
    ):
        a, b = spec.timeline(n, label), spec.timeline(n, label)
        for x, y in zip(_timeline_arrays(a), _timeline_arrays(b)):
            assert np.array_equal(x, y)

    def test_distinct_labels_get_distinct_schedules(self):
        spec = FaultSpec(latency_spikes=LatencySpikes(rate=0.05))
        a = spec.timeline(10_000, "experiment-a").slow_latency_mult
        b = spec.timeline(10_000, "experiment-b").slow_latency_mult
        assert not np.array_equal(a, b)

    def test_timeline_shared_across_repeats(self, small_trace):
        """Repeats re-roll measurement noise, never device behaviour:
        the timeline depends only on the fingerprint, which covers the
        repeat count but not a per-repeat index."""
        spec = parse_faults("spikes,offline")
        a = spec.timeline(small_trace.keys.size, "fp")
        b = spec.timeline(small_trace.keys.size, "fp")
        assert np.array_equal(a.slow_latency_mult, b.slow_latency_mult)
        assert np.array_equal(a.stall_ns, b.stall_ns)


class TestMeasurementDeterminism:
    @pytest.fixture
    def slow_deployment(self, small_trace):
        return HybridDeployment.all_slow(
            RedisLike, HybridMemorySystem.testbed(), small_trace.record_sizes
        )

    def test_faulty_run_is_repeatable(self, small_trace, slow_deployment):
        faults = parse_faults("spikes(rate=0.05),ramp,jitter")
        r1 = YCSBClient(repeats=2, seed=11, faults=faults).execute(
            small_trace, slow_deployment
        )
        r2 = YCSBClient(repeats=2, seed=11, faults=faults).execute(
            small_trace, slow_deployment
        )
        assert r1 == r2

    def test_faults_change_the_numbers(self, small_trace, slow_deployment):
        clean = YCSBClient(repeats=2, seed=11).execute(
            small_trace, slow_deployment
        )
        faulty = YCSBClient(
            repeats=2, seed=11,
            faults=parse_faults("spikes(rate=0.1,magnitude=8)"),
        ).execute(small_trace, slow_deployment)
        assert faulty != clean
        assert faulty.runtime_ns > clean.runtime_ns

    def test_fault_spec_changes_fingerprint(
        self, small_trace, slow_deployment,
    ):
        clean = YCSBClient(repeats=2, seed=11)
        faulty = YCSBClient(repeats=2, seed=11, faults=parse_faults("spikes"))
        _, fp_clean = clean.experiment_fingerprint(
            small_trace, slow_deployment
        )
        _, fp_faulty = faulty.experiment_fingerprint(
            small_trace, slow_deployment
        )
        assert fp_clean != fp_faulty

    def test_inactive_spec_preserves_clean_fingerprint(
        self, small_trace, slow_deployment,
    ):
        """FaultSpec() (nothing active) must not perturb fingerprints,
        so pre-fault cache entries stay valid."""
        clean = YCSBClient(repeats=2, seed=11)
        noop = YCSBClient(repeats=2, seed=11, faults=FaultSpec())
        _, fp_clean = clean.experiment_fingerprint(
            small_trace, slow_deployment
        )
        _, fp_noop = noop.experiment_fingerprint(small_trace, slow_deployment)
        assert fp_clean == fp_noop
        assert noop.execute(small_trace, slow_deployment) == clean.execute(
            small_trace, slow_deployment
        )


class TestGridDeterminism:
    def test_serial_parallel_cached_identical(self, tmp_path, small_spec):
        faults = parse_faults("spikes(rate=0.05),ramp(floor=0.6),jitter")
        specs = ExperimentRunner.grid(
            [small_spec], engines=("redis", "memcached"),
            placements=("fast", "slow"),
        )
        config = ClientConfig(repeats=2, seed=11, faults=faults)

        serial = ExperimentRunner(client=config).run_grid(specs)
        parallel = ExperimentRunner(
            cache=tmp_path / "cache", client=config,
        ).run_grid(specs, workers=2)
        warm = ExperimentRunner(
            cache=tmp_path / "cache", client=config,
        ).run_grid(specs)

        assert serial == parallel == warm
