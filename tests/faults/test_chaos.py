"""Chaos tests: the pipeline survives worker kills, hangs, and cache
corruption, and converges to bit-identical results.

These mirror the failure modes of a real fleet: a worker process dies
mid-experiment (OOM kill), an experiment wedges (hardware fault), a
cache entry is silently corrupted (crashed writer, bit rot).  In every
recoverable case the sweep must finish with numbers identical to a
clean run; in unrecoverable cases it must degrade to completed results
plus a structured :class:`~repro.runner.FailureReport`, never an
unexplained crash.
"""

import time

import pytest

from repro.errors import FaultError
from repro.faults import ChaosPlan, corrupt_cache_entries
from repro.runner import (
    CachingClient,
    ClientConfig,
    ExperimentRunner,
    ResultCache,
    RetryPolicy,
)

#: Retries that keep test wall-clock low.
FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base_s=0.01)


@pytest.fixture
def specs(small_spec):
    return ExperimentRunner.grid(
        [small_spec], engines=("redis", "memcached"),
        placements=("fast", "slow"),
    )


@pytest.fixture
def config():
    return ClientConfig(repeats=2, seed=11)


@pytest.fixture
def reference(specs, config):
    """Clean serial results every chaos run must converge to."""
    return ExperimentRunner(client=config).run_grid(specs)


def chaos_runner(tmp_path, config, plan, **kwargs):
    return ExperimentRunner(
        client=config,
        chaos=ChaosPlan(marker_dir=str(tmp_path / "chaos"), **plan),
        retry=kwargs.pop("retry", FAST_RETRY),
        **kwargs,
    )


class TestWorkerKills:
    def test_killed_worker_retried_to_identical_results(
        self, tmp_path, specs, config, reference,
    ):
        victim = specs[1].label
        runner = chaos_runner(
            tmp_path, config, dict(kill_labels=(victim,), mode="exit"),
        )
        outcome = runner.sweep(specs, workers=2)
        assert outcome.ok
        assert list(outcome.results) == reference
        assert runner.chaos.strikes_delivered(victim) == 1

    def test_serial_chaos_downgrades_exit_to_raise(
        self, tmp_path, specs, config, reference,
    ):
        # a serial sweep must never let chaos kill the calling process
        runner = chaos_runner(
            tmp_path, config,
            dict(kill_labels=(specs[0].label,), mode="exit"),
        )
        outcome = runner.sweep(specs, workers=1)
        assert outcome.ok
        assert list(outcome.results) == reference

    def test_repeated_kills_within_budget_still_converge(
        self, tmp_path, specs, config, reference,
    ):
        runner = chaos_runner(
            tmp_path, config,
            dict(kill_labels=(specs[0].label,), mode="raise",
                 max_strikes=2),
        )
        outcome = runner.sweep(specs, workers=2)
        assert outcome.ok
        assert list(outcome.results) == reference


class TestGracefulDegradation:
    def test_unrecoverable_experiment_reported_not_raised(
        self, tmp_path, specs, config, reference,
    ):
        victim = specs[0].label
        runner = chaos_runner(
            tmp_path, config,
            dict(kill_labels=(victim,), mode="raise", max_strikes=10),
            retry=RetryPolicy(max_attempts=2, backoff_base_s=0.01),
        )
        outcome = runner.sweep(specs, workers=2)
        assert not outcome.ok
        assert len(outcome.report) == 1
        failure = outcome.report.failures[0]
        assert failure.label == victim
        assert failure.attempts == 2
        # every other experiment completed, bit-identical to clean
        assert outcome.results[0] is None
        assert list(outcome.results[1:]) == reference[1:]

    def test_run_grid_raises_on_failure(self, tmp_path, specs, config):
        runner = chaos_runner(
            tmp_path, config,
            dict(kill_labels=(specs[0].label,), mode="raise",
                 max_strikes=10),
            retry=RetryPolicy(max_attempts=2, backoff_base_s=0.01),
        )
        with pytest.raises(FaultError, match="failed"):
            runner.run_grid(specs, workers=2)

    def test_failure_summary_names_the_experiment(
        self, tmp_path, specs, config,
    ):
        victim = specs[0].label
        runner = chaos_runner(
            tmp_path, config,
            dict(kill_labels=(victim,), mode="raise", max_strikes=10),
            retry=RetryPolicy(max_attempts=1, backoff_base_s=0.0),
        )
        outcome = runner.sweep(specs, workers=2)
        assert victim in outcome.report.summary()


class TestTimeouts:
    def test_hung_worker_times_out_and_recovers(
        self, tmp_path, specs, config, reference,
    ):
        victim = specs[0].label
        runner = chaos_runner(
            tmp_path, config,
            dict(kill_labels=(victim,), mode="hang", hang_s=30.0),
            retry=RetryPolicy(max_attempts=2, timeout_s=5.0,
                              backoff_base_s=0.01),
        )
        start = time.monotonic()
        outcome = runner.sweep(specs, workers=2)
        assert time.monotonic() - start < 25.0  # did not sit out the hang
        assert outcome.ok
        assert list(outcome.results) == reference

    def test_persistent_hang_reported_as_timeout(
        self, tmp_path, specs, config,
    ):
        victim = specs[0].label
        runner = chaos_runner(
            tmp_path, config,
            dict(kill_labels=(victim,), mode="hang", hang_s=30.0,
                 max_strikes=10),
            retry=RetryPolicy(max_attempts=1, timeout_s=2.0),
        )
        outcome = runner.sweep(specs, workers=2)
        assert not outcome.ok
        assert outcome.report.failures[0].error == "ExperimentTimeoutError"


class TestCacheCorruption:
    def test_corrupt_entries_quarantined_and_recomputed(
        self, tmp_path, specs, config, reference,
    ):
        cache_dir = tmp_path / "cache"
        runner = ExperimentRunner(cache=cache_dir, client=config)
        assert runner.run_grid(specs) == reference

        cache = ResultCache(cache_dir)
        touched = corrupt_cache_entries(cache, mode="flip")
        assert touched

        recomputed = ExperimentRunner(
            cache=cache_dir, client=config,
        ).run_grid(specs)
        assert recomputed == reference
        assert cache.stats().total_quarantined > 0

    def test_truncation_detected(self, tmp_path, specs, config, reference):
        cache_dir = tmp_path / "cache"
        ExperimentRunner(cache=cache_dir, client=config).run_grid(specs)
        cache = ResultCache(cache_dir)
        corrupt_cache_entries(cache, mode="truncate")
        report = cache.verify()
        assert not report.ok
        assert report.total_corrupt == report.total_checked
        # quarantined on verify; the sweep then recomputes cleanly
        assert ExperimentRunner(
            cache=cache_dir, client=config,
        ).run_grid(specs) == reference

    def test_verify_without_repair_leaves_entries(
        self, tmp_path, small_trace,
    ):
        cache = ResultCache(tmp_path / "cache")
        client = CachingClient(cache=cache, repeats=1, seed=3)
        from repro.kvstore import RedisLike
        from repro.kvstore.server import HybridDeployment
        from repro.memsim import HybridMemorySystem
        dep = HybridDeployment.all_slow(
            RedisLike, HybridMemorySystem.testbed(), small_trace.record_sizes
        )
        client.execute(small_trace, dep)
        corrupt_cache_entries(cache, mode="flip")
        report = cache.verify(repair=False)
        assert not report.ok
        assert cache.stats().total_quarantined == 0
        assert cache.stats().entries["results"] == 1
