"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.ycsb import generate_trace, save_trace_csv, workload_by_name


@pytest.fixture
def small_csvs(tmp_path):
    trace = generate_trace(
        workload_by_name("trending").scaled(n_keys=100, n_requests=1_000)
    )
    return save_trace_csv(trace, tmp_path)


class TestWorkloads:
    def test_lists_table_iii(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("trending", "news_feed", "timeline", "edit_thumbnail",
                     "trending_preview"):
            assert name in out


class TestProfile:
    def test_builtin_workload(self, capsys):
        rc = main(["profile", "--workload", "trending",
                   "--downsample", "20", "--repeats", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "throughput gap" in out
        assert "slowdown SLO" in out

    def test_csv_descriptor_input(self, small_csvs, capsys, tmp_path):
        req, data = small_csvs
        out_csv = tmp_path / "curve.csv"
        rc = main(["profile", "--requests", str(req), "--dataset", str(data),
                   "--csv", str(out_csv), "--repeats", "1"])
        assert rc == 0
        assert out_csv.exists()
        header = out_csv.read_text().splitlines()[0]
        assert header == "key,estimated_throughput_ops_s,cost_factor"

    def test_plot_flag(self, small_csvs, capsys):
        req, data = small_csvs
        rc = main(["profile", "--requests", str(req), "--dataset", str(data),
                   "--plot", "--repeats", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cost factor (fraction of FastMem-only cost)" in out

    def test_weight_mode(self, small_csvs, capsys):
        req, data = small_csvs
        rc = main(["profile", "--requests", str(req), "--dataset", str(data),
                   "--mode", "weight", "--repeats", "1"])
        assert rc == 0
        assert "weight" in capsys.readouterr().out

    def test_missing_input_errors(self, capsys):
        rc = main(["profile"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_conflicting_input_errors(self, small_csvs, capsys):
        req, data = small_csvs
        rc = main(["profile", "--workload", "trending",
                   "--requests", str(req), "--dataset", str(data)])
        assert rc == 2

    def test_unknown_workload_errors(self, capsys):
        rc = main(["profile", "--workload", "nope"])
        assert rc == 2


class TestCompare:
    def test_compare_lists_engines(self, capsys, monkeypatch):
        # shrink the workload for test speed by monkeypatching the lookup
        import repro.cli as cli_mod

        original = cli_mod.generate_trace

        def small_generate(spec):
            return original(spec.scaled(n_keys=100, n_requests=1_000))

        monkeypatch.setattr(cli_mod, "generate_trace", small_generate)
        rc = main(["compare", "--workload", "trending"])
        assert rc == 0
        out = capsys.readouterr().out
        for engine in ("redis", "memcached", "dynamodb"):
            assert engine in out


class TestPricing:
    def test_pricing_table(self, capsys):
        assert main(["pricing"]) == 0
        out = capsys.readouterr().out
        assert "cache.r5.large" in out
        assert "n1-ultramem-40" in out
        assert "M128ms" in out


@pytest.fixture
def small_workloads(monkeypatch):
    """Shrink built-in workloads so CLI runs finish in milliseconds."""
    import repro.cli as cli_mod

    original = cli_mod.generate_trace

    def small_generate(spec):
        return original(spec.scaled(n_keys=150, n_requests=2_000))

    monkeypatch.setattr(cli_mod, "generate_trace", small_generate)


class TestGuard:
    def test_clean_run_exits_zero(self, small_workloads, capsys):
        rc = main(["guard", "--workload", "trending",
                   "--repeats", "1", "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "advice: keep" in out
        assert "validation: PASS" in out
        assert "[exit 0]" in out

    def test_rotated_live_trace_exits_three(self, small_workloads, capsys):
        rc = main(["guard", "--workload", "trending",
                   "--repeats", "1", "--seed", "3", "--live-rotate", "75"])
        assert rc == 3
        out = capsys.readouterr().out
        assert "advice: reprofile" in out
        assert "validation: REJECT" in out
        assert "fallback: re-planned" in out

    def test_no_validate_skips_replay(self, small_workloads, capsys):
        rc = main(["guard", "--workload", "trending",
                   "--repeats", "1", "--seed", "3", "--no-validate"])
        assert rc == 0
        assert "validation:" not in capsys.readouterr().out

    def test_cached_rerun_is_identical(self, small_workloads, capsys,
                                       tmp_path):
        argv = ["guard", "--workload", "trending", "--repeats", "1",
                "--seed", "3", "--live-rotate", "75",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 3
        first = capsys.readouterr().out
        assert main(argv) == 3
        assert capsys.readouterr().out == first

    def test_live_workload_option(self, small_workloads, capsys):
        rc = main(["guard", "--workload", "trending",
                   "--repeats", "1", "--seed", "3",
                   "--live-workload", "news_feed"])
        assert rc in (0, 1, 3)  # drift verdict depends on the pair
        assert "advice:" in capsys.readouterr().out


class TestUsageErrors:
    """Malformed input dies with one clean line, never a traceback."""

    def assert_clean_usage_error(self, capsys, argv, fragment):
        rc = main(argv)
        captured = capsys.readouterr()
        assert rc == 2
        assert captured.err.startswith("error:")
        assert fragment in captured.err
        assert "Traceback" not in captured.err

    def test_slo_out_of_range(self, capsys):
        self.assert_clean_usage_error(
            capsys,
            ["profile", "--workload", "trending", "--slo", "1.5"],
            "--slo",
        )

    def test_negative_slo(self, capsys):
        self.assert_clean_usage_error(
            capsys,
            ["guard", "--workload", "trending", "--slo", "-0.1"],
            "--slo",
        )

    def test_split_out_of_range(self, capsys):
        self.assert_clean_usage_error(
            capsys,
            ["sweep", "--split", "1.5"],
            "--split must be in [0, 1], got 1.5",
        )

    def test_nonpositive_price_factor(self, capsys):
        self.assert_clean_usage_error(
            capsys,
            ["profile", "--workload", "trending", "--p", "0"],
            "--p",
        )

    def test_negative_downsample(self, capsys):
        self.assert_clean_usage_error(
            capsys,
            ["profile", "--workload", "trending", "--downsample", "-2"],
            "--downsample",
        )

    def test_unknown_fault_names_offending_token(self, capsys):
        self.assert_clean_usage_error(
            capsys,
            ["sweep", "--faults", "spikes,bogus"],
            "'bogus'",
        )

    def test_bad_fault_parameter_value(self, capsys):
        self.assert_clean_usage_error(
            capsys,
            ["sweep", "--faults", "spikes(rate=oops)"],
            "'oops'",
        )

    def test_malformed_fault_spec(self, capsys):
        self.assert_clean_usage_error(
            capsys,
            ["sweep", "--faults", "spikes(("],
            "--faults",
        )

    def test_unknown_sweep_engine(self, capsys):
        self.assert_clean_usage_error(
            capsys,
            ["sweep", "--engines", "sqlite"],
            "'sqlite'",
        )
