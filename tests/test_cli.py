"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.ycsb import generate_trace, save_trace_csv, workload_by_name


@pytest.fixture
def small_csvs(tmp_path):
    trace = generate_trace(
        workload_by_name("trending").scaled(n_keys=100, n_requests=1_000)
    )
    return save_trace_csv(trace, tmp_path)


class TestWorkloads:
    def test_lists_table_iii(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("trending", "news_feed", "timeline", "edit_thumbnail",
                     "trending_preview"):
            assert name in out


class TestProfile:
    def test_builtin_workload(self, capsys):
        rc = main(["profile", "--workload", "trending",
                   "--downsample", "20", "--repeats", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "throughput gap" in out
        assert "slowdown SLO" in out

    def test_csv_descriptor_input(self, small_csvs, capsys, tmp_path):
        req, data = small_csvs
        out_csv = tmp_path / "curve.csv"
        rc = main(["profile", "--requests", str(req), "--dataset", str(data),
                   "--csv", str(out_csv), "--repeats", "1"])
        assert rc == 0
        assert out_csv.exists()
        header = out_csv.read_text().splitlines()[0]
        assert header == "key,estimated_throughput_ops_s,cost_factor"

    def test_plot_flag(self, small_csvs, capsys):
        req, data = small_csvs
        rc = main(["profile", "--requests", str(req), "--dataset", str(data),
                   "--plot", "--repeats", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cost factor (fraction of FastMem-only cost)" in out

    def test_weight_mode(self, small_csvs, capsys):
        req, data = small_csvs
        rc = main(["profile", "--requests", str(req), "--dataset", str(data),
                   "--mode", "weight", "--repeats", "1"])
        assert rc == 0
        assert "weight" in capsys.readouterr().out

    def test_missing_input_errors(self, capsys):
        rc = main(["profile"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_conflicting_input_errors(self, small_csvs, capsys):
        req, data = small_csvs
        rc = main(["profile", "--workload", "trending",
                   "--requests", str(req), "--dataset", str(data)])
        assert rc == 2

    def test_unknown_workload_errors(self, capsys):
        rc = main(["profile", "--workload", "nope"])
        assert rc == 2


class TestCompare:
    def test_compare_lists_engines(self, capsys, monkeypatch):
        # shrink the workload for test speed by monkeypatching the lookup
        import repro.cli as cli_mod

        original = cli_mod.generate_trace

        def small_generate(spec):
            return original(spec.scaled(n_keys=100, n_requests=1_000))

        monkeypatch.setattr(cli_mod, "generate_trace", small_generate)
        rc = main(["compare", "--workload", "trending"])
        assert rc == 0
        out = capsys.readouterr().out
        for engine in ("redis", "memcached", "dynamodb"):
            assert engine in out


class TestPricing:
    def test_pricing_table(self, capsys):
        assert main(["pricing"]) == 0
        out = capsys.readouterr().out
        assert "cache.r5.large" in out
        assert "n1-ultramem-40" in out
        assert "M128ms" in out
