"""Tests for the Placement Engine."""

import numpy as np
import pytest

from repro.core import Mnemo, PlacementEngine
from repro.errors import PlacementError
from repro.kvstore import RedisLike
from repro.memsim import HybridMemorySystem


@pytest.fixture
def report(small_trace, quiet_client):
    return Mnemo(engine_factory=RedisLike, client=quiet_client).profile(
        small_trace
    )


class TestPlace:
    def test_prefix_lands_on_fast(self, report, small_trace):
        engine = PlacementEngine(RedisLike)
        dep = engine.place(
            small_trace.record_sizes, report.pattern.order, 10,
            HybridMemorySystem.testbed(),
        )
        for key in report.pattern.order[:10]:
            assert dep.fast_mask[key]
        assert dep.fast_mask.sum() == 10

    def test_zero_prefix_all_slow(self, report, small_trace):
        engine = PlacementEngine(RedisLike)
        dep = engine.place(
            small_trace.record_sizes, report.pattern.order, 0,
            HybridMemorySystem.testbed(),
        )
        assert not dep.fast_mask.any()

    def test_full_prefix_all_fast(self, report, small_trace):
        engine = PlacementEngine(RedisLike)
        dep = engine.place(
            small_trace.record_sizes, report.pattern.order,
            small_trace.n_keys, HybridMemorySystem.testbed(),
        )
        assert dep.fast_mask.all()

    def test_prefix_out_of_range(self, report, small_trace):
        engine = PlacementEngine(RedisLike)
        with pytest.raises(PlacementError):
            engine.place(small_trace.record_sizes, report.pattern.order,
                         small_trace.n_keys + 1, HybridMemorySystem.testbed())

    def test_partial_order_rejected(self, report, small_trace):
        engine = PlacementEngine(RedisLike)
        with pytest.raises(PlacementError):
            engine.place(small_trace.record_sizes,
                         report.pattern.order[:5], 2,
                         HybridMemorySystem.testbed())

    def test_oversized_prefix_rejected(self, report, small_trace):
        engine = PlacementEngine(RedisLike)
        tiny = HybridMemorySystem.testbed(fast_capacity_bytes=1_000)
        with pytest.raises(PlacementError):
            engine.place(small_trace.record_sizes, report.pattern.order,
                         50, tiny)


class TestRealize:
    def test_realize_matches_choice(self, report, small_trace):
        choice = report.choose(0.10)
        engine = PlacementEngine(RedisLike)
        dep = engine.realize(report.curve, choice, small_trace.record_sizes,
                             HybridMemorySystem.testbed())
        assert dep.fast_mask.sum() == choice.n_fast_keys
        assert dep.fast_bytes() == pytest.approx(choice.fast_bytes)

    def test_workload_mismatch_rejected(self, report, small_trace):
        from dataclasses import replace
        choice = replace(report.choose(0.10), workload="other")
        engine = PlacementEngine(RedisLike)
        with pytest.raises(PlacementError):
            engine.realize(report.curve, choice, small_trace.record_sizes,
                           HybridMemorySystem.testbed())

    def test_mnemo_place_facade(self, report, small_trace, quiet_client):
        mnemo = Mnemo(engine_factory=RedisLike, client=quiet_client)
        choice = report.choose(0.10)
        dep = mnemo.place(report, choice)
        assert dep.fast_mask.sum() == choice.n_fast_keys
