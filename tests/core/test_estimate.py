"""Tests for the Estimate Engine."""

import numpy as np
import pytest

from repro.core import (
    EstimateEngine,
    PatternEngine,
    SensitivityEngine,
    WorkloadDescriptor,
)
from repro.errors import EstimateError
from repro.kvstore import RedisLike


@pytest.fixture
def pipeline(small_trace, quiet_client):
    descriptor = WorkloadDescriptor.from_trace(small_trace)
    baselines = SensitivityEngine(RedisLike, client=quiet_client).measure(descriptor)
    pattern = PatternEngine(mode="touch").analyze(descriptor)
    curve = EstimateEngine(p=0.2).estimate(baselines, pattern)
    return descriptor, baselines, pattern, curve


class TestCurveStructure:
    def test_point_count(self, pipeline):
        descriptor, _, _, curve = pipeline
        n = descriptor.n_keys
        assert curve.n_keys == n
        for arr in (curve.fast_bytes, curve.cost_factor, curve.runtime_ns):
            assert arr.shape == (n + 1,)

    def test_endpoints_match_baselines(self, pipeline):
        _, baselines, _, curve = pipeline
        assert curve.runtime_ns[0] == pytest.approx(baselines.slow_runtime_ns)
        # noiseless baselines: the model telescopes exactly to the fast run
        assert curve.runtime_ns[-1] == pytest.approx(
            baselines.fast_runtime_ns, rel=1e-9
        )

    def test_cost_endpoints(self, pipeline):
        _, _, _, curve = pipeline
        assert curve.cost_factor[0] == pytest.approx(0.2)
        assert curve.cost_factor[-1] == pytest.approx(1.0)

    def test_runtime_monotone_nonincreasing(self, pipeline):
        _, _, _, curve = pipeline
        assert (np.diff(curve.runtime_ns) <= 1e-6).all()

    def test_throughput_monotone_nondecreasing(self, pipeline):
        _, _, _, curve = pipeline
        assert (np.diff(curve.throughput_ops_s) >= -1e-9).all()

    def test_cost_monotone_increasing(self, pipeline):
        _, _, _, curve = pipeline
        assert (np.diff(curve.cost_factor) > 0).all()

    def test_avg_latency_consistent(self, pipeline):
        _, _, _, curve = pipeline
        assert np.allclose(
            curve.avg_latency_ns * curve.n_requests, curve.runtime_ns
        )

    def test_capacity_ratio_range(self, pipeline):
        _, _, _, curve = pipeline
        assert curve.capacity_ratio[0] == 0.0
        assert curve.capacity_ratio[-1] == pytest.approx(1.0)


class TestEstimateFollowsDistribution:
    def test_hot_prefix_captures_most_gain(self, pipeline):
        """Fig 5a: the curve follows the access CDF — the hotspot's hot
        set recovers most of the throughput gap early."""
        descriptor, baselines, pattern, curve = pipeline
        thr = curve.throughput_ops_s
        total_gain = thr[-1] - thr[0]
        # prefix covering 30 % of keys (hot set is 20 % + touch noise)
        k = int(0.3 * curve.n_keys)
        assert thr[k] - thr[0] > 0.6 * total_gain


class TestLookups:
    def test_point_for_keys(self, pipeline):
        _, _, _, curve = pipeline
        point = curve.point_for_keys(10)
        assert point["n_fast_keys"] == 10
        assert point["cost_factor"] == pytest.approx(curve.cost_factor[10])

    def test_point_out_of_range(self, pipeline):
        _, _, _, curve = pipeline
        with pytest.raises(EstimateError):
            curve.point_for_keys(curve.n_keys + 1)

    def test_keys_for_ratio_inverse(self, pipeline):
        _, _, _, curve = pipeline
        k = curve.keys_for_ratio(0.5)
        assert curve.capacity_ratio[k] >= 0.5
        assert curve.capacity_ratio[max(0, k - 1)] < 0.5 or k == 0

    def test_keys_for_ratio_bounds(self, pipeline):
        _, _, _, curve = pipeline
        with pytest.raises(EstimateError):
            curve.keys_for_ratio(1.5)

    def test_throughput_at_cost_interpolates(self, pipeline):
        _, _, _, curve = pipeline
        t_lo = curve.throughput_at_cost(0.2)
        t_hi = curve.throughput_at_cost(1.0)
        t_mid = curve.throughput_at_cost(0.6)
        assert t_lo <= t_mid <= t_hi

    def test_throughput_at_cost_out_of_range(self, pipeline):
        _, _, _, curve = pipeline
        with pytest.raises(EstimateError):
            curve.throughput_at_cost(0.1)


class TestCsvOutput:
    def test_csv_format(self, pipeline, tmp_path):
        _, _, _, curve = pipeline
        path = curve.write_csv(tmp_path / "out.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "key,estimated_throughput_ops_s,cost_factor"
        assert len(lines) == curve.n_keys + 1
        first_key = int(lines[1].split(",")[0])
        assert first_key == int(curve.order[0])

    def test_csv_cost_ascends(self, pipeline, tmp_path):
        _, _, _, curve = pipeline
        path = curve.write_csv(tmp_path / "out.csv")
        costs = [float(l.split(",")[2])
                 for l in path.read_text().strip().splitlines()[1:]]
        assert costs == sorted(costs)


class TestErrors:
    def test_mismatched_baselines_detected(self, pipeline):
        """A nonsensical negative-runtime sweep must raise."""
        from dataclasses import replace
        descriptor, baselines, pattern, _ = pipeline
        broken = replace(
            baselines.slow,
            avg_read_ns=baselines.slow.avg_read_ns * 100,
        )
        from repro.core.sensitivity import PerformanceBaselines
        bad = PerformanceBaselines(fast=baselines.fast, slow=broken)
        with pytest.raises(EstimateError):
            EstimateEngine().estimate(bad, pattern)
