"""Tests for the Markdown report output."""

import pytest

from repro.core import Mnemo
from repro.kvstore import RedisLike


@pytest.fixture
def report(small_trace, quiet_client):
    return Mnemo(engine_factory=RedisLike, client=quiet_client).profile(
        small_trace
    )


class TestToMarkdown:
    def test_sections_present(self, report):
        md = report.to_markdown()
        assert md.startswith("# Mnemo report")
        for heading in ("## Baselines", "## Sizing options",
                        "## Estimate curve"):
            assert heading in md

    def test_slack_rows(self, report):
        md = report.to_markdown(slacks=(0.05, 0.10))
        assert "| 5% |" in md
        assert "| 10% |" in md

    def test_curve_sampled(self, report):
        md = report.to_markdown(curve_points=5)
        # endpoints are always present
        assert "| 0.20 |" in md
        assert "| 1.00 |" in md

    def test_costs_in_tables_ascend(self, report):
        md = report.to_markdown()
        curve_section = md.split("## Estimate curve")[1]
        costs = [
            float(line.split("|")[1])
            for line in curve_section.splitlines()
            if line.startswith("| 0.") or line.startswith("| 1.")
        ]
        assert costs == sorted(costs)

    def test_mentions_gap(self, report):
        assert "throughput gap" in report.to_markdown()


class TestWriteMarkdown:
    def test_writes_file(self, report, tmp_path):
        path = report.write_markdown(tmp_path / "nested" / "report.md")
        assert path.exists()
        assert path.read_text().startswith("# Mnemo report")

    def test_kwargs_forwarded(self, report, tmp_path):
        path = report.write_markdown(tmp_path / "r.md", slacks=(0.5,))
        assert "| 50% |" in path.read_text()


class TestDriftCheck:
    def test_stationary_workload(self, report, small_trace):
        drift = report.drift_check(small_trace)
        assert drift.stationary
        assert drift.workload == small_trace.name

    def test_drifting_workload(self, small_spec, quiet_client):
        from dataclasses import replace

        from repro.core import Mnemo
        from repro.ycsb import generate_trace
        from repro.ycsb.distributions import DistributionSpec

        spec = replace(
            small_spec, name="drifty",
            distribution=DistributionSpec(name="latest",
                                          window_fraction=0.1),
        )
        trace = generate_trace(spec)
        rep = Mnemo(engine_factory=RedisLike,
                    client=quiet_client).profile(trace)
        drift = rep.drift_check(trace)
        assert drift.drift > 0.5
