"""Tests for the periodic re-tiering simulation."""

import pytest

from dataclasses import replace

from repro.core import Mnemo
from repro.core.dynamic import simulate_periodic_retiering
from repro.errors import ConfigurationError
from repro.kvstore import RedisLike
from repro.ycsb import generate_trace
from repro.ycsb.distributions import DistributionSpec


@pytest.fixture
def hotspot_setup(small_trace, quiet_client):
    report = Mnemo(engine_factory=RedisLike, client=quiet_client).profile(
        small_trace
    )
    return small_trace, report.baselines


@pytest.fixture
def latest_setup(small_spec, quiet_client):
    spec = replace(
        small_spec, name="dyn_latest",
        distribution=DistributionSpec(name="latest", window_fraction=0.1),
    )
    trace = generate_trace(spec)
    report = Mnemo(engine_factory=RedisLike, client=quiet_client).profile(
        trace
    )
    return trace, report.baselines


class TestOutcomeStructure:
    def test_fields(self, hotspot_setup):
        trace, baselines = hotspot_setup
        out = simulate_periodic_retiering(trace, baselines)
        assert out.workload == trace.name
        assert out.migration_ns > 0
        assert out.migrated_bytes > 0
        assert out.static_runtime_ns > 0
        assert out.dynamic_runtime_ns > 0

    def test_throughputs_consistent(self, hotspot_setup):
        trace, baselines = hotspot_setup
        out = simulate_periodic_retiering(trace, baselines)
        assert out.static_throughput_ops_s == pytest.approx(
            trace.n_requests / (out.static_runtime_ns / 1e9)
        )

    def test_validation(self, hotspot_setup):
        trace, baselines = hotspot_setup
        with pytest.raises(ConfigurationError):
            simulate_periodic_retiering(trace, baselines,
                                        capacity_fraction=0.0)
        with pytest.raises(ConfigurationError):
            simulate_periodic_retiering(trace, baselines,
                                        migration_bandwidth_gbps=0)


class TestVerdicts:
    def test_stationary_workload_not_worth_migrating(self, hotspot_setup):
        """The paper's static-only scope is right for stationary
        patterns: migration is pure overhead."""
        trace, baselines = hotspot_setup
        out = simulate_periodic_retiering(trace, baselines,
                                          capacity_fraction=0.2)
        assert not out.worth_migrating
        assert out.speedup == pytest.approx(1.0, abs=0.1)

    def test_drifting_workload_worth_migrating(self, latest_setup):
        trace, baselines = latest_setup
        out = simulate_periodic_retiering(trace, baselines,
                                          capacity_fraction=0.15)
        assert out.worth_migrating
        assert out.speedup > 1.05

    def test_free_migration_never_loses(self, latest_setup):
        """With infinite migration bandwidth the per-window clairvoyant
        placement dominates the static one."""
        trace, baselines = latest_setup
        out = simulate_periodic_retiering(
            trace, baselines, capacity_fraction=0.15,
            migration_bandwidth_gbps=1e12,
        )
        assert out.migration_ns < 1_000
        assert out.speedup >= 1.0

    def test_slow_migration_link_kills_the_benefit(self, latest_setup):
        trace, baselines = latest_setup
        fast_link = simulate_periodic_retiering(
            trace, baselines, capacity_fraction=0.15,
            migration_bandwidth_gbps=10.0,
        )
        slow_link = simulate_periodic_retiering(
            trace, baselines, capacity_fraction=0.15,
            migration_bandwidth_gbps=0.01,
        )
        assert slow_link.speedup < fast_link.speedup
        assert not slow_link.worth_migrating

    def test_full_capacity_no_migration_needed(self, hotspot_setup):
        trace, baselines = hotspot_setup
        out = simulate_periodic_retiering(trace, baselines,
                                          capacity_fraction=1.0)
        # everything fits: both variants sit at the fast baseline, and
        # migration happens once (initial fill)
        assert out.speedup == pytest.approx(1.0, abs=0.05)
