"""Tests for WorkloadDescriptor."""

import numpy as np

from repro.core import WorkloadDescriptor
from repro.ycsb import save_trace_csv


class TestFromTrace:
    def test_wraps_trace(self, small_trace):
        d = WorkloadDescriptor.from_trace(small_trace)
        assert d.name == small_trace.name
        assert np.array_equal(d.keys, small_trace.keys)
        assert d.n_keys == small_trace.n_keys
        assert d.n_requests == small_trace.n_requests

    def test_roundtrip_to_trace(self, small_trace):
        d = WorkloadDescriptor.from_trace(small_trace)
        t = d.to_trace()
        assert np.array_equal(t.keys, small_trace.keys)
        assert np.array_equal(t.record_sizes, small_trace.record_sizes)

    def test_dataset_bytes_is_total_capacity(self, small_trace):
        d = WorkloadDescriptor.from_trace(small_trace)
        assert d.dataset_bytes == int(small_trace.record_sizes.sum())


class TestFromCsv:
    def test_loads_saved_trace(self, small_trace, tmp_path):
        req, data = save_trace_csv(small_trace, tmp_path)
        d = WorkloadDescriptor.from_csv(req, data)
        assert np.array_equal(d.keys, small_trace.keys)
        assert np.array_equal(d.is_read, small_trace.is_read)

    def test_name_from_file(self, small_trace, tmp_path):
        req, data = save_trace_csv(small_trace, tmp_path)
        d = WorkloadDescriptor.from_csv(req, data)
        assert d.name == small_trace.name
