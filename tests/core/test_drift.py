"""Tests for the access-drift analysis extension."""

import numpy as np
import pytest

from dataclasses import replace

from repro.core.drift import (
    DriftReport,
    analyze_drift,
    drift_score,
    static_placement_regret,
    window_counts,
)
from repro.errors import ConfigurationError
from repro.ycsb import generate_trace
from repro.ycsb.distributions import DistributionSpec


@pytest.fixture
def latest_trace(small_spec):
    spec = replace(
        small_spec, name="drift_latest",
        distribution=DistributionSpec(name="latest", window_fraction=0.1),
    )
    return generate_trace(spec)


class TestWindowCounts:
    def test_shape_and_totals(self, small_trace):
        counts = window_counts(small_trace, n_windows=5)
        assert counts.shape == (5, small_trace.n_keys)
        assert counts.sum() == small_trace.n_requests

    def test_windows_partition_requests(self, small_trace):
        counts = window_counts(small_trace, n_windows=4)
        per_window = counts.sum(axis=1)
        assert abs(per_window.max() - per_window.min()) <= 1

    def test_validation(self, small_trace):
        with pytest.raises(ConfigurationError):
            window_counts(small_trace, n_windows=1)


class TestDriftScore:
    def test_hotspot_is_stationary(self, small_trace):
        assert drift_score(small_trace) < 0.4

    def test_latest_drifts(self, latest_trace):
        assert drift_score(latest_trace) > 0.6

    def test_ordering(self, small_trace, latest_trace):
        assert drift_score(latest_trace) > drift_score(small_trace)

    def test_bounds(self, small_trace, latest_trace):
        for t in (small_trace, latest_trace):
            assert 0.0 <= drift_score(t) <= 1.0

    def test_validation(self, small_trace):
        with pytest.raises(ConfigurationError):
            drift_score(small_trace, top_fraction=0.0)


class TestRegret:
    def test_stationary_low_regret(self, small_trace):
        result = static_placement_regret(small_trace, capacity_fraction=0.2)
        assert result.regret < 0.1

    def test_drifting_high_regret(self, latest_trace):
        result = static_placement_regret(latest_trace, capacity_fraction=0.1)
        assert result.regret > 0.2

    def test_oracle_dominates_static(self, small_trace, latest_trace):
        for t in (small_trace, latest_trace):
            r = static_placement_regret(t)
            assert r.oracle_hit_fraction >= r.static_hit_fraction - 1e-12

    def test_full_capacity_no_regret(self, latest_trace):
        r = static_placement_regret(latest_trace, capacity_fraction=1.0)
        assert r.static_hit_fraction == pytest.approx(1.0)
        assert r.regret == pytest.approx(0.0)

    def test_validation(self, small_trace):
        with pytest.raises(ConfigurationError):
            static_placement_regret(small_trace, capacity_fraction=0.0)


class TestAnalyzeDrift:
    def test_hotspot_verdict(self, small_trace):
        report = analyze_drift(small_trace)
        assert isinstance(report, DriftReport)
        assert report.stationary
        assert "stationary" in report.recommendation

    def test_latest_verdict(self, latest_trace):
        report = analyze_drift(latest_trace, capacity_fraction=0.1)
        assert not report.stationary
        assert "dynamic tiering" in report.recommendation

    def test_report_carries_workload_name(self, small_trace):
        assert analyze_drift(small_trace).workload == small_trace.name
