"""Tests for SLO-driven sizing."""

import numpy as np
import pytest

from repro.core import Mnemo, min_cost_for_slowdown
from repro.core.slo import DEFAULT_MAX_SLOWDOWN
from repro.errors import ConfigurationError, EstimateError
from repro.kvstore import MemcachedLike, RedisLike


@pytest.fixture
def curve(small_trace, quiet_client):
    report = Mnemo(engine_factory=RedisLike, client=quiet_client).profile(
        small_trace
    )
    return report.curve


class TestMinCostForSlowdown:
    def test_default_is_ten_percent(self):
        assert DEFAULT_MAX_SLOWDOWN == 0.10

    def test_choice_meets_slo(self, curve):
        choice = min_cost_for_slowdown(curve, 0.10)
        ideal = curve.throughput_ops_s[-1]
        assert choice.est_throughput_ops_s >= 0.9 * ideal
        assert 0 <= choice.slowdown <= 0.10

    def test_cheapest_point_selected(self, curve):
        choice = min_cost_for_slowdown(curve, 0.10)
        if choice.n_fast_keys > 0:
            prev = curve.throughput_ops_s[choice.n_fast_keys - 1]
            assert prev < 0.9 * curve.throughput_ops_s[-1]

    def test_zero_slack_needs_everything_fast_or_flat(self, curve):
        choice = min_cost_for_slowdown(curve, 0.0)
        assert choice.est_throughput_ops_s >= curve.throughput_ops_s[-1] * (1 - 1e-12)

    def test_looser_slo_costs_less(self, curve):
        tight = min_cost_for_slowdown(curve, 0.05)
        loose = min_cost_for_slowdown(curve, 0.20)
        assert loose.cost_factor <= tight.cost_factor

    def test_huge_slack_hits_price_floor(self, curve):
        choice = min_cost_for_slowdown(curve, 0.99)
        assert choice.cost_factor == pytest.approx(0.2)
        assert choice.n_fast_keys == 0

    def test_savings_percent(self, curve):
        choice = min_cost_for_slowdown(curve, 0.10)
        assert choice.savings_percent == pytest.approx(
            (1 - choice.cost_factor) * 100
        )

    def test_invalid_slack_rejected(self, curve):
        with pytest.raises(ConfigurationError):
            min_cost_for_slowdown(curve, 1.0)

    def test_unreachable_reference_raises(self, curve):
        with pytest.raises(EstimateError):
            min_cost_for_slowdown(
                curve, 0.01,
                reference_throughput=float(curve.throughput_ops_s[-1]) * 10,
            )

    def test_custom_reference(self, curve):
        slow_thr = float(curve.throughput_ops_s[0])
        choice = min_cost_for_slowdown(curve, 0.0, reference_throughput=slow_thr)
        assert choice.n_fast_keys == 0


class TestMemcachedFloor:
    def test_insensitive_engine_runs_slow_only(self, small_trace, quiet_client):
        """Fig 9: Memcached meets the 10 % SLO with zero FastMem."""
        report = Mnemo(engine_factory=MemcachedLike,
                       client=quiet_client).profile(small_trace)
        choice = report.choose(0.10)
        assert choice.n_fast_keys == 0
        assert choice.cost_factor == pytest.approx(0.2)
