"""Tests for the Pattern Engine."""

import numpy as np
import pytest

from repro.core import PatternEngine, WorkloadDescriptor
from repro.core.pattern import KeyAccessPattern
from repro.errors import ConfigurationError


@pytest.fixture
def descriptor(small_trace):
    return WorkloadDescriptor.from_trace(small_trace)


class TestModes:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            PatternEngine(mode="random")

    def test_touch_mode_order(self, descriptor):
        pattern = PatternEngine(mode="touch").analyze(descriptor)
        trace = descriptor.to_trace()
        assert np.array_equal(pattern.order, trace.first_touch_order())
        assert pattern.mode == "touch"

    def test_weight_mode_orders_by_density(self, descriptor):
        pattern = PatternEngine(mode="weight").analyze(descriptor)
        w = pattern.weights()[pattern.order]
        assert (np.diff(w) <= 1e-12).all()  # non-increasing

    def test_external_mode_requires_order(self, descriptor):
        with pytest.raises(ConfigurationError):
            PatternEngine(mode="external").analyze(descriptor)

    def test_external_order_rejected_in_touch_mode(self, descriptor):
        with pytest.raises(ConfigurationError):
            PatternEngine(mode="touch").analyze(
                descriptor, external_order=np.arange(descriptor.n_keys)
            )

    def test_external_mode_uses_given_order(self, descriptor):
        order = np.arange(descriptor.n_keys)[::-1].copy()
        pattern = PatternEngine(mode="external").analyze(
            descriptor, external_order=order
        )
        assert np.array_equal(pattern.order, order)


class TestPatternContents:
    def test_counts_match_trace(self, descriptor):
        pattern = PatternEngine().analyze(descriptor)
        trace = descriptor.to_trace()
        reads, writes = trace.per_key_counts()
        assert np.array_equal(pattern.reads_per_key, reads)
        assert np.array_equal(pattern.writes_per_key, writes)
        assert pattern.accesses_per_key.sum() == trace.n_requests

    def test_order_is_permutation(self, descriptor):
        pattern = PatternEngine(mode="weight").analyze(descriptor)
        assert np.array_equal(np.sort(pattern.order),
                              np.arange(descriptor.n_keys))

    def test_ordered_views_align(self, descriptor):
        pattern = PatternEngine(mode="weight").analyze(descriptor)
        k0 = pattern.order[0]
        assert pattern.ordered_reads()[0] == pattern.reads_per_key[k0]
        assert pattern.ordered_sizes()[0] == pattern.sizes[k0]


class TestWeightOrdering:
    def test_hot_keys_first(self):
        """Weight ordering converts any distribution to zipfian-like
        (Section V-A): hot keys lead regardless of key id."""
        keys = np.array([7] * 50 + [2] * 30 + [5] * 5, dtype=np.int64)
        sizes = np.full(10, 1_000, dtype=np.int64)
        d = WorkloadDescriptor(
            name="x", keys=keys, is_read=np.ones(keys.size, bool),
            record_sizes=sizes,
        )
        pattern = PatternEngine(mode="weight").analyze(d)
        assert pattern.order[:3].tolist() == [7, 2, 5]

    def test_small_keys_advantaged(self):
        """Equal access counts: smaller records get FastMem priority."""
        keys = np.array([0, 1], dtype=np.int64)
        sizes = np.array([100_000, 1_000], dtype=np.int64)
        d = WorkloadDescriptor(
            name="x", keys=keys, is_read=np.ones(2, bool), record_sizes=sizes,
        )
        pattern = PatternEngine(mode="weight").analyze(d)
        assert pattern.order[0] == 1

    def test_untouched_keys_last(self):
        keys = np.array([1, 1], dtype=np.int64)
        sizes = np.full(3, 1_000, dtype=np.int64)
        d = WorkloadDescriptor(
            name="x", keys=keys, is_read=np.ones(2, bool), record_sizes=sizes,
        )
        pattern = PatternEngine(mode="weight").analyze(d)
        assert pattern.order[0] == 1
        assert set(pattern.order[1:].tolist()) == {0, 2}


class TestValidation:
    def test_bad_order_rejected(self):
        with pytest.raises(ConfigurationError):
            KeyAccessPattern(
                mode="touch",
                order=np.array([0, 0, 2]),
                reads_per_key=np.zeros(3, dtype=np.int64),
                writes_per_key=np.zeros(3, dtype=np.int64),
                sizes=np.full(3, 10, dtype=np.int64),
            )

    def test_misaligned_arrays_rejected(self):
        with pytest.raises(ConfigurationError):
            KeyAccessPattern(
                mode="touch",
                order=np.arange(3),
                reads_per_key=np.zeros(2, dtype=np.int64),
                writes_per_key=np.zeros(3, dtype=np.int64),
                sizes=np.full(3, 10, dtype=np.int64),
            )
