"""Tests for the Mnemo facade and report."""

import numpy as np
import pytest

from repro.core import ExternalTieringMnemo, Mnemo, MnemoReport
from repro.kvstore import RedisLike


@pytest.fixture
def report(small_trace, quiet_client) -> MnemoReport:
    return Mnemo(engine_factory=RedisLike, client=quiet_client).profile(
        small_trace
    )


class TestProfile:
    def test_report_fields(self, report, small_trace):
        assert report.workload == small_trace.name
        assert report.engine == "redis"
        assert report.pattern.mode == "touch"
        assert report.curve.n_keys == small_trace.n_keys

    def test_accepts_descriptor(self, small_trace, quiet_client):
        from repro.core import WorkloadDescriptor

        d = WorkloadDescriptor.from_trace(small_trace)
        report = Mnemo(engine_factory=RedisLike,
                       client=quiet_client).profile(d)
        assert report.workload == small_trace.name

    def test_price_factor_propagates(self, small_trace, quiet_client):
        report = Mnemo(engine_factory=RedisLike, client=quiet_client,
                       p=0.5).profile(small_trace)
        assert report.curve.cost_factor[0] == pytest.approx(0.5)

    def test_write_csv(self, report, tmp_path):
        path = report.write_csv(tmp_path / "curve.csv")
        assert path.exists()
        assert len(path.read_text().splitlines()) == report.curve.n_keys + 1

    def test_summary_mentions_key_facts(self, report):
        text = report.summary()
        assert "redis" in text
        assert "FastMem-only" in text
        assert "10% slowdown SLO" in text

    def test_choose_delegates(self, report):
        choice = report.choose(0.10)
        assert choice.workload == report.workload
        assert choice.max_slowdown == 0.10


class TestExternalTiering:
    def test_external_order_used(self, small_trace, quiet_client):
        order = np.arange(small_trace.n_keys)[::-1].copy()
        mnemo = ExternalTieringMnemo(engine_factory=RedisLike,
                                     client=quiet_client)
        report = mnemo.profile(small_trace, external_order=order)
        assert np.array_equal(report.pattern.order, order)
        assert report.pattern.mode == "external"

    def test_missing_order_raises(self, small_trace, quiet_client):
        from repro.errors import ConfigurationError

        mnemo = ExternalTieringMnemo(engine_factory=RedisLike,
                                     client=quiet_client)
        with pytest.raises(ConfigurationError):
            mnemo.profile(small_trace)


class TestDeterminism:
    def test_profiles_reproducible(self, small_trace):
        a = Mnemo(engine_factory=RedisLike).profile(small_trace)
        b = Mnemo(engine_factory=RedisLike).profile(small_trace)
        assert np.array_equal(a.curve.runtime_ns, b.curve.runtime_ns)
