"""Tests for the validation helpers (measured points vs estimate)."""

import numpy as np
import pytest

from repro.core import (
    Mnemo,
    estimate_errors,
    measure_curve,
    prefix_counts,
)
from repro.errors import ConfigurationError
from repro.kvstore import RedisLike
from repro.ycsb import YCSBClient


@pytest.fixture
def setup(small_trace, quiet_client):
    report = Mnemo(engine_factory=RedisLike, client=quiet_client).profile(
        small_trace
    )
    counts = prefix_counts(small_trace.n_keys, 5)
    points = measure_curve(
        small_trace, report.pattern.order, RedisLike, counts,
        client=quiet_client,
    )
    return report, counts, points


class TestPrefixCounts:
    def test_endpoints_included(self):
        counts = prefix_counts(100, 5)
        assert counts[0] == 0 and counts[-1] == 100

    def test_evenly_spaced(self):
        assert prefix_counts(100, 5) == [0, 25, 50, 75, 100]

    def test_needs_two_points(self):
        with pytest.raises(ConfigurationError):
            prefix_counts(100, 1)


class TestMeasureCurve:
    def test_point_metadata(self, setup, small_trace):
        _, counts, points = setup
        assert [p.n_fast_keys for p in points] == counts
        total = int(small_trace.record_sizes.sum())
        assert points[0].fast_bytes == 0
        assert points[-1].fast_bytes == total
        assert points[0].cost_factor == pytest.approx(0.2)
        assert points[-1].cost_factor == pytest.approx(1.0)

    def test_throughput_improves_with_fast_share(self, setup):
        _, _, points = setup
        thr = [p.result.throughput_ops_s for p in points]
        assert thr[-1] > thr[0]

    def test_out_of_range_count_rejected(self, small_trace, quiet_client):
        report = Mnemo(engine_factory=RedisLike,
                       client=quiet_client).profile(small_trace)
        with pytest.raises(ConfigurationError):
            measure_curve(small_trace, report.pattern.order, RedisLike,
                          [small_trace.n_keys + 1], client=quiet_client)


class TestEstimateErrors:
    def test_noiseless_uniform_sizes_exact(self, small_spec, quiet_client):
        """With noise off and constant record sizes the model is exact:
        every request saves exactly the average delta."""
        from dataclasses import replace
        from repro.ycsb import generate_trace
        from repro.ycsb.sizes import SizeModel

        spec = replace(
            small_spec, name="uniform_sizes",
            size_model=SizeModel(name="const", median_bytes=100_000, sigma=0.0),
        )
        trace = generate_trace(spec)
        report = Mnemo(engine_factory=RedisLike,
                       client=quiet_client).profile(trace)
        counts = prefix_counts(trace.n_keys, 5)
        points = measure_curve(trace, report.pattern.order, RedisLike,
                               counts, client=quiet_client)
        errors = estimate_errors(report.curve, points)
        assert np.abs(errors).max() < 1e-9

    def test_noiseless_mixed_sizes_small_model_error(self, setup):
        """Varying record sizes leave only the size-mixing approximation;
        it stays well under 1 % (the paper's model error regime)."""
        report, _, points = setup
        errors = estimate_errors(report.curve, points)
        assert 0 < np.abs(errors).max() < 1.0

    def test_noisy_errors_small(self, small_trace):
        """With 1 % noise the paper-style median error stays tiny."""
        client = YCSBClient(repeats=3, noise_sigma=0.01, seed=2)
        report = Mnemo(engine_factory=RedisLike, client=client).profile(
            small_trace
        )
        counts = prefix_counts(small_trace.n_keys, 6)
        points = measure_curve(small_trace, report.pattern.order, RedisLike,
                               counts, client=client)
        errors = estimate_errors(report.curve, points)
        assert np.median(np.abs(errors)) < 0.5  # percent

    def test_latency_metric(self, setup):
        report, _, points = setup
        errors = estimate_errors(report.curve, points, metric="avg_latency")
        assert np.abs(errors).max() < 1.0  # same size-mixing regime

    def test_unknown_metric_rejected(self, setup):
        report, _, points = setup
        with pytest.raises(ConfigurationError):
            estimate_errors(report.curve, points, metric="p99")
