"""Tests for the what-if sensitivity extension."""

import numpy as np
import pytest

from repro.core import Mnemo
from repro.core.whatif import (
    DEFAULT_SCENARIOS,
    DeviceScenario,
    device_sensitivity,
    price_sensitivity,
    recost_curve,
)
from repro.errors import ConfigurationError
from repro.kvstore import RedisLike
from repro.memsim.emulation import ThrottleFactors


@pytest.fixture
def report(small_trace, quiet_client):
    return Mnemo(engine_factory=RedisLike, client=quiet_client).profile(
        small_trace
    )


class TestRecost:
    def test_performance_axis_untouched(self, report):
        recosted = recost_curve(report.curve, 0.5)
        assert np.array_equal(recosted.runtime_ns, report.curve.runtime_ns)
        assert recosted.p == 0.5

    def test_cost_floor_moves_with_p(self, report):
        recosted = recost_curve(report.curve, 0.5)
        assert recosted.cost_factor[0] == pytest.approx(0.5)
        assert recosted.cost_factor[-1] == pytest.approx(1.0)

    def test_identity_at_same_p(self, report):
        recosted = recost_curve(report.curve, report.curve.p)
        assert np.allclose(recosted.cost_factor, report.curve.cost_factor)


class TestPriceSensitivity:
    def test_same_keys_cheaper_disks(self, report):
        """Cheaper SlowMem changes the cost, not the placement — the
        SLO-binding key count is price-independent."""
        choices = price_sensitivity(report.curve, [1 / 7, 1 / 5, 1 / 3])
        n_keys = {c.n_fast_keys for c in choices.values()}
        assert len(n_keys) == 1

    def test_cost_monotone_in_p(self, report):
        choices = price_sensitivity(report.curve, [1 / 7, 1 / 5, 1 / 3])
        costs = [choices[p].cost_factor for p in (1 / 7, 1 / 5, 1 / 3)]
        assert costs == sorted(costs)

    def test_empty_band_rejected(self, report):
        with pytest.raises(ConfigurationError):
            price_sensitivity(report.curve, [])


class TestDeviceSensitivity:
    def test_slower_part_bigger_gap(self, small_trace, quiet_client):
        outcomes = device_sensitivity(
            small_trace, RedisLike, DEFAULT_SCENARIOS, client=quiet_client,
        )
        by_name = {o.scenario.name: o for o in outcomes}
        assert (by_name["slower part"].throughput_gap
                > by_name["table-i (emulated)"].throughput_gap
                > by_name["faster part"].throughput_gap)

    def test_slower_part_needs_more_dram(self, small_trace, quiet_client):
        outcomes = device_sensitivity(
            small_trace, RedisLike, DEFAULT_SCENARIOS, client=quiet_client,
        )
        by_name = {o.scenario.name: o for o in outcomes}
        assert (by_name["slower part"].choice.capacity_ratio
                >= by_name["faster part"].choice.capacity_ratio)

    def test_custom_scenario(self, small_trace, quiet_client):
        nearly_dram = DeviceScenario(
            "near-dram", ThrottleFactors(bandwidth=0.9, latency=1.1)
        )
        outcome = device_sensitivity(
            small_trace, RedisLike, [nearly_dram], client=quiet_client,
        )[0]
        assert outcome.throughput_gap < 1.05
        assert outcome.choice.cost_factor == pytest.approx(0.2, abs=0.02)

    def test_empty_scenarios_rejected(self, small_trace):
        with pytest.raises(ConfigurationError):
            device_sensitivity(small_trace, RedisLike, [])
