"""Tests for MnemoT (the tiering extension)."""

import numpy as np
import pytest

from repro.core import Mnemo, MnemoT
from repro.errors import ConfigurationError
from repro.kvstore import RedisLike


@pytest.fixture
def reports(small_trace, quiet_client):
    plain = Mnemo(engine_factory=RedisLike, client=quiet_client).profile(
        small_trace
    )
    tiered = MnemoT(engine_factory=RedisLike, client=quiet_client).profile(
        small_trace
    )
    return plain, tiered


class TestTieredOrdering:
    def test_mode_is_weight(self, reports):
        _, tiered = reports
        assert tiered.pattern.mode == "weight"

    def test_tiered_curve_dominates(self, reports):
        """At equal cost, MnemoT's ordering never loses to first-touch
        (hot-first placement is optimal for the linear model)."""
        plain, tiered = reports
        grid = np.linspace(0.21, 0.99, 20)
        for r in grid:
            assert (tiered.curve.throughput_at_cost(r)
                    >= plain.curve.throughput_at_cost(r) * (1 - 1e-9))

    def test_tiered_strictly_better_somewhere(self, reports):
        plain, tiered = reports
        grid = np.linspace(0.25, 0.8, 12)
        gains = [
            tiered.curve.throughput_at_cost(r) - plain.curve.throughput_at_cost(r)
            for r in grid
        ]
        assert max(gains) > 0

    def test_slo_choice_cheaper_or_equal(self, reports):
        plain, tiered = reports
        assert (tiered.choose(0.10).cost_factor
                <= plain.choose(0.10).cost_factor + 1e-12)

    def test_same_baselines_same_endpoints(self, reports):
        plain, tiered = reports
        assert tiered.curve.runtime_ns[0] == pytest.approx(
            plain.curve.runtime_ns[0]
        )
        assert tiered.curve.runtime_ns[-1] == pytest.approx(
            plain.curve.runtime_ns[-1]
        )


class TestKnapsackPlacement:
    def test_selection_fits_capacity(self, reports, small_trace):
        _, tiered = reports
        mnemot = MnemoT(engine_factory=RedisLike)
        cap = int(small_trace.record_sizes.sum() // 4)
        chosen = mnemot.knapsack_placement(tiered, cap)
        assert int(small_trace.record_sizes[chosen].sum()) <= cap

    def test_selection_prefers_hot_keys(self, reports, small_trace):
        _, tiered = reports
        mnemot = MnemoT(engine_factory=RedisLike)
        cap = int(small_trace.record_sizes.sum() // 4)
        chosen = set(mnemot.knapsack_placement(tiered, cap).tolist())
        accesses = tiered.pattern.accesses_per_key
        if chosen:
            hot_mean = accesses[sorted(chosen)].mean()
            cold = sorted(set(range(small_trace.n_keys)) - chosen)
            assert hot_mean > accesses[cold].mean()

    def test_exact_solver_also_fits(self, reports, small_trace):
        _, tiered = reports
        mnemot = MnemoT(engine_factory=RedisLike)
        cap = int(small_trace.record_sizes.sum() // 10)
        chosen = mnemot.knapsack_placement(tiered, cap, exact=True)
        assert int(small_trace.record_sizes[chosen].sum()) <= cap

    def test_negative_capacity_rejected(self, reports):
        _, tiered = reports
        with pytest.raises(ConfigurationError):
            MnemoT(engine_factory=RedisLike).knapsack_placement(tiered, -1)
