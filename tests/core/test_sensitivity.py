"""Tests for the Sensitivity Engine."""

import pytest

from repro.core import SensitivityEngine, WorkloadDescriptor
from repro.kvstore import MemcachedLike, RedisLike
from repro.ycsb import YCSBClient


@pytest.fixture
def baselines(small_trace, quiet_client):
    engine = SensitivityEngine(RedisLike, client=quiet_client)
    return engine.measure(WorkloadDescriptor.from_trace(small_trace))


class TestBaselines:
    def test_fast_beats_slow(self, baselines):
        assert baselines.fast_runtime_ns < baselines.slow_runtime_ns
        assert baselines.throughput_gap > 1.0

    def test_redis_gap_near_paper(self, baselines):
        """Fig 5a: FastMem-only ~40 % over SlowMem-only for thumbnails."""
        assert baselines.throughput_gap == pytest.approx(1.40, abs=0.06)

    def test_read_delta_positive(self, baselines):
        assert baselines.read_delta_ns > 0

    def test_write_delta_zero_for_readonly(self, baselines):
        assert baselines.write_delta_ns == 0.0

    def test_runtime_decomposition(self, baselines):
        slow = baselines.slow
        total = (slow.n_reads * slow.avg_read_ns
                 + slow.n_writes * slow.avg_write_ns)
        assert total == pytest.approx(slow.runtime_ns, rel=1e-9)

    def test_mixed_workload_write_delta(self, mixed_trace, quiet_client):
        engine = SensitivityEngine(RedisLike, client=quiet_client)
        b = engine.measure(WorkloadDescriptor.from_trace(mixed_trace))
        assert b.write_delta_ns > 0
        assert b.write_delta_ns < b.read_delta_ns  # writes less exposed


class TestEngineVariation:
    def test_memcached_smaller_gap(self, small_trace, quiet_client):
        descriptor = WorkloadDescriptor.from_trace(small_trace)
        redis = SensitivityEngine(RedisLike, client=quiet_client)
        memc = SensitivityEngine(MemcachedLike, client=quiet_client)
        assert (memc.measure(descriptor).throughput_gap
                < redis.measure(descriptor).throughput_gap)

    def test_default_client_created(self):
        engine = SensitivityEngine(RedisLike)
        assert isinstance(engine.client, YCSBClient)
