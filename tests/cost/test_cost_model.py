"""Tests for the hybrid-memory cost model (Table II)."""

import numpy as np
import pytest

from repro.cost import (
    DEFAULT_PRICE_FACTOR,
    CostModel,
    capacity_for_cost,
    cost_reduction_factor,
)
from repro.errors import ConfigurationError


class TestCostReductionFactor:
    def test_best_case_all_fast(self):
        assert cost_reduction_factor(100, 100) == 1.0

    def test_worst_case_all_slow_equals_p(self):
        assert cost_reduction_factor(0, 100, p=0.2) == pytest.approx(0.2)

    def test_paper_in_between_example(self):
        """Table II / Fig 5a: hot 20 % in FastMem at p=0.2 -> R=0.36."""
        assert cost_reduction_factor(20, 100, p=0.2) == pytest.approx(0.36)

    def test_linear_in_fast_share(self):
        r1 = cost_reduction_factor(25, 100, p=0.2)
        r2 = cost_reduction_factor(75, 100, p=0.2)
        mid = cost_reduction_factor(50, 100, p=0.2)
        assert mid == pytest.approx((r1 + r2) / 2)

    def test_vectorized(self):
        fast = np.array([0, 50, 100])
        r = cost_reduction_factor(fast, 100, p=0.2)
        assert np.allclose(r, [0.2, 0.6, 1.0])

    def test_default_p_is_paper_value(self):
        assert DEFAULT_PRICE_FACTOR == 0.2
        assert cost_reduction_factor(0, 100) == pytest.approx(0.2)

    @pytest.mark.parametrize("p", [0.0, 1.0, -0.5, 2.0])
    def test_invalid_p_rejected(self, p):
        with pytest.raises(ConfigurationError):
            cost_reduction_factor(10, 100, p=p)

    def test_fast_exceeding_total_rejected(self):
        with pytest.raises(ConfigurationError):
            cost_reduction_factor(101, 100)

    def test_zero_total_rejected(self):
        with pytest.raises(ConfigurationError):
            cost_reduction_factor(0, 0)


class TestCapacityForCost:
    def test_inverse_of_factor(self):
        total = 1_000
        for f in (0, 250, 500, 1_000):
            r = cost_reduction_factor(f, total, p=0.2)
            assert capacity_for_cost(r, total, p=0.2) == pytest.approx(f)

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            capacity_for_cost(0.1, 100, p=0.2)  # below the p floor


class TestCostModel:
    def test_anchors(self):
        m = CostModel(total_bytes=100, p=0.2)
        assert m.best_case == 1.0
        assert m.worst_case == pytest.approx(0.2)

    def test_factor_delegates(self):
        m = CostModel(total_bytes=100, p=0.2)
        assert m.factor(20) == pytest.approx(0.36)

    def test_fast_bytes_for(self):
        m = CostModel(total_bytes=100, p=0.2)
        assert m.fast_bytes_for(0.36) == pytest.approx(20)

    def test_savings_percent(self):
        m = CostModel(total_bytes=100, p=0.2)
        assert m.savings_percent(20) == pytest.approx(64.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CostModel(total_bytes=0)
        with pytest.raises(ConfigurationError):
            CostModel(total_bytes=10, p=1.5)
