PYTHON ?= python

.PHONY: install test verify chaos bench bench-verbose examples results clean

results: bench
	$(PYTHON) tools/collect_results.py

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# the tier-1 gate: exactly what CI runs
verify:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# chaos smoke: fault injection, worker kills, cache corruption
chaos:
	PYTHONPATH=src $(PYTHON) -m pytest tests/faults -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-verbose:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/capacity_planning.py
	$(PYTHON) examples/tiering_comparison.py
	$(PYTHON) examples/custom_workload.py
	$(PYTHON) examples/multitier_sizing.py
	$(PYTHON) examples/slo_guardrails.py

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .benchmarks .mnemo-cache
	find . -name __pycache__ -type d -exec rm -rf {} +
