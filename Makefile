PYTHON ?= python

.PHONY: install test verify chaos crash guard serve-drill bench bench-kernel bench-obs bench-serve bench-store bench-sweep bench-verbose examples results clean

results: bench
	$(PYTHON) tools/collect_results.py

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# the tier-1 gate: exactly what CI runs (tests + planner speedup smoke
# + the kill -9 drills)
verify:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q
	$(MAKE) bench-sweep
	$(MAKE) crash
	$(MAKE) serve-drill

# chaos smoke: fault injection, worker kills, cache corruption
chaos:
	PYTHONPATH=src $(PYTHON) -m pytest tests/faults -x -q

# request-plane drills: slowloris, flood past the admission queue,
# mid-request SIGKILL of the supervised daemon child, concurrent
# clients with bit-identity vs the one-shot CLI path
serve-drill:
	PYTHONPATH=src $(PYTHON) -m pytest tests/service/test_chaos_requests.py \
		tests/service/test_serve_concurrency.py -x -q

# kill -9 drills: SIGKILL a writer / the sweep coordinator / a pool
# worker, reopen the store, prove zero corruption and bit-identical
# resume; plus the SIGTERM end-to-end on a live `mnemo serve`
crash:
	PYTHONPATH=src $(PYTHON) -m pytest tests/store/test_crash.py \
		tests/service/test_serve.py -x -q

# SLO guardrails: drift detection, recommendation validation, fallback
# re-planning — includes the end-to-end validate-reject-fallback scenario
guard:
	PYTHONPATH=src $(PYTHON) -m pytest tests/guard \
		tests/property/test_prop_guard_drift.py -x -q
	PYTHONPATH=src $(PYTHON) -m repro guard --workload trending \
		--downsample 8 --repeats 1 --seed 3; test $$? -eq 0
	PYTHONPATH=src $(PYTHON) -m repro guard --workload trending \
		--downsample 8 --repeats 1 --seed 3 --live-rotate 3000; \
		test $$? -eq 3

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# kernel speedup smoke: downsized sweep, fails below the speedup floor
# and outside the analytic error envelope; refreshes BENCH_kernel.json
bench-kernel:
	MNEMO_BENCH_SMOKE=1 PYTHONPATH=src $(PYTHON) -m pytest \
		benchmarks/bench_kernel_speedup.py --benchmark-only -s

# sweep planner smoke: grouped dispatch vs per-cell pool tasks on a
# warm pool; fails below the speedup floor or on any bitwise
# divergence; refreshes BENCH_sweep.json
bench-sweep:
	MNEMO_BENCH_SMOKE=1 PYTHONPATH=src $(PYTHON) -m pytest \
		benchmarks/bench_sweep_planner.py --benchmark-only -s

# store overhead smoke: warm reads from the SQLite store vs the file
# cache must stay within the committed ratio; refreshes BENCH_store.json
bench-store:
	MNEMO_BENCH_SMOKE=1 PYTHONPATH=src $(PYTHON) -m pytest \
		benchmarks/bench_store.py --benchmark-only -s

# request-plane smoke: warm `size` p50/p99 over the socket and the
# shed rate under flood; fails over the p99 ceiling or on any
# transport failure; refreshes BENCH_serve.json
bench-serve:
	MNEMO_BENCH_SMOKE=1 PYTHONPATH=src $(PYTHON) -m pytest \
		benchmarks/bench_serve.py --benchmark-only -s

# telemetry overhead smoke: sweeps with a session on vs off must be
# bit-identical and within the ceiling; refreshes BENCH_obs.json
bench-obs:
	MNEMO_BENCH_SMOKE=1 PYTHONPATH=src $(PYTHON) -m pytest \
		benchmarks/bench_obs_overhead.py --benchmark-only -s

bench-verbose:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/capacity_planning.py
	$(PYTHON) examples/tiering_comparison.py
	$(PYTHON) examples/custom_workload.py
	$(PYTHON) examples/multitier_sizing.py
	$(PYTHON) examples/slo_guardrails.py

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .benchmarks .mnemo-cache
	find . -name __pycache__ -type d -exec rm -rf {} +
