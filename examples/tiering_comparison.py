"""Tiering comparison — the three deployment scenarios of Figure 2.

Profiles the scrambled-zipfian Timeline workload three ways:

- stand-alone Mnemo (first-touch order, Fig 2a);
- Mnemo + an external generic tiering tool (Fig 2b) — here simulated
  by a key-ID split, i.e. "no intelligence" static partitioning;
- MnemoT (accesses/size weights, Fig 2c).

and prints the estimated throughput each ordering achieves at matched
memory-cost points, plus the SLO-driven sizing each one selects.

Run:  python examples/tiering_comparison.py
"""

import numpy as np

from repro import ExternalTieringMnemo, Mnemo, MnemoT, RedisLike
from repro.ycsb import generate_trace, workload_by_name


def main() -> None:
    trace = generate_trace(workload_by_name("timeline"))

    standalone = Mnemo(engine_factory=RedisLike).profile(trace)
    keyid_order = np.arange(trace.n_keys, dtype=np.int64)
    external = ExternalTieringMnemo(engine_factory=RedisLike).profile(
        trace, external_order=keyid_order
    )
    tiered = MnemoT(engine_factory=RedisLike).profile(trace)

    reports = {
        "key-ID split (no tiering)": external,
        "stand-alone (first touch)": standalone,
        "MnemoT (accesses/size)": tiered,
    }

    costs = [0.3, 0.5, 0.76, 1.0]
    header = (f"{'ordering':<28}" +
              "".join(f"  thr@{c:.0%} cost" for c in costs))
    print(header)
    print("-" * len(header))
    for name, report in reports.items():
        cells = "".join(
            f"  {report.curve.throughput_at_cost(c):>12,.0f}" for c in costs
        )
        print(f"{name:<28}{cells}")

    print("\nSLO-driven sizing (<=10% slowdown from FastMem-only):")
    for name, report in reports.items():
        choice = report.choose(0.10)
        print(f"  {name:<28} cost {choice.cost_factor:.0%}  "
              f"FastMem share {choice.capacity_ratio:.0%}")

    gain = (tiered.curve.throughput_at_cost(0.76)
            / external.curve.throughput_at_cost(0.76) - 1)
    print(
        f"\nat the paper's 70:30 walkthrough point (~76% cost), MnemoT's "
        f"tiering buys {gain:.1%} throughput over an untiered split "
        f"(paper: ~6%)."
    )


if __name__ == "__main__":
    main()
