"""SLO guardrails — the checks to run before trusting a sizing.

A Mnemo recommendation is only as good as its assumptions.  This
example runs the consultant on a workload and then stress-tests the
recommendation along the three axes the extensions cover:

1. **drift** — is the access pattern stationary enough for a static
   placement at all?
2. **price/device uncertainty** — how far does the recommendation move
   across the projected NVM price band and across faster/slower parts?
3. **tail latency under load** — what p99 does the chosen configuration
   produce at realistic offered loads (the model only predicts means)?
4. **the closed guard loop** — drift detection, recommendation
   validation against an error budget, and fallback re-planning when
   the live workload has rotated away from the plan (docs/GUARD.md).

Run:  python examples/slo_guardrails.py [workload]
"""

import sys

from repro import Mnemo, RedisLike
from repro.core.drift import analyze_drift
from repro.core.whatif import (
    DEFAULT_SCENARIOS,
    PRICE_BAND,
    device_sensitivity,
    price_sensitivity,
)
from repro.kvstore import HybridDeployment
from repro.memsim import HybridMemorySystem
from repro.queueing import simulate_open_loop
from repro.ycsb import generate_trace, workload_by_name


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "trending"
    trace = generate_trace(workload_by_name(name))

    mnemo = Mnemo(engine_factory=RedisLike)
    report = mnemo.profile(trace)
    choice = report.choose(0.10)
    print(f"recommendation for {name!r}: {choice.capacity_ratio:.0%} "
          f"FastMem at {choice.cost_factor:.0%} of DRAM-only cost\n")

    # 1. drift guardrail -----------------------------------------------------
    drift = analyze_drift(trace, capacity_fraction=choice.capacity_ratio
                          or 0.05)
    print(f"[drift]   {drift.recommendation}\n")

    # 2. uncertainty guardrail -----------------------------------------------
    price_choices = price_sensitivity(report.curve, PRICE_BAND)
    costs = [c.cost_factor for c in price_choices.values()]
    print(f"[price]   across the 3-7x NVM price band the cost lands in "
          f"{min(costs):.0%}..{max(costs):.0%} of DRAM-only "
          f"(placement itself is price-independent)")
    outcomes = device_sensitivity(trace, RedisLike, DEFAULT_SCENARIOS)
    shares = {o.scenario.name: o.choice.capacity_ratio for o in outcomes}
    print(f"[device]  DRAM share needed: "
          + ", ".join(f"{n} -> {s:.0%}" for n, s in shares.items()) + "\n")

    # 3. tail guardrail --------------------------------------------------------
    deployment = mnemo.place(report, choice)
    print(f"[tails]   p99 at the chosen placement (model predicts means "
          f"only):")
    for rho in (0.5, 0.8, 0.95):
        r = simulate_open_loop(trace, deployment, rho, seed=9)
        print(f"            load {rho:.0%}: avg "
              f"{r.avg_sojourn_ns / 1000:.0f} us, "
              f"p99 {r.p99_ns / 1000:.0f} us "
              f"({r.tail_inflation:.1f}x the mean service time)")

    # 4. the closed guard loop -------------------------------------------------
    from repro.guard.drift import rotate_hot_set

    live = rotate_hot_set(trace, trace.n_keys // 2)
    outcome = mnemo.guard_loop().run(report, trace, live_trace=live)
    print(f"\n[guard]   after rotating the hot set through half the key "
          f"space:")
    for line in outcome.lines():
        print(f"            {line}")


if __name__ == "__main__":
    main()
