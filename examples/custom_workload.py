"""Custom workloads — bring your own trace, downsample it, profile it.

Mnemo's input is just a key sequence with request types plus the
key-value sizes (Section IV, "Interfacing with Mnemo").  This example:

1. builds a custom workload descriptor (a photo-serving cache with a
   daily-peak hotspot and 20 % updates), saves it to the CSV format and
   loads it back — the round trip a real user would perform;
2. downsamples it 10x (Section V-A) and shows the key distribution is
   preserved;
3. profiles both the full and the downsampled versions and compares the
   sizing conclusions.

Run:  python examples/custom_workload.py
"""

import tempfile
from pathlib import Path

from repro import MnemoT, RedisLike, WorkloadDescriptor
from repro.ycsb import downsample, generate_trace, save_trace_csv
from repro.ycsb.distributions import DistributionSpec
from repro.ycsb.sampling import distribution_distance
from repro.ycsb.sizes import SizeModel
from repro.ycsb.workload import WorkloadSpec


def build_custom_workload():
    """A photo cache: 30 % hot keys get 85 % of traffic, 80:20 R:W."""
    spec = WorkloadSpec(
        name="photo_cache",
        distribution=DistributionSpec(
            name="hotspot", hot_data_fraction=0.3, hot_op_fraction=0.85
        ),
        read_fraction=0.8,
        size_model=SizeModel(name="photos", median_bytes=60_000, sigma=0.5),
        n_keys=10_000,
        n_requests=100_000,
        seed=99,
    )
    return generate_trace(spec)


def main() -> None:
    trace = build_custom_workload()

    # -- CSV round trip (the real user interface) -------------------------
    with tempfile.TemporaryDirectory() as tmp:
        req_path, data_path = save_trace_csv(trace, tmp)
        print(f"saved descriptor: {Path(req_path).name}, "
              f"{Path(data_path).name}")
        descriptor = WorkloadDescriptor.from_csv(req_path, data_path)
    print(f"loaded {descriptor.n_requests:,} requests over "
          f"{descriptor.n_keys:,} keys "
          f"({descriptor.dataset_bytes / 1e6:.0f} MB dataset)\n")

    # -- downsampling ------------------------------------------------------
    down = downsample(trace, factor=10, seed=1)
    ks = distribution_distance(trace, down)
    print(f"downsampled 10x: {down.n_requests:,} requests, "
          f"KS distance to full distribution = {ks:.4f}\n")

    # -- profile both ------------------------------------------------------
    mnemot = MnemoT(engine_factory=RedisLike)
    for label, workload in (("full", trace), ("1/10 sample", down)):
        report = mnemot.profile(workload)
        choice = report.choose(max_slowdown=0.10)
        print(f"[{label}]")
        print(f"  Fast/Slow throughput gap : "
              f"{report.baselines.throughput_gap:.2f}x")
        print(f"  sizing @10% SLO          : "
              f"{choice.capacity_ratio:.0%} FastMem, "
              f"cost {choice.cost_factor:.0%} of FastMem-only\n")

    print("the 10x sample reaches the same sizing conclusion at a tenth "
          "of the profiling time.")


if __name__ == "__main__":
    main()
