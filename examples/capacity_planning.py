"""Capacity planning — which store, which sizing, what does it save?

The scenario the paper's introduction motivates: an operator hosts a
data-serving workload in the cloud, where memory is 60-85 % of the VM
bill.  This example:

1. reproduces the Figure 1 analysis to get the memory share of a
   Memory-Optimized VM's price;
2. profiles every Table III workload on all three store engines;
3. prints, per (store, workload), the cheapest hybrid sizing meeting a
   10 % slowdown SLO and the resulting saving on the *whole VM bill*.

Run:  python examples/capacity_planning.py
"""

import numpy as np

from repro import DynamoLike, MemcachedLike, Mnemo, RedisLike
from repro.pricing import (
    catalog_for,
    fit_unit_costs,
    memory_cost_fractions,
    provider_catalog,
)
from repro.ycsb import TABLE_III_WORKLOADS, generate_trace

ENGINES = {
    "redis": RedisLike,
    "memcached": MemcachedLike,
    "dynamodb": DynamoLike,
}


def vm_memory_share() -> float:
    """Median memory-cost share of the AWS ElastiCache r5 family."""
    fit = fit_unit_costs(provider_catalog("aws"))
    fractions = memory_cost_fractions(catalog_for("aws/cache.r5"), fit)
    return float(np.median(list(fractions.values())))


def main() -> None:
    mem_share = vm_memory_share()
    print(f"memory is {mem_share:.0%} of a cache.r5 VM's hourly price\n")

    header = (f"{'store':<12} {'workload':<18} {'mem cost':>9} "
              f"{'mem saving':>11} {'VM bill saving':>15}")
    print(header)
    print("-" * len(header))

    traces = {w.name: generate_trace(w) for w in TABLE_III_WORKLOADS}
    for engine_name, factory in ENGINES.items():
        mnemo = Mnemo(engine_factory=factory)
        for wname, trace in traces.items():
            choice = mnemo.profile(trace).choose(max_slowdown=0.10)
            mem_saving = 1 - choice.cost_factor
            # the hybrid sizing only touches the memory share of the bill
            bill_saving = mem_saving * mem_share
            print(f"{engine_name:<12} {wname:<18} "
                  f"{choice.cost_factor:>8.0%} {mem_saving:>10.0%} "
                  f"{bill_saving:>14.0%}")

    print(
        "\nreading: memcached tolerates SlowMem everywhere (cost floor "
        "20%); redis saves most on hotspot patterns; dynamodb only "
        "tolerates small SlowMem shares."
    )


if __name__ == "__main__":
    main()
