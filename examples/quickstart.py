"""Quickstart — profile a workload and pick a cost-efficient sizing.

Runs stand-alone Mnemo (Fig 2a) on the paper's Trending workload
against the Redis-like store, prints the profiling summary, writes the
3-column CSV the paper describes, and realises the 10 %-SLO sizing as
an actual two-server deployment.

Run:  python examples/quickstart.py
"""

from pathlib import Path

from repro import Mnemo, RedisLike
from repro.ycsb import generate_trace, workload_by_name


def main() -> None:
    # 1. the workload: 10,000 keys / 100,000 requests, hotspot reads
    trace = generate_trace(workload_by_name("trending"))

    # 2. profile it: two real baseline executions + the analytic sweep
    mnemo = Mnemo(engine_factory=RedisLike)
    report = mnemo.profile(trace)
    print(report.summary())

    # 3. the paper's CSV output: key id, estimated throughput, cost factor
    out = Path("examples/output/mnemo_trending.csv")
    report.write_csv(out)
    print(f"\nwrote estimate curve to {out} ({report.curve.n_keys} rows)")

    # 4. pick the cheapest sizing within 10 % of FastMem-only throughput
    choice = report.choose(max_slowdown=0.10)
    print(
        f"\nchosen sizing: {choice.n_fast_keys:,} keys "
        f"({choice.fast_bytes / 1e6:.0f} MB) in FastMem\n"
        f"  FastMem share   : {choice.capacity_ratio:.0%}\n"
        f"  memory cost     : {choice.cost_factor:.0%} of FastMem-only\n"
        f"  expected slowdown: {choice.slowdown:.1%}"
    )

    # 5. statically place the key-value pairs on the two servers
    deployment = mnemo.place(report, choice)
    print(
        f"\ndeployed: {int(deployment.fast_mask.sum()):,} keys on "
        f"{deployment.fast_server.name}, "
        f"{int((~deployment.fast_mask).sum()):,} keys on "
        f"{deployment.slow_server.name}"
    )


if __name__ == "__main__":
    main()
