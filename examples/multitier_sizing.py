"""Multi-tier sizing — Mnemo's model on a DRAM + NVM + Far system.

The paper sizes a two-component hybrid; future systems add a third,
even cheaper tier (CXL-attached or borrowed remote memory).  This
example generalises the consultant: per-tier baselines, a capacity-grid
sweep, the Pareto frontier, and the cheapest three-tier configuration
within a 10 % slowdown SLO — compared against the best two-tier one.

Run:  python examples/multitier_sizing.py
"""

import numpy as np

from repro.kvstore.profiles import REDIS_PROFILE
from repro.multitier import MultiTierAdvisor, TieredMemorySystem
from repro.ycsb import generate_trace, workload_by_name


def main() -> None:
    trace = generate_trace(workload_by_name("timeline"))
    total = int(trace.record_sizes.sum())

    system = TieredMemorySystem.dram_nvm_far()
    print("tiers:", ", ".join(
        f"{t.name} ({t.latency_ns:.0f} ns, {t.bandwidth_gbps:g} GB/s, "
        f"price {t.price_factor:.0%})" for t in system.tiers
    ))

    advisor = MultiTierAdvisor(system, REDIS_PROFILE)
    baselines = advisor.measure(trace)
    print("\nper-tier baselines (all data in one tier):")
    for tier, run in zip(system.tiers, baselines.runs):
        print(f"  {tier.name:<5}: {run.throughput_ops_s:>8,.0f} ops/s")

    fracs = np.linspace(0.01, 1.0, 20)
    grid = [
        [max(1, int(f0 * total)), max(1, int(f1 * total)), None]
        for f0 in fracs for f1 in fracs if f0 + f1 <= 1.0
    ]
    plans = advisor.sweep(trace, baselines, grid)
    frontier = advisor.pareto(plans)

    print(f"\nPareto frontier ({len(frontier)} of {len(plans)} plans, every 4th):")
    print(f"{'cost':>7} {'est ops/s':>11} {'DRAM':>6} {'NVM':>6} {'Far':>6}")
    for plan in frontier[::4]:
        d, nv, far = plan.tier_shares()
        print(f"{plan.cost_factor:>6.0%} "
              f"{plan.est_throughput_ops_s:>11,.0f} "
              f"{d:>6.0%} {nv:>6.0%} {far:>6.0%}")

    choice = advisor.cheapest_within_slo(plans, baselines, 0.10)
    d, nv, far = choice.tier_shares()
    print(f"\nthree-tier choice @10% SLO: cost {choice.cost_factor:.0%} "
          f"(DRAM {d:.0%} / NVM {nv:.0%} / Far {far:.0%})")

    # two-tier comparison (the paper's setting)
    two = MultiTierAdvisor(TieredMemorySystem.paper_two_tier(),
                           REDIS_PROFILE)
    two_baselines = two.measure(trace)
    two_grid = [[max(1, int(f * total)), None]
                for f in np.linspace(0.005, 1.0, 200)]
    two_choice = two.cheapest_within_slo(
        two.sweep(trace, two_baselines, two_grid), two_baselines, 0.10
    )
    print(f"two-tier choice  @10% SLO: cost {two_choice.cost_factor:.0%}")
    print(f"\nthe far tier absorbs cold data below the two-tier floor: "
          f"{two_choice.cost_factor - choice.cost_factor:+.1%} saved.")


if __name__ == "__main__":
    main()
