"""Deterministic random-number utilities.

Every stochastic component in the library accepts either a ``seed`` integer
or an existing :class:`numpy.random.Generator`.  Routing everything through
:func:`ensure_rng` / :func:`spawn` keeps experiments bit-reproducible while
letting independent subsystems (workload generation, timing noise, sampling)
draw from decorrelated streams.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]

#: Default seed used when a caller passes ``None``.  Fixed so that example
#: scripts and benchmarks are reproducible out of the box.
DEFAULT_SEED = 0x4D6E_656D  # "Mnem"


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    ``None`` maps to :data:`DEFAULT_SEED`; an existing generator is passed
    through unchanged (so callers can share a stream deliberately).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split *rng* into *n* statistically independent child generators."""
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]


def derive_seed(seed: SeedLike, label: str) -> int:
    """Derive a stable integer sub-seed from *seed* and a string *label*.

    Used where a component needs a plain ``int`` seed (e.g. to store in a
    config dataclass) rather than a generator.  The derivation hashes the
    label into the seed material so different labels give different streams.
    """
    if isinstance(seed, np.random.Generator):
        base = int(seed.integers(0, 2**31 - 1))
    else:
        base = DEFAULT_SEED if seed is None else int(seed)
    mix = np.random.SeedSequence([base, *label.encode("utf-8")])
    return int(mix.generate_state(1, dtype=np.uint32)[0])
