"""Rendering of telemetry event logs for the ``mnemo obs`` CLI.

Takes the JSONL records a :class:`~repro.telemetry.session.TelemetrySession`
flushed and produces operator-facing text: the reassembled span tree,
the top-N slow spans, the cache hit rate, the kernel path mix (as ASCII
bars via :mod:`repro.analysis.asciiplot`), and a Prometheus text-format
export of the final metrics for the future served-advisor daemon.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.asciiplot import render_bars
from repro.errors import ConfigurationError
from repro.telemetry.events import read_jsonl
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import build_tree


class RunView:
    """One parsed event log, split by record kind."""

    def __init__(self, records: list[dict], problems: list[str] = ()):  # noqa: B006
        self.problems = list(problems)
        self.header: dict | None = None
        self.spans: list[dict] = []
        self.events: list[dict] = []
        self.metrics: list[dict] = []
        for rec in records:
            kind = rec["kind"]
            if kind == "run" and self.header is None:
                self.header = rec
            elif kind == "span":
                self.spans.append(rec)
            elif kind == "event":
                self.events.append(rec)
            elif kind == "metric":
                self.metrics.append(rec)

    @classmethod
    def load(cls, path: str | Path) -> "RunView":
        """Parse a JSONL event log (invalid lines become ``problems``)."""
        records, problems = read_jsonl(path)
        if not records:
            raise ConfigurationError(
                f"{path}: no valid telemetry records"
                + (f" ({problems[0]})" if problems else "")
            )
        return cls(records, problems)

    @property
    def run_id(self) -> str:
        """The run id stamped on the records."""
        if self.header is not None:
            return self.header["run"]
        first = self.spans or self.events or self.metrics
        return first[0]["run"] if first else "?"

    def counter_total(self, name: str, **match) -> float:
        """Sum of a counter over label sets containing *match*."""
        total = 0.0
        for rec in self.metrics:
            if rec["name"] != name or rec["type"] != "counter":
                continue
            labels = rec.get("labels", {})
            if all(labels.get(k) == v for k, v in match.items()):
                total += rec["value"]
        return total

    def counter_breakdown(self, name: str, label: str) -> dict[str, float]:
        """Counter totals grouped by one label's values."""
        out: dict[str, float] = {}
        for rec in self.metrics:
            if rec["name"] != name or rec["type"] != "counter":
                continue
            key = rec.get("labels", {}).get(label, "?")
            out[key] = out.get(key, 0.0) + rec["value"]
        return out

    def histogram_breakdown(self, name: str, label: str) -> dict[str, dict]:
        """Merged histogram payloads grouped by one label's values.

        Returns ``{label_value: {"buckets": ..., "counts": ...,
        "sum": ..., "count": ...}}`` with same-bucket histograms folded
        together (mismatched bucket layouts keep the first seen).
        """
        out: dict[str, dict] = {}
        for rec in self.metrics:
            if rec["name"] != name or rec["type"] != "histogram":
                continue
            key = rec.get("labels", {}).get(label, "?")
            merged = out.get(key)
            if merged is None:
                out[key] = {
                    "buckets": list(rec["buckets"]),
                    "counts": [int(c) for c in rec["counts"]],
                    "sum": float(rec["sum"]),
                    "count": int(rec["count"]),
                }
            elif list(rec["buckets"]) == merged["buckets"]:
                for i, c in enumerate(rec["counts"]):
                    merged["counts"][i] += int(c)
                merged["sum"] += float(rec["sum"])
                merged["count"] += int(rec["count"])
        return out


def _fmt_ns(ns: float) -> str:
    if ns >= 1e9:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:.1f}ms"
    return f"{ns / 1e3:.0f}us"


def render_span_tree(view: RunView, max_spans: int = 200) -> list[str]:
    """The run's spans as an indented tree with durations.

    Worker subtrees reassemble under their coordinator parent via the
    parent ids carried across the pool boundary.  Sibling order is
    (pid, start) — stable per process.
    """
    roots, children = build_tree(view.spans)
    lines: list[str] = []

    def walk(span: dict, depth: int) -> None:
        if len(lines) >= max_spans:
            return
        attrs = span.get("attrs", {})
        label = attrs.get("label") or attrs.get("workload") or ""
        tag = f" [{label}]" if label else ""
        pid = span["pid"]
        lines.append(
            f"{'  ' * depth}{span['name']}{tag}  "
            f"{_fmt_ns(span['duration_ns'])}  (pid {pid})"
        )
        for child in children.get(span["span"], []):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    if len(view.spans) > max_spans:
        lines.append(f"... {len(view.spans) - max_spans} more spans")
    return lines or ["(no spans recorded)"]


def render_slow_spans(view: RunView, top: int = 10) -> list[str]:
    """The *top* slowest spans, widest first."""
    if not view.spans:
        return ["(no spans recorded)"]
    ranked = sorted(
        view.spans, key=lambda s: s["duration_ns"], reverse=True,
    )[:top]
    lines = [f"{'span':<28} {'label':<34} {'duration':>10}"]
    for s in ranked:
        label = str(s.get("attrs", {}).get("label", ""))[:34]
        lines.append(
            f"{s['name']:<28} {label:<34} {_fmt_ns(s['duration_ns']):>10}"
        )
    return lines


def render_cache_summary(view: RunView) -> list[str]:
    """Cache hit rate and quarantine census from the final counters."""
    hits = view.counter_total("cache.lookup", outcome="hit")
    misses = view.counter_total("cache.lookup", outcome="miss")
    total = hits + misses
    if total == 0:
        return ["cache: no lookups recorded"]
    lines = [
        f"cache: {int(total)} lookups, hit rate {hits / total:.1%} "
        f"({int(hits)} hits / {int(misses)} misses)"
    ]
    by_kind = view.counter_breakdown("cache.lookup", "kind")
    for kind in sorted(by_kind):
        kh = view.counter_total("cache.lookup", kind=kind, outcome="hit")
        lines.append(f"  {kind:<10} {int(by_kind[kind]):>6} lookups  "
                     f"{kh / by_kind[kind]:.0%} hit")
    quarantined = view.counter_total("cache.quarantine")
    if quarantined:
        lines.append(f"  quarantined: {int(quarantined)} corrupt entries")
    return lines


def render_path_mix(view: RunView, width: int = 40) -> list[str]:
    """The memsim path mix (per-deployment / batch kernel / analytic)."""
    mix = view.counter_breakdown("memsim.path", "path")
    if not mix:
        return ["kernel paths: none recorded"]
    labels = sorted(mix)
    lines = ["kernel path mix (placements measured per path):"]
    lines += render_bars(labels, [mix[k] for k in labels], width=width)
    fallbacks = view.counter_total("memsim.fallback")
    if fallbacks:
        lines.append(
            f"  fast-path fallbacks: {int(fallbacks)} "
            "(live-seeded client bypassed fingerprinting)"
        )
    return lines


def histogram_quantile(payload: dict, q: float) -> float | None:
    """Approximate quantile *q* from a histogram payload (upper bound).

    Returns the upper bound of the bucket containing the *q*-th
    observation — the standard bucketed-histogram estimate, biased
    high by at most one bucket width.  ``inf``-bucket hits fall back
    to the mean (better than reporting infinity); None when empty.
    """
    count = int(payload.get("count", 0))
    if count == 0:
        return None
    rank = q * count
    seen = 0
    for bound, c in zip(payload["buckets"], payload["counts"]):
        seen += int(c)
        if seen >= rank:
            return float(bound)
    return payload["sum"] / count


def render_request_plane(view: RunView) -> list[str]:
    """The served-advisor request-plane section of the ``obs`` report.

    Empty when the log contains no ``serve.control`` traffic, so the
    section only appears for daemon runs.
    """
    ops = view.counter_breakdown("serve.control", "op")
    if not ops:
        return []
    total = int(sum(ops.values()))
    lines = [f"request plane: {total} control requests"]
    latency = view.histogram_breakdown("serve.request_s", "op")
    for op in sorted(ops):
        line = f"  {op:<10} {int(ops[op]):>6}"
        h = latency.get(op)
        if h and h["count"]:
            p50 = histogram_quantile(h, 0.50)
            p99 = histogram_quantile(h, 0.99)
            line += (
                f"  mean {h['sum'] / h['count'] * 1e3:.1f}ms"
                f"  p50<={p50 * 1e3:.0f}ms  p99<={p99 * 1e3:.0f}ms"
            )
        lines.append(line)
    shed = view.counter_total("serve.shed")
    deadline = view.counter_total("serve.deadline_exceeded")
    unauthorized = view.counter_total("serve.unauthorized")
    degraded = view.counter_total("serve.degraded")
    stale = view.counter_total("serve.stale_served")
    troubles = []
    if shed:
        troubles.append(f"shed {int(shed)}")
    if deadline:
        troubles.append(f"deadline_exceeded {int(deadline)}")
    if unauthorized:
        troubles.append(f"unauthorized {int(unauthorized)}")
    if degraded:
        troubles.append(f"degraded {int(degraded)} "
                        f"(stale served {int(stale)})")
    if troubles:
        lines.append("  " + ", ".join(troubles))
    return lines


def render_run(view: RunView, top: int = 10) -> str:
    """The full ``mnemo obs`` report for one event log."""
    lines = [f"run {view.run_id}"]
    if view.header is not None and view.header.get("attrs"):
        attrs = view.header["attrs"]
        described = ", ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        lines.append(f"  {described}")
    lines.append(
        f"  {len(view.spans)} spans, {len(view.events)} events, "
        f"{len(view.metrics)} metrics"
    )
    if view.problems:
        lines.append(f"  {len(view.problems)} invalid lines skipped")
    lines += ["", "span tree:"]
    lines += [f"  {l}" for l in render_span_tree(view)]
    lines += ["", f"top {top} slow spans:"]
    lines += [f"  {l}" for l in render_slow_spans(view, top=top)]
    lines.append("")
    lines += render_cache_summary(view)
    lines.append("")
    lines += render_path_mix(view)
    plane = render_request_plane(view)
    if plane:
        lines.append("")
        lines += plane
    events = _event_counts(view)
    if events:
        lines += ["", "events:"]
        lines += [f"  {name:<28} {n:>6}" for name, n in events]
    return "\n".join(lines)


def _event_counts(view: RunView) -> list[tuple[str, int]]:
    counts: dict[str, int] = {}
    for ev in view.events:
        counts[ev["name"]] = counts.get(ev["name"], 0) + 1
    return sorted(counts.items())


def to_prometheus(view: RunView) -> str:
    """Re-render the log's final metrics in Prometheus text format."""
    registry = MetricsRegistry()
    registry.merge([
        {k: v for k, v in rec.items() if k not in ("run", "schema", "kind")}
        for rec in view.metrics
    ])
    return registry.to_prometheus()
