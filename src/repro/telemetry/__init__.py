"""repro.telemetry — deterministic tracing, metrics and run profiling.

The observability substrate under the whole pipeline: a zero-dependency
metrics registry (:mod:`~repro.telemetry.metrics`), a span tracer on
monotonic clocks that survives process-pool round trips
(:mod:`~repro.telemetry.spans`), and a structured JSONL event log keyed
by a per-run id (:mod:`~repro.telemetry.events`).  ``mnemo obs`` renders
a run's log into a span tree, slow-span table, cache hit rate and kernel
path mix (:mod:`~repro.telemetry.render`).

The hard design rule — tested by ``tests/telemetry/test_determinism.py``
and gated by ``make bench-obs`` — is that telemetry is **off-path**:

- instrumentation only *reads* pipeline state; it never touches RNG
  streams, fingerprints, placements or measured numbers, so a sweep is
  bit-identical with telemetry enabled or disabled;
- when no session is active (the default), every hook below is a
  constant-time no-op that allocates nothing;
- enabling it costs <= 3% on a validator-style sweep, the floor
  recorded in ``BENCH_obs.json``.

Usage — instrumented code calls the module-level hooks unconditionally::

    from repro import telemetry

    telemetry.count("cache.lookup", kind="results", outcome="hit")
    with telemetry.span("runner.sweep", n_specs=len(specs)):
        ...
    telemetry.event("runner.retry", label=spec.label, attempt=2)

and an operator (or the CLI's ``--obs PATH`` flag) opts in per run::

    with telemetry.session(sink="run.jsonl") as tel:
        runner.sweep(specs)
    # run.jsonl now holds the spans, events and final metrics
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path

from repro.telemetry.events import (
    EVENT_SCHEMA_VERSION,
    read_jsonl,
    validate_record,
    write_jsonl,
)
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.session import (
    TelemetrySession,
    TelemetrySnapshot,
    WorkerTelemetry,
)
from repro.telemetry.spans import NULL_SPAN, SpanRecord, Tracer, build_tree

#: The process-wide active session (None = telemetry disabled).
_ACTIVE: TelemetrySession | None = None


def get() -> TelemetrySession | None:
    """The active session, or None when telemetry is disabled."""
    return _ACTIVE


def enabled() -> bool:
    """True when a telemetry session is active in this process."""
    return _ACTIVE is not None


def activate(session: TelemetrySession) -> TelemetrySession:
    """Make *session* the process-wide active session."""
    global _ACTIVE
    _ACTIVE = session
    return session


def deactivate() -> TelemetrySession | None:
    """Deactivate (and return) the active session, if any."""
    global _ACTIVE
    session, _ACTIVE = _ACTIVE, None
    return session


@contextmanager
def session(
    run_id: str | None = None,
    sink: str | Path | None = None,
):
    """Activate a fresh session for the duration of the ``with`` block.

    On exit the session is deactivated and — when *sink* is given — its
    JSONL event log is flushed there.  Yields the session so callers
    can inspect metrics or stamp :attr:`~TelemetrySession.run_attrs`.
    """
    tel = activate(TelemetrySession(run_id=run_id, sink=sink))
    try:
        yield tel
    finally:
        deactivate()
        tel.close()


# -- instrumentation hooks (constant-time no-ops when disabled) ---------------


def count(name: str, value: float = 1.0, **labels) -> None:
    """Increment a counter on the active session (no-op when disabled)."""
    if _ACTIVE is not None:
        _ACTIVE.count(name, value, **labels)


def gauge(name: str, value: float, **labels) -> None:
    """Set a gauge on the active session (no-op when disabled)."""
    if _ACTIVE is not None:
        _ACTIVE.gauge(name, value, **labels)


def observe(name: str, value: float, **labels) -> None:
    """Record a histogram observation (no-op when disabled)."""
    if _ACTIVE is not None:
        _ACTIVE.observe(name, value, **labels)


def event(name: str, **attrs) -> None:
    """Record a structured event (no-op when disabled)."""
    if _ACTIVE is not None:
        _ACTIVE.event(name, **attrs)


def span(name: str, **attrs):
    """Open a span on the active session (shared no-op when disabled)."""
    if _ACTIVE is None:
        return NULL_SPAN
    return _ACTIVE.span(name, **attrs)


# -- pool-worker plumbing -----------------------------------------------------


def worker_config() -> WorkerTelemetry | None:
    """What to put in a task payload so a worker continues this run."""
    if _ACTIVE is None:
        return None
    return _ACTIVE.worker_config()


def activate_worker(config: WorkerTelemetry | None) -> None:
    """Activate an in-memory worker session from a payload config.

    No-op when the coordinator ran without telemetry (config None).
    """
    if config is not None:
        activate(TelemetrySession(
            run_id=config.run_id, root_id=config.parent_id,
        ))


def drain_worker() -> TelemetrySnapshot | None:
    """Deactivate the worker session and export its snapshot (or None)."""
    tel = deactivate()
    return tel.snapshot() if tel is not None else None


def absorb(snapshot: TelemetrySnapshot | None) -> None:
    """Fold a worker snapshot into the active session (no-op otherwise)."""
    if _ACTIVE is not None and snapshot is not None:
        _ACTIVE.absorb(snapshot)


__all__ = [
    "EVENT_SCHEMA_VERSION",
    "DEFAULT_BUCKETS",
    "NULL_SPAN",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanRecord",
    "TelemetrySession",
    "TelemetrySnapshot",
    "Tracer",
    "WorkerTelemetry",
    "absorb",
    "activate",
    "activate_worker",
    "build_tree",
    "count",
    "deactivate",
    "drain_worker",
    "enabled",
    "event",
    "gauge",
    "get",
    "observe",
    "read_jsonl",
    "session",
    "span",
    "validate_record",
    "worker_config",
    "write_jsonl",
]
