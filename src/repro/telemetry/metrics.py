"""Zero-dependency metrics primitives: counters, gauges, histograms.

The registry is deliberately small: three metric types, label support,
snapshot/merge (so pool workers can ship their metrics back to the
coordinating process alongside results), and Prometheus text-format
rendering for the future served-advisor daemon.  Nothing here touches
RNG streams, fingerprints or simulated numbers — metrics observe the
pipeline, they never participate in it.

All operations are in-memory and allocation-light; the instrumented hot
paths (cache probes, kernel placements) call :meth:`Counter.inc` a
handful of times per multi-millisecond measurement, so the overhead
budget in ``BENCH_obs.json`` holds with wide margin.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.errors import ConfigurationError

#: Default histogram bucket upper bounds (seconds-scale durations).
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)

#: Label key/value pairs as stored internally (sorted, stringified).
LabelsKey = tuple[tuple[str, str], ...]


def labels_key(labels: dict[str, object]) -> LabelsKey:
    """Canonical (sorted, stringified) form of a label set."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be >= 0) to the counter."""
        if amount < 0:
            raise ConfigurationError(
                f"counters only go up; got increment {amount}"
            )
        self.value += amount

    def payload(self) -> dict:
        """JSON-ready value payload."""
        return {"value": self.value}

    def merge(self, payload: dict) -> None:
        """Fold another counter's payload into this one."""
        self.value += float(payload["value"])


class Gauge:
    """A value that can go up and down (last write wins on merge)."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to *value*."""
        self.value = float(value)

    def payload(self) -> dict:
        """JSON-ready value payload."""
        return {"value": self.value}

    def merge(self, payload: dict) -> None:
        """Adopt the merged-in gauge's value (last write wins)."""
        self.value = float(payload["value"])


class Histogram:
    """Fixed-bucket histogram (cumulative on render, like Prometheus).

    Buckets are upper bounds; an implicit ``+Inf`` bucket catches the
    rest.  ``counts[i]`` is the number of observations in bucket ``i``
    (non-cumulative internally; the Prometheus renderer accumulates).
    """

    kind = "histogram"

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ConfigurationError(
                f"histogram buckets must be strictly increasing, got {bounds}"
            )
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def payload(self) -> dict:
        """JSON-ready value payload."""
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    def merge(self, payload: dict) -> None:
        """Fold another histogram's payload into this one."""
        if tuple(payload["buckets"]) != self.buckets:
            raise ConfigurationError(
                "cannot merge histograms with different bucket bounds"
            )
        for i, c in enumerate(payload["counts"]):
            self.counts[i] += int(c)
        self.sum += float(payload["sum"])
        self.count += int(payload["count"])


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Holds every metric of one telemetry session, keyed by name+labels."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelsKey], Counter | Gauge | Histogram] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def _get(self, cls, name: str, labels: dict, **kwargs):
        key = (name, labels_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(**kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise ConfigurationError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, **labels) -> Counter:
        """The counter registered under (*name*, *labels*)."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        """The gauge registered under (*name*, *labels*)."""
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS, **labels,
    ) -> Histogram:
        """The histogram registered under (*name*, *labels*)."""
        return self._get(Histogram, name, labels, buckets=buckets)

    # -- snapshot / merge -----------------------------------------------------

    def snapshot(self) -> list[dict]:
        """JSON-ready records, one per metric, deterministic order."""
        out = []
        for (name, lk), metric in sorted(self._metrics.items()):
            out.append({
                "name": name,
                "type": metric.kind,
                "labels": dict(lk),
                **metric.payload(),
            })
        return out

    def merge(self, records: list[dict]) -> None:
        """Fold a :meth:`snapshot` (e.g. from a pool worker) into this one.

        Counters and histograms accumulate; gauges adopt the merged-in
        value (last write wins — worker gauges are rare and per-run).
        """
        for rec in records:
            cls = _KINDS[rec["type"]]
            kwargs = (
                {"buckets": tuple(rec["buckets"])}
                if rec["type"] == "histogram" else {}
            )
            metric = self._get(cls, rec["name"], rec.get("labels", {}), **kwargs)
            metric.merge(rec)

    # -- export ---------------------------------------------------------------

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (0.0.4) of every metric.

        Metric names have dots replaced by underscores; histogram
        buckets render cumulatively with the standard ``_bucket`` /
        ``_sum`` / ``_count`` series.
        """
        lines: list[str] = []
        typed: set[str] = set()
        for rec in self.snapshot():
            name = rec["name"].replace(".", "_").replace("-", "_")
            if name not in typed:
                lines.append(f"# TYPE {name} {rec['type']}")
                typed.add(name)
            labels = rec["labels"]
            if rec["type"] == "histogram":
                cum = 0
                for bound, count in zip(
                    [*rec["buckets"], "+Inf"],
                    rec["counts"],
                ):
                    cum += count
                    le = {**labels, "le": bound}
                    lines.append(f"{name}_bucket{_label_str(le)} {cum}")
                lines.append(f"{name}_sum{_label_str(labels)} {rec['sum']:g}")
                lines.append(
                    f"{name}_count{_label_str(labels)} {rec['count']}"
                )
            else:
                lines.append(f"{name}{_label_str(labels)} {rec['value']:g}")
        return "\n".join(lines) + ("\n" if lines else "")


def _label_str(labels: dict) -> str:
    if not labels:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + body + "}"
