"""Span tracing on monotonic clocks with cross-process reassembly.

A span is one timed region of the pipeline — a sweep, one experiment,
one validation replay.  Spans nest: the tracer keeps the current span in
a :class:`contextvars.ContextVar`, so ``with tracer.span(...)``
automatically records its parent and the ``mnemo obs`` CLI can rebuild
the run's tree afterwards.

Two design points matter for the pipeline this instruments:

- **monotonic clocks** — spans time with :func:`time.perf_counter_ns`,
  which never goes backwards but is only comparable *within* one
  process.  A span therefore carries its duration and its origin PID;
  cross-process ordering comes from the tree structure, never from
  comparing raw timestamps.
- **pool round trips** — :class:`SpanRecord` is a frozen, picklable
  dataclass.  A worker process runs its own tracer rooted at a parent
  span id handed over in the task payload, and ships its finished spans
  back inside the :class:`~repro.telemetry.session.TelemetrySnapshot`
  that rides alongside the result — so worker spans reassemble into the
  coordinator's tree with correct parentage.
"""

from __future__ import annotations

import os
import time
from contextvars import ContextVar
from dataclasses import dataclass, field


@dataclass(frozen=True)
class SpanRecord:
    """One finished span (picklable; JSON-ready via :meth:`to_record`)."""

    name: str
    span_id: str
    parent_id: str | None
    start_ns: int
    duration_ns: int
    pid: int
    attrs: dict = field(default_factory=dict)

    def to_record(self) -> dict:
        """The JSONL payload of this span (sans the run envelope)."""
        return {
            "name": self.name,
            "span": self.span_id,
            "parent": self.parent_id,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "pid": self.pid,
            "attrs": dict(self.attrs),
        }


class ActiveSpan:
    """A span being timed; usable as a context manager.

    ``set(key, value)`` attaches attributes while the span is open —
    e.g. the cache provenance of an experiment, known only at the end.
    """

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "attrs",
                 "_start", "_token")

    def __init__(self, tracer: "Tracer", name: str, parent_id: str | None,
                 attrs: dict):
        self._tracer = tracer
        self.name = name
        self.span_id = tracer._next_id()
        self.parent_id = parent_id
        self.attrs = attrs
        self._start = 0
        self._token = None

    def set(self, key: str, value) -> None:
        """Attach (or overwrite) one attribute."""
        self.attrs[key] = value

    def __enter__(self) -> "ActiveSpan":
        self._token = self._tracer._current.set(self.span_id)
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end = time.perf_counter_ns()
        self._tracer._current.reset(self._token)
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._finish(SpanRecord(
            name=self.name,
            span_id=self.span_id,
            parent_id=self.parent_id,
            start_ns=self._start,
            duration_ns=end - self._start,
            pid=self._tracer.pid,
            attrs=self.attrs,
        ))


class NullSpan:
    """Shared no-op stand-in returned when telemetry is disabled."""

    __slots__ = ()

    def set(self, key: str, value) -> None:
        """No-op."""

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NULL_SPAN = NullSpan()


class Tracer:
    """Produces nested spans and collects the finished records.

    Span ids are ``"<pid hex>-<sequence>"`` — unique within a run even
    across pool workers, with no global coordination.
    """

    def __init__(self, root_id: str | None = None):
        self.pid = os.getpid()
        self.records: list[SpanRecord] = []
        self._seq = 0
        #: parent id applied to spans opened with no enclosing span —
        #: how a worker's tree hangs off the coordinator's sweep span.
        self.root_id = root_id
        self._current: ContextVar[str | None] = ContextVar(
            f"repro-telemetry-span-{id(self)}", default=None,
        )

    def _next_id(self) -> str:
        self._seq += 1
        return f"{self.pid:x}-{self._seq}"

    def _finish(self, record: SpanRecord) -> None:
        self.records.append(record)

    def current_id(self) -> str | None:
        """The id of the innermost open span (or the root id)."""
        cur = self._current.get()
        return cur if cur is not None else self.root_id

    def span(self, name: str, **attrs) -> ActiveSpan:
        """Open a span as a child of the innermost open span."""
        return ActiveSpan(self, name, self.current_id(), attrs)


def build_tree(spans: list[dict]) -> tuple[list[dict], dict[str, list[dict]]]:
    """(roots, children-by-parent) from span JSONL records.

    A span whose parent id is missing from the record set is a root —
    exactly what worker subtrees look like if their run was captured
    without the coordinator's spans.  Sibling order is by origin
    (pid, start_ns), which is stable and meaningful per process.
    """
    by_id = {s["span"]: s for s in spans}
    children: dict[str, list[dict]] = {}
    roots: list[dict] = []
    for s in sorted(spans, key=lambda s: (s["pid"], s["start_ns"])):
        parent = s.get("parent")
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(s)
        else:
            roots.append(s)
    return roots, children
