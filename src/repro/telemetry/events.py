"""The structured JSONL event log: schema, writer, reader, validator.

One telemetry run produces one JSONL file.  Every line is a JSON object
carrying the run envelope (``run`` id, ``kind``, ``schema`` version)
plus a kind-specific body:

``kind="run"``
    The header line (always first): ``started_unix`` wall-clock stamp
    and free-form ``attrs`` (CLI argv, workload names, ...).
``kind="span"``
    A finished span: ``name``, ``span``, ``parent`` (nullable),
    ``start_ns`` (monotonic, per-``pid``), ``duration_ns``, ``attrs``.
``kind="event"``
    A point-in-time structured event: ``name``, ``seq`` (per-process
    emission order), ``pid``, ``attrs``.
``kind="metric"``
    One metric's final value (written at session close): ``name``,
    ``type`` (``counter`` / ``gauge`` / ``histogram``), ``labels``, and
    either ``value`` or the histogram ``buckets``/``counts``/``sum``/
    ``count``.

The schema is validated by :func:`validate_record` — used both by the
tier-1 schema test and by ``mnemo obs`` when loading a file (corrupt
lines are reported, not crashed on).  Wall-clock time appears *only* in
the run header; every duration comes from monotonic clocks.
"""

from __future__ import annotations

import json
from pathlib import Path

#: Event-log schema version; bump on incompatible format changes.
EVENT_SCHEMA_VERSION = 1

#: The line kinds a v1 event log may contain.
KINDS = ("run", "span", "event", "metric")

_METRIC_TYPES = ("counter", "gauge", "histogram")


def _check(cond: bool, errors: list[str], message: str) -> None:
    if not cond:
        errors.append(message)


def validate_record(obj: object) -> list[str]:
    """Schema violations of one parsed JSONL record (empty = valid)."""
    errors: list[str] = []
    if not isinstance(obj, dict):
        return ["record is not a JSON object"]
    _check(isinstance(obj.get("run"), str) and obj.get("run") != "",
           errors, "missing/empty 'run' id")
    _check(obj.get("schema") == EVENT_SCHEMA_VERSION, errors,
           f"schema must be {EVENT_SCHEMA_VERSION}, got {obj.get('schema')!r}")
    kind = obj.get("kind")
    if kind not in KINDS:
        errors.append(f"unknown kind {kind!r}")
        return errors
    if kind == "run":
        _check(isinstance(obj.get("started_unix"), (int, float)), errors,
               "run header needs a numeric 'started_unix'")
        _check(isinstance(obj.get("attrs"), dict), errors,
               "run header needs an 'attrs' object")
    elif kind == "span":
        _check(isinstance(obj.get("name"), str), errors, "span needs 'name'")
        _check(isinstance(obj.get("span"), str), errors, "span needs 'span' id")
        parent = obj.get("parent")
        _check(parent is None or isinstance(parent, str), errors,
               "'parent' must be a span id or null")
        _check(isinstance(obj.get("start_ns"), int), errors,
               "span needs integer 'start_ns'")
        _check(
            isinstance(obj.get("duration_ns"), int)
            and obj.get("duration_ns", -1) >= 0,
            errors, "span needs integer 'duration_ns' >= 0",
        )
        _check(isinstance(obj.get("pid"), int), errors,
               "span needs integer 'pid'")
        _check(isinstance(obj.get("attrs"), dict), errors,
               "span needs an 'attrs' object")
    elif kind == "event":
        _check(isinstance(obj.get("name"), str), errors, "event needs 'name'")
        _check(isinstance(obj.get("seq"), int), errors,
               "event needs integer 'seq'")
        _check(isinstance(obj.get("pid"), int), errors,
               "event needs integer 'pid'")
        _check(isinstance(obj.get("attrs"), dict), errors,
               "event needs an 'attrs' object")
    elif kind == "metric":
        _check(isinstance(obj.get("name"), str), errors, "metric needs 'name'")
        mtype = obj.get("type")
        _check(mtype in _METRIC_TYPES, errors,
               f"metric type must be one of {_METRIC_TYPES}, got {mtype!r}")
        _check(isinstance(obj.get("labels"), dict), errors,
               "metric needs a 'labels' object")
        if mtype == "histogram":
            _check(isinstance(obj.get("buckets"), list), errors,
                   "histogram needs 'buckets'")
            _check(isinstance(obj.get("counts"), list), errors,
                   "histogram needs 'counts'")
            counts = obj.get("counts")
            buckets = obj.get("buckets")
            if isinstance(counts, list) and isinstance(buckets, list):
                _check(len(counts) == len(buckets) + 1, errors,
                       "histogram 'counts' must have len(buckets) + 1 bins")
            _check(isinstance(obj.get("sum"), (int, float)), errors,
                   "histogram needs numeric 'sum'")
            _check(isinstance(obj.get("count"), int), errors,
                   "histogram needs integer 'count'")
        elif mtype in ("counter", "gauge"):
            _check(isinstance(obj.get("value"), (int, float)), errors,
                   "metric needs numeric 'value'")
    return errors


def write_jsonl(path: str | Path, records: list[dict]) -> Path:
    """Write *records* as one-object-per-line JSON; returns the path.

    Parent directories are created; the write is a single pass (event
    logs are append-shaped, not content-addressed — crash tolerance
    comes from the pipeline's cache, not from the log).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        for rec in records:
            fh.write(json.dumps(rec, sort_keys=True) + "\n")
    return path


def read_jsonl(path: str | Path) -> tuple[list[dict], list[str]]:
    """Parse an event log: (valid records, per-line problem strings).

    Unparseable or schema-violating lines are reported by line number
    and skipped, so a truncated log still renders.
    """
    records: list[dict] = []
    problems: list[str] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                problems.append(f"line {lineno}: unparseable JSON ({exc.msg})")
                continue
            errors = validate_record(obj)
            if errors:
                problems.append(f"line {lineno}: " + "; ".join(errors))
                continue
            records.append(obj)
    return records, problems
