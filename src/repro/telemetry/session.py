"""The telemetry session: one run's metrics, spans and events.

A session is the mutable collection point everything in
:mod:`repro.telemetry` writes into.  Exactly one session is *active* per
process at a time (see the module-level API in
:mod:`repro.telemetry.__init__`); when none is active every
instrumentation call is a cheap no-op — which is the normal state, and
the reason telemetry is provably off-path: disabled instrumentation
executes no arithmetic, touches no RNG stream and allocates nothing on
the measurement path.

Pool round trips: a worker process activates a session built from the
:class:`WorkerTelemetry` config in its task payload, runs, and ships a
:class:`TelemetrySnapshot` back alongside the result.  The coordinator
:meth:`~TelemetrySession.absorb`\\ s the snapshot — spans keep their
worker parentage (rooted at the coordinator span id in the config),
counters and histograms accumulate, events append.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.telemetry.events import EVENT_SCHEMA_VERSION, write_jsonl
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import SpanRecord, Tracer


def _default_run_id() -> str:
    """A run id unique enough for log filenames; never feeds results."""
    return f"{time.strftime('%Y%m%d-%H%M%S')}-{os.getpid()}"


@dataclass(frozen=True)
class TelemetrySnapshot:
    """A picklable export of one session's collected telemetry."""

    run_id: str
    spans: tuple[SpanRecord, ...] = ()
    events: tuple[tuple, ...] = ()  # (name, seq, pid, attrs-items) rows
    metrics: tuple[tuple, ...] = ()  # canonicalized registry snapshot rows

    @staticmethod
    def _freeze_metric(rec: dict) -> tuple:
        return tuple(sorted(
            (k, tuple(v) if isinstance(v, list) else v)
            for k, v in rec.items()
            if k != "labels"
        )) + (("labels", tuple(sorted(rec["labels"].items()))),)

    @staticmethod
    def _thaw_metric(row: tuple) -> dict:
        rec = {}
        for k, v in row:
            if k == "labels":
                rec[k] = dict(v)
            elif isinstance(v, tuple):
                rec[k] = list(v)
            else:
                rec[k] = v
        return rec


@dataclass(frozen=True)
class WorkerTelemetry:
    """What a pool worker needs to continue the coordinator's run.

    Rides in the task payload (frozen, picklable, tiny).  ``parent_id``
    is the coordinator span the worker's spans hang off — normally the
    per-sweep span.
    """

    run_id: str
    parent_id: str | None = None


class TelemetrySession:
    """Collects one run's telemetry; optionally flushes JSONL on close.

    Parameters
    ----------
    run_id:
        Identifier stamped on every record.  Defaults to a
        wall-clock/PID string — telemetry identity never feeds
        fingerprints, so this non-determinism is harmless (tests pin it
        explicitly when they want byte-stable logs).
    sink:
        Path of the JSONL event log written by :meth:`close` (None =
        in-memory only, the worker-process mode).
    root_id:
        Parent span id adopted by top-level spans (worker mode).
    """

    def __init__(
        self,
        run_id: str | None = None,
        sink: str | Path | None = None,
        root_id: str | None = None,
    ):
        self.run_id = run_id or _default_run_id()
        self.sink = Path(sink) if sink is not None else None
        self.started_unix = time.time()
        self.run_attrs: dict = {}
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(root_id=root_id)
        self.events: list[tuple[str, int, int, dict]] = []
        self._pid = os.getpid()
        self._seq = 0
        self._absorbed_spans: list[SpanRecord] = []
        self._absorbed_events: list[tuple[str, int, int, dict]] = []

    # -- recording ------------------------------------------------------------

    def event(self, name: str, **attrs) -> None:
        """Record one structured point-in-time event."""
        self._seq += 1
        self.events.append((name, self._seq, self._pid, attrs))

    def span(self, name: str, **attrs):
        """Open a span (context manager) under the innermost open span."""
        return self.tracer.span(name, **attrs)

    def count(self, name: str, value: float = 1.0, **labels) -> None:
        """Increment the counter (*name*, *labels*)."""
        self.metrics.counter(name, **labels).inc(value)

    def gauge(self, name: str, value: float, **labels) -> None:
        """Set the gauge (*name*, *labels*)."""
        self.metrics.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, **labels) -> None:
        """Record one histogram observation under (*name*, *labels*)."""
        self.metrics.histogram(name, **labels).observe(value)

    # -- pool round trips -----------------------------------------------------

    def worker_config(self) -> WorkerTelemetry:
        """The config a pool worker continues this run with.

        The parent id is the innermost span open *now* (the per-sweep
        span when called from inside one).
        """
        return WorkerTelemetry(
            run_id=self.run_id, parent_id=self.tracer.current_id(),
        )

    def snapshot(self) -> TelemetrySnapshot:
        """Freeze everything collected so far into a picklable value."""
        return TelemetrySnapshot(
            run_id=self.run_id,
            spans=tuple(self.all_spans()),
            events=tuple(
                (name, seq, pid, tuple(sorted(attrs.items())))
                for name, seq, pid, attrs in self.all_events()
            ),
            metrics=tuple(
                TelemetrySnapshot._freeze_metric(rec)
                for rec in self.metrics.snapshot()
            ),
        )

    def absorb(self, snapshot: TelemetrySnapshot | None) -> None:
        """Fold a worker's snapshot into this session (None is a no-op)."""
        if snapshot is None:
            return
        self._absorbed_spans.extend(snapshot.spans)
        self._absorbed_events.extend(
            (name, seq, pid, dict(attrs))
            for name, seq, pid, attrs in snapshot.events
        )
        self.metrics.merge([
            TelemetrySnapshot._thaw_metric(row) for row in snapshot.metrics
        ])

    # -- access / flush -------------------------------------------------------

    def all_spans(self) -> list[SpanRecord]:
        """Own plus absorbed spans (absorbed first — they finished first)."""
        return [*self._absorbed_spans, *self.tracer.records]

    def all_events(self) -> list[tuple[str, int, int, dict]]:
        """Own plus absorbed events."""
        return [*self._absorbed_events, *self.events]

    def records(self) -> list[dict]:
        """Every JSONL record of this session, header first."""
        envelope = {"run": self.run_id, "schema": EVENT_SCHEMA_VERSION}
        out: list[dict] = [{
            **envelope,
            "kind": "run",
            "started_unix": self.started_unix,
            "attrs": dict(self.run_attrs),
        }]
        for span in self.all_spans():
            out.append({**envelope, "kind": "span", **span.to_record()})
        for name, seq, pid, attrs in self.all_events():
            out.append({
                **envelope, "kind": "event",
                "name": name, "seq": seq, "pid": pid, "attrs": dict(attrs),
            })
        for rec in self.metrics.snapshot():
            out.append({**envelope, "kind": "metric", **rec})
        return out

    def close(self) -> Path | None:
        """Flush the JSONL log to the sink (if any); returns its path."""
        if self.sink is None:
            return None
        return write_jsonl(self.sink, self.records())
