"""Workload synthesis from observed traces.

Section V-A: when the real workload is unavailable or too large, "the
user may either create a synthetic workload with similar request
distribution or downsize a real workload".  :mod:`repro.ycsb.sampling`
covers the second path; this module covers the first:

- :func:`fit_trace` characterises an observed trace — classifies the
  key distribution (hotspot / zipfian family / uniform / drifting),
  estimates its parameters, and fits a lognormal record-size model;
- :func:`synthesize` regenerates a fresh trace from the fitted
  characterisation at any requested scale.

The fit is intentionally simple (method-of-moments + rank-frequency
regression); its job is to preserve what Mnemo's model consumes — the
request CDF over keys, the read fraction, and the size distribution —
not to be a general trace synthesiser.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.rng import derive_seed
from repro.ycsb.distributions import DistributionSpec, sample_keys
from repro.ycsb.sizes import SizeModel
from repro.ycsb.workload import Trace


@dataclass(frozen=True)
class TraceCharacterisation:
    """Everything needed to regenerate a statistically similar trace."""

    name: str
    distribution: DistributionSpec
    read_fraction: float
    size_model: SizeModel
    n_keys: int
    n_requests: int
    #: diagnostic: Pearson r between request index and key id (drift)
    temporal_drift: float


def _estimate_theta(counts: np.ndarray) -> float:
    """Zipf exponent from a rank-frequency log-log regression.

    Uses only the head ranks — the tail is undersampled at finite
    trace lengths and flattens the slope — and clips into the
    YCSB-legal (0, 1) range.
    """
    freq = np.sort(counts[counts > 0])[::-1].astype(np.float64)
    n = int(np.clip(freq.size // 20, 2, 200))
    ranks = np.arange(1, n + 1, dtype=np.float64)
    slope = np.polyfit(np.log(ranks), np.log(freq[:n]), 1)[0]
    return float(np.clip(-slope, 0.05, 0.999))


def _hot_set_knee(counts: np.ndarray) -> tuple[int, float, float]:
    """Knee analysis of the hottest-first cumulative request share.

    Returns ``(k, op_share, sharpness)``: the knee index (size of the
    candidate hot set), the request share it serves, and the boundary
    sharpness — mean count just inside the knee over mean count just
    outside.  A hotspot distribution has a near-discontinuous boundary
    (sharpness >> 1); zipfian decays smoothly (sharpness ~ 1-2).
    """
    hot_first = np.sort(counts)[::-1].astype(np.float64)
    total = hot_first.sum()
    cum = np.cumsum(hot_first) / total
    rank_share = np.arange(1, counts.size + 1) / counts.size
    k = int(np.argmax(cum - rank_share)) + 1
    delta = max(1, k // 10)
    inside = hot_first[max(0, k - delta):k].mean()
    outside = hot_first[k:k + delta].mean()
    sharpness = float(inside / outside) if outside > 0 else np.inf
    return k, float(cum[k - 1]), sharpness


def _classify(trace: Trace) -> DistributionSpec:
    """Pick the distribution family that best matches the trace."""
    counts = np.bincount(trace.keys, minlength=trace.n_keys)
    n = trace.n_keys

    # temporal drift: latest-style workloads walk through the key space
    drift = _temporal_drift(trace)
    if drift > 0.6:
        touched = np.unique(trace.keys).size / n
        return DistributionSpec(
            name="latest",
            window_fraction=float(np.clip(1.05 - touched, 0.02, 1.0)),
        )

    cv = counts.std() / counts.mean() if counts.mean() else 0.0
    if cv < 0.5:
        return DistributionSpec(name="uniform")

    # hotspot: flat hot set with a near-discontinuous popularity drop at
    # its boundary; zipfian decays smoothly through the knee
    k_hot, op_share, sharpness = _hot_set_knee(counts)
    head = np.sort(counts)[::-1][:k_hot].astype(np.float64)
    head_cv = head.std() / head.mean()
    if sharpness > 3.0 and head_cv < 0.5:
        return DistributionSpec(
            name="hotspot",
            hot_data_fraction=float(np.clip(k_hot / n, 0.005, 1.0)),
            hot_op_fraction=float(np.clip(op_share, 0.05, 0.999)),
        )

    theta = _estimate_theta(counts)
    # zipfian concentrates on low key ids; scrambled spreads them
    top_ids = np.argsort(counts)[::-1][: max(2, n // 100)]
    if top_ids.mean() < 0.2 * n:
        return DistributionSpec(name="zipfian", theta=theta)
    return DistributionSpec(name="scrambled_zipfian", theta=theta)


def _temporal_drift(trace: Trace) -> float:
    """|Pearson r| between request position and key id (0 = stationary)."""
    if trace.n_requests < 2:
        return 0.0
    pos = np.arange(trace.n_requests, dtype=np.float64)
    keys = trace.keys.astype(np.float64)
    if keys.std() == 0:
        return 0.0
    return float(abs(np.corrcoef(pos, keys)[0, 1]))


def _fit_sizes(trace: Trace) -> SizeModel:
    """Lognormal fit of the record sizes (method of moments in log space)."""
    logs = np.log(trace.record_sizes.astype(np.float64))
    return SizeModel(
        name=f"{trace.name}_sizes",
        median_bytes=max(1, int(round(np.exp(logs.mean())))),
        sigma=float(logs.std()),
        min_bytes=int(trace.record_sizes.min()),
        max_bytes=int(trace.record_sizes.max()),
    )


def fit_trace(trace: Trace) -> TraceCharacterisation:
    """Characterise *trace* for synthesis."""
    if trace.n_requests == 0:
        raise WorkloadError("cannot characterise an empty trace")
    return TraceCharacterisation(
        name=trace.name,
        distribution=_classify(trace),
        read_fraction=trace.read_fraction,
        size_model=_fit_sizes(trace),
        n_keys=trace.n_keys,
        n_requests=trace.n_requests,
        temporal_drift=_temporal_drift(trace),
    )


def synthesize(
    characterisation: TraceCharacterisation,
    n_requests: int | None = None,
    seed: int = 0,
) -> Trace:
    """Generate a fresh trace from a fitted characterisation.

    The synthetic trace draws new keys, operation types and record
    sizes from the fitted models — it shares no randomness with the
    original, only its statistics.
    """
    c = characterisation
    n_req = n_requests if n_requests is not None else c.n_requests
    keys = sample_keys(c.distribution, c.n_keys, n_req,
                       seed=derive_seed(seed, f"{c.name}/synth-keys"))
    rng = np.random.default_rng(derive_seed(seed, f"{c.name}/synth-ops"))
    if c.read_fraction >= 1.0:
        is_read = np.ones(n_req, dtype=bool)
    elif c.read_fraction <= 0.0:
        is_read = np.zeros(n_req, dtype=bool)
    else:
        is_read = rng.random(n_req) < c.read_fraction
    sizes = c.size_model.sample(
        c.n_keys, seed=derive_seed(seed, f"{c.name}/synth-sizes")
    )
    return Trace(
        name=f"{c.name}@synthetic",
        keys=keys,
        is_read=is_read,
        record_sizes=sizes,
    )
