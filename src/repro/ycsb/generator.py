"""Trace generation.

Turns a :class:`~repro.ycsb.workload.WorkloadSpec` into a deterministic
:class:`~repro.ycsb.workload.Trace`.  Keys, operation types and record
sizes are drawn from independent sub-streams derived from the spec's
base seed, so changing e.g. the read ratio leaves the key sequence
untouched — the property the paper's controlled comparisons rely on
(Fig 5b varies read:write over the same access pattern).
"""

from __future__ import annotations

import numpy as np

from repro.rng import derive_seed, ensure_rng
from repro.ycsb.distributions import sample_keys
from repro.ycsb.workload import Trace, WorkloadSpec


def generate_trace(spec: WorkloadSpec) -> Trace:
    """Generate the request trace for *spec* (deterministic in the seed)."""
    key_rng = ensure_rng(derive_seed(spec.seed, f"{spec.name}/keys"))
    op_rng = ensure_rng(derive_seed(spec.seed, f"{spec.name}/ops"))
    size_rng = ensure_rng(derive_seed(spec.seed, f"{spec.name}/sizes"))
    scan_rng = ensure_rng(derive_seed(spec.seed, f"{spec.name}/scans"))

    keys = sample_keys(spec.distribution, spec.n_keys, spec.n_requests, key_rng)
    if spec.read_fraction >= 1.0:
        is_read = np.ones(spec.n_requests, dtype=bool)
    elif spec.read_fraction <= 0.0:
        is_read = np.zeros(spec.n_requests, dtype=bool)
    else:
        is_read = op_rng.random(spec.n_requests) < spec.read_fraction
    if spec.scan_fraction > 0:
        keys, is_read = _expand_scans(spec, keys, is_read, scan_rng)
    sizes = spec.size_model.sample(spec.n_keys, size_rng)
    return Trace(
        name=spec.name,
        keys=keys,
        is_read=is_read,
        record_sizes=sizes,
    )


def _expand_scans(
    spec: WorkloadSpec,
    keys: np.ndarray,
    is_read: np.ndarray,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Turn a fraction of reads into runs of consecutive-key reads.

    A scan of length L starting at key k reads ``k, k+1, ..`` (clipped
    at the key-space edge), matching YCSB's SCAN semantics over an
    ordered store.  The expansion keeps requests in temporal order, so
    window-based analyses remain meaningful.
    """
    read_ids = np.nonzero(is_read)[0]
    n_scans = int(round(spec.scan_fraction * keys.size))
    if n_scans == 0 or read_ids.size == 0:
        return keys, is_read
    scan_ids = rng.choice(read_ids, size=min(n_scans, read_ids.size),
                          replace=False)
    lengths = np.ones(keys.size, dtype=np.int64)
    lengths[scan_ids] = rng.integers(1, spec.scan_max_length + 1,
                                     size=scan_ids.size)

    expanded_keys = np.repeat(keys, lengths)
    offsets = np.arange(expanded_keys.size) - np.repeat(
        np.concatenate(([0], np.cumsum(lengths)[:-1])), lengths
    )
    expanded_keys = np.minimum(expanded_keys + offsets, spec.n_keys - 1)
    expanded_reads = np.repeat(is_read, lengths)
    return expanded_keys.astype(np.int64), expanded_reads
