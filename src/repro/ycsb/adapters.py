"""Adapters for externally collected traces.

Real cache traces (production logs, twemcache-style dumps) use opaque
string keys and carry per-request value sizes.  Mnemo's pipeline wants
a dense integer key space with per-key sizes.  :func:`from_requests`
interns arbitrary keys into dense ids (first-appearance order, so the
touch ordering is preserved) and resolves per-key sizes;
:func:`load_keyed_csv` reads the common ``key,op,size`` line format.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Hashable, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.ycsb.workload import Trace

_READ_OPS = frozenset({"READ", "GET", "GETS"})
_WRITE_OPS = frozenset({"UPDATE", "WRITE", "SET", "PUT", "INSERT", "ADD",
                        "REPLACE", "DELETE", "DEL", "CAS"})


def _classify_op(op: str) -> bool:
    """True for reads; raises on unknown verbs."""
    verb = op.strip().upper()
    if verb in _READ_OPS:
        return True
    if verb in _WRITE_OPS:
        return False
    raise WorkloadError(f"unknown operation verb {op!r}")


def from_requests(
    keys: Sequence[Hashable],
    ops: Sequence[str],
    sizes: Sequence[int],
    name: str = "external",
    size_policy: str = "max",
) -> Trace:
    """Build a :class:`Trace` from raw (key, op, size) request triples.

    Parameters
    ----------
    keys:
        Arbitrary hashable keys; interned to dense ids in
        first-appearance order.
    ops:
        Operation verbs (GET/SET/... — see module constants).
    sizes:
        Per-request value sizes in bytes.  A key's record size is
        resolved across its requests by *size_policy*.
    size_policy:
        ``"max"`` (capacity-safe, default), ``"last"`` (current value),
        or ``"first"``.
    """
    if not (len(keys) == len(ops) == len(sizes)):
        raise WorkloadError("keys, ops and sizes must align")
    if len(keys) == 0:
        raise WorkloadError("empty request stream")
    if size_policy not in ("max", "last", "first"):
        raise WorkloadError(f"unknown size policy {size_policy!r}")

    intern: dict[Hashable, int] = {}
    key_ids = np.empty(len(keys), dtype=np.int64)
    record_sizes: list[int] = []
    for i, (key, size) in enumerate(zip(keys, sizes)):
        size = int(size)
        if size <= 0:
            raise WorkloadError(f"request {i}: non-positive size {size}")
        kid = intern.get(key)
        if kid is None:
            kid = len(intern)
            intern[key] = kid
            record_sizes.append(size)
        else:
            if size_policy == "max":
                record_sizes[kid] = max(record_sizes[kid], size)
            elif size_policy == "last":
                record_sizes[kid] = size
        key_ids[i] = kid

    is_read = np.fromiter((_classify_op(op) for op in ops), dtype=bool,
                          count=len(ops))
    return Trace(
        name=name,
        keys=key_ids,
        is_read=is_read,
        record_sizes=np.array(record_sizes, dtype=np.int64),
    )


def load_keyed_csv(
    path: str | Path,
    name: str | None = None,
    size_policy: str = "max",
    has_header: bool = True,
) -> Trace:
    """Load a ``key,op,size_bytes`` request log into a trace."""
    path = Path(path)
    keys: list[str] = []
    ops: list[str] = []
    sizes: list[int] = []
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        if has_header:
            header = next(reader, None)
            if header is None:
                raise WorkloadError(f"{path}: empty file")
        for row in reader:
            if len(row) != 3:
                raise WorkloadError(f"{path}: malformed row {row}")
            keys.append(row[0])
            ops.append(row[1])
            try:
                sizes.append(int(row[2]))
            except ValueError:
                raise WorkloadError(
                    f"{path}: non-integer size {row[2]!r}"
                ) from None
    return from_requests(
        keys, ops, sizes,
        name=name if name is not None else path.stem,
        size_policy=size_policy,
    )
