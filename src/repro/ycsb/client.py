"""The YCSB-style client.

Executes a trace against a :class:`~repro.kvstore.server.HybridDeployment`
in a closed loop (one outstanding request, like the paper's single client
co-located with the servers) and measures what the paper measures:
total runtime, throughput, average read/write response time, and tail
latency percentiles.  The mean over ``repeats`` noise realisations is
reported, matching "reported values are the mean of multiple experiment
runs" (Fig 5 caption).

The hot path is fully vectorized: per-request node parameters are
gathered with fancy indexing and all service times come out of one
:class:`~repro.memsim.timing.AccessTimer` call.  The optional LLC model
(off by default — with 100 KB records against a 12 MB LLC its effect is
second-order, see the cache ablation bench) uses the vectorized
stack-distance path for uniform record sizes and memoizes hit masks per
(trace, capacity), so repeated measurements never replay the LRU.

Noise seeding is *content-addressed*: every measurement derives its
noise streams from the experiment fingerprint (trace, deployment,
client settings — see :mod:`repro.runner.fingerprint`), so the same
experiment measures identically regardless of call order, process, or
parallel schedule, while distinct deployments still see independent
noise realisations.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.errors import ConfigurationError, WorkloadError
from repro.kvstore.server import HybridDeployment
from repro.memsim.cache import LLCModel
from repro.memsim.timing import AccessTimer, NoiseModel, service_times_ns
from repro.rng import SeedLike, derive_seed
from repro.units import NS_PER_S
from repro.ycsb.workload import Trace

#: Default latency percentiles reported (Fig 8d/8e use the tails).
DEFAULT_PERCENTILES = (50.0, 95.0, 99.0)


@dataclass(frozen=True)
class RunResult:
    """Measurements from executing one trace on one deployment.

    All times are nanoseconds; throughput is operations per second.
    Averages are over the ``repeats`` noise realisations.
    """

    workload: str
    engine: str
    n_requests: int
    n_reads: int
    n_writes: int
    runtime_ns: float
    avg_read_ns: float
    avg_write_ns: float
    latency_percentiles_ns: dict[float, float] = field(default_factory=dict)
    repeats: int = 1
    runtime_std_ns: float = 0.0
    concurrency: int = 1

    @property
    def throughput_ops_s(self) -> float:
        """Operations per second."""
        return self.n_requests / (self.runtime_ns / NS_PER_S)

    @property
    def avg_latency_ns(self) -> float:
        """Average per-request latency (runtime / requests)."""
        return self.runtime_ns / self.n_requests

    @property
    def read_runtime_contrib_ns(self) -> float:
        """One read's contribution to wall-clock runtime.

        With ``concurrency`` requests in flight, a request's response
        time overlaps with its peers', so its runtime contribution is
        the response time divided by the concurrency.  This is the
        quantity the Estimate Engine's telescoping needs.
        """
        return self.avg_read_ns / self.concurrency

    @property
    def write_runtime_contrib_ns(self) -> float:
        """One write's contribution to wall-clock runtime."""
        return self.avg_write_ns / self.concurrency

    def percentile(self, q: float) -> float:
        """A recorded latency percentile (e.g. 95.0, 99.0)."""
        try:
            return self.latency_percentiles_ns[q]
        except KeyError:
            raise ConfigurationError(
                f"percentile {q} was not recorded; have "
                f"{sorted(self.latency_percentiles_ns)}"
            ) from None


class YCSBClient:
    """Closed-loop benchmark client over a hybrid deployment.

    Parameters
    ----------
    repeats:
        Number of noise realisations averaged per measurement.
    noise_sigma:
        Relative per-request noise (0 disables noise entirely).
    use_llc:
        Route the trace through the deployment's LLC model (exact LRU,
        sequential) before timing.  Off by default; see module docstring.
    percentiles:
        Latency percentiles to record.
    seed:
        Base seed for the noise streams.
    concurrency:
        Concurrent client threads (closed loop each).  Requests overlap,
        so wall-clock runtime is the summed service time divided by the
        concurrency, while bandwidth sharing inflates each request's
        memory term by ``1 + contention * (concurrency - 1)``.  The paper
        notes that "server thread parallelism ... [is] incorporated into
        the average request response time" the Sensitivity Engine
        extracts — measuring baselines at the deployment's concurrency
        keeps the analytic model exact (see the concurrency ablation).
    contention:
        Per-extra-thread relative bandwidth penalty.
    faults:
        Optional :class:`~repro.faults.FaultSpec` injected into every
        measurement.  Fault schedules derive from the experiment
        fingerprint (which covers the spec itself), so faulty runs are
        exactly as reproducible and cacheable as clean ones; the
        timeline is shared across repeats — device behaviour, unlike
        measurement noise, does not re-roll per repeat.
    """

    def __init__(
        self,
        repeats: int = 3,
        noise_sigma: float = 0.01,
        use_llc: bool = False,
        percentiles: tuple[float, ...] = DEFAULT_PERCENTILES,
        seed: SeedLike = None,
        concurrency: int = 1,
        contention: float = 0.15,
        faults=None,
    ):
        if repeats <= 0:
            raise ConfigurationError(f"repeats must be positive, got {repeats}")
        if concurrency <= 0:
            raise ConfigurationError(
                f"concurrency must be positive, got {concurrency}"
            )
        if contention < 0:
            raise ConfigurationError(
                f"contention must be >= 0, got {contention}"
            )
        self.concurrency = concurrency
        self.contention = contention
        self.repeats = repeats
        self.noise = NoiseModel(sigma=noise_sigma)
        self.use_llc = use_llc
        self.percentiles = tuple(percentiles)
        self._seed = seed
        self.faults = faults
        # hit masks are a pure function of (trace, LLC capacity); memoize
        # them so repeated measurements never replay the LRU
        self._hitmask_memo: dict[tuple[str, int], np.ndarray] = {}
        # fingerprint memos: sweeps measure the same trace object against
        # many deployments, and hashing the full trace every execute is
        # pure overhead.  Keyed by object id with a weakref finalizer
        # evicting dead entries, so a recycled id can never alias.  The
        # memos assume client settings are fixed after construction (as
        # everything else about reproducible measurement already does).
        self._trace_digest_memo: dict[int, str] = {}
        self._fp_memo: dict[tuple[str, int], str] = {}

    @property
    def seed(self) -> SeedLike:
        """The base seed for the noise streams (as passed to ``__init__``)."""
        return self._seed

    # -- internals ---------------------------------------------------------------

    def _gather(self, trace: Trace, deployment: HybridDeployment):
        """Per-request parameter arrays (sizes, node params, op params)."""
        if trace.n_keys != deployment.n_keys:
            raise WorkloadError(
                f"trace key space ({trace.n_keys}) does not match the "
                f"deployment ({deployment.n_keys})"
            )
        record_sizes, fast_mask = deployment.placement_arrays()
        prof = deployment.profile
        system = deployment.system

        sizes = record_sizes[trace.keys] + prof.metadata_bytes
        on_fast = fast_mask[trace.keys]
        latency = np.where(on_fast, system.fast.latency_ns, system.slow.latency_ns)
        bpns = np.where(on_fast, system.fast.bytes_per_ns, system.slow.bytes_per_ns)
        passes = np.where(trace.is_read, prof.read_passes, prof.write_passes)
        if self.concurrency > 1:
            # bandwidth sharing: each in-flight peer slows the memory term
            passes = passes * (1 + self.contention * (self.concurrency - 1))
        cpu = np.where(trace.is_read, prof.read_cpu_ns, prof.write_cpu_ns)
        return sizes, latency, bpns, passes, cpu, on_fast

    def _fault_arrays(self, label, on_fast, latency, bpns, cpu):
        """Apply the configured fault timeline to per-request arrays.

        Returns the (possibly perturbed) latency / bandwidth / cpu
        arrays plus the per-request noise-sigma scale (or None).  The
        timeline derives from *label* — the experiment fingerprint —
        so it is identical for serial, parallel and repeated runs.
        """
        if self.faults is None or not self.faults.active:
            return latency, bpns, cpu, None
        telemetry.count("faults.activations")
        tl = self.faults.timeline(on_fast.size, label)
        if tl.slow_latency_mult is not None:
            latency = latency * np.where(on_fast, 1.0, tl.slow_latency_mult)
        if tl.slow_bandwidth_mult is not None:
            bpns = bpns * np.where(on_fast, 1.0, tl.slow_bandwidth_mult)
        if tl.stall_ns is not None:
            offline = on_fast if tl.stall_node == "fast" else ~on_fast
            cpu = cpu + np.where(offline, tl.stall_ns, 0.0)
        return latency, bpns, cpu, tl.noise_scale

    def _cache_mask(
        self, trace: Trace, llc: LLCModel, trace_digest: str | None,
    ):
        """Boolean per-request hit mask from the LLC model (or None).

        Masks are memoized per (trace digest, LLC capacity) — the mask is
        a pure function of those two — so only the first measurement of a
        trace pays for the LRU replay.  On a memo hit the passed LLC
        object is left untouched.
        """
        if not self.use_llc:
            return None, 0.0
        key = None
        if trace_digest is not None:
            key = (trace_digest, llc.capacity_bytes)
            hits = self._hitmask_memo.get(key)
            if hits is not None:
                return hits, llc.hit_latency_ns
        llc.reset()
        hits = llc.process(trace.keys, trace.record_sizes[trace.keys])
        hits.flags.writeable = False
        if key is not None:
            self._hitmask_memo[key] = hits
        return hits, llc.hit_latency_ns

    def trace_digest(self, trace: Trace) -> str:
        """Memoized content digest of *trace* (hashed once per object)."""
        key = id(trace)
        digest = self._trace_digest_memo.get(key)
        if digest is None:
            from repro.runner.fingerprint import trace_fingerprint

            digest = trace_fingerprint(trace)
            self._trace_digest_memo[key] = digest
            weakref.finalize(trace, self._trace_digest_memo.pop, key, None)
        return digest

    def prime_trace_digest(self, trace: Trace, digest: str) -> None:
        """Seed the trace-digest memo with an already-known digest.

        The grouped sweep dispatcher ships each trace's content digest
        alongside its shared-memory handle, so pool workers never
        re-hash a trace the coordinator already fingerprinted.  The
        caller vouches that *digest* is ``trace_fingerprint(trace)``.
        """
        key = id(trace)
        if key not in self._trace_digest_memo:
            self._trace_digest_memo[key] = digest
            weakref.finalize(trace, self._trace_digest_memo.pop, key, None)

    def experiment_fingerprint(
        self, trace: Trace, deployment: HybridDeployment,
    ) -> tuple[str, str]:
        """(trace digest, experiment fingerprint) for one measurement.

        The experiment fingerprint covers everything that determines the
        measured numbers — trace content, engine profile, placement,
        memory-system parameters and this client's settings — and is both
        the content-addressed cache key and the root label of the noise
        streams.  Raises for clients seeded with a live generator, which
        are inherently non-reproducible.

        Memoized per (trace digest, deployment object): a sweep calling
        ``execute`` repeatedly on the same pair stops re-hashing the
        placement and system on every measurement.
        """
        digest = self.trace_digest(trace)
        key = (digest, id(deployment))
        fp = self._fp_memo.get(key)
        if fp is None:
            from repro.runner.fingerprint import experiment_fingerprint

            fp = experiment_fingerprint(digest, deployment, self)
            self._fp_memo[key] = fp
            weakref.finalize(deployment, self._fp_memo.pop, key, None)
        return digest, fp

    def _experiment_context(self, trace: Trace, deployment: HybridDeployment):
        """Noise-stream label, hit mask and hit latency for one measurement."""
        if isinstance(self._seed, np.random.Generator):
            # a live generator is drawn from on every derive_seed call, so
            # a static label still yields fresh independent streams; such
            # clients are not fingerprintable (or cacheable)
            label, digest = trace.name, None
        else:
            digest, label = self.experiment_fingerprint(trace, deployment)
        cached, cache_lat = self._cache_mask(
            trace, deployment.system.llc, digest
        )
        return label, cached, cache_lat

    # -- execution --------------------------------------------------------------------

    def sample_service_times(
        self, trace: Trace, deployment: HybridDeployment,
    ) -> np.ndarray:
        """One noisy per-request service-time realisation (ns).

        Used by open-loop consumers (e.g. the queueing tail simulator)
        that need the raw service process rather than aggregated
        closed-loop measurements.
        """
        sizes, latency, bpns, passes, cpu, on_fast = self._gather(
            trace, deployment
        )
        label, cached, cache_lat = self._experiment_context(trace, deployment)
        latency, bpns, cpu, noise_scale = self._fault_arrays(
            label, on_fast, latency, bpns, cpu
        )
        timer = AccessTimer(
            noise=self.noise,
            seed=derive_seed(self._seed, f"{label}/svc"),
        )
        return timer.request_times_ns(
            sizes, latency, bpns, passes, cpu,
            cached=cached, cache_latency_ns=cache_lat,
            noise_scale=noise_scale,
        )

    def execute(self, trace: Trace, deployment: HybridDeployment) -> RunResult:
        """Run *trace* against *deployment*; return averaged measurements.

        The noise repeats are realised as one (repeats x requests)
        matrix from a single base-time pass rather than re-running the
        timer per repeat; each row comes from the same
        ``derive_seed(seed, f"{label}/run{r}")`` generator the
        per-repeat loop used, so results are bit-identical to it.
        """
        from repro.memsim.kernel import realisation_matrix, summarize

        telemetry.count("memsim.path", path="per_deployment")
        sizes, latency, bpns, passes, cpu, on_fast = self._gather(
            trace, deployment
        )
        label, cached, cache_lat = self._experiment_context(trace, deployment)
        latency, bpns, cpu, noise_scale = self._fault_arrays(
            label, on_fast, latency, bpns, cpu
        )
        base = service_times_ns(
            sizes, latency, bpns, passes, cpu,
            cached=cached, cache_latency_ns=cache_lat,
        )
        times = realisation_matrix(
            base, self.noise, self._seed, label, self.repeats,
            noise_scale=noise_scale,
        )
        return summarize(
            trace, deployment.profile.name, times, self.concurrency,
            self.percentiles,
        )

    def execute_placements(
        self,
        trace: Trace,
        fast_masks,
        profile,
        system,
        record_sizes: np.ndarray | None = None,
    ) -> list[RunResult]:
        """Measure *trace* against many placements in one gathered pass.

        Equivalent to building a :class:`HybridDeployment` per mask and
        calling :meth:`execute` on each — bit-identically so, because the
        noise streams derive from the same per-placement experiment
        fingerprints — but the trace-dependent work (array gathering,
        trace hashing, the LLC replay) happens once, and no deployments
        are constructed at all.  See
        :class:`~repro.memsim.kernel.BatchKernel`.

        Parameters
        ----------
        trace:
            The request trace shared by every placement.
        fast_masks:
            Boolean placement masks over the key space — a (placements
            x n_keys) array or any sequence of masks.
        profile / system:
            The engine cost profile and hybrid memory system every
            placement shares.
        record_sizes:
            Dense per-key sizes (defaults to ``trace.record_sizes``).
        """
        from repro.memsim.kernel import BatchKernel

        kernel = BatchKernel(
            self, trace, profile, system, record_sizes=record_sizes
        )
        return kernel.run_all(fast_masks)
