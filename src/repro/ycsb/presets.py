"""The paper's custom workloads (Table III).

| Workload          | Distribution      | R:W    | Record sizes         |
|-------------------|-------------------|--------|----------------------|
| Trending          | hotspot           | 100:0  | thumbnail ≈100 KB    |
| News Feed         | latest            | 100:0  | thumbnail ≈100 KB    |
| Timeline          | scrambled zipfian | 100:0  | thumbnail ≈100 KB    |
| Edit Thumbnail    | scrambled zipfian | 50:50  | thumbnail ≈100 KB    |
| Trending Preview  | hotspot           | 100:0  | 100 KB/10 KB/1 KB mix|

10,000 keys and 100,000 requests each, as in the paper.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.ycsb.distributions import DistributionSpec
from repro.ycsb.sizes import PREVIEW_MIX, THUMBNAIL
from repro.ycsb.workload import WorkloadSpec

TRENDING = WorkloadSpec(
    name="trending",
    distribution=DistributionSpec(name="hotspot",
                                  hot_data_fraction=0.2, hot_op_fraction=0.75),
    read_fraction=1.0,
    size_model=THUMBNAIL,
)

NEWS_FEED = WorkloadSpec(
    name="news_feed",
    distribution=DistributionSpec(name="latest", window_fraction=0.1),
    read_fraction=1.0,
    size_model=THUMBNAIL,
)

TIMELINE = WorkloadSpec(
    name="timeline",
    distribution=DistributionSpec(name="scrambled_zipfian"),
    read_fraction=1.0,
    size_model=THUMBNAIL,
)

EDIT_THUMBNAIL = WorkloadSpec(
    name="edit_thumbnail",
    distribution=DistributionSpec(name="scrambled_zipfian"),
    read_fraction=0.5,
    size_model=THUMBNAIL,
)

TRENDING_PREVIEW = WorkloadSpec(
    name="trending_preview",
    distribution=DistributionSpec(name="hotspot",
                                  hot_data_fraction=0.2, hot_op_fraction=0.75),
    read_fraction=1.0,
    size_model=PREVIEW_MIX,
)

#: All five Table III workloads, in the table's order.
TABLE_III_WORKLOADS: tuple[WorkloadSpec, ...] = (
    TRENDING,
    NEWS_FEED,
    TIMELINE,
    EDIT_THUMBNAIL,
    TRENDING_PREVIEW,
)

from repro.ycsb.sizes import TEXT_POST  # noqa: E402  (grouped with presets)

#: Extra presets beyond Table III, for workload families the paper's
#: motivation mentions but its table omits.

#: YCSB workload-E style feed scrolling: short range scans over an
#: ordered store (DynamoDB Query semantics).
FEED_SCROLL = WorkloadSpec(
    name="feed_scroll",
    distribution=DistributionSpec(name="scrambled_zipfian"),
    read_fraction=1.0,
    size_model=TEXT_POST,
    n_requests=20_000,       # scans expand ~5x back to paper scale
    scan_fraction=0.8,
    scan_max_length=10,
)

#: Ingest-dominated logging/counter workload.
WRITE_BURST = WorkloadSpec(
    name="write_burst",
    distribution=DistributionSpec(name="hotspot",
                                  hot_data_fraction=0.2, hot_op_fraction=0.75),
    read_fraction=0.05,
    size_model=TEXT_POST,
)

#: A lookaside cache with no skew at all — the sizing worst case.
UNIFORM_CACHE = WorkloadSpec(
    name="uniform_cache",
    distribution=DistributionSpec(name="uniform"),
    read_fraction=0.95,
    size_model=TEXT_POST,
)

EXTRA_WORKLOADS: tuple[WorkloadSpec, ...] = (
    FEED_SCROLL,
    WRITE_BURST,
    UNIFORM_CACHE,
)

_BY_NAME = {w.name: w for w in (*TABLE_III_WORKLOADS, *EXTRA_WORKLOADS)}


def workload_by_name(name: str) -> WorkloadSpec:
    """Look up a built-in workload by name (case-insensitive).

    Covers the five Table III workloads plus the extra presets.
    """
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload {name!r}; known: {sorted(_BY_NAME)}"
        ) from None
