"""Workload downsampling (paper Section V-A, "Workload downsampling").

Real workloads can be too large (or unavailable) for profiling, so the
paper downsizes them "via random sampling, where we choose to evict from
the workload random key requests at fixed intervals" — fewer requests,
same key-distribution shape.  :func:`downsample` implements exactly
that; :func:`distribution_distance` quantifies how well the shape is
preserved.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import SeedLike, ensure_rng
from repro.ycsb.workload import Trace


def downsample(trace: Trace, factor: float, seed: SeedLike = None) -> Trace:
    """Shrink *trace* by *factor* via interval-random request eviction.

    The trace is cut into ``ceil(factor)``-request intervals; within
    each interval exactly one randomly chosen request survives, so the
    output has ``~n/factor`` requests while preserving both the key
    distribution and its temporal structure (important for ``latest``).

    Parameters
    ----------
    factor:
        Downsampling factor > 1 (e.g. 10 keeps ~10 % of requests).
    """
    if factor <= 1:
        raise ConfigurationError(f"factor must exceed 1, got {factor}")
    rng = ensure_rng(seed)
    n = trace.n_requests
    step = int(np.ceil(factor))
    starts = np.arange(0, n, step)
    widths = np.minimum(step, n - starts)
    picks = starts + (rng.random(starts.size) * widths).astype(np.int64)
    return Trace(
        name=f"{trace.name}@1/{factor:g}",
        keys=trace.keys[picks],
        is_read=trace.is_read[picks],
        record_sizes=trace.record_sizes,
    )


def distribution_distance(a: Trace, b: Trace) -> float:
    """Max CDF gap (Kolmogorov–Smirnov statistic) between two traces'
    key-request distributions over the same key space."""
    if a.n_keys != b.n_keys:
        raise ConfigurationError("traces cover different key spaces")
    ca = np.cumsum(np.bincount(a.keys, minlength=a.n_keys) / a.n_requests)
    cb = np.cumsum(np.bincount(b.keys, minlength=b.n_keys) / b.n_requests)
    return float(np.abs(ca - cb).max())
