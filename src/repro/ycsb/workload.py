"""Workload specifications and request traces.

A :class:`WorkloadSpec` is the declarative description (distribution,
read:write ratio, size model, scale); :func:`~repro.ycsb.generator.generate_trace`
turns it into a concrete :class:`Trace` — the "key sequence and request
types" artefact Mnemo takes as its workload descriptor input.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import cached_property

import numpy as np

from repro.errors import ConfigurationError, WorkloadError
from repro.ycsb.distributions import DistributionSpec
from repro.ycsb.sizes import SizeModel


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative description of a YCSB-style workload.

    Parameters
    ----------
    name:
        Workload identifier (Table III names for the presets).
    distribution:
        Key-popularity distribution.
    read_fraction:
        Fraction of requests that are reads (1.0 = read-only,
        0.5 = Table III "50:50 updateheavy").
    size_model:
        Per-key record-size distribution.
    n_keys / n_requests:
        Scale; the paper uses 10,000 keys and 100,000 requests.
    seed:
        Base seed; sub-streams for keys/ops/sizes are derived from it.
    scan_fraction / scan_max_length:
        YCSB workload-E-style range scans: each scan starts at the
        drawn key and reads up to ``scan_max_length`` consecutive keys
        (uniform length, as YCSB's default).  Scans are expanded into
        per-key read requests at generation time, so the rest of the
        pipeline — including the estimate model — sees ordinary reads.
    """

    name: str
    distribution: DistributionSpec
    read_fraction: float
    size_model: SizeModel
    n_keys: int = 10_000
    n_requests: int = 100_000
    seed: int = 42
    scan_fraction: float = 0.0
    scan_max_length: int = 1

    def __post_init__(self) -> None:
        if not 0 <= self.read_fraction <= 1:
            raise ConfigurationError(
                f"read_fraction must be in [0, 1], got {self.read_fraction}"
            )
        if self.n_keys <= 0 or self.n_requests <= 0:
            raise ConfigurationError("n_keys and n_requests must be positive")
        if not 0 <= self.scan_fraction <= 1:
            raise ConfigurationError(
                f"scan_fraction must be in [0, 1], got {self.scan_fraction}"
            )
        if self.scan_max_length < 1:
            raise ConfigurationError(
                f"scan_max_length must be >= 1, got {self.scan_max_length}"
            )
        if self.scan_fraction > 0 and self.read_fraction < 1.0 and \
                self.scan_fraction > self.read_fraction:
            raise ConfigurationError(
                "scan_fraction cannot exceed read_fraction (scans are reads)"
            )

    def scaled(self, n_keys: int | None = None,
               n_requests: int | None = None) -> "WorkloadSpec":
        """Copy of this spec at a different scale (same seed/shape)."""
        return replace(
            self,
            n_keys=n_keys if n_keys is not None else self.n_keys,
            n_requests=n_requests if n_requests is not None else self.n_requests,
        )

    def with_seed(self, seed: int) -> "WorkloadSpec":
        """Copy with a different base seed."""
        return replace(self, seed=seed)


@dataclass(frozen=True)
class Trace:
    """A concrete request trace over a dataset.

    Attributes
    ----------
    name:
        Originating workload name.
    keys:
        Per-request key ids, dense in ``0 .. n_keys-1`` (int64).
    is_read:
        Per-request operation type (True = read).
    record_sizes:
        Per-*key* record sizes in bytes (int64, length ``n_keys``).
    """

    name: str
    keys: np.ndarray
    is_read: np.ndarray
    record_sizes: np.ndarray

    def __post_init__(self) -> None:
        if self.keys.ndim != 1 or self.is_read.ndim != 1:
            raise WorkloadError("keys and is_read must be 1-D")
        if self.keys.shape != self.is_read.shape:
            raise WorkloadError("keys and is_read must align")
        if self.record_sizes.ndim != 1 or self.record_sizes.size == 0:
            raise WorkloadError("record_sizes must be a non-empty 1-D array")
        if self.keys.size:
            if self.keys.min() < 0 or self.keys.max() >= self.record_sizes.size:
                raise WorkloadError("trace references keys outside the dataset")
        if (self.record_sizes <= 0).any():
            raise WorkloadError("record sizes must be positive")

    # -- views -----------------------------------------------------------------

    @property
    def n_requests(self) -> int:
        """Number of requests."""
        return self.keys.size

    @property
    def n_keys(self) -> int:
        """Size of the key space."""
        return self.record_sizes.size

    @property
    def n_reads(self) -> int:
        """Number of read requests."""
        return int(self.is_read.sum())

    @property
    def n_writes(self) -> int:
        """Number of write requests."""
        return self.n_requests - self.n_reads

    @property
    def read_fraction(self) -> float:
        """Observed read fraction."""
        return self.n_reads / self.n_requests if self.n_requests else 0.0

    @property
    def dataset_bytes(self) -> int:
        """Total payload bytes of the dataset."""
        return int(self.record_sizes.sum())

    @property
    def request_sizes(self) -> np.ndarray:
        """Per-request record sizes (gathered view)."""
        return self.record_sizes[self.keys]

    def touched_keys(self) -> np.ndarray:
        """Distinct keys referenced, ascending."""
        return np.unique(self.keys)

    @cached_property
    def _per_key_counts(self) -> tuple[np.ndarray, np.ndarray]:
        # cached_property writes straight into __dict__, bypassing the
        # frozen-dataclass setattr guard; arrays are returned read-only
        # so the shared cache can never be mutated through a caller
        n = self.n_keys
        reads = np.bincount(self.keys[self.is_read], minlength=n)
        writes = np.bincount(self.keys[~self.is_read], minlength=n)
        reads.flags.writeable = False
        writes.flags.writeable = False
        return reads, writes

    def per_key_counts(self) -> tuple[np.ndarray, np.ndarray]:
        """(reads, writes) per key id, each of length ``n_keys``.

        Computed once per trace and cached; the returned arrays are
        read-only views of the cache.
        """
        return self._per_key_counts

    def first_touch_order(self) -> np.ndarray:
        """Keys in order of first access; untouched keys appended by id.

        This is the incremental-sizing order stand-alone Mnemo uses
        ("with the keys as they get accessed (touched) by the workload
        access pattern", Fig 2a).
        """
        _, first_pos = np.unique(self.keys, return_index=True)
        touched = self.keys[np.sort(first_pos)]
        untouched = np.setdiff1d(
            np.arange(self.n_keys, dtype=self.keys.dtype), touched,
            assume_unique=False,
        )
        return np.concatenate([touched, untouched])
