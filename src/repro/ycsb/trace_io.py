"""Trace persistence.

Mnemo's interface takes "the target workload, in a form of a key
sequence and the corresponding request type" (Section IV).  These
helpers serialise a :class:`~repro.ycsb.workload.Trace` to a two-part
CSV layout — a request file (``key,op``) and a dataset file
(``key,size``) — and load it back.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.errors import WorkloadError
from repro.ycsb.workload import Trace


def save_trace_csv(trace: Trace, directory: str | Path) -> tuple[Path, Path]:
    """Write ``<name>.requests.csv`` and ``<name>.dataset.csv``.

    Returns the two paths (requests file, dataset file).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    req_path = directory / f"{trace.name}.requests.csv"
    data_path = directory / f"{trace.name}.dataset.csv"

    with req_path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["key", "op"])
        ops = np.where(trace.is_read, "READ", "UPDATE")
        writer.writerows(zip(trace.keys.tolist(), ops.tolist()))

    with data_path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["key", "size_bytes"])
        writer.writerows(enumerate(trace.record_sizes.tolist()))

    return req_path, data_path


def load_trace_csv(
    requests_path: str | Path,
    dataset_path: str | Path,
    name: str | None = None,
) -> Trace:
    """Load a trace written by :func:`save_trace_csv`."""
    requests_path = Path(requests_path)
    dataset_path = Path(dataset_path)

    keys, is_read = [], []
    with requests_path.open(newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header != ["key", "op"]:
            raise WorkloadError(f"{requests_path}: unexpected header {header}")
        for row in reader:
            if len(row) != 2:
                raise WorkloadError(f"{requests_path}: malformed row {row}")
            keys.append(int(row[0]))
            op = row[1].upper()
            if op not in ("READ", "UPDATE", "INSERT", "WRITE"):
                raise WorkloadError(f"{requests_path}: unknown op {row[1]!r}")
            is_read.append(op == "READ")

    sizes_by_key: dict[int, int] = {}
    with dataset_path.open(newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header != ["key", "size_bytes"]:
            raise WorkloadError(f"{dataset_path}: unexpected header {header}")
        for row in reader:
            if len(row) != 2:
                raise WorkloadError(f"{dataset_path}: malformed row {row}")
            sizes_by_key[int(row[0])] = int(row[1])

    n_keys = max(sizes_by_key) + 1 if sizes_by_key else 0
    if set(sizes_by_key) != set(range(n_keys)):
        raise WorkloadError(f"{dataset_path}: key space is not dense 0..{n_keys - 1}")
    record_sizes = np.array([sizes_by_key[k] for k in range(n_keys)], dtype=np.int64)

    if name is None:
        name = requests_path.stem.removesuffix(".requests")
    return Trace(
        name=name,
        keys=np.array(keys, dtype=np.int64),
        is_read=np.array(is_read, dtype=bool),
        record_sizes=record_sizes,
    )
