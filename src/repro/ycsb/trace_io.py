"""Trace persistence.

Mnemo's interface takes "the target workload, in a form of a key
sequence and the corresponding request type" (Section IV).  These
helpers serialise a :class:`~repro.ycsb.workload.Trace` to a two-part
CSV layout — a request file (``key,op``) and a dataset file
(``key,size``) — and load it back; an NPZ round-trip is also provided
for large traces (binary, compressed, checksummed).

Every load failure — unreadable file, truncated archive, malformed row,
non-integer field — surfaces as a :class:`~repro.errors.WorkloadError`
naming the offending file, never a bare ``ValueError``/``OSError``; the
fault-tolerant runner relies on that to classify trace problems as
non-retryable instead of burning retry attempts on them.
"""

from __future__ import annotations

import csv
import zipfile
from pathlib import Path

import numpy as np

from repro.errors import WorkloadError
from repro.ycsb.workload import Trace

#: Errors ``np.load`` raises on truncated or mangled NPZ archives.
_NPZ_ERRORS = (OSError, KeyError, ValueError, EOFError, zipfile.BadZipFile)


def save_trace_csv(trace: Trace, directory: str | Path) -> tuple[Path, Path]:
    """Write ``<name>.requests.csv`` and ``<name>.dataset.csv``.

    Returns the two paths (requests file, dataset file).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    req_path = directory / f"{trace.name}.requests.csv"
    data_path = directory / f"{trace.name}.dataset.csv"

    with req_path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["key", "op"])
        ops = np.where(trace.is_read, "READ", "UPDATE")
        writer.writerows(zip(trace.keys.tolist(), ops.tolist()))

    with data_path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["key", "size_bytes"])
        writer.writerows(enumerate(trace.record_sizes.tolist()))

    return req_path, data_path


def _int_field(path: Path, row: list[str], index: int, what: str) -> int:
    try:
        return int(row[index])
    except ValueError:
        raise WorkloadError(
            f"{path}: non-integer {what} {row[index]!r} in row {row}"
        ) from None


def load_trace_csv(
    requests_path: str | Path,
    dataset_path: str | Path,
    name: str | None = None,
) -> Trace:
    """Load a trace written by :func:`save_trace_csv`.

    Raises :class:`~repro.errors.WorkloadError` on unreadable files,
    bad headers, malformed rows or non-integer fields.
    """
    requests_path = Path(requests_path)
    dataset_path = Path(dataset_path)

    keys, is_read = [], []
    try:
        with requests_path.open(newline="") as fh:
            reader = csv.reader(fh)
            header = next(reader, None)
            if header != ["key", "op"]:
                raise WorkloadError(
                    f"{requests_path}: unexpected header {header}"
                )
            for row in reader:
                if len(row) != 2:
                    raise WorkloadError(
                        f"{requests_path}: malformed row {row}"
                    )
                keys.append(_int_field(requests_path, row, 0, "key"))
                op = row[1].upper()
                if op not in ("READ", "UPDATE", "INSERT", "WRITE"):
                    raise WorkloadError(
                        f"{requests_path}: unknown op {row[1]!r}"
                    )
                is_read.append(op == "READ")
    except OSError as exc:
        raise WorkloadError(f"{requests_path}: unreadable ({exc})") from exc

    sizes_by_key: dict[int, int] = {}
    try:
        with dataset_path.open(newline="") as fh:
            reader = csv.reader(fh)
            header = next(reader, None)
            if header != ["key", "size_bytes"]:
                raise WorkloadError(
                    f"{dataset_path}: unexpected header {header}"
                )
            for row in reader:
                if len(row) != 2:
                    raise WorkloadError(f"{dataset_path}: malformed row {row}")
                key = _int_field(dataset_path, row, 0, "key")
                sizes_by_key[key] = _int_field(
                    dataset_path, row, 1, "size"
                )
    except OSError as exc:
        raise WorkloadError(f"{dataset_path}: unreadable ({exc})") from exc

    n_keys = max(sizes_by_key) + 1 if sizes_by_key else 0
    if set(sizes_by_key) != set(range(n_keys)):
        raise WorkloadError(f"{dataset_path}: key space is not dense 0..{n_keys - 1}")
    record_sizes = np.array([sizes_by_key[k] for k in range(n_keys)], dtype=np.int64)

    if name is None:
        name = requests_path.stem.removesuffix(".requests")
    return Trace(
        name=name,
        keys=np.array(keys, dtype=np.int64),
        is_read=np.array(is_read, dtype=bool),
        record_sizes=record_sizes,
    )


def save_trace_npz(trace: Trace, path: str | Path) -> Path:
    """Write a trace as a single compressed NPZ archive.

    The archive carries the trace's content fingerprint so that
    :func:`load_trace_npz` can detect silent truncation or bit rot, not
    just unreadable archives.
    """
    from repro.runner.fingerprint import trace_fingerprint

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("wb") as fh:
        np.savez_compressed(
            fh,
            name=np.asarray(trace.name),
            keys=trace.keys,
            is_read=trace.is_read,
            record_sizes=trace.record_sizes,
            checksum=np.asarray(trace_fingerprint(trace)),
        )
    return path


def load_trace_npz(path: str | Path) -> Trace:
    """Load a trace written by :func:`save_trace_npz`.

    Raises :class:`~repro.errors.WorkloadError` when the archive is
    missing, truncated, missing arrays, or fails its checksum.
    """
    from repro.runner.fingerprint import trace_fingerprint

    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as npz:
            missing = [
                k for k in ("name", "keys", "is_read", "record_sizes")
                if k not in npz
            ]
            if missing:
                raise WorkloadError(
                    f"{path}: trace archive is missing arrays {missing}"
                )
            trace = Trace(
                name=str(npz["name"]),
                keys=npz["keys"],
                is_read=npz["is_read"],
                record_sizes=npz["record_sizes"],
            )
            stored = str(npz["checksum"]) if "checksum" in npz else None
    except _NPZ_ERRORS as exc:
        raise WorkloadError(
            f"{path}: truncated or unreadable trace archive ({exc})"
        ) from exc
    if stored is not None and trace_fingerprint(trace) != stored:
        raise WorkloadError(
            f"{path}: trace archive failed its checksum (corrupt content)"
        )
    return trace
