"""Request-key distributions (YCSB-style).

Implements the distributions of the paper's Figure 3 over a dense key
space ``0 .. n_keys-1``:

- ``zipfian``: Zipf with YCSB's default constant θ = 0.99; the hottest
  keys sit at the *start* of the key range.
- ``scrambled_zipfian``: same popularity mass, but ranks are scattered
  across the key space with an FNV-1a hash (YCSB's scrambling).
- ``hotspot``: a contiguous hot set receives a fixed fraction of the
  operations (YCSB hotspot: 20 % of keys get 80 % of requests by
  default; the paper's Trending workloads use this shape).
- ``latest``: popularity follows recency.  We model the News-Feed
  behaviour the paper describes — the hot window *slides* through the
  key space over the run, so almost every key is hot at some point and
  static placement captures little (Fig 9: News Feed shows nearly no
  cost-reduction opportunity).
- ``exponential``: YCSB's exponential generator — popularity decays
  exponentially with the key id; ``exp_frac`` of the mass sits in the
  first ``exp_percentile`` of the key space (YCSB defaults: 95 % in
  the first 10 %).
- ``uniform`` and ``sequential`` for completeness.

Sampling is fully vectorized: popularity weights are materialised once
per (distribution, n_keys) and requests are drawn with inverse-CDF
searchsorted in a single pass.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import SeedLike, ensure_rng

#: YCSB's default zipfian constant.
ZIPFIAN_CONSTANT = 0.99

_KNOWN = ("zipfian", "scrambled_zipfian", "hotspot", "latest", "uniform",
          "sequential", "exponential")


@dataclass(frozen=True)
class DistributionSpec:
    """A named key distribution with its parameters.

    Parameters
    ----------
    name:
        One of ``zipfian``, ``scrambled_zipfian``, ``hotspot``,
        ``latest``, ``uniform``, ``sequential``.
    theta:
        Zipf constant for the zipfian family (default 0.99).
    hot_data_fraction / hot_op_fraction:
        Hotspot parameters: the first ``hot_data_fraction`` of the key
        space receives ``hot_op_fraction`` of the operations.
    window_fraction:
        For ``latest``: size of the sliding recency window as a
        fraction of the key space.
    exp_percentile / exp_frac:
        For ``exponential``: *exp_frac* of the probability mass falls
        in the first *exp_percentile* of the key space (YCSB defaults
        0.95 in 0.10).
    """

    name: str
    theta: float = ZIPFIAN_CONSTANT
    hot_data_fraction: float = 0.2
    hot_op_fraction: float = 0.8
    window_fraction: float = 0.1
    exp_percentile: float = 0.10
    exp_frac: float = 0.95

    def __post_init__(self) -> None:
        if self.name not in _KNOWN:
            raise ConfigurationError(
                f"unknown distribution {self.name!r}; known: {_KNOWN}"
            )
        if not 0 < self.theta < 1:
            raise ConfigurationError(f"theta must be in (0, 1), got {self.theta}")
        for f in ("hot_data_fraction", "hot_op_fraction", "window_fraction",
                  "exp_percentile"):
            v = getattr(self, f)
            if not 0 < v <= 1:
                raise ConfigurationError(f"{f} must be in (0, 1], got {v}")
        if not 0 < self.exp_frac < 1:
            raise ConfigurationError(
                f"exp_frac must be in (0, 1), got {self.exp_frac}"
            )


def _fnv1a_64(values: np.ndarray) -> np.ndarray:
    """Vectorized FNV-1a over the 8 little-endian bytes of each value.

    This is YCSB's ``FNVhash64`` applied byte-wise, which is what the
    scrambled-zipfian generator uses to scatter hot ranks.
    """
    offset = np.uint64(0xCBF29CE484222325)
    prime = np.uint64(0x100000001B3)
    v = values.astype(np.uint64)
    h = np.full(v.shape, offset, dtype=np.uint64)
    with np.errstate(over="ignore"):
        for shift in range(0, 64, 8):
            octet = (v >> np.uint64(shift)) & np.uint64(0xFF)
            h = (h ^ octet) * prime
    return h


def zipfian_weights(n_keys: int, theta: float = ZIPFIAN_CONSTANT) -> np.ndarray:
    """Unnormalised Zipf weights ``1 / rank^theta`` for ranks 1..n."""
    if n_keys <= 0:
        raise ConfigurationError(f"n_keys must be positive, got {n_keys}")
    ranks = np.arange(1, n_keys + 1, dtype=np.float64)
    return ranks ** -theta


def key_probabilities(spec: DistributionSpec, n_keys: int) -> np.ndarray:
    """Stationary per-key request probability for *spec*.

    For ``latest`` this is the *time-averaged* probability (the window
    slides uniformly), which is what first-touch/static analyses see.
    """
    if n_keys <= 0:
        raise ConfigurationError(f"n_keys must be positive, got {n_keys}")
    name = spec.name
    if name == "zipfian":
        w = zipfian_weights(n_keys, spec.theta)
    elif name == "scrambled_zipfian":
        w = np.zeros(n_keys)
        ranks = zipfian_weights(n_keys, spec.theta)
        targets = (_fnv1a_64(np.arange(n_keys)) % np.uint64(n_keys)).astype(np.int64)
        np.add.at(w, targets, ranks)
    elif name == "hotspot":
        hot_n = max(1, int(round(spec.hot_data_fraction * n_keys)))
        w = np.full(n_keys, (1.0 - spec.hot_op_fraction) / max(1, n_keys - hot_n))
        w[:hot_n] = spec.hot_op_fraction / hot_n
        if hot_n == n_keys:
            w[:] = 1.0 / n_keys
    elif name == "latest":
        # time-average of a sliding zipfian window ~ near-uniform with a
        # mild recency tilt toward late keys (they are hot at the end).
        w = np.ones(n_keys)
    elif name == "exponential":
        # rate gamma so that P(key < exp_percentile * n) = exp_frac
        gamma = -np.log(1.0 - spec.exp_frac) / (spec.exp_percentile * n_keys)
        w = np.exp(-gamma * np.arange(n_keys))
    elif name in ("uniform", "sequential"):
        w = np.ones(n_keys)
    else:  # pragma: no cover - guarded by DistributionSpec
        raise ConfigurationError(name)
    return w / w.sum()


def sample_keys(
    spec: DistributionSpec,
    n_keys: int,
    n_requests: int,
    seed: SeedLike = None,
) -> np.ndarray:
    """Draw *n_requests* key ids according to *spec* (vectorized)."""
    if n_requests < 0:
        raise ConfigurationError(f"n_requests must be >= 0, got {n_requests}")
    rng = ensure_rng(seed)
    if spec.name == "sequential":
        return np.arange(n_requests, dtype=np.int64) % n_keys
    if spec.name == "latest":
        return _sample_latest(spec, n_keys, n_requests, rng)
    p = key_probabilities(spec, n_keys)
    cdf = np.cumsum(p)
    cdf[-1] = 1.0
    u = rng.random(n_requests)
    return np.searchsorted(cdf, u, side="right").astype(np.int64)


def _sample_latest(
    spec: DistributionSpec, n_keys: int, n_requests: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sliding-recency sampler for the ``latest`` distribution.

    Request *i*'s window head moves linearly through the key space;
    each request picks a zipfian-distributed offset *behind* the head
    within the window, so the newest keys are always the most popular —
    but which keys are "newest" changes throughout the run.
    """
    if n_requests == 0:
        return np.empty(0, dtype=np.int64)
    window = max(1, int(round(spec.window_fraction * n_keys)))
    heads = np.linspace(window - 1, n_keys - 1, n_requests)
    w = zipfian_weights(window, spec.theta)
    cdf = np.cumsum(w / w.sum())
    cdf[-1] = 1.0
    offsets = np.searchsorted(cdf, rng.random(n_requests), side="right")
    keys = np.floor(heads).astype(np.int64) - offsets
    return np.clip(keys, 0, n_keys - 1)


def empirical_cdf_over_keys(keys: np.ndarray, n_keys: int) -> np.ndarray:
    """Figure 3's curve: cumulative request probability by key id.

    ``out[k]`` is the probability that a request's key id is <= ``k``.
    """
    counts = np.bincount(np.asarray(keys, dtype=np.int64), minlength=n_keys)
    total = counts.sum()
    if total == 0:
        raise ConfigurationError("empty trace")
    return np.cumsum(counts) / total
