"""Record-size models for social-media data (paper Figure 4, Table III).

The paper infers size distributions for common social-media content
from published "cheat sheets": photo thumbnails ≈ 100 KB, text posts
≈ 10 KB, photo captions ≈ 1 KB.  Sizes vary around those centres
(compression, text length), which we model with a clipped lognormal.
The ``trending_preview`` use case mixes all three (a news thumbnail, a
caption and a summary per item).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import SeedLike, ensure_rng
from repro.units import KB


@dataclass(frozen=True)
class SizeModel:
    """A record-size distribution.

    Sizes are drawn per *key* (a record's size is fixed across the run)
    from a lognormal centred on ``median_bytes`` with geometric spread
    ``sigma``, clipped to ``[min_bytes, max_bytes]``.  A mixture is
    expressed with ``components``: (weight, SizeModel) pairs.
    """

    name: str
    median_bytes: int = 0
    sigma: float = 0.25
    min_bytes: int = 64
    max_bytes: int = 10_000_000
    components: tuple[tuple[float, "SizeModel"], ...] = ()

    def __post_init__(self) -> None:
        if self.components:
            total = sum(w for w, _ in self.components)
            if not np.isclose(total, 1.0):
                raise ConfigurationError(
                    f"mixture weights must sum to 1, got {total}"
                )
            return
        if self.median_bytes <= 0:
            raise ConfigurationError("median_bytes must be positive")
        if self.sigma < 0:
            raise ConfigurationError("sigma must be >= 0")
        if not 0 < self.min_bytes <= self.max_bytes:
            raise ConfigurationError("need 0 < min_bytes <= max_bytes")

    @property
    def mean_bytes(self) -> float:
        """Expected record size (lognormal mean, mixture-weighted)."""
        if self.components:
            return sum(w * m.mean_bytes for w, m in self.components)
        return float(self.median_bytes) * float(np.exp(self.sigma**2 / 2))

    def sample(self, n: int, seed: SeedLike = None) -> np.ndarray:
        """Draw *n* record sizes (int64 bytes)."""
        if n < 0:
            raise ConfigurationError(f"n must be >= 0, got {n}")
        rng = ensure_rng(seed)
        if self.components:
            weights = np.array([w for w, _ in self.components])
            choices = rng.choice(len(self.components), size=n, p=weights)
            out = np.empty(n, dtype=np.int64)
            for i, (_, model) in enumerate(self.components):
                mask = choices == i
                out[mask] = model.sample(int(mask.sum()), rng)
            return out
        draws = self.median_bytes * np.exp(self.sigma * rng.standard_normal(n))
        return np.clip(draws, self.min_bytes, self.max_bytes).astype(np.int64)


#: Photo thumbnail, ≈ 100 KB (Table III "thumbnail").
THUMBNAIL = SizeModel(name="thumbnail", median_bytes=100 * KB, sigma=0.20)

#: Text post, ≈ 10 KB (Table III "text post").
TEXT_POST = SizeModel(name="text_post", median_bytes=10 * KB, sigma=0.35)

#: Photo caption, ≈ 1 KB (Table III "photo caption").
PHOTO_CAPTION = SizeModel(name="photo_caption", median_bytes=1 * KB, sigma=0.40)

#: Trending Preview: thumbnail + caption + summary per item (Table III).
PREVIEW_MIX = SizeModel(
    name="preview_mix",
    components=(
        (1 / 3, THUMBNAIL),
        (1 / 3, TEXT_POST),
        (1 / 3, PHOTO_CAPTION),
    ),
)

SIZE_MODELS: dict[str, SizeModel] = {
    m.name: m for m in (THUMBNAIL, TEXT_POST, PHOTO_CAPTION, PREVIEW_MIX)
}


def size_model(name: str) -> SizeModel:
    """Look up a built-in size model by name."""
    try:
        return SIZE_MODELS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown size model {name!r}; known: {sorted(SIZE_MODELS)}"
        ) from None


def record_sizes(model: SizeModel | str, n_keys: int,
                 seed: SeedLike = None) -> np.ndarray:
    """Per-key record sizes for a dataset of *n_keys* records."""
    if isinstance(model, str):
        model = size_model(model)
    return model.sample(n_keys, seed)
