"""YCSB-like workload generation and client.

Reimplements the parts of the Yahoo! Cloud Serving Benchmark the paper
uses (Section II, "Client Configuration" / "Workloads"):

- request-key distributions (:mod:`~repro.ycsb.distributions`): zipfian,
  scrambled zipfian, hotspot, latest, uniform, sequential;
- record-size models for social-media data (:mod:`~repro.ycsb.sizes`);
- workload specs and deterministic trace generation
  (:mod:`~repro.ycsb.workload`, :mod:`~repro.ycsb.generator`);
- the five custom Table III workloads (:mod:`~repro.ycsb.presets`);
- a closed-loop client that routes requests across the Fast/Slow server
  pair and measures throughput/latency (:mod:`~repro.ycsb.client`);
- workload downsampling via random request eviction
  (:mod:`~repro.ycsb.sampling`).
"""

from repro.ycsb.adapters import from_requests, load_keyed_csv
from repro.ycsb.client import RunResult, YCSBClient
from repro.ycsb.distributions import (
    DistributionSpec,
    key_probabilities,
    sample_keys,
)
from repro.ycsb.generator import generate_trace
from repro.ycsb.presets import TABLE_III_WORKLOADS, workload_by_name
from repro.ycsb.sampling import downsample
from repro.ycsb.sizes import SIZE_MODELS, SizeModel, record_sizes
from repro.ycsb.synthesis import TraceCharacterisation, fit_trace, synthesize
from repro.ycsb.trace_io import (
    load_trace_csv,
    load_trace_npz,
    save_trace_csv,
    save_trace_npz,
)
from repro.ycsb.workload import Trace, WorkloadSpec

__all__ = [
    "DistributionSpec",
    "key_probabilities",
    "sample_keys",
    "SizeModel",
    "SIZE_MODELS",
    "record_sizes",
    "WorkloadSpec",
    "Trace",
    "generate_trace",
    "TABLE_III_WORKLOADS",
    "workload_by_name",
    "YCSBClient",
    "RunResult",
    "downsample",
    "save_trace_csv",
    "load_trace_csv",
    "save_trace_npz",
    "load_trace_npz",
    "fit_trace",
    "synthesize",
    "TraceCharacterisation",
    "from_requests",
    "load_keyed_csv",
]
