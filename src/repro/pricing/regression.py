"""Least-squares estimation of per-vCPU and per-GB unit costs.

Following Amur et al. (SoCC'13), the paper describes each VM's hourly
price as ``vCPU * C + GB * M`` and solves the over-determined system
across a family's SKUs with least squares.  We use the normal-equation
solver from :func:`numpy.linalg.lstsq` and optionally constrain the
solution to non-negative unit costs via :func:`scipy.optimize.nnls`
(a negative C can occur when a family's pricing is purely memory-driven).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.optimize import nnls

from repro.errors import PricingError
from repro.pricing.catalog import VMInstance


@dataclass(frozen=True)
class FitResult:
    """Fitted unit costs for one instance family.

    Attributes
    ----------
    vcpu_cost:
        C — hourly USD per vCPU.
    memory_cost:
        M — hourly USD per GB of memory.
    residual:
        Root-mean-square relative pricing error of the fit.
    """

    provider: str
    family: str
    vcpu_cost: float
    memory_cost: float
    residual: float

    def predict(self, vcpus: float, memory_gb: float) -> float:
        """Modelled hourly price of a shape."""
        return vcpus * self.vcpu_cost + memory_gb * self.memory_cost


def fit_unit_costs(
    instances: Sequence[VMInstance], nonnegative: bool = True
) -> FitResult:
    """Fit (C, M) over a family's SKUs by least squares.

    Parameters
    ----------
    instances:
        At least two SKUs with non-proportional shapes.
    nonnegative:
        Constrain C, M >= 0 (default; matches the economic reading).
    """
    if len(instances) < 2:
        raise PricingError("need at least two instances to fit unit costs")
    providers = {i.provider for i in instances}
    if len(providers) > 1:
        raise PricingError(
            f"fit one provider at a time; got providers={providers}"
        )
    families = {i.family for i in instances}

    a = np.array([[i.vcpus, i.memory_gb] for i in instances], dtype=np.float64)
    y = np.array([i.hourly_usd for i in instances], dtype=np.float64)
    if np.linalg.matrix_rank(a) < 2:
        # all shapes proportional: attribute everything to memory, the
        # resource the family is sold on.
        m = float((y / a[:, 1]).mean())
        c = 0.0
    elif nonnegative:
        (c, m), _ = nnls(a, y)
    else:
        (c, m), *_ = np.linalg.lstsq(a, y, rcond=None)

    pred = a @ np.array([c, m])
    residual = float(np.sqrt(np.mean(((pred - y) / y) ** 2)))
    return FitResult(
        provider=instances[0].provider,
        family="+".join(sorted(families)),
        vcpu_cost=float(c),
        memory_cost=float(m),
        residual=residual,
    )
