"""Cloud VM pricing analysis (paper Section I, Figure 1)."""

from repro.pricing.catalog import (
    CATALOGS,
    MEMORY_OPTIMIZED_FAMILIES,
    VMInstance,
    catalog_for,
    provider_catalog,
    provider_families,
    providers,
)
from repro.pricing.regression import FitResult, fit_unit_costs
from repro.pricing.vmcost import memory_cost_fractions, memory_fraction_summary

__all__ = [
    "VMInstance",
    "CATALOGS",
    "MEMORY_OPTIMIZED_FAMILIES",
    "catalog_for",
    "provider_catalog",
    "provider_families",
    "providers",
    "FitResult",
    "fit_unit_costs",
    "memory_cost_fractions",
    "memory_fraction_summary",
]
