"""Per-instance memory-cost fractions (paper Figure 1).

Combines the catalog and the regression: unit costs (C, M) are fitted
per *provider* by pooling every embedded instance of that provider (the
paper solves "a system of equations derived from all VM instances per
cloud provider"); the memory share of each SKU's price is then
``GB * M / price``.  Figure 1 plots the Memory-Optimized families, for
which this share lands in the paper's 60–85 % band.
"""

from __future__ import annotations

from typing import Sequence

from repro.pricing.catalog import (
    MEMORY_OPTIMIZED_FAMILIES,
    VMInstance,
    catalog_for,
    provider_catalog,
)
from repro.pricing.regression import FitResult, fit_unit_costs


def memory_cost_fractions(
    instances: Sequence[VMInstance], fit: FitResult | None = None
) -> dict[str, float]:
    """Memory share of each SKU's price, keyed by instance name.

    When *fit* is omitted, the unit costs are fitted over the full
    provider pool (not just *instances*), matching the paper's method.
    """
    if fit is None:
        providers = {i.provider for i in instances}
        if len(providers) != 1:
            raise_from = sorted(providers)
            from repro.errors import PricingError

            raise PricingError(f"one provider at a time, got {raise_from}")
        fit = fit_unit_costs(provider_catalog(providers.pop()))
    return {
        i.name: min(1.0, i.memory_gb * fit.memory_cost / i.hourly_usd)
        for i in instances
    }


def memory_fraction_summary(
    families: Sequence[str] = MEMORY_OPTIMIZED_FAMILIES,
) -> dict[str, dict[str, float]]:
    """Figure 1's data: per Memory-Optimized family, the per-SKU
    memory-cost fractions (unit costs fitted per provider).

    Returns ``{family key: {instance name: fraction}}``.
    """
    fits: dict[str, FitResult] = {}
    out: dict[str, dict[str, float]] = {}
    for key in families:
        instances = catalog_for(key)
        provider = instances[0].provider
        if provider not in fits:
            fits[provider] = fit_unit_costs(provider_catalog(provider))
        out[key] = memory_cost_fractions(instances, fits[provider])
    return out
