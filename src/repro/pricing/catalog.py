"""Embedded 2018 cloud VM instance catalogs.

The paper estimates per-GB memory cost by regressing

    VM cost = vCPU * C + GB * M

over the Memory-Optimized instance families of AWS ElastiCache
(cache.r5), Google Compute Engine (n1-ultramem / n1-megamem) and
Microsoft Azure (E-series, M-series).  We cannot fetch 2018 price
sheets offline, so this module embeds a snapshot of the published
on-demand prices from late 2018 (us-east / us-central, Linux).  Values
are the then-public hourly rates rounded to the mill; small deviations
from the exact sheets do not change the regression's conclusion (memory
is 60–85 % of the VM price).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PricingError


@dataclass(frozen=True)
class VMInstance:
    """One VM SKU: shape and hourly price."""

    provider: str
    family: str
    name: str
    vcpus: int
    memory_gb: float
    hourly_usd: float

    def __post_init__(self) -> None:
        if self.vcpus <= 0 or self.memory_gb <= 0 or self.hourly_usd <= 0:
            raise PricingError(f"invalid instance definition: {self}")


def _mk(provider: str, family: str, rows: list[tuple[str, int, float, float]]):
    return tuple(
        VMInstance(provider, family, name, vcpus, gb, usd)
        for name, vcpus, gb, usd in rows
    )


#: AWS ElastiCache cache.m5 (general purpose), on-demand us-east-1, Nov 2018.
#: Not Memory Optimized itself — included because the regression pools all
#: instances per provider, and the m5 shapes (different GB/vCPU ratio)
#: make the AWS system well-conditioned.
AWS_CACHE_M5 = _mk("aws", "cache.m5", [
    ("cache.m5.large", 2, 6.38, 0.156),
    ("cache.m5.xlarge", 4, 12.93, 0.311),
    ("cache.m5.2xlarge", 8, 26.04, 0.622),
    ("cache.m5.4xlarge", 16, 52.26, 1.244),
    ("cache.m5.12xlarge", 48, 157.12, 3.732),
    ("cache.m5.24xlarge", 96, 314.32, 7.464),
])

#: AWS ElastiCache cache.r5, on-demand us-east-1, Nov 2018.
AWS_CACHE_R5 = _mk("aws", "cache.r5", [
    ("cache.r5.large", 2, 13.07, 0.216),
    ("cache.r5.xlarge", 4, 26.32, 0.431),
    ("cache.r5.2xlarge", 8, 52.82, 0.862),
    ("cache.r5.4xlarge", 16, 105.81, 1.723),
    ("cache.r5.12xlarge", 48, 317.77, 5.170),
    ("cache.r5.24xlarge", 96, 635.61, 10.340),
])

#: GCE n1-ultramem + n1-megamem, us-central1, Nov 2018.
GCP_N1_MEM = _mk("gcp", "n1-ultramem/megamem", [
    ("n1-megamem-96", 96, 1433.6, 10.674),
    ("n1-ultramem-40", 40, 961.0, 6.304),
    ("n1-ultramem-80", 80, 1922.0, 12.608),
    ("n1-ultramem-160", 160, 3844.0, 25.216),
])

#: Azure E-series (Ev3, Linux, East US), Nov 2018.
AZURE_E = _mk("azure", "E-series", [
    ("E2_v3", 2, 16.0, 0.126),
    ("E4_v3", 4, 32.0, 0.252),
    ("E8_v3", 8, 64.0, 0.504),
    ("E16_v3", 16, 128.0, 1.008),
    ("E32_v3", 32, 256.0, 2.016),
    ("E64_v3", 64, 432.0, 3.629),
])

#: Azure M-series (Linux, East US), Nov 2018.
AZURE_M = _mk("azure", "M-series", [
    ("M64s", 64, 1024.0, 6.669),
    ("M64ms", 64, 1792.0, 10.337),
    ("M128s", 128, 2048.0, 13.338),
    ("M128ms", 128, 3892.0, 26.688),
])

#: All embedded catalogs keyed by ``provider/family``.
CATALOGS: dict[str, tuple[VMInstance, ...]] = {
    "aws/cache.m5": AWS_CACHE_M5,
    "aws/cache.r5": AWS_CACHE_R5,
    "gcp/n1-ultramem-megamem": GCP_N1_MEM,
    "azure/E": AZURE_E,
    "azure/M": AZURE_M,
}

#: The families Figure 1 reports (the paper plots Memory Optimized VMs).
MEMORY_OPTIMIZED_FAMILIES: tuple[str, ...] = (
    "aws/cache.r5",
    "gcp/n1-ultramem-megamem",
    "azure/E",
    "azure/M",
)


def catalog_for(key: str) -> tuple[VMInstance, ...]:
    """Look up an embedded catalog by ``provider/family`` key."""
    try:
        return CATALOGS[key]
    except KeyError:
        raise PricingError(
            f"unknown catalog {key!r}; known: {sorted(CATALOGS)}"
        ) from None


def provider_families() -> list[str]:
    """All catalog keys, sorted."""
    return sorted(CATALOGS)


def providers() -> list[str]:
    """All providers with embedded catalogs."""
    return sorted({i.provider for c in CATALOGS.values() for i in c})


def provider_catalog(provider: str) -> tuple[VMInstance, ...]:
    """Every embedded instance of one provider, across families.

    This is the pool the paper regresses over ("a system of equations
    derived from all VM instances per cloud provider").
    """
    pool = tuple(
        inst for cat in CATALOGS.values() for inst in cat
        if inst.provider == provider
    )
    if not pool:
        raise PricingError(
            f"unknown provider {provider!r}; known: {providers()}"
        )
    return pool
