"""Memory-system cost model (paper Section II, Table II)."""

from repro.cost.model import (
    DEFAULT_PRICE_FACTOR,
    CostModel,
    capacity_for_cost,
    cost_reduction_factor,
)

__all__ = [
    "CostModel",
    "cost_reduction_factor",
    "capacity_for_cost",
    "DEFAULT_PRICE_FACTOR",
]
