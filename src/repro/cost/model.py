"""The hybrid-memory cost-reduction model.

With total capacity ``C``, ``F`` bytes of FastMem and ``S = C - F`` bytes
of SlowMem that is ``p`` times cheaper per byte, the memory system costs
a fraction

    R(p) = (F + (C - F) * p) / C

of the FastMem-only cost (paper Section II).  ``R`` runs from ``p``
(SlowMem-only, maximum savings) to 1 (FastMem-only, no savings).  The
paper fixes ``p = 0.2`` from NVDIMM price projections.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

#: The paper's price factor: SlowMem at 0.2x the per-byte FastMem cost.
DEFAULT_PRICE_FACTOR = 0.2


def _validate_p(p: float) -> None:
    if not 0 < p < 1:
        raise ConfigurationError(
            f"price factor p must be in (0, 1), got {p} "
            "(p >= 1 means SlowMem is not cheaper)"
        )


def cost_reduction_factor(
    fast_bytes, total_bytes, p: float = DEFAULT_PRICE_FACTOR
):
    """``R(p)`` for a FastMem share — scalar or vectorized over arrays.

    Parameters
    ----------
    fast_bytes:
        FastMem capacity F (scalar or array).
    total_bytes:
        Total capacity C (scalar, or array broadcastable with F).
    p:
        SlowMem per-byte price as a fraction of FastMem's.
    """
    _validate_p(p)
    fast = np.asarray(fast_bytes, dtype=np.float64)
    total = np.asarray(total_bytes, dtype=np.float64)
    if (total <= 0).any():
        raise ConfigurationError("total capacity must be positive")
    if (fast < 0).any() or (fast > total).any():
        raise ConfigurationError("need 0 <= fast_bytes <= total_bytes")
    r = (fast + (total - fast) * p) / total
    return float(r) if r.ndim == 0 else r


def capacity_for_cost(
    r: float, total_bytes: float, p: float = DEFAULT_PRICE_FACTOR
) -> float:
    """Invert the model: FastMem bytes whose cost factor equals *r*."""
    _validate_p(p)
    if not p <= r <= 1:
        raise ConfigurationError(
            f"cost factor {r} outside the attainable range [{p}, 1]"
        )
    return total_bytes * (r - p) / (1 - p)


@dataclass(frozen=True)
class CostModel:
    """Convenience wrapper binding a price factor and a total capacity.

    Also carries the Table II anchor points: ``best_case`` (all FastMem,
    R = 1), ``worst_case`` (all SlowMem, R = p).
    """

    total_bytes: int
    p: float = DEFAULT_PRICE_FACTOR

    def __post_init__(self) -> None:
        _validate_p(self.p)
        if self.total_bytes <= 0:
            raise ConfigurationError("total capacity must be positive")

    def factor(self, fast_bytes):
        """R(p) for *fast_bytes* of FastMem (scalar or array)."""
        return cost_reduction_factor(fast_bytes, self.total_bytes, self.p)

    def fast_bytes_for(self, r: float) -> float:
        """FastMem capacity whose cost factor is *r*."""
        return capacity_for_cost(r, self.total_bytes, self.p)

    @property
    def best_case(self) -> float:
        """Cost factor with all data in FastMem (Table II row 1)."""
        return 1.0

    @property
    def worst_case(self) -> float:
        """Cost factor with all data in SlowMem (Table II row 3) = p."""
        return self.p

    def savings_percent(self, fast_bytes) -> float:
        """Percentage saved versus the FastMem-only system."""
        return (1.0 - self.factor(fast_bytes)) * 100.0
