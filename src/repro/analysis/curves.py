"""Cost/performance curve utilities.

Helpers for working with the (cost factor, throughput) trade-off curves
Mnemo produces: normalisation, interpolation onto a common cost grid,
and knee detection ("the knee of the line is bigger", Section III).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def _validate_xy(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ConfigurationError("x and y must be aligned 1-D arrays")
    if x.size < 2:
        raise ConfigurationError("need at least two curve points")
    if (np.diff(x) < 0).any():
        raise ConfigurationError("x must be non-decreasing")
    return x, y


def relative_curve(y: np.ndarray, reference: float | None = None) -> np.ndarray:
    """Normalise *y* to a reference (default: its last point)."""
    y = np.asarray(y, dtype=np.float64)
    ref = float(y[-1]) if reference is None else float(reference)
    if ref == 0:
        raise ConfigurationError("reference must be non-zero")
    return y / ref


def interpolate_curve(
    x: np.ndarray, y: np.ndarray, grid: np.ndarray
) -> np.ndarray:
    """Linear interpolation of (x, y) onto *grid* (clipped to range)."""
    x, y = _validate_xy(x, y)
    grid = np.clip(np.asarray(grid, dtype=np.float64), x[0], x[-1])
    return np.interp(grid, x, y)


def curve_knee(x: np.ndarray, y: np.ndarray) -> int:
    """Index of the curve's knee (Kneedle-style max distance method).

    Normalises both axes to [0, 1] and returns the point furthest above
    the chord from first to last point — for a saturating throughput
    curve this is where extra FastMem stops paying off.
    """
    x, y = _validate_xy(x, y)
    xs = (x - x[0]) / (x[-1] - x[0]) if x[-1] > x[0] else np.zeros_like(x)
    span = y.max() - y.min()
    if span == 0:
        return 0
    ys = (y - y.min()) / span
    return int(np.argmax(ys - xs))


def knee_sharpness(x: np.ndarray, y: np.ndarray) -> float:
    """How pronounced the knee is: max normalised distance above the chord.

    0 for a straight line; approaches 1 for a step.  Section III uses
    this notion qualitatively — big records make "the knee of the line"
    bigger than small records do.
    """
    x, y = _validate_xy(x, y)
    xs = (x - x[0]) / (x[-1] - x[0]) if x[-1] > x[0] else np.zeros_like(x)
    span = y.max() - y.min()
    if span == 0:
        return 0.0
    ys = (y - y.min()) / span
    return float((ys - xs).max())
