"""Estimate-error statistics (paper Figure 8a).

The paper reports "the percentage error ``(r - e) / r * 100%`` between
the real performance points r and their corresponding estimate e" as
per-store boxplots, with 0.07 % median error overall.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


def percentage_error(real, estimate) -> np.ndarray:
    """``(r - e) / r * 100`` — positive when the estimate undershoots."""
    real = np.asarray(real, dtype=np.float64)
    estimate = np.asarray(estimate, dtype=np.float64)
    if real.shape != estimate.shape:
        raise ConfigurationError(
            f"real and estimate must align: {real.shape} vs {estimate.shape}"
        )
    if (real == 0).any():
        raise ConfigurationError("real values must be non-zero")
    return (real - estimate) / real * 100.0


@dataclass(frozen=True)
class BoxplotStats:
    """Five-number summary plus whiskers, Tukey style."""

    median: float
    q1: float
    q3: float
    whisker_low: float
    whisker_high: float
    n_outliers: int
    n: int

    @property
    def iqr(self) -> float:
        """Interquartile range."""
        return self.q3 - self.q1


def boxplot_stats(values: np.ndarray, whisker: float = 1.5) -> BoxplotStats:
    """Tukey boxplot statistics for *values*."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ConfigurationError("cannot summarise no values")
    q1, med, q3 = np.percentile(values, [25, 50, 75])
    iqr = q3 - q1
    lo_fence = q1 - whisker * iqr
    hi_fence = q3 + whisker * iqr
    inside = values[(values >= lo_fence) & (values <= hi_fence)]
    return BoxplotStats(
        median=float(med),
        q1=float(q1),
        q3=float(q3),
        whisker_low=float(inside.min()),
        whisker_high=float(inside.max()),
        n_outliers=int(values.size - inside.size),
        n=int(values.size),
    )
