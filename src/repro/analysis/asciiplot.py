"""Terminal rendering of cost/performance curves.

Mnemo's output includes "a graph representation of the estimate"
(Section IV).  With no display attached, the CLI renders the estimate
curve as ASCII art — good enough to see the knee and pick a sizing
interactively.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def render_curve(
    x: np.ndarray,
    y: np.ndarray,
    width: int = 72,
    height: int = 18,
    x_label: str = "cost factor",
    y_label: str = "throughput",
    marker: str = "*",
) -> str:
    """Render (x, y) as an ASCII scatter/line plot.

    Points are bucketed onto a ``width`` x ``height`` character grid;
    the y-axis is annotated with min/max values and the x-axis with its
    range.  Returns the multi-line string (no trailing newline).
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1 or x.size < 2:
        raise ConfigurationError("need aligned 1-D arrays of >= 2 points")
    if width < 16 or height < 4:
        raise ConfigurationError("plot area too small")

    x_span = x.max() - x.min()
    y_span = y.max() - y.min()
    cols = ((x - x.min()) / x_span * (width - 1)).astype(int) if x_span else \
        np.zeros(x.size, dtype=int)
    rows = ((y - y.min()) / y_span * (height - 1)).astype(int) if y_span else \
        np.zeros(x.size, dtype=int)

    grid = [[" "] * width for _ in range(height)]
    for c, r in zip(cols, rows):
        grid[height - 1 - r][c] = marker

    y_hi = f"{y.max():,.0f}"
    y_lo = f"{y.min():,.0f}"
    pad = max(len(y_hi), len(y_lo))
    lines = []
    for i, row in enumerate(grid):
        if i == 0:
            label = y_hi.rjust(pad)
        elif i == height - 1:
            label = y_lo.rjust(pad)
        else:
            label = " " * pad
        lines.append(f"{label} |{''.join(row)}")
    axis = " " * pad + " +" + "-" * width
    lines.append(axis)
    x_lo, x_hi = f"{x.min():g}", f"{x.max():g}"
    gap = width - len(x_lo) - len(x_hi)
    lines.append(" " * (pad + 2) + x_lo + " " * max(1, gap) + x_hi)
    lines.append(" " * (pad + 2) + f"{x_label} -> ({y_label} on y)")
    return "\n".join(lines)


def render_bars(
    labels,
    values,
    width: int = 40,
    marker: str = "#",
) -> list[str]:
    """Horizontal ASCII bars — one per (label, value), value-annotated.

    Used by ``mnemo obs`` for categorical mixes (kernel paths, cache
    outcomes) where a curve plot makes no sense.  Bars scale to the
    largest value; zero-max input renders empty bars rather than
    dividing by zero.
    """
    labels = [str(l) for l in labels]
    values = [float(v) for v in values]
    if len(labels) != len(values) or not labels:
        raise ConfigurationError("need aligned, non-empty labels and values")
    if width < 4:
        raise ConfigurationError("bar area too small")
    peak = max(values)
    pad = max(len(l) for l in labels)
    lines = []
    for label, value in zip(labels, values):
        n = int(round(value / peak * width)) if peak > 0 else 0
        lines.append(f"{label:<{pad}} |{marker * n:<{width}} {value:g}")
    return lines


def render_estimate(curve, width: int = 72, height: int = 18,
                    points: int = 120) -> str:
    """Render an :class:`~repro.core.estimate.EstimateCurve`.

    Downsamples the per-key curve to ``points`` plot points first.
    """
    n = curve.cost_factor.size
    idx = np.unique(np.linspace(0, n - 1, min(points, n)).astype(int))
    return render_curve(
        curve.cost_factor[idx],
        curve.throughput_ops_s[idx],
        width=width,
        height=height,
        x_label="cost factor (fraction of FastMem-only cost)",
        y_label="estimated ops/s",
    )
