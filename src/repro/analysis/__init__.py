"""Analysis utilities: CDFs, error statistics, latency percentiles, curves."""

from repro.analysis.asciiplot import render_curve, render_estimate
from repro.analysis.bootstrap import BootstrapCI, bootstrap_ci
from repro.analysis.cdf import empirical_cdf, key_space_cdf, size_cdf
from repro.analysis.curves import curve_knee, interpolate_curve, relative_curve
from repro.analysis.errors import BoxplotStats, boxplot_stats, percentage_error
from repro.analysis.latency import latency_summary, tail_percentiles

__all__ = [
    "empirical_cdf",
    "key_space_cdf",
    "size_cdf",
    "percentage_error",
    "BoxplotStats",
    "boxplot_stats",
    "tail_percentiles",
    "latency_summary",
    "curve_knee",
    "interpolate_curve",
    "relative_curve",
    "render_curve",
    "render_estimate",
    "BootstrapCI",
    "bootstrap_ci",
]
