"""Latency percentile analysis (paper Figures 8c-8e).

Mnemo estimates *average* latency accurately but deliberately does not
estimate tail latency — "the simple analytical model it uses is not
sufficient to capture the variabilities of the tail latencies"
(Section V-A); the paper reports measured tails instead.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.ycsb.client import RunResult


def tail_percentiles(samples: np.ndarray,
                     qs: tuple[float, ...] = (95.0, 99.0)) -> dict[float, float]:
    """Requested percentiles of a latency sample array (ns)."""
    samples = np.asarray(samples, dtype=np.float64)
    if samples.size == 0:
        raise ConfigurationError("no latency samples")
    return {q: float(v) for q, v in zip(qs, np.percentile(samples, qs))}


def latency_summary(result: RunResult) -> dict[str, float]:
    """Flat summary of a run's latency metrics (ns)."""
    out = {
        "avg_ns": result.avg_latency_ns,
        "avg_read_ns": result.avg_read_ns,
        "avg_write_ns": result.avg_write_ns,
    }
    for q, v in sorted(result.latency_percentiles_ns.items()):
        out[f"p{q:g}_ns"] = v
    return out


def tail_to_average_ratio(result: RunResult, q: float = 99.0) -> float:
    """How heavy the tail is relative to the mean — the variability the
    analytic model cannot track."""
    return result.percentile(q) / result.avg_latency_ns
