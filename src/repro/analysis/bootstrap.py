"""Bootstrap confidence intervals.

The paper reports point statistics (0.07 % median error); a careful
reproduction should state how certain its own medians are.  Percentile
bootstrap over the error samples gives the Fig 8a bench its confidence
intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class BootstrapCI:
    """A statistic with its percentile-bootstrap confidence interval."""

    statistic: float
    low: float
    high: float
    confidence: float
    n_resamples: int

    @property
    def width(self) -> float:
        """Interval width."""
        return self.high - self.low

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high


def bootstrap_ci(
    samples: np.ndarray,
    statistic: Callable[[np.ndarray], float] = np.median,
    confidence: float = 0.95,
    n_resamples: int = 2_000,
    seed: SeedLike = None,
) -> BootstrapCI:
    """Percentile bootstrap CI for *statistic* over *samples*.

    Resampling is vectorized: one ``(n_resamples, n)`` index draw and a
    single ``statistic`` evaluation along the resample axis when the
    statistic supports an ``axis`` keyword (NumPy reductions do), with
    a per-row fallback otherwise.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.size == 0:
        raise ConfigurationError("cannot bootstrap an empty sample")
    if not 0 < confidence < 1:
        raise ConfigurationError(f"confidence must be in (0, 1), got {confidence}")
    if n_resamples < 10:
        raise ConfigurationError("need at least 10 resamples")

    rng = ensure_rng(seed)
    idx = rng.integers(0, samples.size, size=(n_resamples, samples.size))
    resamples = samples[idx]
    try:
        stats = np.asarray(statistic(resamples, axis=1), dtype=np.float64)
        if stats.shape != (n_resamples,):
            raise TypeError
    except TypeError:
        stats = np.array([statistic(row) for row in resamples])

    alpha = (1.0 - confidence) / 2.0
    low, high = np.percentile(stats, [100 * alpha, 100 * (1 - alpha)])
    return BootstrapCI(
        statistic=float(statistic(samples)),
        low=float(low),
        high=float(high),
        confidence=confidence,
        n_resamples=n_resamples,
    )
