"""Empirical CDFs (paper Figures 3 and 4)."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.ycsb.workload import Trace


def empirical_cdf(samples: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(sorted values, cumulative probability) for *samples*."""
    samples = np.asarray(samples)
    if samples.size == 0:
        raise ConfigurationError("cannot build a CDF from no samples")
    xs = np.sort(samples, kind="stable")
    ps = np.arange(1, xs.size + 1) / xs.size
    return xs, ps


def key_space_cdf(trace: Trace) -> tuple[np.ndarray, np.ndarray]:
    """Figure 3's curve: P(requested key id <= k) over the key space.

    Returns (key ids 0..n-1, cumulative request probability).
    """
    counts = np.bincount(trace.keys, minlength=trace.n_keys)
    cum = np.cumsum(counts) / trace.n_requests
    return np.arange(trace.n_keys), cum


def size_cdf(sizes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Figure 4's curve: CDF of record sizes (bytes on a log axis)."""
    return empirical_cdf(np.asarray(sizes, dtype=np.float64))


def coverage_fraction(trace: Trace, request_share: float) -> float:
    """Smallest fraction of (hottest-first) keys serving *request_share*
    of requests — e.g. 0.9 -> "the hottest X% of keys serve 90%"."""
    if not 0 < request_share <= 1:
        raise ConfigurationError("request_share must be in (0, 1]")
    counts = np.bincount(trace.keys, minlength=trace.n_keys)
    hot_first = np.sort(counts)[::-1]
    cum = np.cumsum(hot_first) / trace.n_requests
    n_hot = int(np.searchsorted(cum, request_share, side="left")) + 1
    return n_hot / trace.n_keys
