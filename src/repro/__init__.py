"""repro — a full reproduction of *Mnemo: Boosting Memory Cost Efficiency
in Hybrid Memory Systems* (Doudali & Gavrilovska, IPDPS-W 2019).

Mnemo is a memory capacity sizing and data tiering consultant for
in-memory key-value stores on hybrid (DRAM + NVM) memory systems.  This
package provides the consultant itself (:mod:`repro.core`) plus every
substrate the paper's evaluation needs, built from scratch:

- :mod:`repro.memsim` — the emulated hybrid-memory testbed (Table I);
- :mod:`repro.kvstore` — Redis/Memcached/DynamoDB-like store engines;
- :mod:`repro.ycsb` — YCSB-style workloads and the measuring client;
- :mod:`repro.pricing` — the cloud VM memory-cost analysis (Fig 1);
- :mod:`repro.cost` — the hybrid memory cost model (Table II);
- :mod:`repro.baselines` — comparator profiling methodologies (Table IV);
- :mod:`repro.analysis` — CDF/error/latency/curve utilities.

Quickstart::

    from repro import Mnemo, RedisLike
    from repro.ycsb import generate_trace, workload_by_name

    trace = generate_trace(workload_by_name("trending"))
    report = Mnemo(engine_factory=RedisLike).profile(trace)
    print(report.summary())
"""

from repro.core import (
    EstimateCurve,
    ExternalTieringMnemo,
    Mnemo,
    MnemoReport,
    MnemoT,
    PerformanceBaselines,
    SizingChoice,
    WorkloadDescriptor,
)
from repro.cost import CostModel, cost_reduction_factor
from repro.guard import (
    DriftDetector,
    ErrorBudget,
    GuardLoop,
    MarginPolicy,
    RecommendationValidator,
    ValidationVerdict,
)
from repro.kvstore import (
    DynamoLike,
    HybridDeployment,
    MemcachedLike,
    RedisLike,
)
from repro.memsim import HybridMemorySystem
from repro.ycsb import (
    TABLE_III_WORKLOADS,
    Trace,
    WorkloadSpec,
    YCSBClient,
    generate_trace,
    workload_by_name,
)

__version__ = "1.0.0"

__all__ = [
    "Mnemo",
    "MnemoT",
    "ExternalTieringMnemo",
    "MnemoReport",
    "EstimateCurve",
    "SizingChoice",
    "PerformanceBaselines",
    "WorkloadDescriptor",
    "HybridMemorySystem",
    "RedisLike",
    "MemcachedLike",
    "DynamoLike",
    "HybridDeployment",
    "YCSBClient",
    "Trace",
    "WorkloadSpec",
    "generate_trace",
    "workload_by_name",
    "TABLE_III_WORKLOADS",
    "CostModel",
    "cost_reduction_factor",
    "GuardLoop",
    "RecommendationValidator",
    "ValidationVerdict",
    "ErrorBudget",
    "DriftDetector",
    "MarginPolicy",
    "__version__",
]
