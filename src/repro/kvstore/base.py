"""Engine interface shared by the three key-value stores.

An engine owns a dataset of integer-keyed records, places each record on
one memory node of a :class:`~repro.memsim.system.HybridMemorySystem`,
and services GET/PUT/DELETE requests while accruing simulated time from
its :class:`~repro.kvstore.profiles.EngineProfile`.

Two access paths exist:

- the *scalar* path (``get``/``put``/``delete``) maintains the real index
  structures and per-op timing — used by unit tests and small scenarios;
- the *vectorized* path exposes ``key_sizes`` / ``key_nodes`` NumPy arrays
  that the YCSB client uses to time whole traces in a few array ops.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.errors import ConfigurationError, KeyNotFoundError
from repro.kvstore.profiles import EngineProfile
from repro.memsim.node import MemoryNode

#: Node codes used in the vectorized arrays.
FAST, SLOW = 0, 1


@dataclass(frozen=True)
class OpResult:
    """Outcome of one scalar operation."""

    key: int
    op: str  # "get" | "put" | "delete"
    node: str
    service_time_ns: float
    size: int


class KVEngine(abc.ABC):
    """Base class for the simulated key-value store engines.

    Parameters
    ----------
    profile:
        The engine's cost model.
    fast, slow:
        Memory nodes records can be placed on.
    """

    def __init__(self, profile: EngineProfile, fast: MemoryNode, slow: MemoryNode):
        self.profile = profile
        self.fast = fast
        self.slow = slow
        self._sizes: dict[int, int] = {}
        self._nodes: dict[int, int] = {}  # key -> FAST | SLOW
        self.clock_ns = 0.0
        self.op_count = 0

    # -- subclass hooks ---------------------------------------------------------

    @abc.abstractmethod
    def _index_insert(self, key: int, size: int, node_code: int) -> None:
        """Install *key* in the engine's index and storage."""

    @abc.abstractmethod
    def _index_lookup(self, key: int) -> int:
        """Return the stored size for *key* (raise KeyNotFoundError)."""

    @abc.abstractmethod
    def _index_remove(self, key: int) -> None:
        """Remove *key* from the index and storage."""

    @abc.abstractmethod
    def stored_bytes(self, node_code: int) -> int:
        """Bytes the engine reserves on a node (includes allocator slack)."""

    # -- placement ---------------------------------------------------------------

    def _node(self, code: int) -> MemoryNode:
        return self.fast if code == FAST else self.slow

    def node_of(self, key: int) -> str:
        """Name of the node holding *key*."""
        try:
            return self._node(self._nodes[key]).name
        except KeyError:
            raise KeyNotFoundError(key) from None

    def load(self, sizes: Mapping[int, int] | Iterable[tuple[int, int]],
             fast_keys: Iterable[int] = ()) -> None:
        """Bulk-load a dataset.

        Parameters
        ----------
        sizes:
            Mapping (or pairs) of key -> record size in bytes.
        fast_keys:
            Keys to place on FastMem; everything else goes to SlowMem.
        """
        pairs = sizes.items() if isinstance(sizes, Mapping) else sizes
        fast_set = set(fast_keys)
        for key, size in pairs:
            code = FAST if key in fast_set else SLOW
            self._install(key, size, code)

    def _install(self, key: int, size: int, code: int) -> None:
        if size <= 0:
            raise ConfigurationError(f"record size must be positive (key {key})")
        if key in self._sizes:
            raise ConfigurationError(f"key {key} already loaded")
        self._index_insert(key, size, code)
        self._sizes[key] = size
        self._nodes[key] = code

    # -- scalar operations ---------------------------------------------------------

    def _service(self, key: int, is_read: bool, size: int, op: str) -> OpResult:
        code = self._nodes[key]
        node = self._node(code)
        prof = self.profile
        touched = size + prof.metadata_bytes
        t = prof.cpu_ns(is_read) + prof.passes(is_read) * node.access_time_ns(touched)
        self.clock_ns += t
        self.op_count += 1
        return OpResult(key=key, op=op, node=node.name, service_time_ns=t, size=size)

    def get(self, key: int) -> OpResult:
        """Read a record; raises :class:`KeyNotFoundError` if absent."""
        size = self._index_lookup(key)
        return self._service(key, True, size, "get")

    def put(self, key: int, size: int | None = None) -> OpResult:
        """Update an existing record in place (size change allowed)."""
        old = self._index_lookup(key)
        if size is not None and size != old:
            code = self._nodes[key]
            self._index_remove(key)
            self._index_insert(key, size, code)
            self._sizes[key] = size
        return self._service(key, False, size if size is not None else old, "put")

    def delete(self, key: int) -> OpResult:
        """Remove a record."""
        size = self._index_lookup(key)
        result = self._service(key, False, size, "delete")
        self._index_remove(key)
        del self._sizes[key]
        del self._nodes[key]
        return result

    # -- vectorized views -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._sizes)

    @property
    def keys(self) -> np.ndarray:
        """Loaded keys, sorted ascending."""
        return np.array(sorted(self._sizes), dtype=np.int64)

    def key_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(keys, sizes, node codes) as aligned arrays, sorted by key."""
        keys = self.keys
        sizes = np.array([self._sizes[int(k)] for k in keys], dtype=np.int64)
        nodes = np.array([self._nodes[int(k)] for k in keys], dtype=np.int8)
        return keys, sizes, nodes

    @property
    def dataset_bytes(self) -> int:
        """Total payload bytes of loaded records."""
        return sum(self._sizes.values())

    def fast_bytes(self) -> int:
        """Payload bytes currently on FastMem."""
        return sum(s for k, s in self._sizes.items() if self._nodes[k] == FAST)
