"""Open-addressing hash index.

The index used by :class:`~repro.kvstore.redislike.RedisLike` and
:class:`~repro.kvstore.memcachedlike.MemcachedLike`.  Linear probing with
power-of-two tables, tombstone deletion, and incremental growth at 2/3
load — roughly the shape of Redis's dict / memcached's assoc table,
implemented from scratch so probe statistics (used for metadata-traffic
accounting) are observable.

Keys are non-negative integers (the workload key space); values are
opaque Python objects (the engines store record descriptors).
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.errors import ConfigurationError, KeyNotFoundError

_EMPTY = object()
_TOMBSTONE = object()

#: 64-bit Fibonacci hashing multiplier (2^64 / phi), a standard integer mix.
_FIB = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


def _mix(key: int) -> int:
    """Cheap 64-bit integer hash (Fibonacci multiply + xor-shift)."""
    h = (key * _FIB) & _MASK64
    h ^= h >> 29
    return h


class HashIndex:
    """Open-addressing hash table with linear probing.

    Parameters
    ----------
    initial_capacity:
        Starting number of slots; rounded up to a power of two, min 8.
    """

    def __init__(self, initial_capacity: int = 64):
        if initial_capacity <= 0:
            raise ConfigurationError(
                f"initial capacity must be positive, got {initial_capacity}"
            )
        cap = 8
        while cap < initial_capacity:
            cap <<= 1
        self._keys: list[Any] = [_EMPTY] * cap
        self._values: list[Any] = [None] * cap
        self._size = 0  # live entries
        self._fill = 0  # live entries + tombstones
        self.total_probes = 0  # cumulative probe count, for traffic accounting

    # -- dunder --------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: int) -> bool:
        return self._find(key) is not None

    def __iter__(self) -> Iterator[int]:
        for k in self._keys:
            if k is not _EMPTY and k is not _TOMBSTONE:
                yield k

    # -- introspection --------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Current number of slots."""
        return len(self._keys)

    @property
    def load_factor(self) -> float:
        """Live entries / slots."""
        return self._size / len(self._keys)

    # -- internals -----------------------------------------------------------

    def _probe_sequence(self, key: int) -> Iterator[int]:
        mask = len(self._keys) - 1
        i = _mix(key) & mask
        while True:
            yield i
            i = (i + 1) & mask

    def _find(self, key: int) -> Optional[int]:
        """Slot of a live *key*, or None."""
        keys = self._keys
        for i in self._probe_sequence(key):
            self.total_probes += 1
            slot = keys[i]
            if slot is _EMPTY:
                return None
            if slot is not _TOMBSTONE and slot == key:
                return i

    def _grow(self) -> None:
        old_keys, old_values = self._keys, self._values
        cap = len(old_keys) * 2
        self._keys = [_EMPTY] * cap
        self._values = [None] * cap
        self._size = 0
        self._fill = 0
        for k, v in zip(old_keys, old_values):
            if k is not _EMPTY and k is not _TOMBSTONE:
                self.insert(k, v)

    # -- operations ----------------------------------------------------------

    def insert(self, key: int, value: Any) -> bool:
        """Insert or update; returns True if the key was new."""
        if self._fill * 3 >= len(self._keys) * 2:
            self._grow()
        keys = self._keys
        first_tombstone = None
        for i in self._probe_sequence(key):
            self.total_probes += 1
            slot = keys[i]
            if slot is _EMPTY:
                target = first_tombstone if first_tombstone is not None else i
                keys[target] = key
                self._values[target] = value
                self._size += 1
                if first_tombstone is None:
                    self._fill += 1
                return True
            if slot is _TOMBSTONE:
                if first_tombstone is None:
                    first_tombstone = i
            elif slot == key:
                self._values[i] = value
                return False

    def lookup(self, key: int) -> Any:
        """Value for *key*; raises :class:`KeyNotFoundError` if absent."""
        i = self._find(key)
        if i is None:
            raise KeyNotFoundError(key)
        return self._values[i]

    def get(self, key: int, default: Any = None) -> Any:
        """Value for *key*, or *default*."""
        i = self._find(key)
        return default if i is None else self._values[i]

    def remove(self, key: int) -> Any:
        """Delete *key* and return its value; raises if absent."""
        i = self._find(key)
        if i is None:
            raise KeyNotFoundError(key)
        value = self._values[i]
        self._keys[i] = _TOMBSTONE
        self._values[i] = None
        self._size -= 1
        return value

    def items(self) -> Iterator[tuple[int, Any]]:
        """Iterate live (key, value) pairs in slot order."""
        for k, v in zip(self._keys, self._values):
            if k is not _EMPTY and k is not _TOMBSTONE:
                yield k, v
