"""Engine sensitivity profiles.

A profile captures how one request translates into CPU time and memory
traffic for a given engine.  Per-request service time on a node is

    t = cpu_ns + passes * (node_latency + touched_bytes / node_bandwidth)

``passes`` is the *effective* number of synchronous record walks: it folds
in how well the engine overlaps memory traffic with computation (hardware
prefetch, pipelined slab access) and whether writes complete
asynchronously.  The paper observes (Section V-A) that the internals of a
store set its overall sensitivity to SlowMem — DynamoDB is severely
impacted, Memcached barely — without analysing why; these profiles are
calibrated to reproduce exactly that ordering and the ≈40 % FastMem-only
vs SlowMem-only throughput gap for Redis on thumbnail workloads (Fig 5a).

The absolute CPU costs are in the tens of microseconds because the
paper's client measures end-to-end YCSB round trips on localhost (request
parsing, socket hops, engine work), not bare memory accesses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class EngineProfile:
    """Per-request cost model parameters of a key-value store engine.

    Parameters
    ----------
    name:
        Engine identifier (``"redis"`` / ``"memcached"`` / ``"dynamodb"``).
    read_cpu_ns / write_cpu_ns:
        Fixed per-request CPU cost (client + server processing).
    read_passes / write_passes:
        Effective synchronous record walks per request.  Reads are more
        exposed than writes (paper Section III, "Read:Write ratio"):
        writes can be buffered and retired off the critical path, so
        ``write_passes < read_passes`` for every engine.
    metadata_bytes:
        Index/metadata bytes touched per request in addition to the
        record itself (hash bucket or B-tree path).
    """

    name: str
    read_cpu_ns: float
    write_cpu_ns: float
    read_passes: float
    write_passes: float
    metadata_bytes: int = 64

    def __post_init__(self) -> None:
        for field_name in ("read_cpu_ns", "write_cpu_ns"):
            if getattr(self, field_name) <= 0:
                raise ConfigurationError(f"{field_name} must be positive")
        for field_name in ("read_passes", "write_passes"):
            if getattr(self, field_name) < 0:
                raise ConfigurationError(f"{field_name} must be >= 0")
        if self.metadata_bytes < 0:
            raise ConfigurationError("metadata_bytes must be >= 0")

    def cpu_ns(self, is_read: bool) -> float:
        """Fixed CPU cost for one request of the given type."""
        return self.read_cpu_ns if is_read else self.write_cpu_ns

    def passes(self, is_read: bool) -> float:
        """Effective memory passes for one request of the given type."""
        return self.read_passes if is_read else self.write_passes


#: Redis-like: single-threaded event loop, one synchronous copy of the
#: value per read.  Calibrated so FastMem-only is ≈40 % faster than
#: SlowMem-only on 100 KB read-only workloads (paper Fig 5a).
REDIS_PROFILE = EngineProfile(
    name="redis",
    read_cpu_ns=115_000.0,
    write_cpu_ns=125_000.0,
    read_passes=1.0,
    write_passes=0.30,
    metadata_bytes=96,
)

#: Memcached-like: slab-resident records with aggressive prefetch overlap;
#: barely sensitive to SlowMem (paper Figs 8b, 9).
MEMCACHED_PROFILE = EngineProfile(
    name="memcached",
    read_cpu_ns=90_000.0,
    write_cpu_ns=95_000.0,
    read_passes=0.06,
    write_passes=0.03,
    metadata_bytes=72,
)

#: DynamoDB-local-like: B-tree traversal plus serialization and checksum
#: passes over the value; the most SlowMem-sensitive engine (paper Fig 8b).
DYNAMO_PROFILE = EngineProfile(
    name="dynamodb",
    read_cpu_ns=150_000.0,
    write_cpu_ns=170_000.0,
    read_passes=6.0,
    write_passes=2.0,
    metadata_bytes=512,
)

_PROFILES = {
    p.name: p for p in (REDIS_PROFILE, MEMCACHED_PROFILE, DYNAMO_PROFILE)
}


def profile_for(name: str) -> EngineProfile:
    """Look up a built-in profile by engine name (case-insensitive)."""
    try:
        return _PROFILES[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown engine {name!r}; known: {sorted(_PROFILES)}"
        ) from None


def builtin_profiles() -> dict[str, EngineProfile]:
    """All built-in profiles keyed by name (copy; safe to mutate)."""
    return dict(_PROFILES)
