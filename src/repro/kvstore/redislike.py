"""Redis-like engine.

A single-threaded event-loop store: one open-addressing hash index over
the whole key space, records allocated individually (jemalloc-style
first fit per node) with a small per-record object header.  Reads copy
the value once into the reply buffer (``read_passes = 1``); writes retire
mostly off the critical path (``write_passes = 0.3``).
"""

from __future__ import annotations

from repro.kvstore.base import FAST, KVEngine
from repro.kvstore.hashindex import HashIndex
from repro.kvstore.profiles import REDIS_PROFILE, EngineProfile
from repro.memsim.allocator import AddressSpaceAllocator, Allocation
from repro.memsim.node import MemoryNode

#: Per-record header: robj + sds header + dict entry, roughly.
RECORD_OVERHEAD = 96


class RedisLike(KVEngine):
    """The Redis-shaped engine (see module docstring)."""

    def __init__(
        self,
        fast: MemoryNode,
        slow: MemoryNode,
        profile: EngineProfile = REDIS_PROFILE,
    ):
        super().__init__(profile, fast, slow)
        self._index = HashIndex()
        self._backing = {
            0: AddressSpaceAllocator(fast.capacity_bytes),
            1: AddressSpaceAllocator(slow.capacity_bytes),
        }
        self._allocs: dict[int, tuple[int, Allocation]] = {}  # key -> (node, alloc)

    @property
    def index(self) -> HashIndex:
        """The underlying hash index (exposed for probe statistics)."""
        return self._index

    def _index_insert(self, key: int, size: int, node_code: int) -> None:
        alloc = self._backing[node_code].allocate(size + RECORD_OVERHEAD)
        self._node(node_code).allocate(alloc.size)
        self._index.insert(key, size)
        self._allocs[key] = (node_code, alloc)

    def _index_lookup(self, key: int) -> int:
        return self._index.lookup(key)

    def _index_remove(self, key: int) -> None:
        self._index.remove(key)
        node_code, alloc = self._allocs.pop(key)
        self._backing[node_code].release(alloc)
        self._node(node_code).release(alloc.size)

    def stored_bytes(self, node_code: int) -> int:
        """Bytes reserved on a node (payload + per-record headers)."""
        return self._backing[node_code].used_bytes

    def overhead_bytes(self) -> int:
        """Total allocator/header overhead beyond record payloads."""
        reserved = self.stored_bytes(FAST) + self.stored_bytes(1)
        return reserved - self.dataset_bytes
