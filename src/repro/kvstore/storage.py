"""A storage-backed store — deliberately outside Mnemo's model.

Section V-A ("Target applications") scopes the estimation model to
*in-memory* stores: "We do not argue that the estimation model will
work for any data store, especially those engaging storage components."
This module provides the counterexample that makes the scoping claim
testable: an LSM-flavoured store whose dataset lives on disk behind an
in-memory block cache.

The hybrid-memory question still exists — the *block cache* is tiered
across FastMem and SlowMem — but per-request savings are now bimodal:
a cache hit saves the full memory delta while a miss is disk-dominated
and saves nothing.  Since hit probability correlates with exactly the
hot keys Mnemo places first, the uniform-average-savings assumption
breaks and the estimate error jumps by orders of magnitude (see
``bench_ablation_storage.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, WorkloadError
from repro.kvstore.profiles import EngineProfile
from repro.memsim.cache import LLCModel
from repro.memsim.system import HybridMemorySystem
from repro.memsim.timing import AccessTimer, NoiseModel
from repro.rng import SeedLike, derive_seed

from repro.ycsb.client import RunResult
from repro.ycsb.workload import Trace

#: RocksDB-local-flavoured request costs: cheaper CPU path than the
#: DynamoDB envelope, one synchronous pass over cached values.
ROCKS_PROFILE = EngineProfile(
    name="rockslike",
    read_cpu_ns=40_000.0,
    write_cpu_ns=45_000.0,
    read_passes=1.0,
    write_passes=0.3,
    metadata_bytes=128,
)


@dataclass(frozen=True)
class StorageConfig:
    """Disk and cache parameters of the storage-backed store."""

    disk_latency_ns: float = 100_000.0      # NVMe-ish read latency
    disk_bandwidth_gbps: float = 0.5        # 500 MB/s sustained
    cache_fraction: float = 0.25            # block cache / dataset bytes

    def __post_init__(self) -> None:
        if self.disk_latency_ns <= 0 or self.disk_bandwidth_gbps <= 0:
            raise ConfigurationError("disk parameters must be positive")
        if not 0 < self.cache_fraction <= 1:
            raise ConfigurationError("cache_fraction must be in (0, 1]")


class StorageBackedStore:
    """LSM-flavoured store with a tiered in-memory block cache.

    Reads first probe the block cache (exact LRU over records); hits
    cost a memory access on the node holding the cached entry (FastMem
    or SlowMem per the placement mask), misses pay the disk and install
    the record.  Writes land in a DRAM memtable plus an amortised
    sequential WAL append; they are largely placement-insensitive.
    """

    def __init__(
        self,
        system: HybridMemorySystem,
        config: StorageConfig | None = None,
        profile: EngineProfile = ROCKS_PROFILE,
    ):
        self.system = system
        self.config = config if config is not None else StorageConfig()
        self.profile = profile

    # -- internals ---------------------------------------------------------------

    def _cache_hits(self, trace: Trace) -> np.ndarray:
        """Hit mask of a cold-started LRU block cache over the trace."""
        cache_bytes = max(
            1, int(self.config.cache_fraction * trace.record_sizes.sum())
        )
        lru = LLCModel(capacity_bytes=cache_bytes)
        return lru.process(trace.keys, trace.record_sizes[trace.keys])

    # -- execution -----------------------------------------------------------------

    def execute(
        self,
        trace: Trace,
        fast_mask: np.ndarray,
        repeats: int = 3,
        noise_sigma: float = 0.01,
        seed: SeedLike = None,
    ) -> RunResult:
        """Run *trace* with the block cache tiered per *fast_mask*."""
        fast_mask = np.asarray(fast_mask, dtype=bool)
        if fast_mask.shape != (trace.n_keys,):
            raise WorkloadError(
                f"fast_mask must cover every key ({trace.n_keys})"
            )
        if repeats <= 0:
            raise ConfigurationError("repeats must be positive")

        prof = self.profile
        cfg = self.config
        hits = self._cache_hits(trace)
        sizes = (trace.record_sizes[trace.keys]
                 + prof.metadata_bytes).astype(np.float64)
        on_fast = fast_mask[trace.keys]
        is_read = trace.is_read

        fast, slow = self.system.fast, self.system.slow
        mem_lat = np.where(on_fast, fast.latency_ns, slow.latency_ns)
        mem_bpns = np.where(on_fast, fast.bytes_per_ns, slow.bytes_per_ns)
        mem_ns = mem_lat + sizes / mem_bpns
        disk_ns = cfg.disk_latency_ns + sizes / cfg.disk_bandwidth_gbps

        # reads: cache hit -> tiered memory; miss -> disk + install
        read_ns = np.where(hits, prof.read_passes * mem_ns,
                           disk_ns + 0.2 * mem_ns)
        # writes: DRAM memtable + amortised sequential WAL append
        write_ns = (prof.write_passes
                    * (fast.latency_ns + sizes / fast.bytes_per_ns)
                    + sizes / cfg.disk_bandwidth_gbps)
        cpu = np.where(is_read, prof.read_cpu_ns, prof.write_cpu_ns)
        base_times = cpu + np.where(is_read, read_ns, write_ns)

        noise = NoiseModel(sigma=noise_sigma)
        n_reads = int(is_read.sum())
        n_writes = trace.n_requests - n_reads
        runtimes = np.empty(repeats)
        read_sums = np.empty(repeats)
        for r in range(repeats):
            timer = AccessTimer(
                noise=noise,
                seed=derive_seed(seed, f"{trace.name}/storage-run{r}"),
            )
            times = noise.apply(base_times, timer._rng)
            runtimes[r] = times.sum()
            read_sums[r] = times[is_read].sum()

        runtime = float(runtimes.mean())
        read_sum = float(read_sums.mean())
        return RunResult(
            workload=trace.name,
            engine=prof.name,
            n_requests=trace.n_requests,
            n_reads=n_reads,
            n_writes=n_writes,
            runtime_ns=runtime,
            avg_read_ns=read_sum / n_reads if n_reads else 0.0,
            avg_write_ns=(runtime - read_sum) / n_writes if n_writes else 0.0,
            latency_percentiles_ns={},
            repeats=repeats,
            runtime_std_ns=float(runtimes.std()),
        )

    def cache_hit_rate(self, trace: Trace) -> float:
        """Fraction of requests the block cache serves."""
        return float(self._cache_hits(trace).mean())
