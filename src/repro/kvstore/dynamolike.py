"""DynamoDB-local-like engine.

DynamoDB's downloadable edition persists tables through SQLite; its
read path walks a B-tree and deserializes/validates items, touching the
value several times per request.  This engine mirrors that: a from-
scratch B-tree index, extent-based record allocation with item metadata,
and the most SlowMem-sensitive profile of the three (paper Fig 8b).
"""

from __future__ import annotations

from repro.kvstore.base import KVEngine
from repro.kvstore.btree import BTree
from repro.kvstore.profiles import DYNAMO_PROFILE, EngineProfile
from repro.memsim.allocator import AddressSpaceAllocator, Allocation
from repro.memsim.node import MemoryNode

#: Item envelope: attribute map, type tags, LSI bookkeeping.
ITEM_OVERHEAD = 256


class DynamoLike(KVEngine):
    """The DynamoDB-local-shaped engine (see module docstring)."""

    def __init__(
        self,
        fast: MemoryNode,
        slow: MemoryNode,
        profile: EngineProfile = DYNAMO_PROFILE,
        btree_order: int = 64,
    ):
        super().__init__(profile, fast, slow)
        self._tree = BTree(order=btree_order)
        self._backing = {
            0: AddressSpaceAllocator(fast.capacity_bytes),
            1: AddressSpaceAllocator(slow.capacity_bytes),
        }
        self._allocs: dict[int, tuple[int, Allocation]] = {}

    @property
    def tree(self) -> BTree:
        """The underlying B-tree (exposed for node-visit statistics)."""
        return self._tree

    def _index_insert(self, key: int, size: int, node_code: int) -> None:
        alloc = self._backing[node_code].allocate(size + ITEM_OVERHEAD)
        self._node(node_code).allocate(alloc.size)
        self._tree.insert(key, size)
        self._allocs[key] = (node_code, alloc)

    def _index_lookup(self, key: int) -> int:
        return self._tree.lookup(key)

    def _index_remove(self, key: int) -> None:
        self._tree.remove(key)
        node_code, alloc = self._allocs.pop(key)
        self._backing[node_code].release(alloc)
        self._node(node_code).release(alloc.size)

    def stored_bytes(self, node_code: int) -> int:
        """Bytes reserved on a node (payload + item envelopes)."""
        return self._backing[node_code].used_bytes

    def scan(self, lo: int, hi: int | None = None):
        """Ordered range scan (DynamoDB Query-style), as (key, size) pairs."""
        return self._tree.range(lo, hi)

    def query(self, lo: int, limit: int):
        """Timed Query: read up to *limit* consecutive items from *lo*.

        Returns the per-item :class:`~repro.kvstore.base.OpResult` list;
        each item is charged as a full read on its resident node (the
        B-tree walk is shared, folded into the per-item metadata cost).
        """
        if limit <= 0:
            from repro.errors import ConfigurationError

            raise ConfigurationError(f"limit must be positive, got {limit}")
        results = []
        for key, _ in self._tree.range(lo):
            if len(results) >= limit:
                break
            results.append(self.get(key))
        return results
