"""Memcached-like engine.

Records live in slab chunks (geometric size classes over 1 MB pages);
the index is the same open-addressing style table memcached's assoc
uses.  The profile makes it the least SlowMem-sensitive engine: its
access path overlaps memory traffic almost entirely (paper Figs 8b, 9
show Memcached "barely gets influenced").
"""

from __future__ import annotations

from repro.kvstore.base import KVEngine
from repro.kvstore.hashindex import HashIndex
from repro.kvstore.profiles import MEMCACHED_PROFILE, EngineProfile
from repro.kvstore.slab import SlabAllocator
from repro.memsim.allocator import AddressSpaceAllocator
from repro.memsim.node import MemoryNode

#: memcached item header + CAS + key storage, roughly.
ITEM_OVERHEAD = 56


class MemcachedLike(KVEngine):
    """The memcached-shaped engine (see module docstring)."""

    def __init__(
        self,
        fast: MemoryNode,
        slow: MemoryNode,
        profile: EngineProfile = MEMCACHED_PROFILE,
        slab_growth: float = 1.25,
    ):
        super().__init__(profile, fast, slow)
        self._index = HashIndex()
        self._backing = {
            0: AddressSpaceAllocator(fast.capacity_bytes),
            1: AddressSpaceAllocator(slow.capacity_bytes),
        }
        self._slabs = {
            code: SlabAllocator(backing, growth_factor=slab_growth)
            for code, backing in self._backing.items()
        }
        self._chunks: dict[int, tuple[int, int]] = {}  # key -> (node, chunk offset)
        self._backed_bytes = {0: 0, 1: 0}

    @property
    def index(self) -> HashIndex:
        """The underlying hash index."""
        return self._index

    def slab_allocator(self, node_code: int) -> SlabAllocator:
        """The slab allocator of one node (for stats/tests)."""
        return self._slabs[node_code]

    def _sync_node(self, node_code: int) -> None:
        """Propagate new slab pages into node occupancy accounting."""
        reserved = self._backing[node_code].used_bytes
        delta = reserved - self._backed_bytes[node_code]
        if delta > 0:
            self._node(node_code).allocate(delta)
        elif delta < 0:
            self._node(node_code).release(-delta)
        self._backed_bytes[node_code] = reserved

    def _index_insert(self, key: int, size: int, node_code: int) -> None:
        offset = self._slabs[node_code].allocate(size + ITEM_OVERHEAD)
        self._sync_node(node_code)
        self._index.insert(key, size)
        self._chunks[key] = (node_code, offset)

    def _index_lookup(self, key: int) -> int:
        return self._index.lookup(key)

    def _index_remove(self, key: int) -> None:
        self._index.remove(key)
        node_code, offset = self._chunks.pop(key)
        self._slabs[node_code].release(offset)
        self._sync_node(node_code)

    def stored_bytes(self, node_code: int) -> int:
        """Bytes reserved on a node, page-granular.

        Pages stay reserved after item release — memcached never
        returns slab pages to the OS.
        """
        return self._backing[node_code].used_bytes
