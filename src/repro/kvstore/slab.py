"""Memcached-style slab allocator.

Records are stored in fixed-size chunks drawn from size classes that grow
geometrically (memcached's default growth factor is 1.25).  Each class
carves chunks out of 1 MB slab pages requested from the node-backed
address-space allocator, so slab overhead (internal fragmentation +
partially used pages) shows up in real node occupancy — exactly the
accounting a capacity-sizing consultant cares about.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AllocationError, CapacityError, ConfigurationError
from repro.memsim.allocator import AddressSpaceAllocator, Allocation
from repro.units import MiB


@dataclass
class SlabClass:
    """One size class: all chunks in it have the same size."""

    chunk_size: int
    pages: list[Allocation] = field(default_factory=list)
    free_chunks: list[int] = field(default_factory=list)  # chunk offsets
    used_chunks: int = 0

    @property
    def chunks_per_page(self) -> int:
        """How many chunks one slab page yields for this class."""
        return max(1, SlabAllocator.PAGE_SIZE // self.chunk_size)

    @property
    def total_chunks(self) -> int:
        """Chunks carved so far across all of this class's pages."""
        return self.chunks_per_page * len(self.pages) if self.pages else 0


class SlabAllocator:
    """Slab allocation over a node-backed address space.

    Parameters
    ----------
    backing:
        The address-space allocator slab pages are carved from.
    growth_factor:
        Geometric ratio between consecutive chunk sizes (memcached: 1.25).
    min_chunk:
        Smallest chunk size.
    """

    PAGE_SIZE = 1 * MiB

    def __init__(
        self,
        backing: AddressSpaceAllocator,
        growth_factor: float = 1.25,
        min_chunk: int = 96,
    ):
        if growth_factor <= 1.0:
            raise ConfigurationError(
                f"growth factor must exceed 1, got {growth_factor}"
            )
        if min_chunk <= 0:
            raise ConfigurationError(f"min chunk must be positive, got {min_chunk}")
        self.backing = backing
        self.growth_factor = growth_factor
        self._classes: list[SlabClass] = []
        size = min_chunk
        while size < self.PAGE_SIZE:
            self._classes.append(SlabClass(chunk_size=size))
            size = int(size * growth_factor) + 1
        self._classes.append(SlabClass(chunk_size=self.PAGE_SIZE))
        self._chunk_owner: dict[int, SlabClass] = {}  # chunk offset -> class

    # -- introspection --------------------------------------------------------

    @property
    def classes(self) -> list[SlabClass]:
        """All size classes, smallest first."""
        return list(self._classes)

    def class_for(self, size: int) -> SlabClass:
        """Smallest class whose chunk fits *size*."""
        if size <= 0:
            raise ConfigurationError(f"record size must be positive, got {size}")
        for cls in self._classes:
            if cls.chunk_size >= size:
                return cls
        raise CapacityError(
            f"record of {size} B exceeds the largest slab chunk "
            f"({self._classes[-1].chunk_size} B)"
        )

    @property
    def allocated_bytes(self) -> int:
        """Bytes reserved from the backing store (page granularity)."""
        return sum(len(c.pages) * self.PAGE_SIZE for c in self._classes)

    @property
    def used_bytes(self) -> int:
        """Bytes in live chunks (chunk granularity, includes slack)."""
        return sum(c.used_chunks * c.chunk_size for c in self._classes)

    def overhead_ratio(self, payload_bytes: int) -> float:
        """Allocator overhead: reserved bytes / payload bytes."""
        if payload_bytes <= 0:
            raise ConfigurationError("payload must be positive")
        return self.allocated_bytes / payload_bytes

    # -- operations -----------------------------------------------------------

    def allocate(self, size: int) -> int:
        """Store a record of *size* bytes; return its chunk offset."""
        cls = self.class_for(size)
        if not cls.free_chunks:
            page = self.backing.allocate(self.PAGE_SIZE)
            cls.pages.append(page)
            step = cls.chunk_size
            count = cls.chunks_per_page
            cls.free_chunks.extend(
                page.offset + i * step for i in range(count - 1, -1, -1)
            )
        offset = cls.free_chunks.pop()
        cls.used_chunks += 1
        self._chunk_owner[offset] = cls
        return offset

    def release(self, offset: int) -> None:
        """Return a chunk to its class's free list."""
        cls = self._chunk_owner.pop(offset, None)
        if cls is None:
            raise AllocationError(f"chunk at {offset} is not live")
        cls.free_chunks.append(offset)
        cls.used_chunks -= 1
