"""From-scratch in-memory key-value store engines.

The paper evaluates three unmodified stores — Redis, Memcached and
DynamoDB (local) — deployed as two server instances bound to FastMem and
SlowMem respectively.  This package provides simulator-native equivalents
with genuinely different internals:

- :class:`~repro.kvstore.redislike.RedisLike` — single-threaded event
  loop over an open-addressing hash index;
- :class:`~repro.kvstore.memcachedlike.MemcachedLike` — slab-allocated
  records, the least memory-sensitive engine;
- :class:`~repro.kvstore.dynamolike.DynamoLike` — B-tree index with
  serialization/checksum passes, the most memory-sensitive engine.

Per-request timing is governed by each engine's
:class:`~repro.kvstore.profiles.EngineProfile`; the
:class:`~repro.kvstore.cluster.HybridDeployment` pairs a FastMem and a
SlowMem server instance behind a key router, mirroring the paper's
two-server setup driven by a modified YCSB core.
"""

from repro.kvstore.base import KVEngine, OpResult
from repro.kvstore.btree import BTree
from repro.kvstore.server import HybridDeployment
from repro.kvstore.dynamolike import DynamoLike
from repro.kvstore.hashindex import HashIndex
from repro.kvstore.memcachedlike import MemcachedLike
from repro.kvstore.profiles import (
    DYNAMO_PROFILE,
    MEMCACHED_PROFILE,
    REDIS_PROFILE,
    EngineProfile,
    profile_for,
)
from repro.kvstore.redislike import RedisLike
from repro.kvstore.server import ServerInstance  # noqa: F401  (HybridDeployment above)
from repro.kvstore.slab import SlabAllocator, SlabClass

__all__ = [
    "KVEngine",
    "OpResult",
    "BTree",
    "HashIndex",
    "SlabAllocator",
    "SlabClass",
    "RedisLike",
    "MemcachedLike",
    "DynamoLike",
    "ServerInstance",
    "HybridDeployment",
    "EngineProfile",
    "REDIS_PROFILE",
    "MEMCACHED_PROFILE",
    "DYNAMO_PROFILE",
    "profile_for",
]
