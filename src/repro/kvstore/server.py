"""A server instance bound to one memory node.

The paper deploys *two* unmodified server processes on the testbed and
uses ``numactl`` to bind each one's allocations to a single node
(Section II, "Server Configuration").  :class:`ServerInstance` mirrors
that: it owns an engine whose records all land on the bound node.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

import numpy as np

from repro.errors import ConfigurationError, KeyNotFoundError
from repro.kvstore.base import FAST, SLOW, KVEngine, OpResult
from repro.memsim.system import HybridMemorySystem

EngineFactory = Callable[..., KVEngine]


class ServerInstance:
    """One key-value store process ``numactl``-bound to a memory node.

    Parameters
    ----------
    engine_factory:
        Engine class (``RedisLike`` / ``MemcachedLike`` / ``DynamoLike``)
        or any callable with the ``(fast, slow)`` signature.
    system:
        The hybrid memory system hosting the server.
    bind:
        ``"fast"`` or ``"slow"`` — the node all allocations go to.
    """

    def __init__(
        self,
        engine_factory: EngineFactory,
        system: HybridMemorySystem,
        bind: str,
    ):
        node = system.bind(bind)  # validates the binding target
        self.system = system
        self.bound_node = node
        self._bind_code = FAST if node is system.fast else SLOW
        self.engine = engine_factory(system.fast, system.slow)
        self.name = f"{self.engine.profile.name}@{node.name}"

    @property
    def is_fast(self) -> bool:
        """True when bound to FastMem."""
        return self._bind_code == FAST

    def load_records(
        self, sizes: Mapping[int, int] | Iterable[tuple[int, int]]
    ) -> None:
        """Load records; every allocation lands on the bound node."""
        pairs = sizes.items() if isinstance(sizes, Mapping) else sizes
        pairs = list(pairs)
        if self._bind_code == FAST:
            self.engine.load(pairs, fast_keys=[k for k, _ in pairs])
        else:
            self.engine.load(pairs, fast_keys=())

    def get(self, key: int) -> OpResult:
        """Serve a read."""
        return self.engine.get(key)

    def put(self, key: int, size: int | None = None) -> OpResult:
        """Serve an update."""
        return self.engine.put(key, size)

    def stored_bytes(self) -> int:
        """Bytes reserved on the bound node (payload + overhead)."""
        return self.engine.stored_bytes(self._bind_code)

    def __len__(self) -> int:
        return len(self.engine)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ServerInstance {self.name} records={len(self)}>"


class HybridDeployment:
    """Two server instances (FastServer + SlowServer) behind a key router.

    This is the paper's experimental configuration: the YCSB client's
    core module is modified to redirect each request to the instance
    holding the key.  The deployment also exposes the aligned NumPy
    arrays the vectorized client path consumes.

    Parameters
    ----------
    engine_factory:
        Engine class shared by both instances.
    system:
        The hybrid memory system.
    record_sizes:
        Dense array: ``record_sizes[key]`` is the size of key ``key``;
        the key space is ``0 .. len(record_sizes) - 1``.
    fast_keys:
        Iterable of keys placed on the FastMem instance (default: none,
        the SlowMem-only worst case).
    """

    def __init__(
        self,
        engine_factory: EngineFactory,
        system: HybridMemorySystem,
        record_sizes: np.ndarray,
        fast_keys: Iterable[int] = (),
    ):
        record_sizes = np.asarray(record_sizes, dtype=np.int64)
        if record_sizes.ndim != 1 or record_sizes.size == 0:
            raise ConfigurationError("record_sizes must be a non-empty 1-D array")
        if (record_sizes <= 0).any():
            raise ConfigurationError("all record sizes must be positive")
        self.system = system
        self.record_sizes = record_sizes
        self._engine_factory = engine_factory
        self.fast_server = ServerInstance(engine_factory, system, "fast")
        self.slow_server = ServerInstance(engine_factory, system, "slow")
        self.fast_mask = np.zeros(record_sizes.size, dtype=bool)
        self._load(fast_keys)

    # -- construction helpers -----------------------------------------------------

    @classmethod
    def all_fast(
        cls, engine_factory: EngineFactory, system: HybridMemorySystem,
        record_sizes: np.ndarray,
    ) -> "HybridDeployment":
        """Best-case baseline deployment: every record on FastMem."""
        n = np.asarray(record_sizes).size
        return cls(engine_factory, system, record_sizes, fast_keys=range(n))

    @classmethod
    def all_slow(
        cls, engine_factory: EngineFactory, system: HybridMemorySystem,
        record_sizes: np.ndarray,
    ) -> "HybridDeployment":
        """Worst-case baseline deployment: every record on SlowMem."""
        return cls(engine_factory, system, record_sizes, fast_keys=())

    def _load(self, fast_keys: Iterable[int]) -> None:
        fast_keys = np.fromiter(fast_keys, dtype=np.int64, count=-1)
        if fast_keys.size:
            if fast_keys.min() < 0 or fast_keys.max() >= self.record_sizes.size:
                raise ConfigurationError("fast_keys outside the key space")
            self.fast_mask[fast_keys] = True
        fast_pairs = [(int(k), int(self.record_sizes[k])) for k in fast_keys]
        slow_ids = np.nonzero(~self.fast_mask)[0]
        slow_pairs = [(int(k), int(self.record_sizes[k])) for k in slow_ids]
        self.fast_server.load_records(fast_pairs)
        self.slow_server.load_records(slow_pairs)

    # -- routing --------------------------------------------------------------------

    @property
    def profile(self):
        """The engine cost profile (both instances share it)."""
        return self.fast_server.engine.profile

    @property
    def n_keys(self) -> int:
        """Size of the key space."""
        return self.record_sizes.size

    def route(self, key: int) -> ServerInstance:
        """The server instance holding *key*.

        Raises
        ------
        KeyNotFoundError
            If *key* is outside the deployment's key space — the error
            names the key and describes the deployment so a bad trace
            or off-by-one in placement code fails loudly instead of
            hitting numpy's wrap-around indexing.
        """
        k = int(key)
        if not 0 <= k < self.record_sizes.size:
            raise KeyNotFoundError(
                f"key {k} not in deployment "
                f"(engine {self.profile.name!r}, "
                f"{self.record_sizes.size} keys, "
                f"{int(self.fast_mask.sum())} on FastMem)"
            )
        return self.fast_server if self.fast_mask[k] else self.slow_server

    def get(self, key: int) -> OpResult:
        """Routed read."""
        return self.route(key).get(key)

    def put(self, key: int, size: int | None = None) -> OpResult:
        """Routed update."""
        return self.route(key).put(key, size)

    # -- sizing ----------------------------------------------------------------------

    def fast_bytes(self) -> int:
        """Payload bytes placed on FastMem."""
        return int(self.record_sizes[self.fast_mask].sum())

    def capacity_ratio(self) -> float:
        """FastMem payload / total payload (the paper's x-axis driver)."""
        return self.fast_bytes() / int(self.record_sizes.sum())

    def placement_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """(record_sizes, fast_mask) for the vectorized client path."""
        return self.record_sizes, self.fast_mask
