"""B-tree index.

The ordered index behind :class:`~repro.kvstore.dynamolike.DynamoLike`
(DynamoDB-local persists tables through SQLite, whose tables are
B-trees).  Implemented from scratch: fixed fan-out, split-on-insert,
borrow/merge-on-delete, and range scans.  Node visits are counted so the
engine can charge realistic index traffic per request.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, Optional

from repro.errors import ConfigurationError, KeyNotFoundError


class _Node:
    __slots__ = ("keys", "values", "children")

    def __init__(self) -> None:
        self.keys: list[int] = []
        self.values: list[Any] = []
        self.children: list["_Node"] = []

    @property
    def is_leaf(self) -> bool:
        return not self.children


class BTree:
    """A classic B-tree mapping integer keys to opaque values.

    Parameters
    ----------
    order:
        Maximum number of children per node (fan-out).  Minimum degree is
        ``order // 2``.  Defaults to 64, a realistic page fan-out.
    """

    def __init__(self, order: int = 64):
        if order < 4:
            raise ConfigurationError(f"order must be >= 4, got {order}")
        self.order = order
        self._min_keys = (order // 2) - 1
        self._max_keys = order - 1
        self._root = _Node()
        self._size = 0
        self.node_visits = 0  # cumulative, for traffic accounting

    # -- dunder ----------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: int) -> bool:
        try:
            self.lookup(key)
            return True
        except KeyNotFoundError:
            return False

    # -- introspection -----------------------------------------------------------

    @property
    def height(self) -> int:
        """Levels from root to leaf (1 for a lone root)."""
        h, node = 1, self._root
        while not node.is_leaf:
            node = node.children[0]
            h += 1
        return h

    # -- search ------------------------------------------------------------------

    def lookup(self, key: int) -> Any:
        """Value for *key*; raises :class:`KeyNotFoundError` if absent."""
        node = self._root
        while True:
            self.node_visits += 1
            i = bisect.bisect_left(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                return node.values[i]
            if node.is_leaf:
                raise KeyNotFoundError(key)
            node = node.children[i]

    def get(self, key: int, default: Any = None) -> Any:
        """Value for *key*, or *default*."""
        try:
            return self.lookup(key)
        except KeyNotFoundError:
            return default

    # -- insert ------------------------------------------------------------------

    def insert(self, key: int, value: Any) -> bool:
        """Insert or update; returns True if the key was new."""
        root = self._root
        if len(root.keys) > self._max_keys:  # pragma: no cover - invariant guard
            raise AssertionError("root overfull outside insert")
        new = self._insert(root, key, value)
        if len(root.keys) > self._max_keys:
            sibling, median_key, median_val = self._split(root)
            new_root = _Node()
            new_root.keys = [median_key]
            new_root.values = [median_val]
            new_root.children = [root, sibling]
            self._root = new_root
        if new:
            self._size += 1
        return new

    def _insert(self, node: _Node, key: int, value: Any) -> bool:
        self.node_visits += 1
        i = bisect.bisect_left(node.keys, key)
        if i < len(node.keys) and node.keys[i] == key:
            node.values[i] = value
            return False
        if node.is_leaf:
            node.keys.insert(i, key)
            node.values.insert(i, value)
            return True
        child = node.children[i]
        new = self._insert(child, key, value)
        if len(child.keys) > self._max_keys:
            sibling, median_key, median_val = self._split(child)
            node.keys.insert(i, median_key)
            node.values.insert(i, median_val)
            node.children.insert(i + 1, sibling)
        return new

    def _split(self, node: _Node) -> tuple[_Node, int, Any]:
        """Split an overfull node; return (right sibling, median k, median v)."""
        mid = len(node.keys) // 2
        median_key = node.keys[mid]
        median_val = node.values[mid]
        right = _Node()
        right.keys = node.keys[mid + 1 :]
        right.values = node.values[mid + 1 :]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        if node.children:
            right.children = node.children[mid + 1 :]
            node.children = node.children[: mid + 1]
        return right, median_key, median_val

    # -- delete ------------------------------------------------------------------

    def remove(self, key: int) -> Any:
        """Delete *key* and return its value; raises if absent."""
        value = self._remove(self._root, key)
        if not self._root.keys and self._root.children:
            self._root = self._root.children[0]
        self._size -= 1
        return value

    def _remove(self, node: _Node, key: int) -> Any:
        self.node_visits += 1
        i = bisect.bisect_left(node.keys, key)
        if i < len(node.keys) and node.keys[i] == key:
            if node.is_leaf:
                node.keys.pop(i)
                return node.values.pop(i)
            # replace with predecessor from the left subtree, then delete it
            value = node.values[i]
            pred = node.children[i]
            while not pred.is_leaf:
                pred = pred.children[-1]
            node.keys[i] = pred.keys[-1]
            node.values[i] = pred.values[-1]
            self._remove_and_rebalance(node, i, node.keys[i])
            return value
        if node.is_leaf:
            raise KeyNotFoundError(key)
        return self._remove_and_rebalance(node, i, key)

    def _remove_and_rebalance(self, node: _Node, i: int, key: int) -> Any:
        child = node.children[i]
        value = self._remove(child, key)
        if len(child.keys) < self._min_keys:
            self._rebalance(node, i)
        return value

    def _rebalance(self, parent: _Node, i: int) -> None:
        child = parent.children[i]
        # borrow from left sibling
        if i > 0 and len(parent.children[i - 1].keys) > self._min_keys:
            left = parent.children[i - 1]
            child.keys.insert(0, parent.keys[i - 1])
            child.values.insert(0, parent.values[i - 1])
            parent.keys[i - 1] = left.keys.pop()
            parent.values[i - 1] = left.values.pop()
            if left.children:
                child.children.insert(0, left.children.pop())
            return
        # borrow from right sibling
        if i + 1 < len(parent.children) and (
            len(parent.children[i + 1].keys) > self._min_keys
        ):
            right = parent.children[i + 1]
            child.keys.append(parent.keys[i])
            child.values.append(parent.values[i])
            parent.keys[i] = right.keys.pop(0)
            parent.values[i] = right.values.pop(0)
            if right.children:
                child.children.append(right.children.pop(0))
            return
        # merge with a sibling
        if i + 1 < len(parent.children):
            left_i = i
        else:
            left_i = i - 1
        left = parent.children[left_i]
        right = parent.children[left_i + 1]
        left.keys.append(parent.keys.pop(left_i))
        left.values.append(parent.values.pop(left_i))
        left.keys.extend(right.keys)
        left.values.extend(right.values)
        left.children.extend(right.children)
        parent.children.pop(left_i + 1)

    # -- iteration -----------------------------------------------------------------

    def items(self) -> Iterator[tuple[int, Any]]:
        """All (key, value) pairs in key order."""
        yield from self._walk(self._root)

    def _walk(self, node: _Node) -> Iterator[tuple[int, Any]]:
        if node.is_leaf:
            yield from zip(node.keys, node.values)
            return
        for i, key in enumerate(node.keys):
            yield from self._walk(node.children[i])
            yield key, node.values[i]
        yield from self._walk(node.children[-1])

    def range(self, lo: int, hi: Optional[int] = None) -> Iterator[tuple[int, Any]]:
        """Pairs with ``lo <= key`` (and ``key < hi`` when given), in order."""
        for key, value in self.items():
            if key < lo:
                continue
            if hi is not None and key >= hi:
                return
            yield key, value

    def check_invariants(self) -> None:
        """Assert structural B-tree invariants (tests / debugging)."""
        def depth_of(node: _Node) -> int:
            d = 0
            while not node.is_leaf:
                node = node.children[0]
                d += 1
            return d

        leaf_depth = depth_of(self._root)

        def recurse(node: _Node, depth: int, is_root: bool) -> None:
            assert node.keys == sorted(node.keys), "keys out of order"
            if not is_root:
                assert len(node.keys) >= self._min_keys, "underfull node"
            assert len(node.keys) <= self._max_keys, "overfull node"
            if node.is_leaf:
                assert depth == leaf_depth, "leaves at unequal depth"
            else:
                assert len(node.children) == len(node.keys) + 1
                for child in node.children:
                    recurse(child, depth + 1, False)

        recurse(self._root, 0, True)
        assert sum(1 for _ in self.items()) == self._size
