"""Tahoe-style ML-inferred baseline (comparator).

Tahoe (SC'18) executes the workload once on SlowMem and *infers* the
FastMem baseline with a pre-trained machine-learning model, avoiding
the second run.  The paper argues the inference is cheap but "the time
to collect the training data, via workload execution and monitoring of
hardware level counters, is significant" (Section V-B).

We reproduce the methodology: a linear model over per-request features
(SlowMem service time, average request bytes, read fraction) is trained
on a set of training workloads — each of which requires *both* baseline
executions — and then predicts the FastMem runtime and average
read/write times for a new workload from its SlowMem run alone.  The
training cost is carried in the resulting :class:`ProfilingCost`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.kvstore.server import EngineFactory
from repro.memsim.system import HybridMemorySystem
from repro.ycsb.client import RunResult, YCSBClient
from repro.ycsb.generator import generate_trace
from repro.ycsb.workload import Trace, WorkloadSpec
from repro.baselines.instrumented import ProfilingCost
from repro.core.descriptor import WorkloadDescriptor
from repro.core.sensitivity import PerformanceBaselines, SensitivityEngine


def _features(slow: RunResult, trace: Trace) -> np.ndarray:
    """Feature vector: [1, slow metric..., avg bytes, read fraction]."""
    avg_bytes = float(trace.record_sizes[trace.keys].mean())
    return np.array([
        1.0,
        slow.avg_read_ns,
        slow.avg_write_ns,
        avg_bytes,
        trace.read_fraction,
    ])


@dataclass(frozen=True)
class FastBaselineModel:
    """Linear predictors of the FastMem baseline from SlowMem features."""

    read_coef: np.ndarray      # -> fast avg read ns
    write_coef: np.ndarray     # -> fast avg write ns
    training_cost_ns: float    # simulated time to collect training data
    n_training_workloads: int

    def predict(self, slow: RunResult, trace: Trace) -> RunResult:
        """Synthesize the FastMem-only RunResult Tahoe would infer."""
        x = _features(slow, trace)
        fast_read = max(0.0, float(x @ self.read_coef))
        fast_write = max(0.0, float(x @ self.write_coef))
        runtime = slow.n_reads * fast_read + slow.n_writes * fast_write
        if runtime <= 0:
            raise ConfigurationError("model predicted a non-positive runtime")
        return RunResult(
            workload=slow.workload,
            engine=slow.engine,
            n_requests=slow.n_requests,
            n_reads=slow.n_reads,
            n_writes=slow.n_writes,
            runtime_ns=runtime,
            avg_read_ns=fast_read,
            avg_write_ns=fast_write,
            latency_percentiles_ns={},
            repeats=0,
        )


def train_fast_baseline_model(
    training_specs: Sequence[WorkloadSpec],
    engine_factory: EngineFactory,
    system_factory=HybridMemorySystem.testbed,
    client: YCSBClient | None = None,
) -> FastBaselineModel:
    """Collect training data (both baselines per workload) and fit.

    Needs at least as many training workloads as features (5).
    """
    if len(training_specs) < 5:
        raise ConfigurationError(
            f"need >= 5 training workloads for the 5-feature model, "
            f"got {len(training_specs)}"
        )
    client = client if client is not None else YCSBClient()
    engine = SensitivityEngine(engine_factory, system_factory, client)

    rows, y_read, y_write = [], [], []
    training_cost = 0.0
    for spec in training_specs:
        trace = generate_trace(spec)
        baselines = engine.measure(WorkloadDescriptor.from_trace(trace))
        rows.append(_features(baselines.slow, trace))
        y_read.append(baselines.fast.avg_read_ns)
        y_write.append(baselines.fast.avg_write_ns)
        # collecting one training example costs both baseline executions
        training_cost += baselines.fast.runtime_ns + baselines.slow.runtime_ns

    x = np.array(rows)
    read_coef, *_ = np.linalg.lstsq(x, np.array(y_read), rcond=None)
    write_coef, *_ = np.linalg.lstsq(x, np.array(y_write), rcond=None)
    return FastBaselineModel(
        read_coef=read_coef,
        write_coef=write_coef,
        training_cost_ns=training_cost,
        n_training_workloads=len(training_specs),
    )


@dataclass(frozen=True)
class MLProfileResult:
    """Output of a Tahoe-style profiling run."""

    baselines: PerformanceBaselines  # fast is *inferred*, slow is measured
    cost: ProfilingCost


class MLBaselineProfiler:
    """The Tahoe-like comparator: one measured run + model inference."""

    def __init__(
        self,
        model: FastBaselineModel,
        engine_factory: EngineFactory,
        system_factory=HybridMemorySystem.testbed,
        client: YCSBClient | None = None,
        amortize_training: bool = False,
    ):
        self.model = model
        self.engine_factory = engine_factory
        self.system_factory = system_factory
        self.client = client if client is not None else YCSBClient()
        self.amortize_training = amortize_training

    def profile(self, descriptor: WorkloadDescriptor) -> MLProfileResult:
        """Measure SlowMem-only, infer FastMem-only."""
        from repro.kvstore.server import HybridDeployment  # local to avoid cycle

        trace = descriptor.to_trace()
        slow_dep = HybridDeployment.all_slow(
            self.engine_factory, self.system_factory(), trace.record_sizes
        )
        slow = self.client.execute(trace, slow_dep)
        fast = self.model.predict(slow, trace)
        training = 0.0 if self.amortize_training else self.model.training_cost_ns
        cost = ProfilingCost(
            input_prep_ns=0.0,
            baselines_ns=training + slow.runtime_ns,
            tiering_ns=0.0,
            requires_source_instrumentation=False,
        )
        return MLProfileResult(
            baselines=PerformanceBaselines(fast=fast, slow=slow),
            cost=cost,
        )
