"""Comparator profiling methodologies (paper Section V-B, Table IV).

Existing tiering solutions differ from MnemoT in how they prepare
input, obtain performance baselines, and calculate tiering weights:

- :mod:`~repro.baselines.instrumented` — an X-Mem-style profiler that
  monitors every memory access through binary instrumentation (up to
  40x execution overhead) and derives latencies from microbenchmarks;
- :mod:`~repro.baselines.mlmodel` — a Tahoe-style profiler that runs
  only the SlowMem baseline and infers the FastMem baseline with a
  pre-trained machine-learning model (cheap inference, expensive
  training-data collection);
- :mod:`~repro.baselines.knapsack` — the 0/1 knapsack formulation of
  fixed-capacity tiering used by several existing solutions.
"""

from repro.baselines.instrumented import InstrumentedProfiler, ProfilingCost
from repro.baselines.knapsack import knapsack_tiering
from repro.baselines.mlmodel import MLBaselineProfiler, train_fast_baseline_model

__all__ = [
    "InstrumentedProfiler",
    "ProfilingCost",
    "MLBaselineProfiler",
    "train_fast_baseline_model",
    "knapsack_tiering",
]
