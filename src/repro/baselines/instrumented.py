"""X-Mem-style instrumentation-based profiling (comparator).

Existing tiering solutions (X-Mem, the ISMM'16 characterization,
Unimem) determine per-object access frequencies by instrumenting every
memory access with tools like Intel Pin — "can add up to 40x overhead,
as per the authors of X-Mem" (Section V-B) — and obtain device
latencies from prior microbenchmark execution instead of running the
real workload on both configurations.

This module reproduces that methodology against the simulator so its
profiling cost and estimate quality can be compared with MnemoT
(Table IV and the baseline ablation bench):

- *input preparation* requires instrumenting the server with a custom
  allocation API (modelled as a per-run engineering step flag);
- *performance baselines* come from latency/bandwidth microbenchmarks,
  so the engine's per-request CPU cost is invisible to the model;
- *tiering weights* require one instrumented execution of the workload
  at ``instrumentation_overhead`` times its normal runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.kvstore.server import EngineFactory, HybridDeployment
from repro.memsim.system import HybridMemorySystem
from repro.ycsb.client import YCSBClient
from repro.core.descriptor import WorkloadDescriptor
from repro.core.pattern import KeyAccessPattern


@dataclass(frozen=True)
class ProfilingCost:
    """Simulated time a profiling methodology spends, by step (ns)."""

    input_prep_ns: float
    baselines_ns: float
    tiering_ns: float
    requires_source_instrumentation: bool = False

    @property
    def total_ns(self) -> float:
        """End-to-end profiling time."""
        return self.input_prep_ns + self.baselines_ns + self.tiering_ns


@dataclass(frozen=True)
class MicrobenchBaselines:
    """Device timings from microbenchmarks (no engine CPU component)."""

    fast_latency_ns: float
    fast_bytes_per_ns: float
    slow_latency_ns: float
    slow_bytes_per_ns: float
    microbench_ns: float  # time spent measuring

    def device_time_ns(self, node: str, nbytes: float) -> float:
        """Predicted access time on a node for *nbytes* (device only)."""
        if node == "fast":
            return self.fast_latency_ns + nbytes / self.fast_bytes_per_ns
        if node == "slow":
            return self.slow_latency_ns + nbytes / self.slow_bytes_per_ns
        raise ConfigurationError(f"unknown node {node!r}")


@dataclass(frozen=True)
class InstrumentedResult:
    """Output of an instrumentation-based profiling run."""

    pattern: KeyAccessPattern
    microbench: MicrobenchBaselines
    cost: ProfilingCost


class InstrumentedProfiler:
    """The X-Mem-like comparator profiler.

    Parameters
    ----------
    engine_factory / system_factory / client:
        Same substrate as Mnemo, so costs are comparable.
    instrumentation_overhead:
        Execution slowdown under binary instrumentation (paper: up to
        40x; default 40).
    microbench_accesses:
        Number of pointer-chase/stream accesses per node in the
        latency/bandwidth microbenchmark.
    source_instrumentation_ns:
        Engineering time to adapt the application to the custom
        allocation API, expressed in simulated ns so it lands in the
        same cost ledger (default: 30 minutes).
    """

    def __init__(
        self,
        engine_factory: EngineFactory,
        system_factory=HybridMemorySystem.testbed,
        client: YCSBClient | None = None,
        instrumentation_overhead: float = 40.0,
        microbench_accesses: int = 1_000_000,
        source_instrumentation_ns: float = 30 * 60 * 1e9,
    ):
        if instrumentation_overhead < 1:
            raise ConfigurationError("instrumentation overhead must be >= 1")
        self.engine_factory = engine_factory
        self.system_factory = system_factory
        self.client = client if client is not None else YCSBClient()
        self.instrumentation_overhead = instrumentation_overhead
        self.microbench_accesses = microbench_accesses
        self.source_instrumentation_ns = source_instrumentation_ns

    # -- steps ------------------------------------------------------------------

    def run_microbenchmarks(self) -> MicrobenchBaselines:
        """Measure device latency/bandwidth with a synthetic kernel.

        The microbenchmark issues cache-line accesses, so it recovers
        the node parameters exactly — but nothing about how a real
        engine's request path uses them.
        """
        system = self.system_factory()
        line = 64
        per_access_fast = system.fast.access_time_ns(line)
        per_access_slow = system.slow.access_time_ns(line)
        micro_ns = self.microbench_accesses * (per_access_fast + per_access_slow)
        return MicrobenchBaselines(
            fast_latency_ns=system.fast.latency_ns,
            fast_bytes_per_ns=system.fast.bytes_per_ns,
            slow_latency_ns=system.slow.latency_ns,
            slow_bytes_per_ns=system.slow.bytes_per_ns,
            microbench_ns=micro_ns,
        )

    def instrumented_execution_ns(self, descriptor: WorkloadDescriptor) -> float:
        """Simulated time of one fully instrumented workload execution."""
        trace = descriptor.to_trace()
        deployment = HybridDeployment.all_fast(
            self.engine_factory, self.system_factory(), trace.record_sizes
        )
        result = self.client.execute(trace, deployment)
        return result.runtime_ns * self.instrumentation_overhead

    # -- profiling ------------------------------------------------------------------

    def profile(self, descriptor: WorkloadDescriptor) -> InstrumentedResult:
        """Run the full instrumentation-based pipeline."""
        micro = self.run_microbenchmarks()
        tiering_ns = self.instrumented_execution_ns(descriptor)

        # the instrumented run observes every access, so the resulting
        # ordering matches the accesses/size weights MnemoT computes
        # directly from the descriptor
        trace = descriptor.to_trace()
        reads, writes = trace.per_key_counts()
        weights = (reads + writes) / trace.record_sizes
        order = np.argsort(-weights, kind="stable").astype(np.int64)
        pattern = KeyAccessPattern(
            mode="weight",
            order=order,
            reads_per_key=reads.astype(np.int64),
            writes_per_key=writes.astype(np.int64),
            sizes=trace.record_sizes,
        )
        cost = ProfilingCost(
            input_prep_ns=self.source_instrumentation_ns,
            baselines_ns=micro.microbench_ns,
            tiering_ns=tiering_ns,
            requires_source_instrumentation=True,
        )
        return InstrumentedResult(pattern=pattern, microbench=micro, cost=cost)

    def predict_runtime_ns(
        self, descriptor: WorkloadDescriptor, micro: MicrobenchBaselines,
        node: str,
    ) -> float:
        """Device-model runtime prediction for an all-*node* placement.

        Sums per-request device times only — the engine's CPU cost is
        invisible to microbenchmark-based baselines, which is exactly
        why this methodology mispredicts end-to-end throughput (see the
        baseline ablation bench).
        """
        trace = descriptor.to_trace()
        sizes = trace.record_sizes[trace.keys].astype(np.float64)
        if node == "fast":
            lat, bpns = micro.fast_latency_ns, micro.fast_bytes_per_ns
        elif node == "slow":
            lat, bpns = micro.slow_latency_ns, micro.slow_bytes_per_ns
        else:
            raise ConfigurationError(f"unknown node {node!r}")
        return float(np.sum(lat + sizes / bpns))
