"""0/1 knapsack tiering.

"Some of the existing solutions map the tiering problem to the 0/1
knapsack, where the items are the key-value pairs, together with their
calculated weights and sizes, and the size of the knapsacks are the
fixed capacities" (Section IV).  Two solvers:

- a density greedy (value/size descending) — near-optimal here because
  individual records are tiny relative to the capacity;
- an exact dynamic program over a scaled size grid, for small instances
  and for validating the greedy in tests.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def _validate(values: np.ndarray, sizes: np.ndarray, capacity: int) -> None:
    if values.shape != sizes.shape or values.ndim != 1:
        raise ConfigurationError("values and sizes must be aligned 1-D arrays")
    if (sizes <= 0).any():
        raise ConfigurationError("sizes must be positive")
    if (values < 0).any():
        raise ConfigurationError("values must be >= 0")
    if capacity < 0:
        raise ConfigurationError("capacity must be >= 0")


def greedy_knapsack(
    values: np.ndarray, sizes: np.ndarray, capacity: int
) -> np.ndarray:
    """Density-greedy selection; returns chosen indices (key ids)."""
    values = np.asarray(values, dtype=np.float64)
    sizes = np.asarray(sizes, dtype=np.int64)
    _validate(values, sizes, capacity)
    order = np.argsort(-(values / sizes), kind="stable")
    csum = np.cumsum(sizes[order])
    # take the longest prefix that fits, then try to squeeze later items
    # into the remaining slack (classic greedy refinement)
    prefix = int(np.searchsorted(csum, capacity, side="right"))
    chosen = list(order[:prefix].tolist())
    used = int(csum[prefix - 1]) if prefix else 0
    for idx in order[prefix:]:
        s = int(sizes[idx])
        if used + s <= capacity:
            chosen.append(int(idx))
            used += s
    return np.array(sorted(chosen), dtype=np.int64)


def dp_knapsack(
    values: np.ndarray, sizes: np.ndarray, capacity: int,
    resolution: int = 4096,
) -> np.ndarray:
    """Exact 0/1 knapsack on a scaled size grid; returns chosen indices.

    Sizes are scaled down so the DP table has at most *resolution*
    columns; with ``ceil`` scaling the solution never overfills the
    true capacity (it may be slightly conservative).
    """
    values = np.asarray(values, dtype=np.float64)
    sizes = np.asarray(sizes, dtype=np.int64)
    _validate(values, sizes, capacity)
    n = values.size
    if n == 0 or capacity == 0:
        return np.empty(0, dtype=np.int64)

    scale = max(1, int(np.ceil(sizes.max() / max(1, resolution // 8))))
    scaled = np.ceil(sizes / scale).astype(np.int64)
    cap = min(int(capacity // scale), int(scaled.sum()))
    if cap == 0:
        return np.empty(0, dtype=np.int64)

    # dp[c] = best value with budget c; choice bits let us backtrack
    dp = np.zeros(cap + 1)
    taken = np.zeros((n, cap + 1), dtype=bool)
    for i in range(n):
        w = int(scaled[i])
        if w > cap:
            continue
        cand = dp[: cap + 1 - w] + values[i]
        better = cand > dp[w:]
        taken[i, w:] = better
        dp[w:] = np.where(better, cand, dp[w:])

    chosen = []
    c = cap
    for i in range(n - 1, -1, -1):
        if taken[i, c]:
            chosen.append(i)
            c -= int(scaled[i])
    return np.array(sorted(chosen), dtype=np.int64)


def knapsack_tiering(
    values: np.ndarray, sizes: np.ndarray, capacity: int,
    exact: bool = False,
) -> np.ndarray:
    """FastMem key selection for a fixed capacity (greedy by default)."""
    if exact:
        return dp_knapsack(values, sizes, capacity)
    return greedy_knapsack(values, sizes, capacity)
