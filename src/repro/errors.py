"""Exception hierarchy for the Mnemo reproduction.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with one clause while letting genuine
programming errors (``TypeError``, ``ValueError`` from NumPy, ...) surface.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class CapacityError(ReproError):
    """An allocation did not fit in the requested memory node or slab."""


class AllocationError(ReproError):
    """The address-space allocator could not satisfy a request."""


class KeyNotFoundError(ReproError, KeyError):
    """A GET/DELETE referenced a key that is not present in the store."""


class ConfigurationError(ReproError):
    """Inconsistent or out-of-range configuration parameters."""


class WorkloadError(ReproError):
    """A workload descriptor or trace is malformed."""


class EstimateError(ReproError):
    """The Estimate Engine was asked for something it cannot produce."""


class PlacementError(ReproError):
    """The Placement Engine could not realise the requested tiering."""


class PricingError(ReproError):
    """The VM pricing regression received an unusable catalog."""


class FaultError(ReproError):
    """A fault-injection or resilience failure.

    Raised when an experiment could not be completed despite retries
    (worker death, injected chaos strikes, unrecoverable fault models)
    and by :meth:`~repro.runner.grid.GridOutcome.raise_if_failed` when a
    sweep finished in degraded mode.
    """


class ExperimentTimeoutError(FaultError, TimeoutError):
    """An experiment exceeded its per-experiment timeout.

    Also a :class:`TimeoutError` so generic timeout handling works; the
    resilient runner retries timed-out experiments up to the retry
    policy's attempt budget before recording them in the
    :class:`~repro.runner.grid.FailureReport`.
    """


class StoreError(ReproError):
    """The durable SQLite store could not complete an operation.

    Raised when lock contention outlasts the bounded-backoff retry
    budget, when the database file is unusable, or when a journaled
    sweep references a run the oplog does not know.
    """


class CacheCorruptionError(ReproError):
    """A cache entry failed its integrity check.

    Only raised by strict-mode caches; the default behaviour is to
    quarantine the corrupt entry and transparently recompute it.
    """


class UsageError(ReproError):
    """The command line was invoked with malformed or out-of-range input.

    Carries a message naming the offending option and token so CLI users
    see a one-line diagnosis instead of a traceback from deep inside the
    pipeline.
    """


class GuardError(ReproError):
    """The recommendation guard could not complete a check.

    Raised when validation or drift detection is asked for something
    impossible — e.g. a live trace over a different key space, or a
    fallback search whose every candidate split fails to validate.
    """


class ServiceError(ReproError):
    """The served-advisor request plane could not complete an operation.

    Raised by :class:`~repro.service.client.ServiceClient` when a daemon
    stays unreachable past the retry budget, and by the service itself
    for malformed request-plane configuration.
    """


class DeadlineExceededError(ServiceError, TimeoutError):
    """A served request ran past its deadline.

    Raised at the advisor's cooperative cancellation checkpoints; the
    request plane translates it into a structured
    ``{"ok": false, "error": "deadline_exceeded"}`` response instead of
    letting it kill a worker thread.
    """
