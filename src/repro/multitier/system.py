"""Tiered memory system description.

Tiers are ordered fastest-first; tier 0 is the price reference
(price_factor = 1), matching the paper's convention of expressing cost
as a fraction of the FastMem-only system.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.memsim.emulation import TABLE_I_FAST, TABLE_I_SLOW
from repro.units import GiB, gbps_to_bytes_per_ns


@dataclass(frozen=True)
class TierSpec:
    """One memory tier.

    Parameters
    ----------
    name:
        Tier label (``"DRAM"``, ``"NVM"``, ``"Far"``...).
    latency_ns / bandwidth_gbps:
        Device timing.
    price_factor:
        Per-byte price relative to tier 0 (tier 0 must be 1.0).
    capacity_bytes:
        Optional capacity bound used by waterfall placement; ``None``
        means unbounded (typical for the last, cheapest tier).
    """

    name: str
    latency_ns: float
    bandwidth_gbps: float
    price_factor: float
    capacity_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.latency_ns <= 0 or self.bandwidth_gbps <= 0:
            raise ConfigurationError(f"invalid device timing for {self.name}")
        if not 0 < self.price_factor <= 1:
            raise ConfigurationError(
                f"price factor must be in (0, 1], got {self.price_factor}"
            )
        if self.capacity_bytes is not None and self.capacity_bytes <= 0:
            raise ConfigurationError("capacity must be positive or None")

    @property
    def bytes_per_ns(self) -> float:
        """Bandwidth in bytes per nanosecond."""
        return gbps_to_bytes_per_ns(self.bandwidth_gbps)


class TieredMemorySystem:
    """An ordered set of memory tiers, fastest (and priciest) first."""

    def __init__(self, tiers: list[TierSpec]):
        if len(tiers) < 2:
            raise ConfigurationError("need at least two tiers")
        if tiers[0].price_factor != 1.0:
            raise ConfigurationError("tier 0 is the price reference (1.0)")
        lat = [t.latency_ns for t in tiers]
        price = [t.price_factor for t in tiers]
        if lat != sorted(lat):
            raise ConfigurationError("tiers must be ordered fastest first")
        if price != sorted(price, reverse=True):
            raise ConfigurationError(
                "price factors must not increase down the tiers"
            )
        self.tiers = list(tiers)

    def __len__(self) -> int:
        return len(self.tiers)

    def __getitem__(self, i: int) -> TierSpec:
        return self.tiers[i]

    @property
    def names(self) -> list[str]:
        """Tier names, fastest first."""
        return [t.name for t in self.tiers]

    def latency_array(self) -> np.ndarray:
        """Per-tier latencies (index = tier)."""
        return np.array([t.latency_ns for t in self.tiers])

    def bandwidth_array(self) -> np.ndarray:
        """Per-tier bandwidths in bytes/ns (index = tier)."""
        return np.array([t.bytes_per_ns for t in self.tiers])

    def price_array(self) -> np.ndarray:
        """Per-tier price factors (index = tier)."""
        return np.array([t.price_factor for t in self.tiers])

    def cost_factor(self, bytes_per_tier: np.ndarray) -> float:
        """Capacity-weighted cost relative to an all-tier-0 system."""
        bytes_per_tier = np.asarray(bytes_per_tier, dtype=np.float64)
        if bytes_per_tier.shape != (len(self.tiers),):
            raise ConfigurationError(
                f"need one byte count per tier ({len(self.tiers)})"
            )
        total = bytes_per_tier.sum()
        if total <= 0:
            raise ConfigurationError("placement holds no bytes")
        # Normalize before weighting: multiplying a subnormal byte count by a
        # sub-unit price underflows to zero and drags the mean below min(price).
        return float(((bytes_per_tier / total) * self.price_array()).sum())

    # -- presets ---------------------------------------------------------------

    @classmethod
    def dram_nvm_far(
        cls,
        dram_capacity: int | None = 4 * GiB,
        nvm_capacity: int | None = 8 * GiB,
    ) -> "TieredMemorySystem":
        """A projected three-tier system.

        DRAM and NVM use the Table I device parameters; the far tier
        models CXL-attached / borrowed remote memory: ~2x the NVM
        latency, half its bandwidth, at 8 % of the DRAM per-byte price.
        """
        return cls([
            TierSpec("DRAM", TABLE_I_FAST["latency_ns"],
                     TABLE_I_FAST["bandwidth_gbps"], 1.0, dram_capacity),
            TierSpec("NVM", TABLE_I_SLOW["latency_ns"],
                     TABLE_I_SLOW["bandwidth_gbps"], 0.2, nvm_capacity),
            TierSpec("Far", 500.0, 0.9, 0.08, None),
        ])

    @classmethod
    def paper_two_tier(cls) -> "TieredMemorySystem":
        """The paper's FastMem/SlowMem pair, as a degenerate tier list."""
        return cls([
            TierSpec("FastMem", TABLE_I_FAST["latency_ns"],
                     TABLE_I_FAST["bandwidth_gbps"], 1.0, None),
            TierSpec("SlowMem", TABLE_I_SLOW["latency_ns"],
                     TABLE_I_SLOW["bandwidth_gbps"], 0.2, None),
        ])
