"""Measuring client for arbitrary key→tier assignments.

The two-tier :class:`~repro.ycsb.client.YCSBClient` routes through a
:class:`~repro.kvstore.server.HybridDeployment`; here placements are an
assignment array instead (one server instance per tier would be the
deployment analog), which keeps N-tier sweeps cheap.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, WorkloadError
from repro.kvstore.profiles import EngineProfile
from repro.memsim.timing import AccessTimer, NoiseModel
from repro.rng import SeedLike, derive_seed
from repro.ycsb.client import RunResult
from repro.ycsb.workload import Trace
from repro.multitier.system import TieredMemorySystem


class MultiTierClient:
    """Closed-loop client over an N-tier placement.

    Parameters mirror :class:`~repro.ycsb.client.YCSBClient`.
    """

    def __init__(
        self,
        system: TieredMemorySystem,
        profile: EngineProfile,
        repeats: int = 3,
        noise_sigma: float = 0.01,
        seed: SeedLike = None,
    ):
        if repeats <= 0:
            raise ConfigurationError(f"repeats must be positive, got {repeats}")
        self.system = system
        self.profile = profile
        self.repeats = repeats
        self.noise = NoiseModel(sigma=noise_sigma)
        self._seed = seed
        self._executions = 0

    def execute(self, trace: Trace, assignment: np.ndarray) -> RunResult:
        """Run *trace* with keys placed per *assignment* (key -> tier)."""
        assignment = np.asarray(assignment)
        if assignment.shape != (trace.n_keys,):
            raise WorkloadError(
                f"assignment must map every key ({trace.n_keys}), "
                f"got shape {assignment.shape}"
            )
        n_tiers = len(self.system)
        if assignment.min() < 0 or assignment.max() >= n_tiers:
            raise WorkloadError(f"tier indices must be in [0, {n_tiers})")

        prof = self.profile
        req_tier = assignment[trace.keys]
        sizes = trace.record_sizes[trace.keys] + prof.metadata_bytes
        latency = self.system.latency_array()[req_tier]
        bpns = self.system.bandwidth_array()[req_tier]
        passes = np.where(trace.is_read, prof.read_passes, prof.write_passes)
        cpu = np.where(trace.is_read, prof.read_cpu_ns, prof.write_cpu_ns)

        self._executions += 1
        is_read = trace.is_read
        n_reads = int(is_read.sum())
        n_writes = trace.n_requests - n_reads
        runtimes = np.empty(self.repeats)
        read_sums = np.empty(self.repeats)
        for r in range(self.repeats):
            timer = AccessTimer(
                noise=self.noise,
                seed=derive_seed(
                    self._seed,
                    f"{trace.name}/mt-exec{self._executions}/run{r}",
                ),
            )
            times = timer.request_times_ns(sizes, latency, bpns, passes, cpu)
            runtimes[r] = times.sum()
            read_sums[r] = times[is_read].sum()

        runtime = float(runtimes.mean())
        read_sum = float(read_sums.mean())
        return RunResult(
            workload=trace.name,
            engine=prof.name,
            n_requests=trace.n_requests,
            n_reads=n_reads,
            n_writes=n_writes,
            runtime_ns=runtime,
            avg_read_ns=read_sum / n_reads if n_reads else 0.0,
            avg_write_ns=(runtime - read_sum) / n_writes if n_writes else 0.0,
            latency_percentiles_ns={},
            repeats=self.repeats,
            runtime_std_ns=float(runtimes.std()),
        )
