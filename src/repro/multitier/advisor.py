"""The multi-tier sizing advisor.

Generalises Mnemo's pipeline to N tiers:

1. *baselines*: execute the workload with all data in each tier
   (N runs instead of 2);
2. *placement*: waterfall the MnemoT weight ordering into the tier
   capacities (hottest keys to the fastest tier until full, then the
   next tier, ...);
3. *estimate*: runtime = Σ_tier reads_t·avg_read_t + writes_t·avg_write_t
   with the per-tier averages taken from the baselines — the exact
   N-tier analog of the paper's telescoped two-tier model;
4. *sweep*: evaluate a grid of capacity vectors, keep the Pareto
   frontier, answer SLO queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError, EstimateError
from repro.kvstore.profiles import EngineProfile
from repro.rng import SeedLike
from repro.units import NS_PER_S
from repro.ycsb.client import RunResult
from repro.ycsb.workload import Trace
from repro.multitier.client import MultiTierClient
from repro.multitier.system import TieredMemorySystem


@dataclass(frozen=True)
class MultiTierBaselines:
    """One all-in-tier-k measurement per tier, fastest first."""

    runs: tuple[RunResult, ...]

    def __post_init__(self) -> None:
        if len(self.runs) < 2:
            raise ConfigurationError("need baselines for at least two tiers")

    @property
    def n_requests(self) -> int:
        """Requests per baseline run (identical across tiers)."""
        return self.runs[0].n_requests

    def read_times(self) -> np.ndarray:
        """Per-tier average read service time."""
        return np.array([r.avg_read_ns for r in self.runs])

    def write_times(self) -> np.ndarray:
        """Per-tier average write service time."""
        return np.array([r.avg_write_ns for r in self.runs])


@dataclass(frozen=True)
class TieredPlan:
    """A concrete placement plus its predicted behaviour."""

    workload: str
    assignment: np.ndarray        # key -> tier index
    bytes_per_tier: np.ndarray
    cost_factor: float
    est_runtime_ns: float
    n_requests: int

    @property
    def est_throughput_ops_s(self) -> float:
        """Estimated operations per second."""
        return self.n_requests / (self.est_runtime_ns / NS_PER_S)

    def tier_shares(self) -> np.ndarray:
        """Fraction of the dataset per tier."""
        return self.bytes_per_tier / self.bytes_per_tier.sum()


class MultiTierAdvisor:
    """N-tier capacity sizing consultant."""

    def __init__(
        self,
        system: TieredMemorySystem,
        profile: EngineProfile,
        repeats: int = 3,
        noise_sigma: float = 0.01,
        seed: SeedLike = None,
    ):
        self.system = system
        self.profile = profile
        self.client = MultiTierClient(
            system, profile, repeats=repeats, noise_sigma=noise_sigma,
            seed=seed,
        )

    # -- baselines -----------------------------------------------------------

    def measure(self, trace: Trace) -> MultiTierBaselines:
        """Execute the workload all-in-tier-k for every tier.

        Capacity bounds are ignored during profiling (as in the paper,
        where total capacity is fixed to the dataset size); they only
        constrain the placements being evaluated.
        """
        runs = []
        for k in range(len(self.system)):
            assignment = np.full(trace.n_keys, k, dtype=np.int64)
            runs.append(self.client.execute(trace, assignment))
        return MultiTierBaselines(runs=tuple(runs))

    # -- placement -----------------------------------------------------------

    def waterfall_assignment(
        self, trace: Trace, capacities: Sequence[int | None]
    ) -> np.ndarray:
        """Fill tiers in order with the accesses/size weight ordering.

        ``capacities[k] = None`` means unbounded; at least the last
        tier must absorb whatever is left.
        """
        if len(capacities) != len(self.system):
            raise ConfigurationError(
                f"need one capacity per tier ({len(self.system)})"
            )
        counts = np.bincount(trace.keys, minlength=trace.n_keys)
        order = np.argsort(-(counts / trace.record_sizes), kind="stable")
        assignment = np.full(trace.n_keys, -1, dtype=np.int64)
        sizes = trace.record_sizes

        tier = 0
        used = 0
        for key in order:
            size = int(sizes[key])
            while tier < len(capacities) - 1:
                cap = capacities[tier]
                if cap is None or used + size <= cap:
                    break
                tier += 1
                used = 0
            cap = capacities[tier]
            if cap is not None and used + size > cap:
                raise EstimateError(
                    "dataset does not fit the given tier capacities"
                )
            assignment[key] = tier
            used += size
        return assignment

    # -- estimation -----------------------------------------------------------

    def estimate(
        self,
        trace: Trace,
        baselines: MultiTierBaselines,
        capacities: Sequence[int | None],
    ) -> TieredPlan:
        """Predict runtime and cost of the waterfall placement."""
        assignment = self.waterfall_assignment(trace, capacities)
        return self.estimate_assignment(trace, baselines, assignment)

    def estimate_assignment(
        self,
        trace: Trace,
        baselines: MultiTierBaselines,
        assignment: np.ndarray,
    ) -> TieredPlan:
        """Predict runtime and cost of an explicit assignment."""
        n_tiers = len(self.system)
        reads, writes = trace.per_key_counts()
        reads_t = np.bincount(assignment, weights=reads, minlength=n_tiers)
        writes_t = np.bincount(assignment, weights=writes, minlength=n_tiers)
        bytes_t = np.bincount(assignment, weights=trace.record_sizes,
                              minlength=n_tiers)
        runtime = float(
            (reads_t * baselines.read_times()).sum()
            + (writes_t * baselines.write_times()).sum()
        )
        if runtime <= 0:
            raise EstimateError("estimated runtime is non-positive")
        return TieredPlan(
            workload=trace.name,
            assignment=assignment,
            bytes_per_tier=bytes_t,
            cost_factor=self.system.cost_factor(bytes_t),
            est_runtime_ns=runtime,
            n_requests=trace.n_requests,
        )

    # -- sweeps ---------------------------------------------------------------

    def sweep(
        self,
        trace: Trace,
        baselines: MultiTierBaselines,
        capacity_grid: Iterable[Sequence[int | None]],
    ) -> list[TieredPlan]:
        """Estimate every capacity vector in *capacity_grid*."""
        plans = []
        for capacities in capacity_grid:
            try:
                plans.append(self.estimate(trace, baselines, capacities))
            except EstimateError:
                continue  # vector cannot hold the dataset
        if not plans:
            raise EstimateError("no capacity vector in the grid fits")
        return plans

    @staticmethod
    def pareto(plans: Sequence[TieredPlan]) -> list[TieredPlan]:
        """Cost-ascending Pareto frontier (no plan dominated on both axes)."""
        ordered = sorted(plans, key=lambda p: (p.cost_factor,
                                               -p.est_throughput_ops_s))
        frontier: list[TieredPlan] = []
        best = -np.inf
        for plan in ordered:
            if plan.est_throughput_ops_s > best:
                frontier.append(plan)
                best = plan.est_throughput_ops_s
        return frontier

    def cheapest_within_slo(
        self,
        plans: Sequence[TieredPlan],
        baselines: MultiTierBaselines,
        max_slowdown: float = 0.10,
    ) -> TieredPlan:
        """Cheapest plan within *max_slowdown* of the all-tier-0 run."""
        if not 0 <= max_slowdown < 1:
            raise ConfigurationError("max_slowdown must be in [0, 1)")
        ref = baselines.runs[0].throughput_ops_s
        feasible = [p for p in plans
                    if p.est_throughput_ops_s >= (1 - max_slowdown) * ref]
        if not feasible:
            raise EstimateError("no plan meets the SLO")
        return min(feasible, key=lambda p: p.cost_factor)

    # -- validation -------------------------------------------------------------

    def validate(self, trace: Trace, plan: TieredPlan) -> RunResult:
        """Measure the plan's placement for estimate-accuracy checks."""
        return self.client.execute(trace, plan.assignment)
