"""Multi-tier extension: Mnemo's model beyond two memory components.

The paper targets a two-component hybrid (DRAM + NVM).  Its model
generalises naturally: with per-tier baselines (the workload executed
with all data in tier *k*, for every tier), the runtime of any
placement is the sum over tiers of the requests that tier serves times
that tier's measured average service times, and the memory cost is the
capacity-weighted sum of per-tier price factors.

This package implements that generalisation for future systems with
DRAM + NVM + a far tier (e.g. CXL-attached or borrowed remote memory):

- :class:`~repro.multitier.system.TierSpec` /
  :class:`~repro.multitier.system.TieredMemorySystem` — N ordered tiers;
- :class:`~repro.multitier.client.MultiTierClient` — measures a trace
  under an arbitrary key→tier assignment;
- :class:`~repro.multitier.advisor.MultiTierAdvisor` — per-tier
  baselines, waterfall placement, capacity sweeps, Pareto frontier and
  SLO queries.
"""

from repro.multitier.advisor import (
    MultiTierAdvisor,
    MultiTierBaselines,
    TieredPlan,
)
from repro.multitier.client import MultiTierClient
from repro.multitier.system import TieredMemorySystem, TierSpec

__all__ = [
    "TierSpec",
    "TieredMemorySystem",
    "MultiTierClient",
    "MultiTierAdvisor",
    "MultiTierBaselines",
    "TieredPlan",
]
