"""Chaos harness: deterministic worker kills and cache corruption.

The fault models in :mod:`repro.faults.models` perturb *measured
numbers*; this module perturbs the *pipeline itself*, so the resilient
runner's retry / quarantine machinery can be exercised under test:

- :class:`ChaosPlan` strikes (kills or fails) workers on chosen
  experiment labels, a bounded number of times per label, using atomic
  marker files so the count is race-free across processes; retried
  experiments therefore eventually succeed and — because all results
  are content-addressed — converge to numbers bit-identical to a clean
  run.
- :func:`corrupt_cache_entries` flips bytes in (or truncates) on-disk
  cache entries so the checksum walk in
  :class:`~repro.runner.cache.ResultCache` can be shown to quarantine
  and recompute them.
- :func:`slowloris_probe` and :func:`request_flood` attack the served
  advisor's control socket — a client that stalls mid-request-line and
  a burst that overruns the admission queue — so the request plane's
  read timeout and load shedding can be drilled
  (``tests/service/test_chaos_requests.py``, ``make serve-drill``).

All are used by the chaos tests under ``tests/faults/`` +
``tests/service/`` and the ``make chaos`` / ``make serve-drill`` CI
smoke jobs.  They are test instruments, but live in the library so
operators can stage game-days against real sweeps and daemons.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigurationError, FaultError

#: Strike behaviours a :class:`ChaosPlan` supports.
CHAOS_MODES = ("exit", "raise", "hang", "sigkill")


@dataclass(frozen=True)
class ChaosPlan:
    """A deterministic schedule of pipeline strikes.

    Parameters
    ----------
    kill_labels:
        Experiment labels (``spec.label``) to strike.
    mode:
        ``"exit"`` kills the worker process outright (parallel grids
        only — it would take the caller down in serial runs, so serial
        execution downgrades it to ``"raise"``); ``"sigkill"`` delivers
        an uncatchable SIGKILL to the worker instead (no atexit, no
        cleanup — the harshest crash a process can model; also
        downgraded to ``"raise"`` in serial runs); ``"raise"`` raises a
        :class:`~repro.errors.FaultError` from inside the experiment;
        ``"hang"`` sleeps ``hang_s`` seconds (to trip per-experiment
        timeouts) and then returns normally.
    max_strikes:
        Strikes delivered per label before the experiment is allowed
        to succeed.  Set it at or above the runner's attempt budget to
        make an experiment unrecoverable.
    marker_dir:
        Directory for the atomic strike markers (shared by all worker
        processes of a sweep).
    hang_s:
        Sleep duration for ``"hang"`` strikes.
    """

    kill_labels: tuple[str, ...] = ()
    mode: str = "exit"
    max_strikes: int = 1
    marker_dir: str = ".mnemo-chaos"
    hang_s: float = 5.0

    def __post_init__(self) -> None:
        if self.mode not in CHAOS_MODES:
            raise ConfigurationError(
                f"unknown chaos mode {self.mode!r}; choose from {CHAOS_MODES}"
            )
        if self.max_strikes < 0:
            raise ConfigurationError(
                f"max_strikes must be >= 0, got {self.max_strikes}"
            )
        if self.hang_s < 0:
            raise ConfigurationError(f"hang_s must be >= 0, got {self.hang_s}")

    def _marker(self, label: str, strike: int) -> Path:
        slug = hashlib.sha256(label.encode("utf-8")).hexdigest()[:16]
        return Path(self.marker_dir) / f"{slug}.{strike}"

    def strikes_delivered(self, label: str) -> int:
        """How many strikes have already hit *label*."""
        return sum(
            1 for k in range(self.max_strikes)
            if self._marker(label, k).exists()
        )

    def maybe_strike(self, label: str, allow_exit: bool = True) -> None:
        """Deliver the next strike for *label*, if any remain.

        Claims one strike slot atomically (``O_CREAT | O_EXCL`` marker
        file), so concurrent workers never double-count.  Once
        ``max_strikes`` markers exist the experiment runs untouched —
        that is what lets retries converge.
        """
        if label not in self.kill_labels or self.max_strikes == 0:
            return
        Path(self.marker_dir).mkdir(parents=True, exist_ok=True)
        for strike in range(self.max_strikes):
            path = self._marker(label, strike)
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(fd)
            if self.mode == "hang":
                time.sleep(self.hang_s)
                return
            if self.mode == "exit" and allow_exit:
                os._exit(17)
            if self.mode == "sigkill" and allow_exit:
                os.kill(os.getpid(), signal.SIGKILL)
            raise FaultError(
                f"chaos strike {strike + 1}/{self.max_strikes} on {label!r}"
            )
        return


def slowloris_probe(
    socket_path,
    partial: bytes = b'{"op": "statu',
    timeout_s: float = 30.0,
) -> dict | None:
    """Stall a control-socket request mid-line; returns the reply.

    Connects, sends *partial* (valid JSON prefix, **no** newline) and
    then goes silent — the classic slowloris posture.  A robust server
    must not pin a handler thread forever: it should answer a
    structured ``read_timeout`` error (returned parsed) or drop the
    connection (returns None).  ``timeout_s`` bounds how long the probe
    itself waits before giving up.
    """
    import json
    import socket as _socket

    with _socket.socket(_socket.AF_UNIX, _socket.SOCK_STREAM) as sock:
        sock.settimeout(timeout_s)
        sock.connect(str(socket_path))
        sock.sendall(partial)
        try:
            data = sock.recv(65536)
        except OSError:
            return None
    if not data:
        return None
    try:
        return json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None


def request_flood(
    socket_path,
    request: dict,
    n_requests: int = 32,
    concurrency: int = 16,
    timeout_s: float = 60.0,
) -> dict:
    """Fire a concurrent burst at the control socket; tally the outcomes.

    Launches ``concurrency`` threads collectively sending ``n_requests``
    copies of *request*, with no client-side pacing — the point is to
    overrun the admission queue.  Returns a tally::

        {"ok": ..., "overloaded": ..., "deadline_exceeded": ...,
         "other_error": ..., "connection_error": ..., "responses": [...]}

    Against a robust daemon every request lands in one of the first
    three buckets (answered, shed with a structured error, or expired
    with a structured error) — ``connection_error`` counts transport
    failures, which a flood must *not* cause.
    """
    import queue as _queue
    import threading

    from repro.service.serve import control_call

    if n_requests < 1 or concurrency < 1:
        raise ConfigurationError(
            "n_requests and concurrency must both be >= 1"
        )
    work: _queue.Queue = _queue.Queue()
    for _ in range(n_requests):
        work.put(request)
    responses: list[dict | None] = []
    lock = threading.Lock()

    def _worker() -> None:
        while True:
            try:
                req = work.get_nowait()
            except _queue.Empty:
                return
            try:
                response = control_call(socket_path, req, timeout=timeout_s)
            except (OSError, ValueError):
                response = None
            with lock:
                responses.append(response)

    threads = [
        threading.Thread(target=_worker, daemon=True)
        for _ in range(min(concurrency, n_requests))
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout_s)
    tally = {
        "ok": 0, "overloaded": 0, "deadline_exceeded": 0,
        "other_error": 0, "connection_error": 0,
    }
    for response in responses:
        if response is None:
            tally["connection_error"] += 1
        elif response.get("ok"):
            tally["ok"] += 1
        elif response.get("error") in ("overloaded", "deadline_exceeded"):
            tally[response["error"]] += 1
        else:
            tally["other_error"] += 1
    tally["responses"] = responses
    return tally


def corrupt_cache_entries(
    cache,
    kinds: tuple[str, ...] = ("results", "traces", "hitmasks"),
    mode: str = "flip",
    limit: int | None = None,
) -> list[Path]:
    """Corrupt on-disk cache entries in place; returns the paths touched.

    Parameters
    ----------
    cache:
        A :class:`~repro.runner.cache.ResultCache`.
    kinds:
        Which entry kinds to corrupt.
    mode:
        ``"flip"`` XORs a byte in the middle of the file (subtle
        corruption only a checksum catches); ``"truncate"`` chops the
        file in half (what a crashed writer without atomic renames
        would leave behind).
    limit:
        Corrupt at most this many entries (None = all).

    Deterministic: entries are walked in sorted order and mutated in
    place, so a chaos test corrupts the same files every run.
    """
    if mode not in ("flip", "truncate"):
        raise ConfigurationError(
            f"unknown corruption mode {mode!r}; choose 'flip' or 'truncate'"
        )
    touched: list[Path] = []
    for kind in kinds:
        directory = cache._base / kind
        if not directory.is_dir():
            continue
        for path in sorted(directory.iterdir()):
            if path.name.startswith(".tmp-"):
                continue
            data = path.read_bytes()
            if not data:
                continue
            if mode == "truncate":
                path.write_bytes(data[: len(data) // 2])
            else:
                mid = len(data) // 2
                data = data[:mid] + bytes([data[mid] ^ 0xFF]) + data[mid + 1:]
                path.write_bytes(data)
            touched.append(path)
            if limit is not None and len(touched) >= limit:
                return touched
    return touched


def corrupt_store_rows(
    store,
    kinds: tuple[str, ...] = ("results", "traces", "hitmasks"),
    mode: str = "flip",
    limit: int | None = None,
) -> list[str]:
    """Corrupt entry bodies inside a SQLite store; returns fingerprints hit.

    The SQL analog of :func:`corrupt_cache_entries` for
    :class:`~repro.store.SQLiteStore`: mutates row *bodies* directly
    (below the codec layer), modelling storage-level rot rather than a
    torn write — WAL transactions make torn writes impossible, but a
    flipped bit on disk is still a flipped bit.  ``"flip"`` XORs the
    middle byte; ``"truncate"`` halves the blob.  Deterministic walk in
    (kind, fingerprint) order.
    """
    if mode not in ("flip", "truncate"):
        raise ConfigurationError(
            f"unknown corruption mode {mode!r}; choose 'flip' or 'truncate'"
        )
    touched: list[str] = []
    for kind in kinds:
        for fingerprint in store.fingerprints(kind):
            row = store._row(kind, fingerprint)
            data = bytes(row["body"])
            if not data:
                continue
            mid = len(data) // 2
            if mode == "truncate":
                data = data[:mid]
            else:
                data = data[:mid] + bytes([data[mid] ^ 0xFF]) + data[mid + 1:]

            def txn(conn, kind=kind, fingerprint=fingerprint, data=data):
                conn.execute(
                    "UPDATE entries SET body = ? WHERE kind = ?"
                    " AND fingerprint = ?",
                    (data, kind, fingerprint),
                )

            store.db.write_txn(txn)
            touched.append(fingerprint)
            if limit is not None and len(touched) >= limit:
                return touched
    return touched
