"""Deterministic, seeded fault models for the measurement pipeline.

Real hybrid-memory deployments do not behave like Table I around the
clock: NVM parts exhibit latency spikes under write pressure, sustained
bandwidth degrades as media wears or thermal throttling kicks in, nodes
drop out for firmware resets, and the measurement harness itself sees
jitter bursts from co-located tenants.  A capacity advisor that only
ever sees clean baselines silently over-promises.

This module provides *composable* fault models that perturb the memsim
timing path (:mod:`repro.memsim.timing`) per request.  The central
design rule is determinism:

    every fault schedule is a pure function of
    ``(experiment fingerprint, fault spec)``.

The spec is part of the experiment fingerprint
(:func:`repro.runner.fingerprint.client_fingerprint`), and the schedule
RNG is seeded from that fingerprint — so a faulty run is exactly as
bit-reproducible and cacheable as a clean one: serial, parallel and
warm-cache executions of the same faulty experiment produce identical
timelines and identical numbers.

Fault catalogue (see ``docs/FAULTS.md``):

:class:`LatencySpikes`
    Transient SlowMem (NVM) latency spikes: windows of requests whose
    SlowMem latency is multiplied by ``magnitude``.
:class:`BandwidthDegradation`
    A monotone SlowMem bandwidth ramp-down across the run — by the end
    of the trace the device delivers only ``floor`` of its nominal
    bandwidth.
:class:`NodeOffline`
    Transient node-offline windows: requests that target the offline
    node during a window stall for ``stall_ns`` (a remote-fetch /
    retry penalty) on top of their normal cost.
:class:`JitterBursts`
    Measurement-jitter bursts: windows in which the client's noise
    sigma is scaled up, modelling a noisy co-tenant or a perf-counter
    hiccup.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, fields

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import derive_seed, ensure_rng


def _windows_mask(
    n: int, starts: np.ndarray, width: int,
) -> np.ndarray:
    """Boolean mask covering ``[s, s + width)`` for every start."""
    mask = np.zeros(n, dtype=bool)
    for s in starts:
        mask[int(s):int(s) + width] = True
    return mask


@dataclass(frozen=True)
class LatencySpikes:
    """Transient SlowMem latency spikes.

    Parameters
    ----------
    rate:
        Expected fraction of requests inside a spike window (0..1).
    magnitude:
        Latency multiplier during a spike (>= 1).
    width:
        Requests per spike window.
    """

    rate: float = 0.02
    magnitude: float = 4.0
    width: int = 128

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError(f"spike rate must be in [0, 1], got {self.rate}")
        if self.magnitude < 1.0:
            raise ConfigurationError(
                f"spike magnitude must be >= 1, got {self.magnitude}"
            )
        if self.width <= 0:
            raise ConfigurationError(f"spike width must be positive, got {self.width}")

    def latency_multipliers(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Per-request SlowMem latency multipliers (1.0 outside spikes)."""
        out = np.ones(n, dtype=np.float64)
        # ceil: any positive rate delivers at least one spike window,
        # even for traces shorter than 1/rate windows
        n_windows = int(np.ceil(self.rate * n / self.width))
        if n_windows > 0 and n > 0:
            starts = rng.integers(0, n, size=n_windows)
            out[_windows_mask(n, starts, self.width)] = self.magnitude
        return out


@dataclass(frozen=True)
class BandwidthDegradation:
    """A monotone SlowMem bandwidth ramp-down across the run.

    Parameters
    ----------
    onset:
        Position in the trace (fraction, 0..1) where degradation starts.
    floor:
        Bandwidth multiplier reached at the end of the trace (0 < floor <= 1).
    """

    onset: float = 0.25
    floor: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.onset < 1.0:
            raise ConfigurationError(f"onset must be in [0, 1), got {self.onset}")
        if not 0.0 < self.floor <= 1.0:
            raise ConfigurationError(f"floor must be in (0, 1], got {self.floor}")

    def bandwidth_multipliers(self, n: int) -> np.ndarray:
        """Per-request SlowMem bandwidth multipliers (deterministic ramp)."""
        if n == 0:
            return np.ones(0, dtype=np.float64)
        t = np.arange(n, dtype=np.float64) / n
        ramp = 1.0 - (1.0 - self.floor) * (t - self.onset) / (1.0 - self.onset)
        return np.where(t < self.onset, 1.0, ramp)


@dataclass(frozen=True)
class NodeOffline:
    """Transient node-offline windows.

    Requests that target the offline node during a window pay
    ``stall_ns`` on top of their normal service time — the cost of
    waiting out the outage (firmware reset, hot spare fetch, retry).

    Parameters
    ----------
    node:
        Which node goes offline: ``"fast"`` or ``"slow"``.
    windows:
        Number of offline windows across the trace.
    width:
        Requests per offline window.
    stall_ns:
        Stall added to each affected request.
    """

    node: str = "slow"
    windows: int = 1
    width: int = 256
    stall_ns: float = 50_000.0

    def __post_init__(self) -> None:
        if self.node not in ("fast", "slow"):
            raise ConfigurationError(
                f"offline node must be 'fast' or 'slow', got {self.node!r}"
            )
        if self.windows < 0:
            raise ConfigurationError(f"windows must be >= 0, got {self.windows}")
        if self.width <= 0:
            raise ConfigurationError(f"width must be positive, got {self.width}")
        if self.stall_ns < 0:
            raise ConfigurationError(f"stall_ns must be >= 0, got {self.stall_ns}")

    def stall_schedule(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Per-request stall in ns for requests hitting the offline node."""
        out = np.zeros(n, dtype=np.float64)
        if self.windows > 0 and n > 0:
            starts = rng.integers(0, n, size=self.windows)
            out[_windows_mask(n, starts, self.width)] = self.stall_ns
        return out


@dataclass(frozen=True)
class JitterBursts:
    """Measurement-jitter bursts.

    Parameters
    ----------
    bursts:
        Number of burst windows across the trace.
    width:
        Requests per burst window.
    sigma_scale:
        Noise-sigma multiplier inside a burst (>= 1).
    """

    bursts: int = 2
    width: int = 512
    sigma_scale: float = 5.0

    def __post_init__(self) -> None:
        if self.bursts < 0:
            raise ConfigurationError(f"bursts must be >= 0, got {self.bursts}")
        if self.width <= 0:
            raise ConfigurationError(f"width must be positive, got {self.width}")
        if self.sigma_scale < 1.0:
            raise ConfigurationError(
                f"sigma_scale must be >= 1, got {self.sigma_scale}"
            )

    def noise_scales(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Per-request noise-sigma multipliers (1.0 outside bursts)."""
        out = np.ones(n, dtype=np.float64)
        if self.bursts > 0 and n > 0:
            starts = rng.integers(0, n, size=self.bursts)
            out[_windows_mask(n, starts, self.width)] = self.sigma_scale
        return out


class FaultTimeline:
    """Materialised per-request fault schedules for one experiment.

    All arrays have length ``n_requests`` (or are None when the
    corresponding fault model is absent).  The timeline is shared by
    every repeat of a measurement — device behaviour, unlike
    measurement noise, does not re-roll per repeat.
    """

    __slots__ = (
        "slow_latency_mult", "slow_bandwidth_mult",
        "stall_ns", "stall_node", "noise_scale",
    )

    def __init__(
        self,
        slow_latency_mult: np.ndarray | None = None,
        slow_bandwidth_mult: np.ndarray | None = None,
        stall_ns: np.ndarray | None = None,
        stall_node: str = "slow",
        noise_scale: np.ndarray | None = None,
    ):
        self.slow_latency_mult = slow_latency_mult
        self.slow_bandwidth_mult = slow_bandwidth_mult
        self.stall_ns = stall_ns
        self.stall_node = stall_node
        self.noise_scale = noise_scale


@dataclass(frozen=True)
class FaultSpec:
    """A composable set of fault models injected into one experiment.

    Frozen and field-typed so it can be pickled across process
    boundaries and canonicalised into the experiment fingerprint
    (:func:`repro.runner.fingerprint.canonicalize` handles nested
    frozen dataclasses).  ``None`` fields mean "fault absent".
    """

    latency_spikes: LatencySpikes | None = None
    bandwidth_degradation: BandwidthDegradation | None = None
    node_offline: NodeOffline | None = None
    jitter_bursts: JitterBursts | None = None

    @property
    def active(self) -> bool:
        """Whether any fault model is configured."""
        return any(getattr(self, f.name) is not None for f in fields(self))

    def describe(self) -> str:
        """Short human-readable list of active fault models."""
        parts = [
            f.name for f in fields(self) if getattr(self, f.name) is not None
        ]
        return "+".join(parts) if parts else "none"

    def timeline(self, n_requests: int, label: str) -> FaultTimeline:
        """Materialise the fault schedules for one experiment.

        Parameters
        ----------
        n_requests:
            Trace length; every schedule array has this length.
        label:
            The experiment fingerprint (or, for non-fingerprintable
            clients, the trace name).  Each fault model draws from its
            own stream derived from ``label`` — schedules are a pure
            function of (label, spec) and independent of call order,
            process, or parallel schedule.
        """
        tl = FaultTimeline()
        if self.latency_spikes is not None:
            rng = ensure_rng(derive_seed(None, f"{label}/fault/spikes"))
            tl.slow_latency_mult = self.latency_spikes.latency_multipliers(
                n_requests, rng
            )
        if self.bandwidth_degradation is not None:
            tl.slow_bandwidth_mult = (
                self.bandwidth_degradation.bandwidth_multipliers(n_requests)
            )
        if self.node_offline is not None:
            rng = ensure_rng(derive_seed(None, f"{label}/fault/offline"))
            tl.stall_ns = self.node_offline.stall_schedule(n_requests, rng)
            tl.stall_node = self.node_offline.node
        if self.jitter_bursts is not None:
            rng = ensure_rng(derive_seed(None, f"{label}/fault/jitter"))
            tl.noise_scale = self.jitter_bursts.noise_scales(n_requests, rng)
        return tl


#: Fault-model constructors by the short names the CLI DSL accepts.
FAULT_KINDS = {
    "spikes": ("latency_spikes", LatencySpikes),
    "ramp": ("bandwidth_degradation", BandwidthDegradation),
    "offline": ("node_offline", NodeOffline),
    "jitter": ("jitter_bursts", JitterBursts),
}


_ITEM_RE = re.compile(r"\s*([a-z_]+)\s*(?:\(([^)]*)\))?\s*(?:,|$)")


def _coerce_params(name: str, cls, params: str | None) -> dict:
    """Parse ``key=value,...`` using the model's field defaults for types."""
    if not params or not params.strip():
        return {}
    field_types = {
        f.name: type(f.default) for f in fields(cls)
    }
    kwargs = {}
    for item in params.split(","):
        if "=" not in item:
            raise ConfigurationError(
                f"fault {name!r}: expected key=value, got {item.strip()!r}"
            )
        key, value = (part.strip() for part in item.split("=", 1))
        if key not in field_types:
            raise ConfigurationError(
                f"fault {name!r} has no parameter {key!r}; "
                f"choose from {sorted(field_types)}"
            )
        caster = field_types[key]
        try:
            kwargs[key] = value if caster is str else caster(value)
        except ValueError as exc:
            raise ConfigurationError(
                f"fault {name!r}: bad value for {key}: {value!r}"
            ) from exc
    return kwargs


def parse_faults(text: str | None) -> FaultSpec | None:
    """Parse the CLI fault DSL into a :class:`FaultSpec`.

    The DSL is a comma-separated list of fault names, each optionally
    parameterised with ``(key=value,...)``::

        spikes
        spikes(rate=0.05,magnitude=6),ramp(floor=0.4),offline,jitter

    Returns None for empty input.  Unknown names or parameters raise
    :class:`~repro.errors.ConfigurationError`.
    """
    if not text or not text.strip():
        return None
    spec_kwargs: dict[str, object] = {}
    s, pos = text.strip(), 0
    while pos < len(s):
        m = _ITEM_RE.match(s, pos)
        if not m or m.end() == pos:
            raise ConfigurationError(f"malformed fault spec near {s[pos:]!r}")
        name, params = m.group(1), m.group(2)
        if name not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault model {name!r}; "
                f"choose from {sorted(FAULT_KINDS)}"
            )
        field_name, cls = FAULT_KINDS[name]
        spec_kwargs[field_name] = cls(**_coerce_params(name, cls, params))
        pos = m.end()
    return FaultSpec(**spec_kwargs)
