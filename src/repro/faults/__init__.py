"""Deterministic fault injection for the measurement pipeline.

Two halves (see ``docs/FAULTS.md``):

- :mod:`repro.faults.models` — seeded *device/measurement* fault models
  (NVM latency spikes, bandwidth ramps, node-offline windows, jitter
  bursts) composable onto the memsim timing path.  Schedules are a pure
  function of (experiment fingerprint, fault spec), so faulty runs stay
  bit-reproducible and cacheable.
- :mod:`repro.faults.chaos` — *pipeline* chaos: deterministic worker
  kills and cache corruption used to exercise the resilient runner and
  the cache's checksum quarantine.
"""

from repro.faults.chaos import (
    CHAOS_MODES,
    ChaosPlan,
    corrupt_cache_entries,
    corrupt_store_rows,
)
from repro.faults.models import (
    FAULT_KINDS,
    BandwidthDegradation,
    FaultSpec,
    FaultTimeline,
    JitterBursts,
    LatencySpikes,
    NodeOffline,
    parse_faults,
)

__all__ = [
    "CHAOS_MODES",
    "ChaosPlan",
    "corrupt_cache_entries",
    "corrupt_store_rows",
    "FAULT_KINDS",
    "BandwidthDegradation",
    "FaultSpec",
    "FaultTimeline",
    "JitterBursts",
    "LatencySpikes",
    "NodeOffline",
    "parse_faults",
]
