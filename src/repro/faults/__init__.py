"""Deterministic fault injection for the measurement pipeline.

Two halves (see ``docs/FAULTS.md``):

- :mod:`repro.faults.models` — seeded *device/measurement* fault models
  (NVM latency spikes, bandwidth ramps, node-offline windows, jitter
  bursts) composable onto the memsim timing path.  Schedules are a pure
  function of (experiment fingerprint, fault spec), so faulty runs stay
  bit-reproducible and cacheable.
- :mod:`repro.faults.chaos` — *pipeline* chaos: deterministic worker
  kills, cache corruption, and control-socket attacks (slowloris,
  request floods) used to exercise the resilient runner, the cache's
  checksum quarantine, and the served advisor's request plane.
"""

from repro.faults.chaos import (
    CHAOS_MODES,
    ChaosPlan,
    corrupt_cache_entries,
    corrupt_store_rows,
    request_flood,
    slowloris_probe,
)
from repro.faults.models import (
    FAULT_KINDS,
    BandwidthDegradation,
    FaultSpec,
    FaultTimeline,
    JitterBursts,
    LatencySpikes,
    NodeOffline,
    parse_faults,
)

__all__ = [
    "CHAOS_MODES",
    "ChaosPlan",
    "corrupt_cache_entries",
    "corrupt_store_rows",
    "request_flood",
    "slowloris_probe",
    "FAULT_KINDS",
    "BandwidthDegradation",
    "FaultSpec",
    "FaultTimeline",
    "JitterBursts",
    "LatencySpikes",
    "NodeOffline",
    "parse_faults",
]
