"""Open-loop queueing simulation for tail latency (extension).

The paper reports tail latencies (Figs 8d/8e) as *measured only*: "the
simple analytical model it uses is not sufficient to capture the
variabilities of the tail latencies".  This package supplies the
substrate that statement implies — an open-loop FIFO queueing simulator
over the store's service process — so the claim can be demonstrated:
average latency stays analytically predictable while the tail blows up
non-linearly as load approaches saturation.
"""

from repro.queueing.openloop import (
    OpenLoopResult,
    simulate_open_loop,
    tail_blowup_ratio,
)

__all__ = [
    "OpenLoopResult",
    "simulate_open_loop",
    "tail_blowup_ratio",
]
