"""Open-loop FIFO queueing over the store's service process.

Requests arrive as a Poisson process at a target utilisation and queue
for a single server whose per-request service times come from the same
vectorized timing model the closed-loop client uses.  The FIFO sojourn
recurrence

    completion_i = max(arrival_i, completion_{i-1}) + s_i

telescopes to

    completion_i = cumsum(s)_i + max_{j<=i}(arrival_j - cumsum(s)_{j-1})

which evaluates in one :func:`numpy.maximum.accumulate` pass — no
per-request Python loop, per the project's vectorization idiom.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.kvstore.server import HybridDeployment
from repro.rng import SeedLike, ensure_rng
from repro.ycsb.client import YCSBClient
from repro.ycsb.workload import Trace


@dataclass(frozen=True)
class OpenLoopResult:
    """Sojourn-time statistics of one open-loop run."""

    workload: str
    utilization: float            # offered load rho = lambda * E[s]
    arrival_rate_ops_s: float
    avg_service_ns: float
    avg_sojourn_ns: float
    p50_ns: float
    p95_ns: float
    p99_ns: float
    max_queue_depth: int

    @property
    def avg_wait_ns(self) -> float:
        """Mean queueing delay (sojourn minus service)."""
        return self.avg_sojourn_ns - self.avg_service_ns

    @property
    def tail_inflation(self) -> float:
        """p99 sojourn over mean service time — the tail the simple
        average-based model cannot see."""
        return self.p99_ns / self.avg_service_ns


def simulate_open_loop(
    trace: Trace,
    deployment: HybridDeployment,
    utilization: float,
    client: YCSBClient | None = None,
    seed: SeedLike = None,
) -> OpenLoopResult:
    """Simulate Poisson arrivals at *utilization* of the service rate.

    Parameters
    ----------
    utilization:
        Offered load rho in (0, 1): the arrival rate is set to
        ``rho / E[service]``.
    client:
        Supplies the service-time realisation (defaults to a fresh
        noisy client).
    """
    if not 0 < utilization < 1:
        raise ConfigurationError(
            f"utilization must be in (0, 1), got {utilization}"
        )
    client = client if client is not None else YCSBClient(seed=seed)
    service = client.sample_service_times(trace, deployment)
    mean_s = float(service.mean())
    rate_per_ns = utilization / mean_s

    rng = ensure_rng(seed)
    gaps = rng.exponential(1.0 / rate_per_ns, size=service.size)
    arrivals = np.cumsum(gaps)

    # FIFO single-server sojourns, fully vectorized (see module docstring)
    csum = np.cumsum(service)
    base = arrivals - (csum - service)  # arrival_j - cumsum_{j-1}
    completion = csum + np.maximum.accumulate(base)
    sojourn = completion - arrivals

    # queue depth: arrivals seen minus departures finished at each arrival
    departures_before = np.searchsorted(completion, arrivals, side="right")
    depth = np.arange(service.size) - departures_before
    p50, p95, p99 = np.percentile(sojourn, [50, 95, 99])

    return OpenLoopResult(
        workload=trace.name,
        utilization=utilization,
        arrival_rate_ops_s=rate_per_ns * 1e9,
        avg_service_ns=mean_s,
        avg_sojourn_ns=float(sojourn.mean()),
        p50_ns=float(p50),
        p95_ns=float(p95),
        p99_ns=float(p99),
        max_queue_depth=int(depth.max()) if depth.size else 0,
    )


def tail_blowup_ratio(
    trace: Trace,
    deployment: HybridDeployment,
    low_util: float = 0.5,
    high_util: float = 0.95,
    client: YCSBClient | None = None,
    seed: SeedLike = None,
) -> float:
    """p99 sojourn at high load over p99 at low load.

    The average-based model predicts latency independent of load; a
    ratio far above 1 quantifies what it misses near saturation.
    """
    lo = simulate_open_loop(trace, deployment, low_util, client, seed)
    hi = simulate_open_loop(trace, deployment, high_util, client, seed)
    return hi.p99_ns / lo.p99_ns
