"""Last-level cache model.

The paper's testbed has a 12 MB shared LLC.  For key-value records the
dominant cache effect is whole-record reuse: a record that was recently
served again is (partially) resident, so a repeat access avoids the memory
round trip.  We model this with an exact LRU over records, capped by
capacity in bytes.  Records larger than the cache never hit.

Two implementations back :meth:`LLCModel.process`:

- an exact dict LRU (CPython's insertion-ordered dict: re-insertion ==
  move-to-back) — the general path for a warm cache or traces whose
  per-key sizes vary between accesses;
- a vectorized NumPy fast path for cold caches, based on stack-distance
  reasoning.  With uniform sizes the byte-capped LRU degenerates to a
  K-slot LRU stack (K = capacity // size), and an access hits iff the
  number of *distinct* keys referenced since the previous access to the
  same key is below K.  With mixed (per-key-constant) sizes the same
  reasoning holds *byte-weighted*: an access to key k hits iff
  ``size_k`` plus the bytes of the distinct other records touched since
  k's previous access (counting only records that fit the cache) is at
  most the capacity — see :func:`lru_hit_mask_mixed_size` for why.
  Most requests are decided by two O(n) shortcuts (a reuse window whose
  *raw* byte sum fits guarantees a hit; a sliding-window distinct byte
  count exceeding the budget over a contained subwindow guarantees a
  miss), and only the residue pays for an exact blocked reuse-distance
  count.  The final resident set is reconstructed so the model's state
  and statistics are bit-identical to the sequential path.

:meth:`LLCModel.process` only routes mixed-size traces to the vectorized
path when a cheap upfront gate (:func:`cold_working_set_bytes`) says the
touched working set fits the capacity — the no-eviction regime where the
O(n) quick-hit rule decides every request and the vector path wins
outright.  Eviction-heavy traces go straight to the dict replay, which
measurement shows is the cheaper exact method there.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.units import MB


def _previous_occurrence(keys: np.ndarray) -> np.ndarray:
    """Index of each request's previous access to the same key (-1 if none)."""
    n = keys.size
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    prev_sorted = np.full(n, -1, dtype=np.int64)
    same = sorted_keys[1:] == sorted_keys[:-1]
    prev_sorted[1:][same] = order[:-1][same]
    prev = np.empty(n, dtype=np.int64)
    prev[order] = prev_sorted
    return prev


def _next_occurrence(prev: np.ndarray) -> np.ndarray:
    """Index of each request's next access to the same key (n if none)."""
    n = prev.size
    nxt = np.full(n, n, dtype=np.int64)
    rep = np.nonzero(prev >= 0)[0]
    nxt[prev[rep]] = rep
    return nxt


def _sliding_distinct(
    nxt: np.ndarray, width: int, weights: np.ndarray | None = None,
) -> np.ndarray:
    """``S[i]`` = distinct-key weight among positions [i-width+1, i-1].

    With *weights* None every key weighs 1 and ``S`` is the distinct
    *count*; with per-position weights (byte sizes) ``S`` is the sum of
    each distinct key's weight.  A position j is the *last* in-window
    occurrence of its key for query i exactly when
    ``j < i <= min(nxt[j], j + width - 1)``, so each j contributes its
    weight to a contiguous range of queries.  Accumulating those ranges
    with a difference array makes the whole computation O(n).
    """
    n = nxt.size
    j = np.arange(n, dtype=np.int64)
    hi = np.minimum(nxt, j + width - 1)
    ok = hi >= j + 1
    # bincount beats np.add.at by a wide margin for scattered adds; its
    # float64 weighted sums stay exact for integer weights below 2**53
    w = None if weights is None else weights[ok].astype(np.float64)
    diff = np.bincount(j[ok] + 1, weights=w, minlength=n + 2)
    diff -= np.bincount(hi[ok] + 1, weights=w, minlength=n + 2)
    return np.cumsum(diff)[:n].astype(np.int64)


def _dup_for_queries(
    prev: np.ndarray, qidx: np.ndarray, weights: np.ndarray | None = None,
) -> np.ndarray:
    """``Σ {w_j : j < i, prev[j] > prev[i]}`` for each query position i.

    This sums the *duplicate* (repeat) accesses inside the reuse window
    ``(prev[i], i)``: a position j in that window repeats an earlier
    in-window key exactly when its own previous occurrence also falls
    inside the window, i.e. ``prev[j] > prev[i]`` (``prev[j] < j`` and
    ``j < i`` then place j inside the window automatically).  First
    occurrences (``prev[j] == -1``) can never satisfy the inequality, so
    only repeat positions act as counting points.  With *weights* None
    every point weighs 1 (the duplicate *count*); with per-position
    weights (byte sizes) the result is the duplicate byte sum.

    Computed blockwise: a running sorted array of point values (with
    weight prefix sums) answers queries against all *earlier* blocks via
    ``searchsorted``, and a points-by-queries broadcast handles
    same-block pairs.  The block size balances merge traffic
    (``n^2 / B``) against broadcast work (``Q * B``), so sparse query
    sets get large blocks and cheap sweeps.
    """
    n = prev.size
    dup = np.zeros(qidx.size, dtype=np.int64)
    if qidx.size == 0:
        return dup
    pidx = np.nonzero(prev >= 0)[0]
    wts = None if weights is None else np.asarray(weights, dtype=np.int64)
    block = int(np.clip(n / np.sqrt(2 * qidx.size + 1), 256, 8192))
    sorted_vals = np.empty(0, dtype=np.int64)
    sorted_wts = np.empty(0, dtype=np.int64)
    for start in range(0, n, block):
        end = min(start + block, n)
        qlo, qhi = np.searchsorted(qidx, [start, end])
        plo, phi = np.searchsorted(pidx, [start, end])
        qs = qidx[qlo:qhi]
        ps = pidx[plo:phi]
        if qs.size:
            qv = prev[qs]
            if sorted_vals.size:
                rank = np.searchsorted(sorted_vals, qv, side="right")
                if wts is None:
                    dup[qlo:qhi] = sorted_vals.size - rank
                else:
                    # suffix weight sums over the sorted point values
                    pref = np.concatenate(
                        ([0], np.cumsum(sorted_wts, dtype=np.int64))
                    )
                    dup[qlo:qhi] = pref[-1] - pref[rank]
            if ps.size:
                pairs = (prev[ps][:, None] > qv[None, :]) \
                    & (ps[:, None] < qs[None, :])
                if wts is None:
                    dup[qlo:qhi] += pairs.sum(axis=0)
                else:
                    dup[qlo:qhi] += (pairs * wts[ps][:, None]).sum(axis=0)
        if ps.size:
            order = np.argsort(prev[ps], kind="stable")
            spv = prev[ps][order]
            spw = None if wts is None else wts[ps][order]
            if sorted_vals.size:
                # vectorized two-sorted-array merge via rank placement
                pos = np.searchsorted(sorted_vals, spv, side="right")
                pos += np.arange(spv.size)
                merged = np.empty(sorted_vals.size + spv.size, np.int64)
                merged[pos] = spv
                rest = np.ones(merged.size, dtype=bool)
                rest[pos] = False
                merged[rest] = sorted_vals
                sorted_vals = merged
                if wts is not None:
                    mw = np.empty(sorted_vals.size, np.int64)
                    mw[pos] = spw
                    mw[rest] = sorted_wts
                    sorted_wts = mw
            else:
                sorted_vals = spv
                if wts is not None:
                    sorted_wts = spw
    return dup


def lru_hit_mask_fixed_size(
    keys: np.ndarray, size: int, capacity_bytes: int,
) -> np.ndarray:
    """Exact LRU hit mask for a cold cache and uniform record size.

    Equivalent (bit-for-bit) to replaying *keys* through an empty
    byte-capped LRU where every record occupies *size* bytes: a request
    hits iff its reuse distance — the number of distinct keys accessed
    since the previous access to the same key — is below the slot count
    ``K = capacity_bytes // size``.  Records larger than the cache never
    hit.

    Most requests never pay for an exact reuse-distance count:

    - a reuse window shorter than K can hold at most K - 1 distinct keys,
      so the access is a guaranteed *hit* (covers hot keys);
    - if a subwindow contained in the reuse window already holds >= K
      distinct keys, the access is a guaranteed *miss* (covers cold keys;
      subwindow distinct counts come from the O(n) sliding sweep of
      :func:`_sliding_distinct`, with the subwindow width escalating
      geometrically until the undecided residue is small).

    Only the residue goes through :func:`_dup_for_queries`.
    """
    keys = np.ascontiguousarray(keys)
    n = keys.size
    if size <= 0:
        raise ConfigurationError(f"record size must be positive, got {size}")
    slots = capacity_bytes // size
    if slots == 0 or n == 0:
        return np.zeros(n, dtype=bool)
    prev = _previous_occurrence(keys)
    idx = np.arange(n, dtype=np.int64)
    window = idx - prev - 1
    repeat = prev >= 0
    hit = repeat & (window < slots)
    undecided = repeat & (window >= slots)
    if undecided.any():
        nxt = _next_occurrence(prev)
        width = min(4 * slots + 1, n)
        while True:
            sliding = _sliding_distinct(nxt, width)
            quick_miss = undecided & (prev <= idx - width) & (sliding >= slots)
            decided = int(quick_miss.sum())
            undecided &= ~quick_miss
            if (
                width >= n
                or decided == 0
                or int(undecided.sum()) <= max(1024, n // 64)
            ):
                break
            width = min(4 * width, n)
        qidx = np.nonzero(undecided)[0]
        if qidx.size:
            dup = _dup_for_queries(prev, qidx)
            hit[qidx] = (window[qidx] - dup) < slots
    return hit


#: Exact-gather work cap for the mixed-size residue, in multiples of n.
_GATHER_CAP = 16
#: Residue work estimate (multiples of n) beyond which a *guarded* call
#: concedes that the sequential dict loop is the cheaper exact method.
#: Tuned low: by the time the escalation loop is doing this much sliding
#: work the dict replay has already won, so bail early rather than sink
#: more prefix cost into a lost race.
_BAIL_WORK = 16


def cold_working_set_bytes(
    keys: np.ndarray, sizes: np.ndarray, capacity_bytes: int,
) -> int:
    """Effective distinct-record bytes a cold replay of *keys* touches.

    Records larger than the capacity are bypassed by the LRU (never
    installed) and therefore contribute nothing.  When this total fits
    the capacity a cold cache never evicts — every repeat access to a
    fitting record is a hit — which is exactly the regime where the
    vectorized mixed-size path wins by a wide margin (the O(n) quick-hit
    rule decides every request).  Outside it, measurement says the
    sequential dict replay is usually the cheaper exact method, so
    :meth:`LLCModel.process` uses this as its cheap upfront viability
    gate before paying for any vectorized prefix work.

    With per-key *varying* sizes the scatter keeps each key's last
    written size — good enough for a go/no-go heuristic (varying sizes
    are rejected exactly, later, by the consistency check).
    """
    n = keys.size
    if n == 0:
        return 0
    cap = int(capacity_bytes)
    kmax = int(keys.max())
    if kmax <= max(4 * n, 1 << 20):
        per_key = np.zeros(kmax + 1, dtype=np.int64)
        per_key[keys] = sizes
        touched = per_key[per_key > 0]
    else:  # sparse key universe: avoid a giant scatter buffer
        _, first = np.unique(keys, return_index=True)
        touched = np.asarray(sizes, dtype=np.int64)[first]
    return int(touched[touched <= cap].sum())


def lru_hit_mask_mixed_size(
    keys: np.ndarray,
    sizes: np.ndarray,
    capacity_bytes: int,
    prev: np.ndarray | None = None,
    guarded: bool = False,
) -> np.ndarray | None:
    """Exact LRU hit mask for a cold cache and per-key-constant sizes.

    Equivalent (bit-for-bit) to replaying ``(keys, sizes)`` through an
    empty byte-capped LRU: an access to key k hits iff

    - ``size_k <= capacity`` (larger records are bypassed), and
    - ``size_k`` plus the *distinct-record* byte sum of the reuse window
      ``(prev, i)`` is at most the capacity, counting each record's
      *effective* size (0 when it exceeds the capacity, because bypassed
      records are never installed and displace nothing).

    Why: every record installed after k's previous access is more recent
    than k, so it can only be evicted after k; the bytes pressing k
    toward eviction are therefore exactly the distinct effective bytes
    touched inside the window, and k survives iff they plus ``size_k``
    fit.  With uniform sizes this degenerates to the slot-count
    condition of :func:`lru_hit_mask_fixed_size`.

    Sizes must be constant per key across the trace (a hit does not
    resize the record in the sequential model); inconsistent sizes raise
    :class:`~repro.errors.ConfigurationError`.

    Most requests are decided by O(n) rules: a raw window byte sum
    within budget is a guaranteed hit; a right-anchored subwindow whose
    distinct byte sum exceeds the budget is a guaranteed miss (widths
    escalate geometrically, and a subwindow that covers the whole reuse
    window decides the request exactly either way).  The residue is
    resolved exactly — short reuse windows by a ragged gather over their
    positions, long ones by the blocked duplicate-byte count.

    With ``guarded=True`` the function returns ``None`` instead of
    paying for a residue whose exact resolution would cost more than the
    sequential dict replay (borderline-locality traces where nearly
    every window sits at the capacity boundary); the caller is expected
    to fall back.  Unguarded calls always return the exact mask.
    """
    keys = np.ascontiguousarray(keys)
    sizes = np.ascontiguousarray(sizes).astype(np.int64, copy=False)
    n = keys.size
    if sizes.size != n:
        raise ConfigurationError(
            f"keys and sizes must align: {keys.shape} vs {sizes.shape}"
        )
    if n and int(sizes.min()) <= 0:
        raise ConfigurationError("record sizes must be positive")
    cap = int(capacity_bytes)
    if n == 0 or cap <= 0:
        return np.zeros(n, dtype=bool)
    if prev is None:
        prev = _previous_occurrence(keys)
    repeat = prev >= 0
    if not (sizes[repeat] == sizes[prev[repeat]]).all():
        raise ConfigurationError(
            "per-key record sizes vary within the trace; "
            "the vectorized LRU requires constant size per key"
        )
    eff = np.where(sizes <= cap, sizes, 0)
    csum = np.concatenate(([0], np.cumsum(eff, dtype=np.int64)))
    idx = np.arange(n, dtype=np.int64)
    # raw byte sum of the reuse window (prev, i), duplicates included
    raw = csum[idx] - csum[prev + 1]
    budget = cap - sizes
    cand = repeat & (sizes <= cap)
    hit = cand & (raw <= budget)
    undecided = cand & (raw > budget)
    if not undecided.any():
        return hit
    nxt = _next_occurrence(prev)
    window = idx - prev
    # F(i) = distinct live bytes over the whole prefix j < i (each key
    # counted at its last occurrence before i).  Two global bounds
    # follow: the window's distinct sum is at most F - eff (the window
    # cannot contain key i itself), and at least F(i) - F(prev+1)
    # (everything live at i but already live just after prev is a
    # conservative cut).  The first one alone decides every repeat
    # whenever the touched working set still fits the cache.
    live = _sliding_distinct(nxt, n, weights=eff)
    quick_hit = undecided & ((live - eff + sizes) <= cap)
    hit |= quick_hit
    undecided &= ~quick_hit
    if undecided.any():
        live_at_prev = live[np.minimum(prev + 1, n - 1)]
        quick_miss = undecided & ((live - live_at_prev + sizes) > cap)
        undecided &= ~quick_miss
    fitting = eff[eff > 0]
    avg = int(fitting.mean()) if fitting.size else 1
    width = min(2 * max(1, cap // max(avg, 1)) + 1, n)
    while undecided.any():
        sliding = _sliding_distinct(nxt, width, weights=eff)
        # subwindow == whole reuse window: the sliding sum is the exact
        # distinct byte sum, so the request is decided either way
        exact = undecided & (window == width)
        hit[exact] = sliding[exact] <= budget[exact]
        undecided &= ~exact
        quick_miss = undecided & (window > width) & (sliding > budget)
        undecided &= ~quick_miss
        und = int(undecided.sum())
        if und == 0 or und <= max(256, n // 256) or width >= n:
            break
        work = int((window[undecided] - 1).sum())
        if guarded and work > _BAIL_WORK * n:
            break  # residue stage below will concede
        wmax = int(window[undecided].max())
        if width >= wmax:
            break
        width = min(2 * width, wmax)
    qidx = np.nonzero(undecided)[0]
    if qidx.size:
        length = window[qidx] - 1
        order = np.argsort(length, kind="stable")
        cum = np.cumsum(length[order])
        n_small = int(np.searchsorted(cum, _GATHER_CAP * n, side="right"))
        small = np.sort(qidx[order[:n_small]])
        big = np.sort(qidx[order[n_small:]])
        if guarded and big.size > max(512, n // 64):
            return None
        if small.size:
            p = prev[small]
            seg_len = small - p - 1
            seg_starts = np.concatenate(([0], np.cumsum(seg_len)[:-1]))
            total = int(seg_len.sum())
            # ragged gather of every in-window position; a position
            # counts iff it is its key's first in-window occurrence
            starts = np.repeat(p + 1, seg_len)
            jj = np.arange(total, dtype=np.int64) \
                - np.repeat(seg_starts, seg_len) + starts
            contrib = np.where(prev[jj] < starts, eff[jj], 0)
            dist = np.add.reduceat(contrib, seg_starts)
            hit[small] = dist <= budget[small]
        if big.size:
            dup = _dup_for_queries(prev, big, weights=eff)
            hit[big] = (raw[big] - dup) <= budget[big]
    return hit


class LLCModel:
    """Exact LRU cache over key-value records.

    Parameters
    ----------
    capacity_bytes:
        Cache capacity; defaults to the testbed's 12 MB LLC.
    hit_latency_ns:
        Latency charged for a full hit in place of the memory access.
    """

    def __init__(self, capacity_bytes: int = 12 * MB, hit_latency_ns: float = 12.0):
        if capacity_bytes <= 0:
            raise ConfigurationError(
                f"cache capacity must be positive, got {capacity_bytes}"
            )
        if hit_latency_ns < 0:
            raise ConfigurationError(
                f"hit latency must be >= 0, got {hit_latency_ns}"
            )
        self.capacity_bytes = int(capacity_bytes)
        self.hit_latency_ns = float(hit_latency_ns)
        self._entries: dict[int, int] = {}  # key -> size, insertion order = LRU order
        self._used = 0
        self.hits = 0
        self.misses = 0

    # -- introspection -------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        """Bytes currently resident."""
        return self._used

    @property
    def resident_keys(self) -> int:
        """Number of records currently resident."""
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses so far that hit (0 if none)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __contains__(self, key: int) -> bool:
        return key in self._entries

    # -- operation -----------------------------------------------------------

    def reset(self) -> None:
        """Flush the cache and clear statistics."""
        self._entries.clear()
        self._used = 0
        self.hits = 0
        self.misses = 0

    def access(self, key: int, size: int) -> bool:
        """Touch *key* (record of *size* bytes); return True on a hit.

        A hit refreshes recency.  A miss installs the record, evicting
        LRU entries until it fits; records larger than the cache are
        bypassed (never installed, always a miss).
        """
        entries = self._entries
        old = entries.pop(key, None)
        if old is not None:
            entries[key] = old  # move to back (most recent)
            self.hits += 1
            return True
        self.misses += 1
        if size > self.capacity_bytes:
            return False
        self._used += size
        entries[key] = size
        while self._used > self.capacity_bytes:
            victim = next(iter(entries))
            self._used -= entries.pop(victim)
        return False

    def invalidate(self, key: int) -> bool:
        """Drop *key* from the cache (e.g. on delete); True if present."""
        size = self._entries.pop(key, None)
        if size is None:
            return False
        self._used -= size
        return True

    def process(self, keys: np.ndarray, sizes: np.ndarray) -> np.ndarray:
        """Run a whole trace through the cache; return the boolean hit mask.

        This is the batch entry point the client uses.  When the cache is
        cold, the vectorized stack-distance path runs with no per-request
        Python loop: uniform record sizes take the slot-count fast path,
        per-key-constant mixed sizes take the byte-weighted one.  Only a
        warm cache or per-key-*varying* sizes fall back to the exact
        sequential LRU.  All paths leave identical statistics and
        residency state.
        """
        keys = np.asarray(keys)
        sizes = np.asarray(sizes)
        if keys.shape != sizes.shape:
            raise ConfigurationError(
                f"keys and sizes must align: {keys.shape} vs {sizes.shape}"
            )
        if keys.size > 0 and not self._entries:
            if (sizes == sizes.flat[0]).all():
                return self._process_fixed_size(keys, int(sizes.flat[0]))
            keys = np.ascontiguousarray(keys)
            # Upfront viability gate: engage the vectorized mixed-size
            # path only when the touched working set fits the capacity
            # (no evictions — its quick-hit rule then decides every
            # request).  Outside that regime the dict replay is the
            # cheaper exact method, and going straight to it skips the
            # _previous_occurrence + consistency-check prefix the old
            # guarded bailout still paid for before conceding.
            fits = cold_working_set_bytes(
                keys, sizes, self.capacity_bytes
            ) <= self.capacity_bytes
            if fits and sizes.min() > 0:
                prev = _previous_occurrence(keys)
                rep = prev >= 0
                if (sizes[rep] == sizes[prev[rep]]).all():
                    hits = lru_hit_mask_mixed_size(
                        keys, sizes, self.capacity_bytes,
                        prev=prev, guarded=True,
                    )
                    if hits is not None:
                        return self._finish_cold_mixed(keys, sizes, hits)
        out = np.empty(keys.shape[0], dtype=bool)
        access = self.access
        key_list = keys.tolist()
        size_list = sizes.tolist()
        for i in range(len(key_list)):
            out[i] = access(key_list[i], size_list[i])
        return out

    def _process_fixed_size(self, keys: np.ndarray, size: int) -> np.ndarray:
        """Vectorized cold-cache path for a uniform record size.

        Computes the hit mask via :func:`lru_hit_mask_fixed_size`, then
        reconstructs the statistics and the exact end-of-trace residency
        (the most recently used ``capacity // size`` distinct keys, in
        LRU order) so subsequent incremental :meth:`access` calls behave
        as if the sequential path had run.
        """
        hits = lru_hit_mask_fixed_size(keys, size, self.capacity_bytes)
        n = keys.size
        n_hits = int(hits.sum())
        self.hits += n_hits
        self.misses += n - n_hits
        slots = self.capacity_bytes // size
        if slots:
            # resident set = last `slots` distinct keys by last occurrence;
            # dict order must be LRU -> MRU, i.e. ascending last occurrence
            rev_first = np.unique(keys[::-1], return_index=True)[1]
            last_pos = np.sort((n - 1) - rev_first)
            for pos in last_pos[-slots:]:
                self._entries[int(keys[pos])] = size
            self._used = len(self._entries) * size
        return hits

    def _finish_cold_mixed(
        self, keys: np.ndarray, sizes: np.ndarray, hits: np.ndarray,
    ) -> np.ndarray:
        """Finalize the vectorized cold-cache mixed-size path.

        Given the hit mask from :func:`lru_hit_mask_mixed_size`,
        reconstructs the statistics and the exact end-of-trace residency:
        walking distinct keys from most- to least-recently used, a key
        stays resident while its own size plus the effective bytes of
        everything more recent still fits (records larger than the cache
        are bypassed and contribute nothing).  Inserting the survivors in
        ascending last-occurrence order reproduces the sequential dict's
        LRU -> MRU iteration order bit-for-bit.
        """
        n = keys.size
        n_hits = int(hits.sum())
        self.hits += n_hits
        self.misses += n - n_hits
        cap = self.capacity_bytes
        rev_first = np.unique(keys[::-1], return_index=True)[1]
        last_pos = np.sort((n - 1) - rev_first)
        ksz = np.asarray(sizes, dtype=np.int64)[last_pos]
        keff = np.where(ksz <= cap, ksz, 0)
        # inclusive suffix sums: each key's own bytes + everything newer
        suffix = np.cumsum(keff[::-1], dtype=np.int64)[::-1]
        resident = (ksz <= cap) & (suffix <= cap)
        for pos, size in zip(last_pos[resident], ksz[resident]):
            self._entries[int(keys[pos])] = int(size)
        self._used = int(ksz[resident].sum())
        return hits
