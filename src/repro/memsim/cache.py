"""Last-level cache model.

The paper's testbed has a 12 MB shared LLC.  For key-value records the
dominant cache effect is whole-record reuse: a record that was recently
served again is (partially) resident, so a repeat access avoids the memory
round trip.  We model this with an exact LRU over records, capped by
capacity in bytes.  Records larger than the cache never hit.

Two implementations back :meth:`LLCModel.process`:

- an exact dict LRU (CPython's insertion-ordered dict: re-insertion ==
  move-to-back) — the general path for mixed record sizes;
- a vectorized NumPy fast path for the common fixed-record-size case,
  based on stack-distance reasoning: with uniform sizes the byte-capped
  LRU degenerates to a K-slot LRU stack (K = capacity // size), and an
  access hits iff the number of *distinct* keys referenced since the
  previous access to the same key is below K.  Most requests are decided
  by two O(n) shortcuts (a reuse window shorter than K guarantees a hit;
  a sliding-window distinct count of at least K over a contained
  subwindow guarantees a miss), and only the residue pays for an exact
  blocked reuse-distance count.  The final resident set is reconstructed
  so the model's state and statistics are bit-identical to the
  sequential path.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.units import MB


def _previous_occurrence(keys: np.ndarray) -> np.ndarray:
    """Index of each request's previous access to the same key (-1 if none)."""
    n = keys.size
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    prev_sorted = np.full(n, -1, dtype=np.int64)
    same = sorted_keys[1:] == sorted_keys[:-1]
    prev_sorted[1:][same] = order[:-1][same]
    prev = np.empty(n, dtype=np.int64)
    prev[order] = prev_sorted
    return prev


def _next_occurrence(prev: np.ndarray) -> np.ndarray:
    """Index of each request's next access to the same key (n if none)."""
    n = prev.size
    nxt = np.full(n, n, dtype=np.int64)
    rep = np.nonzero(prev >= 0)[0]
    nxt[prev[rep]] = rep
    return nxt


def _sliding_distinct(nxt: np.ndarray, width: int) -> np.ndarray:
    """``S[i]`` = number of distinct keys among positions [i-width+1, i-1].

    A position j is the *last* in-window occurrence of its key for query
    i exactly when ``j < i <= min(nxt[j], j + width - 1)``, so each j
    contributes +1 to a contiguous range of queries.  Accumulating those
    ranges with a difference array makes the whole computation O(n).
    """
    n = nxt.size
    diff = np.zeros(n + 2, dtype=np.int64)
    j = np.arange(n, dtype=np.int64)
    hi = np.minimum(nxt, j + width - 1)
    ok = hi >= j + 1
    np.add.at(diff, j[ok] + 1, 1)
    np.add.at(diff, hi[ok] + 1, -1)
    return np.cumsum(diff)[:n]


def _dup_for_queries(prev: np.ndarray, qidx: np.ndarray) -> np.ndarray:
    """``#{j < i : prev[j] > prev[i]}`` for each query position i in *qidx*.

    This is the number of *duplicate* (repeat) accesses inside the reuse
    window ``(prev[i], i)``: a position j in that window repeats an
    earlier in-window key exactly when its own previous occurrence also
    falls inside the window, i.e. ``prev[j] > prev[i]`` (``prev[j] < j``
    and ``j < i`` then place j inside the window automatically).  First
    occurrences (``prev[j] == -1``) can never satisfy the inequality, so
    only repeat positions act as counting points.

    Computed blockwise: a running sorted array of point values answers
    queries against all *earlier* blocks via ``searchsorted``, and a
    points-by-queries broadcast handles same-block pairs.  The block
    size balances merge traffic (``n^2 / B``) against broadcast work
    (``Q * B``), so sparse query sets get large blocks and cheap sweeps.
    """
    n = prev.size
    dup = np.zeros(qidx.size, dtype=np.int64)
    if qidx.size == 0:
        return dup
    pidx = np.nonzero(prev >= 0)[0]
    block = int(np.clip(n / np.sqrt(2 * qidx.size + 1), 256, 8192))
    sorted_vals = np.empty(0, dtype=np.int64)
    for start in range(0, n, block):
        end = min(start + block, n)
        qlo, qhi = np.searchsorted(qidx, [start, end])
        plo, phi = np.searchsorted(pidx, [start, end])
        qs = qidx[qlo:qhi]
        ps = pidx[plo:phi]
        if qs.size:
            qv = prev[qs]
            if sorted_vals.size:
                dup[qlo:qhi] = sorted_vals.size - np.searchsorted(
                    sorted_vals, qv, side="right"
                )
            if ps.size:
                pairs = (prev[ps][:, None] > qv[None, :]) \
                    & (ps[:, None] < qs[None, :])
                dup[qlo:qhi] += pairs.sum(axis=0)
        if ps.size:
            spv = np.sort(prev[ps])
            if sorted_vals.size:
                # vectorized two-sorted-array merge via rank placement
                pos = np.searchsorted(sorted_vals, spv, side="right")
                pos += np.arange(spv.size)
                merged = np.empty(sorted_vals.size + spv.size, np.int64)
                merged[pos] = spv
                rest = np.ones(merged.size, dtype=bool)
                rest[pos] = False
                merged[rest] = sorted_vals
                sorted_vals = merged
            else:
                sorted_vals = spv
    return dup


def lru_hit_mask_fixed_size(
    keys: np.ndarray, size: int, capacity_bytes: int,
) -> np.ndarray:
    """Exact LRU hit mask for a cold cache and uniform record size.

    Equivalent (bit-for-bit) to replaying *keys* through an empty
    byte-capped LRU where every record occupies *size* bytes: a request
    hits iff its reuse distance — the number of distinct keys accessed
    since the previous access to the same key — is below the slot count
    ``K = capacity_bytes // size``.  Records larger than the cache never
    hit.

    Most requests never pay for an exact reuse-distance count:

    - a reuse window shorter than K can hold at most K - 1 distinct keys,
      so the access is a guaranteed *hit* (covers hot keys);
    - if a subwindow contained in the reuse window already holds >= K
      distinct keys, the access is a guaranteed *miss* (covers cold keys;
      subwindow distinct counts come from the O(n) sliding sweep of
      :func:`_sliding_distinct`, with the subwindow width escalating
      geometrically until the undecided residue is small).

    Only the residue goes through :func:`_dup_for_queries`.
    """
    keys = np.ascontiguousarray(keys)
    n = keys.size
    if size <= 0:
        raise ConfigurationError(f"record size must be positive, got {size}")
    slots = capacity_bytes // size
    if slots == 0 or n == 0:
        return np.zeros(n, dtype=bool)
    prev = _previous_occurrence(keys)
    idx = np.arange(n, dtype=np.int64)
    window = idx - prev - 1
    repeat = prev >= 0
    hit = repeat & (window < slots)
    undecided = repeat & (window >= slots)
    if undecided.any():
        nxt = _next_occurrence(prev)
        width = min(4 * slots + 1, n)
        while True:
            sliding = _sliding_distinct(nxt, width)
            quick_miss = undecided & (prev <= idx - width) & (sliding >= slots)
            decided = int(quick_miss.sum())
            undecided &= ~quick_miss
            if (
                width >= n
                or decided == 0
                or int(undecided.sum()) <= max(1024, n // 64)
            ):
                break
            width = min(4 * width, n)
        qidx = np.nonzero(undecided)[0]
        if qidx.size:
            dup = _dup_for_queries(prev, qidx)
            hit[qidx] = (window[qidx] - dup) < slots
    return hit


class LLCModel:
    """Exact LRU cache over key-value records.

    Parameters
    ----------
    capacity_bytes:
        Cache capacity; defaults to the testbed's 12 MB LLC.
    hit_latency_ns:
        Latency charged for a full hit in place of the memory access.
    """

    def __init__(self, capacity_bytes: int = 12 * MB, hit_latency_ns: float = 12.0):
        if capacity_bytes <= 0:
            raise ConfigurationError(
                f"cache capacity must be positive, got {capacity_bytes}"
            )
        if hit_latency_ns < 0:
            raise ConfigurationError(
                f"hit latency must be >= 0, got {hit_latency_ns}"
            )
        self.capacity_bytes = int(capacity_bytes)
        self.hit_latency_ns = float(hit_latency_ns)
        self._entries: dict[int, int] = {}  # key -> size, insertion order = LRU order
        self._used = 0
        self.hits = 0
        self.misses = 0

    # -- introspection -------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        """Bytes currently resident."""
        return self._used

    @property
    def resident_keys(self) -> int:
        """Number of records currently resident."""
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses so far that hit (0 if none)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __contains__(self, key: int) -> bool:
        return key in self._entries

    # -- operation -----------------------------------------------------------

    def reset(self) -> None:
        """Flush the cache and clear statistics."""
        self._entries.clear()
        self._used = 0
        self.hits = 0
        self.misses = 0

    def access(self, key: int, size: int) -> bool:
        """Touch *key* (record of *size* bytes); return True on a hit.

        A hit refreshes recency.  A miss installs the record, evicting
        LRU entries until it fits; records larger than the cache are
        bypassed (never installed, always a miss).
        """
        entries = self._entries
        old = entries.pop(key, None)
        if old is not None:
            entries[key] = old  # move to back (most recent)
            self.hits += 1
            return True
        self.misses += 1
        if size > self.capacity_bytes:
            return False
        self._used += size
        entries[key] = size
        while self._used > self.capacity_bytes:
            victim = next(iter(entries))
            self._used -= entries.pop(victim)
        return False

    def invalidate(self, key: int) -> bool:
        """Drop *key* from the cache (e.g. on delete); True if present."""
        size = self._entries.pop(key, None)
        if size is None:
            return False
        self._used -= size
        return True

    def process(self, keys: np.ndarray, sizes: np.ndarray) -> np.ndarray:
        """Run a whole trace through the cache; return the boolean hit mask.

        This is the batch entry point the client uses.  When the cache is
        cold and all record sizes are equal — the thumbnail-workload
        common case — the vectorized stack-distance path runs with no
        per-request Python loop; mixed sizes or a warm cache fall back to
        the exact sequential LRU.  Both paths leave identical statistics
        and residency state.
        """
        keys = np.asarray(keys)
        sizes = np.asarray(sizes)
        if keys.shape != sizes.shape:
            raise ConfigurationError(
                f"keys and sizes must align: {keys.shape} vs {sizes.shape}"
            )
        if (
            keys.size > 0
            and not self._entries
            and (sizes == sizes.flat[0]).all()
        ):
            return self._process_fixed_size(keys, int(sizes.flat[0]))
        out = np.empty(keys.shape[0], dtype=bool)
        access = self.access
        key_list = keys.tolist()
        size_list = sizes.tolist()
        for i in range(len(key_list)):
            out[i] = access(key_list[i], size_list[i])
        return out

    def _process_fixed_size(self, keys: np.ndarray, size: int) -> np.ndarray:
        """Vectorized cold-cache path for a uniform record size.

        Computes the hit mask via :func:`lru_hit_mask_fixed_size`, then
        reconstructs the statistics and the exact end-of-trace residency
        (the most recently used ``capacity // size`` distinct keys, in
        LRU order) so subsequent incremental :meth:`access` calls behave
        as if the sequential path had run.
        """
        hits = lru_hit_mask_fixed_size(keys, size, self.capacity_bytes)
        n = keys.size
        n_hits = int(hits.sum())
        self.hits += n_hits
        self.misses += n - n_hits
        slots = self.capacity_bytes // size
        if slots:
            # resident set = last `slots` distinct keys by last occurrence;
            # dict order must be LRU -> MRU, i.e. ascending last occurrence
            rev_first = np.unique(keys[::-1], return_index=True)[1]
            last_pos = np.sort((n - 1) - rev_first)
            for pos in last_pos[-slots:]:
                self._entries[int(keys[pos])] = size
            self._used = len(self._entries) * size
        return hits
