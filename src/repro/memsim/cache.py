"""Last-level cache model.

The paper's testbed has a 12 MB shared LLC.  For key-value records the
dominant cache effect is whole-record reuse: a record that was recently
served again is (partially) resident, so a repeat access avoids the memory
round trip.  We model this with an exact LRU over records, capped by
capacity in bytes.  Records larger than the cache never hit.

The LRU is the one sequential loop in the simulator; it exploits CPython's
insertion-ordered dict (re-insertion == move-to-back) so a 100k-request
trace processes in tens of milliseconds.  Runs that do not need cache
fidelity can pass ``cache=None`` to the client for a fully vectorized path.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.units import MB


class LLCModel:
    """Exact LRU cache over key-value records.

    Parameters
    ----------
    capacity_bytes:
        Cache capacity; defaults to the testbed's 12 MB LLC.
    hit_latency_ns:
        Latency charged for a full hit in place of the memory access.
    """

    def __init__(self, capacity_bytes: int = 12 * MB, hit_latency_ns: float = 12.0):
        if capacity_bytes <= 0:
            raise ConfigurationError(
                f"cache capacity must be positive, got {capacity_bytes}"
            )
        if hit_latency_ns < 0:
            raise ConfigurationError(
                f"hit latency must be >= 0, got {hit_latency_ns}"
            )
        self.capacity_bytes = int(capacity_bytes)
        self.hit_latency_ns = float(hit_latency_ns)
        self._entries: dict[int, int] = {}  # key -> size, insertion order = LRU order
        self._used = 0
        self.hits = 0
        self.misses = 0

    # -- introspection -------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        """Bytes currently resident."""
        return self._used

    @property
    def resident_keys(self) -> int:
        """Number of records currently resident."""
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses so far that hit (0 if none)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __contains__(self, key: int) -> bool:
        return key in self._entries

    # -- operation -----------------------------------------------------------

    def reset(self) -> None:
        """Flush the cache and clear statistics."""
        self._entries.clear()
        self._used = 0
        self.hits = 0
        self.misses = 0

    def access(self, key: int, size: int) -> bool:
        """Touch *key* (record of *size* bytes); return True on a hit.

        A hit refreshes recency.  A miss installs the record, evicting
        LRU entries until it fits; records larger than the cache are
        bypassed (never installed, always a miss).
        """
        entries = self._entries
        old = entries.pop(key, None)
        if old is not None:
            entries[key] = old  # move to back (most recent)
            self.hits += 1
            return True
        self.misses += 1
        if size > self.capacity_bytes:
            return False
        self._used += size
        entries[key] = size
        while self._used > self.capacity_bytes:
            victim = next(iter(entries))
            self._used -= entries.pop(victim)
        return False

    def invalidate(self, key: int) -> bool:
        """Drop *key* from the cache (e.g. on delete); True if present."""
        size = self._entries.pop(key, None)
        if size is None:
            return False
        self._used -= size
        return True

    def process(self, keys: np.ndarray, sizes: np.ndarray) -> np.ndarray:
        """Run a whole trace through the cache; return the boolean hit mask.

        This is the batch entry point the client uses: one tight Python
        loop over the trace, everything else stays vectorized.
        """
        keys = np.asarray(keys)
        sizes = np.asarray(sizes)
        if keys.shape != sizes.shape:
            raise ConfigurationError(
                f"keys and sizes must align: {keys.shape} vs {sizes.shape}"
            )
        out = np.empty(keys.shape[0], dtype=bool)
        access = self.access
        key_list = keys.tolist()
        size_list = sizes.tolist()
        for i in range(len(key_list)):
            out[i] = access(key_list[i], size_list[i])
        return out
