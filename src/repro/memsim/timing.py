"""Access-time model.

The cost of one key-value request against a memory node is modelled as

    t = cpu_ns + passes * (node latency + touched_bytes / node bandwidth)

where ``cpu_ns`` and ``passes`` come from the engine's sensitivity profile
(:mod:`repro.kvstore.profiles`) and the node parameters from Table I.  A
multiplicative noise term reproduces run-to-run measurement variability
(the paper reports the mean of multiple runs; our client does the same).

Everything here is vectorized: the client hands over NumPy arrays of
per-request sizes / node parameters and gets per-request times back in a
single pass, per the project's HPC idioms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class NoiseModel:
    """Multiplicative Gaussian noise on per-request service times.

    ``sigma`` is the relative standard deviation; each request time is
    multiplied by ``max(eps, 1 + sigma * z)`` with ``z ~ N(0, 1)``.
    ``sigma = 0`` disables noise (useful in unit tests).
    """

    sigma: float = 0.01

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ConfigurationError(f"noise sigma must be >= 0, got {self.sigma}")

    def apply(
        self,
        times_ns: np.ndarray,
        rng: np.random.Generator,
        scale: np.ndarray | None = None,
    ) -> np.ndarray:
        """Return a noisy copy of *times_ns* (always a fresh array).

        With ``sigma == 0`` the values pass through unchanged, but still
        as a *copy*: returning the input array would let a caller that
        mutates the result silently corrupt the ``times_ns`` it handed
        in (and anything else aliasing it).

        ``scale`` optionally multiplies sigma per request — the hook the
        jitter-burst fault model uses to widen noise inside a burst
        window without touching requests outside it.
        """
        if self.sigma == 0.0:
            return times_ns.copy()
        z = rng.standard_normal(times_ns.shape)
        if scale is not None:
            z = z * scale
        factors = 1.0 + self.sigma * z
        np.maximum(factors, 1e-3, out=factors)
        return times_ns * factors


def service_times_ns(
    sizes: np.ndarray,
    latency_ns: np.ndarray,
    bytes_per_ns: np.ndarray,
    passes: np.ndarray,
    cpu_ns: np.ndarray,
    cached: np.ndarray | None = None,
    cache_latency_ns: float = 0.0,
) -> np.ndarray:
    """Noise-free per-request service times (ns), fully vectorized.

    This is the one place the cost formula lives: :class:`AccessTimer`
    applies noise on top of it, and the batch kernel
    (:mod:`repro.memsim.kernel`) and analytic predictors
    (:mod:`repro.memsim.analytic`) reuse it so every path computes
    bit-identical base times.
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    mem_ns = passes * (latency_ns + sizes / bytes_per_ns)
    if cached is not None:
        mem_ns = np.where(cached, cache_latency_ns, mem_ns)
    return cpu_ns + mem_ns


class AccessTimer:
    """Vectorized per-request access-cost calculator.

    Parameters
    ----------
    noise:
        The measurement-noise model; defaults to 1 % relative sigma.
    seed:
        Seed (or generator) for the noise stream.
    """

    def __init__(self, noise: NoiseModel | None = None, seed: SeedLike = None):
        self.noise = noise if noise is not None else NoiseModel()
        self._rng = ensure_rng(seed)

    def request_times_ns(
        self,
        sizes: np.ndarray,
        latency_ns: np.ndarray,
        bytes_per_ns: np.ndarray,
        passes: np.ndarray,
        cpu_ns: np.ndarray,
        cached: np.ndarray | None = None,
        cache_latency_ns: float = 0.0,
        noisy: bool = True,
        noise_scale: np.ndarray | None = None,
    ) -> np.ndarray:
        """Compute per-request service times in nanoseconds.

        Parameters
        ----------
        sizes:
            Bytes touched by each request (record size + metadata).
        latency_ns, bytes_per_ns:
            Per-request node parameters (already gathered by placement).
        passes:
            How many times the engine walks the record per request.
        cpu_ns:
            Fixed per-request CPU cost of the engine.
        cached:
            Optional boolean mask of LLC hits; hits replace the memory
            term with ``cache_latency_ns`` (data is already on-chip).
        cache_latency_ns:
            LLC hit latency.
        noisy:
            Apply the noise model (disable for analytic ground truth).
        noise_scale:
            Optional per-request sigma multipliers (jitter bursts).

        Returns
        -------
        numpy.ndarray
            Per-request times, same shape as *sizes*.
        """
        times = service_times_ns(
            sizes, latency_ns, bytes_per_ns, passes, cpu_ns,
            cached=cached, cache_latency_ns=cache_latency_ns,
        )
        if noisy:
            times = self.noise.apply(times, self._rng, scale=noise_scale)
        return times
