"""First-fit address-space allocator.

Backs the slab allocator and the engines' record placement so that node
occupancy is tracked against a real address space, not just a byte
counter.  Adjacent free ranges are coalesced on release, keeping the
free list small even under churn-heavy (update) workloads.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.errors import AllocationError, ConfigurationError


@dataclass(frozen=True)
class Allocation:
    """A live allocation: half-open byte range ``[offset, offset + size)``."""

    offset: int
    size: int

    @property
    def end(self) -> int:
        """One past the last byte of the range."""
        return self.offset + self.size


class AddressSpaceAllocator:
    """First-fit allocator over a contiguous byte range.

    The free list is kept sorted by offset; allocation scans for the
    first range large enough, release re-inserts and coalesces with
    neighbours.  Both operations are O(free ranges), which stays tiny
    for the KV-store allocation patterns exercised here.
    """

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ConfigurationError(
                f"capacity must be positive, got {capacity_bytes}"
            )
        self.capacity_bytes = int(capacity_bytes)
        # parallel sorted lists: free range offsets and sizes
        self._free_offsets: list[int] = [0]
        self._free_sizes: list[int] = [self.capacity_bytes]
        self._live: dict[int, int] = {}  # offset -> size

    # -- introspection -------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        """Bytes currently allocated."""
        return self.capacity_bytes - self.free_bytes

    @property
    def free_bytes(self) -> int:
        """Bytes currently free (possibly fragmented)."""
        return sum(self._free_sizes)

    @property
    def largest_free_block(self) -> int:
        """Largest single free range (0 when full)."""
        return max(self._free_sizes, default=0)

    @property
    def fragmentation(self) -> float:
        """1 - largest_free/total_free; 0 when free space is contiguous."""
        free = self.free_bytes
        if free == 0:
            return 0.0
        return 1.0 - self.largest_free_block / free

    def live_allocations(self) -> list[Allocation]:
        """Snapshot of current allocations, sorted by offset."""
        return [Allocation(off, size) for off, size in sorted(self._live.items())]

    # -- operation -----------------------------------------------------------

    def allocate(self, size: int) -> Allocation:
        """Allocate *size* bytes; raises :class:`AllocationError` if no fit."""
        if size <= 0:
            raise ConfigurationError(f"allocation size must be positive, got {size}")
        for i, (off, free) in enumerate(zip(self._free_offsets, self._free_sizes)):
            if free >= size:
                if free == size:
                    del self._free_offsets[i]
                    del self._free_sizes[i]
                else:
                    self._free_offsets[i] = off + size
                    self._free_sizes[i] = free - size
                self._live[off] = size
                return Allocation(off, size)
        raise AllocationError(
            f"no free range of {size} B (free={self.free_bytes} B, "
            f"largest block={self.largest_free_block} B)"
        )

    def release(self, alloc: Allocation) -> None:
        """Free a previously returned allocation, coalescing neighbours."""
        size = self._live.pop(alloc.offset, None)
        if size is None:
            raise AllocationError(f"offset {alloc.offset} is not a live allocation")
        if size != alloc.size:
            # restore before raising so the allocator stays consistent
            self._live[alloc.offset] = size
            raise AllocationError(
                f"allocation at {alloc.offset} has size {size}, not {alloc.size}"
            )
        i = bisect.bisect_left(self._free_offsets, alloc.offset)
        self._free_offsets.insert(i, alloc.offset)
        self._free_sizes.insert(i, alloc.size)
        # coalesce with successor
        if i + 1 < len(self._free_offsets) and (
            self._free_offsets[i] + self._free_sizes[i] == self._free_offsets[i + 1]
        ):
            self._free_sizes[i] += self._free_sizes[i + 1]
            del self._free_offsets[i + 1]
            del self._free_sizes[i + 1]
        # coalesce with predecessor
        if i > 0 and (
            self._free_offsets[i - 1] + self._free_sizes[i - 1]
            == self._free_offsets[i]
        ):
            self._free_sizes[i - 1] += self._free_sizes[i]
            del self._free_offsets[i]
            del self._free_sizes[i]

    def reset(self) -> None:
        """Drop every allocation and restore one contiguous free range."""
        self._free_offsets = [0]
        self._free_sizes = [self.capacity_bytes]
        self._live.clear()
