"""Memory node model.

A :class:`MemoryNode` is one memory component of the hybrid system — DRAM
("FastMem") or emulated NVM ("SlowMem").  It carries the device timing
parameters used by the access cost model and tracks occupancy so that
capacity sizing decisions are enforced rather than assumed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import CapacityError, ConfigurationError
from repro.units import gbps_to_bytes_per_ns


class NodeKind(enum.Enum):
    """Which tier a node belongs to."""

    FAST = "fast"
    SLOW = "slow"


@dataclass
class MemoryNode:
    """One memory component of a hybrid memory system.

    Parameters
    ----------
    name:
        Human-readable identifier (``"FastMem"`` / ``"SlowMem"``).
    kind:
        Tier of the node (:class:`NodeKind`).
    latency_ns:
        Idle access latency in nanoseconds (Table I: 65.7 for DRAM,
        238.1 for the throttled node).
    bandwidth_gbps:
        Sustained bandwidth in GB/s (Table I: 14.9 / 1.81).
    capacity_bytes:
        Total capacity of the node.  ``allocate``/``release`` enforce it.
    """

    name: str
    kind: NodeKind
    latency_ns: float
    bandwidth_gbps: float
    capacity_bytes: int
    used_bytes: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.latency_ns <= 0:
            raise ConfigurationError(f"latency must be positive, got {self.latency_ns}")
        if self.bandwidth_gbps <= 0:
            raise ConfigurationError(
                f"bandwidth must be positive, got {self.bandwidth_gbps}"
            )
        if self.capacity_bytes <= 0:
            raise ConfigurationError(
                f"capacity must be positive, got {self.capacity_bytes}"
            )

    # -- occupancy ---------------------------------------------------------

    @property
    def free_bytes(self) -> int:
        """Remaining capacity."""
        return self.capacity_bytes - self.used_bytes

    @property
    def utilization(self) -> float:
        """Fraction of capacity currently in use (0..1)."""
        return self.used_bytes / self.capacity_bytes

    def allocate(self, nbytes: int) -> None:
        """Reserve *nbytes* on this node.

        Raises
        ------
        CapacityError
            If the node does not have *nbytes* free.
        """
        if nbytes < 0:
            raise ConfigurationError(f"cannot allocate negative bytes: {nbytes}")
        if nbytes > self.free_bytes:
            raise CapacityError(
                f"{self.name}: requested {nbytes} B but only "
                f"{self.free_bytes} B free of {self.capacity_bytes} B"
            )
        self.used_bytes += nbytes

    def release(self, nbytes: int) -> None:
        """Return *nbytes* to the node."""
        if nbytes < 0:
            raise ConfigurationError(f"cannot release negative bytes: {nbytes}")
        if nbytes > self.used_bytes:
            raise CapacityError(
                f"{self.name}: releasing {nbytes} B but only "
                f"{self.used_bytes} B are allocated"
            )
        self.used_bytes -= nbytes

    def reset(self) -> None:
        """Drop all occupancy accounting (fresh server deployment)."""
        self.used_bytes = 0

    # -- degradation ---------------------------------------------------------

    def degraded(
        self, latency_factor: float = 1.0, bandwidth_factor: float = 1.0,
    ) -> "MemoryNode":
        """A copy of this node with worse device timing.

        ``latency_factor`` multiplies latency (>= 1 makes it slower);
        ``bandwidth_factor`` multiplies bandwidth (<= 1 makes it
        slower).  Occupancy accounting starts fresh — a degraded node
        models a different steady state, not a live migration.  Used by
        what-if studies and the fault layer's steady-state degradation
        scenarios (:mod:`repro.faults`).
        """
        if latency_factor <= 0 or bandwidth_factor <= 0:
            raise ConfigurationError(
                "degradation factors must be positive, got "
                f"latency_factor={latency_factor}, "
                f"bandwidth_factor={bandwidth_factor}"
            )
        return MemoryNode(
            name=self.name,
            kind=self.kind,
            latency_ns=self.latency_ns * latency_factor,
            bandwidth_gbps=self.bandwidth_gbps * bandwidth_factor,
            capacity_bytes=self.capacity_bytes,
        )

    # -- timing --------------------------------------------------------------

    @property
    def bytes_per_ns(self) -> float:
        """Bandwidth expressed in bytes per nanosecond."""
        return gbps_to_bytes_per_ns(self.bandwidth_gbps)

    def access_time_ns(self, nbytes: float) -> float:
        """Raw device time to move *nbytes*: ``latency + nbytes / bandwidth``.

        This is the noise-free cost of a single access touching *nbytes*
        of data on this node; the :class:`~repro.memsim.timing.AccessTimer`
        layers cache effects, per-engine pass counts and noise on top.
        """
        return self.latency_ns + float(nbytes) / self.bytes_per_ns

    # -- derived metrics -----------------------------------------------------

    def slowdown_factors(self, other: "MemoryNode") -> tuple[float, float]:
        """Return (bandwidth factor, latency factor) of *self* vs *other*.

        Matches the Table I ``B:x L:y`` notation: SlowMem relative to
        FastMem is ``B:0.12 L:3.62``.
        """
        return (
            self.bandwidth_gbps / other.bandwidth_gbps,
            self.latency_ns / other.latency_ns,
        )
