"""Multi-placement batch simulation kernel.

Every sweep, validation replay and drift drill evaluates the *same trace*
against many FastMem:SlowMem placements.  The per-deployment path pays a
stack of per-placement Python overhead for each one: constructing a
:class:`~repro.kvstore.server.HybridDeployment` (which loads every record
into both engine instances), re-hashing the full trace for the
fingerprint, re-gathering the per-request parameter arrays, and looping
over noise repeats.

:class:`BatchKernel` amortises all of it.  The trace-dependent,
placement-independent arrays (request sizes, passes, CPU costs, the LLC
hit mask, the trace digest) are gathered **once**; each placement then
costs only a fancy-indexed node-parameter gather, a fingerprint over the
placement mask, and one vectorized (repeats x requests) timing pass.  No
deployment objects are built at all.

Equivalence is exact, not approximate: the kernel derives each
placement's noise streams from the same experiment fingerprint the
per-deployment path uses (via
:func:`~repro.runner.fingerprint.experiment_fingerprint_parts`), computes
base times through the shared :func:`~repro.memsim.timing.service_times_ns`
formula, and realises noise through the same per-repeat
``derive_seed(seed, f"{label}/run{r}")`` generators — so every
:class:`~repro.ycsb.client.RunResult` it returns is *bit-identical* to
what ``YCSBClient.execute`` measures against a real deployment with the
same placement (see ``tests/memsim/test_kernel.py``).
"""

from __future__ import annotations

import numpy as np

from repro import telemetry
from repro.errors import WorkloadError
from repro.memsim.timing import NoiseModel, service_times_ns
from repro.rng import SeedLike, derive_seed, ensure_rng


def realisation_matrix(
    base_ns: np.ndarray,
    noise: NoiseModel,
    seed: SeedLike,
    label: str,
    repeats: int,
    noise_scale: np.ndarray | None = None,
) -> np.ndarray:
    """(repeats x requests) noisy service times from one base-time pass.

    Row ``r`` is bit-identical to what an
    :class:`~repro.memsim.timing.AccessTimer` seeded with
    ``derive_seed(seed, f"{label}/run{r}")`` would produce from the same
    base times: the per-repeat ``standard_normal`` draws come from the
    same derived generators, and the noise arithmetic is elementwise, so
    broadcasting it over rows changes nothing.  With ``sigma == 0`` the
    rows are the base times themselves (returned as a read-only
    broadcast view — no copies needed to summarize).
    """
    n = base_ns.size
    if noise.sigma == 0.0:
        return np.broadcast_to(base_ns, (repeats, n))
    z = np.empty((repeats, n))
    for r in range(repeats):
        rng = ensure_rng(derive_seed(seed, f"{label}/run{r}"))
        z[r] = rng.standard_normal(n)
    if noise_scale is not None:
        z *= noise_scale
    factors = 1.0 + noise.sigma * z
    np.maximum(factors, 1e-3, out=factors)
    return base_ns[None, :] * factors


def summarize(
    trace,
    engine: str,
    times_ns: np.ndarray,
    concurrency: int,
    percentiles: tuple[float, ...],
):
    """Fold a (repeats x requests) time matrix into a ``RunResult``.

    Matches the per-repeat loop bit-for-bit: full-row sums and the
    percentile reduction are computed along ``axis=1`` (verified
    bitwise-equal to the row-at-a-time calls), while the read-masked
    sums use a per-row slice — a 2-D fancy-indexed sum reassociates and
    is *not* bit-identical, and the loop is over repeats (tiny), not
    requests.
    """
    from repro.ycsb.client import RunResult  # lazy: import cycle

    repeats = times_ns.shape[0]
    is_read = trace.is_read
    n_reads = int(is_read.sum())
    n_writes = trace.n_requests - n_reads
    row_sums = np.array([times_ns[r].sum() for r in range(repeats)])
    runtimes = row_sums / concurrency
    read_sums = np.array(
        [times_ns[r][is_read].sum() for r in range(repeats)]
    )
    write_sums = row_sums - read_sums
    pct: dict[float, float] = {}
    if percentiles:
        qs = np.percentile(times_ns, percentiles, axis=1)
        pct = {q: float(qs[i].mean()) for i, q in enumerate(percentiles)}
    return RunResult(
        workload=trace.name,
        engine=engine,
        n_requests=trace.n_requests,
        n_reads=n_reads,
        n_writes=n_writes,
        runtime_ns=float(runtimes.mean()),
        avg_read_ns=float(read_sums.mean() / n_reads) if n_reads else 0.0,
        avg_write_ns=float(write_sums.mean() / n_writes) if n_writes else 0.0,
        latency_percentiles_ns=pct,
        repeats=repeats,
        runtime_std_ns=float(runtimes.std()),
        concurrency=concurrency,
    )


class BatchKernel:
    """Evaluates many placements of one trace in a single gathered pass.

    Parameters
    ----------
    client:
        The measuring :class:`~repro.ycsb.client.YCSBClient` whose
        settings (repeats, noise, seed, concurrency, contention, LLC,
        faults) define the measurement.  Results are bit-identical to
        ``client.execute`` against equivalent deployments.
    trace:
        The request trace shared by every placement.
    profile:
        The engine's :class:`~repro.kvstore.profiles.EngineProfile`.
    system:
        The :class:`~repro.memsim.system.HybridMemorySystem` hosting
        every placement (placements share node parameters; only the
        mask varies).
    record_sizes:
        Dense per-key sizes defining the key space (defaults to
        ``trace.record_sizes``, which is what every deployment built
        from the trace uses).
    path_label:
        The ``memsim.path`` telemetry label :meth:`run` counts under.
        The grouped sweep dispatcher sets ``"grouped_batch"`` so the
        path mix distinguishes planner batches from direct kernel use.
    """

    def __init__(
        self, client, trace, profile, system, record_sizes=None,
        path_label: str = "batch_kernel",
    ):
        record_sizes = np.asarray(
            trace.record_sizes if record_sizes is None else record_sizes,
            dtype=np.int64,
        )
        if trace.n_keys != record_sizes.size:
            raise WorkloadError(
                f"trace key space ({trace.n_keys}) does not match the "
                f"placement key space ({record_sizes.size})"
            )
        self.client = client
        self.trace = trace
        self.profile = profile
        self.system = system
        self.record_sizes = record_sizes
        self.path_label = path_label
        # request-aligned, placement-independent arrays (gathered once;
        # identical expressions to YCSBClient._gather)
        self.sizes = record_sizes[trace.keys] + profile.metadata_bytes
        passes = np.where(
            trace.is_read, profile.read_passes, profile.write_passes
        )
        if client.concurrency > 1:
            passes = passes * (1 + client.contention * (client.concurrency - 1))
        self.passes = passes
        self.cpu = np.where(
            trace.is_read, profile.read_cpu_ns, profile.write_cpu_ns
        )
        self._live_seed = isinstance(client.seed, np.random.Generator)
        self.trace_digest = (
            None if self._live_seed else client.trace_digest(trace)
        )
        # the LLC hit mask is placement-independent; one replay serves
        # every placement (and the client memoizes it across kernels)
        self._cached, self._cache_lat = client._cache_mask(
            trace, system.llc, self.trace_digest
        )

    def fingerprint(self, fast_mask: np.ndarray) -> str | None:
        """The experiment fingerprint of one placement (None if unseeded).

        Identical to ``client.experiment_fingerprint(trace, deployment)``
        for a deployment carrying *fast_mask* — computed without building
        the deployment.
        """
        if self._live_seed:
            return None
        from repro.runner.fingerprint import experiment_fingerprint_parts

        return experiment_fingerprint_parts(
            self.trace_digest, self.profile, self._check_mask(fast_mask),
            self.system, self.client,
        )

    def _check_mask(self, fast_mask) -> np.ndarray:
        mask = np.asarray(fast_mask)
        if mask.dtype != np.bool_ or mask.shape != (self.record_sizes.size,):
            raise WorkloadError(
                f"placement mask must be bool of shape "
                f"({self.record_sizes.size},), got {mask.dtype} {mask.shape}"
            )
        return mask

    def run(self, fast_mask: np.ndarray, fingerprint: str | None = None):
        """Measure one placement; returns a ``RunResult``.

        ``fingerprint`` may be passed when the caller already computed it
        (e.g. for a cache probe) to avoid hashing the mask twice.
        """
        telemetry.count("memsim.path", path=self.path_label)
        mask = self._check_mask(fast_mask)
        if self._live_seed:
            # matches _experiment_context: live-generator clients are not
            # fingerprintable; the static label still yields fresh streams
            label = self.trace.name
        else:
            label = fingerprint or self.fingerprint(mask)
        trace, client, system = self.trace, self.client, self.system
        on_fast = mask[trace.keys]
        latency = np.where(
            on_fast, system.fast.latency_ns, system.slow.latency_ns
        )
        bpns = np.where(
            on_fast, system.fast.bytes_per_ns, system.slow.bytes_per_ns
        )
        latency, bpns, cpu, noise_scale = client._fault_arrays(
            label, on_fast, latency, bpns, self.cpu
        )
        base = service_times_ns(
            self.sizes, latency, bpns, self.passes, cpu,
            cached=self._cached, cache_latency_ns=self._cache_lat,
        )
        times = realisation_matrix(
            base, client.noise, client.seed, label, client.repeats,
            noise_scale=noise_scale,
        )
        return summarize(
            trace, self.profile.name, times, client.concurrency,
            client.percentiles,
        )

    def run_all(self, fast_masks) -> list:
        """Measure every placement in *fast_masks* (rows or a sequence)."""
        return [self.run(mask) for mask in fast_masks]
