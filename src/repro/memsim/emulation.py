"""Testbed emulation presets (paper Section II, Table I).

The paper emulates NVM by throttling one DRAM socket: bandwidth reduced
to 0.12x and latency increased to 3.62x of the unmodified node.  This
module captures those factors and builds node presets from them, so the
same throttling methodology can be applied to arbitrary "DRAM" nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.memsim.node import MemoryNode, NodeKind
from repro.units import GiB

#: Table I FastMem (unmodified DRAM node): 65.7 ns, 14.9 GB/s, 4 GiB DDR3.
TABLE_I_FAST = {
    "latency_ns": 65.7,
    "bandwidth_gbps": 14.9,
    "capacity_bytes": 4 * GiB,
}

#: Table I SlowMem (throttled node): 238.1 ns, 1.81 GB/s, 4 GiB DDR3.
TABLE_I_SLOW = {
    "latency_ns": 238.1,
    "bandwidth_gbps": 1.81,
    "capacity_bytes": 4 * GiB,
}


@dataclass(frozen=True)
class ThrottleFactors:
    """Throttling factors relative to DRAM: ``B:bandwidth L:latency``.

    Table I reports SlowMem as ``B:0.12 L:3.62`` — 0.12x the bandwidth and
    3.62x the latency of FastMem.
    """

    bandwidth: float
    latency: float

    def __post_init__(self) -> None:
        if not 0 < self.bandwidth <= 1:
            raise ConfigurationError(
                f"bandwidth throttle factor must be in (0, 1], got {self.bandwidth}"
            )
        if self.latency < 1:
            raise ConfigurationError(
                f"latency throttle factor must be >= 1, got {self.latency}"
            )


def table_i_factors() -> ThrottleFactors:
    """The B:0.12 L:3.62 factors measured on the paper's testbed."""
    return ThrottleFactors(
        bandwidth=TABLE_I_SLOW["bandwidth_gbps"] / TABLE_I_FAST["bandwidth_gbps"],
        latency=TABLE_I_SLOW["latency_ns"] / TABLE_I_FAST["latency_ns"],
    )


def emulated_slow_node(
    fast: MemoryNode,
    factors: ThrottleFactors | None = None,
    name: str = "SlowMem",
    capacity_bytes: int | None = None,
) -> MemoryNode:
    """Build a SlowMem node by throttling *fast*, as the paper does.

    Parameters
    ----------
    fast:
        The unmodified DRAM node to derive timing from.
    factors:
        Bandwidth/latency throttle factors; defaults to Table I's
        ``B:0.12 L:3.62``.
    capacity_bytes:
        SlowMem capacity; defaults to the fast node's capacity (the
        testbed has two equal 4 GiB nodes).
    """
    if factors is None:
        factors = table_i_factors()
    return MemoryNode(
        name=name,
        kind=NodeKind.SLOW,
        latency_ns=fast.latency_ns * factors.latency,
        bandwidth_gbps=fast.bandwidth_gbps * factors.bandwidth,
        capacity_bytes=capacity_bytes or fast.capacity_bytes,
    )
